// Queries a scheduling decision-audit dump produced by fuxi::obs (the
// chaos campaigns write fuxi_audit_seed<N>.json at the first invariant
// violation; any test can call obs::ExportAuditJson):
//
//   fuxi_explain audit.json                     # summary tables
//   fuxi_explain audit.json --demand APP [SLOT] # one demand's history
//   fuxi_explain audit.json --machine M         # one machine's history
//   fuxi_explain audit.json --unplaced          # rejection chains for
//                                               # every unsatisfied demand
//   fuxi_explain audit.json --timeline          # per-app utilization
//   fuxi_explain audit.json --timeline M        # machine M's planner
//                                               # reservation future
//   fuxi_explain audit.json --gantt             # per-machine occupancy
//   fuxi_explain audit.json --trace trace.json  # annotate records with
//                                               # flight-recorder span names
//
// Every decision the scheduler made is reconstructable: which machines
// were considered for a demand at which locality tier, why each pruned
// candidate was rejected (avoid list, offline, no free capacity,
// negative-fit cache, quota headroom, pass-skip, candidate cap), what
// was granted, and which grants were later taken back.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/audit.h"
#include "obs/timeline.h"

namespace {

using fuxi::obs::CandidateOutcome;
using fuxi::obs::DecisionKind;
using fuxi::obs::DecisionRecord;
using fuxi::obs::RejectReason;

/// Span id -> span name, loaded from a Chrome-trace dump for --trace.
std::map<uint64_t, std::string> LoadSpanNames(const char* path) {
  std::map<uint64_t, std::string> names;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuxi_explain: cannot open trace %s\n", path);
    return names;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fuxi::Result<fuxi::Json> parsed = fuxi::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "fuxi_explain: %s: %s\n", path,
                 parsed.status().message().c_str());
    return names;
  }
  const fuxi::Json* events = parsed.value().Find("traceEvents");
  if (events == nullptr || !events->is_array()) return names;
  for (const fuxi::Json& event : events->as_array()) {
    if (const fuxi::Json* args = event.Find("args")) {
      int64_t span = args->GetInt("span", 0);
      if (span > 0) {
        names[static_cast<uint64_t>(span)] =
            event.GetString("name", "<unnamed>");
      }
    }
  }
  return names;
}

void PrintCandidate(const CandidateOutcome& c, bool demand_fixed) {
  if (demand_fixed) {
    std::printf("    %-8s m%-6lld", fuxi::obs::TierName(c.tier).data(),
                static_cast<long long>(c.machine));
  } else {
    std::printf("    %-8s app%lld/s%u", fuxi::obs::TierName(c.tier).data(),
                static_cast<long long>(c.app), c.slot);
  }
  if (c.granted > 0) {
    std::printf("  granted=%lld rem=%lld\n",
                static_cast<long long>(c.granted),
                static_cast<long long>(c.remaining));
  } else if (c.reason == RejectReason::kNone) {
    // A planner booking: units promised on this machine in the future,
    // carried in `remaining` so grant extraction does not count them.
    std::printf("  reserved=%lld\n", static_cast<long long>(c.remaining));
  } else {
    std::printf("  rejected: %s (rem=%lld)\n",
                fuxi::obs::RejectReasonName(c.reason).data(),
                static_cast<long long>(c.remaining));
  }
}

void PrintRecord(const DecisionRecord& r,
                 const std::map<uint64_t, std::string>& span_names) {
  std::printf("#%llu t=%.3f %s", static_cast<unsigned long long>(r.id),
              r.time, fuxi::obs::DecisionKindName(r.kind).data());
  if (r.app >= 0) {
    std::printf(" app%lld/s%u", static_cast<long long>(r.app), r.slot);
  }
  if (r.machine >= 0) std::printf(" m%lld", static_cast<long long>(r.machine));
  if (r.units != 0) std::printf(" units=%lld", static_cast<long long>(r.units));
  if (r.remaining_before != 0 || r.remaining_after != 0) {
    std::printf(" remaining %lld->%lld",
                static_cast<long long>(r.remaining_before),
                static_cast<long long>(r.remaining_after));
  }
  if (r.reason != RejectReason::kNone) {
    std::printf(" [%s]", fuxi::obs::RejectReasonName(r.reason).data());
  }
  if (!r.note.empty()) std::printf(" (%s)", r.note.c_str());
  if (r.trace_span != 0) {
    auto it = span_names.find(r.trace_span);
    if (it != span_names.end()) {
      std::printf(" span=%llu:%s",
                  static_cast<unsigned long long>(r.trace_span),
                  it->second.c_str());
    } else {
      std::printf(" span=%llu",
                  static_cast<unsigned long long>(r.trace_span));
    }
  }
  std::printf("\n");
  bool demand_fixed = r.kind != DecisionKind::kPass;
  for (const CandidateOutcome& c : r.candidates) {
    PrintCandidate(c, demand_fixed);
  }
  if (r.candidates_dropped > 0) {
    std::printf("    ... %u more candidates dropped at the record cap\n",
                r.candidates_dropped);
  }
}

void PrintSummary(const std::vector<DecisionRecord>& records) {
  std::map<std::string, uint64_t> by_kind;
  std::map<std::string, uint64_t> rejections;
  uint64_t granted_units = 0;
  uint64_t revoked_units = 0;
  for (const DecisionRecord& r : records) {
    ++by_kind[std::string(fuxi::obs::DecisionKindName(r.kind))];
    if (r.kind == DecisionKind::kRevoke) {
      revoked_units += static_cast<uint64_t>(r.units);
    }
    if (r.reason != RejectReason::kNone) {
      ++rejections[std::string(fuxi::obs::RejectReasonName(r.reason))];
    }
    for (const CandidateOutcome& c : r.candidates) {
      if (c.granted > 0) {
        granted_units += static_cast<uint64_t>(c.granted);
      } else if (c.reason != RejectReason::kNone) {
        ++rejections[std::string(fuxi::obs::RejectReasonName(c.reason))];
      }
    }
  }
  std::printf("%zu decision records\n", records.size());
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-14s %llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("granted units: %llu, revoked units: %llu\n",
              static_cast<unsigned long long>(granted_units),
              static_cast<unsigned long long>(revoked_units));
  if (!rejections.empty()) {
    std::printf("rejection reasons:\n");
    for (const auto& [reason, count] : rejections) {
      std::printf("  %-20s %llu\n", reason.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  std::vector<fuxi::obs::UnplacedDemand> unplaced =
      fuxi::obs::UnplacedAtEnd(records);
  if (!unplaced.empty()) {
    std::printf("unplaced at end of dump: %zu demands (try --unplaced)\n",
                unplaced.size());
  }
}

void PrintUnplaced(const std::vector<DecisionRecord>& records) {
  std::vector<fuxi::obs::UnplacedDemand> unplaced =
      fuxi::obs::UnplacedAtEnd(records);
  if (unplaced.empty()) {
    std::printf("every demand mentioned in the dump was satisfied\n");
    return;
  }
  for (const fuxi::obs::UnplacedDemand& u : unplaced) {
    std::printf("app%lld/s%u: %lld units outstanding\n",
                static_cast<long long>(u.app), u.slot,
                static_cast<long long>(u.remaining));
    std::vector<CandidateOutcome> chain =
        fuxi::obs::RejectionChain(records, u.app, u.slot);
    if (chain.empty()) {
      std::printf("    (no rejection recorded — ring may have "
                  "overwritten the history)\n");
      continue;
    }
    // The full chain can be long; the tail is what explains the current
    // state, so print the last few links.
    size_t start = chain.size() > 8 ? chain.size() - 8 : 0;
    if (start > 0) {
      std::printf("    ... %zu earlier rejections elided ...\n", start);
    }
    for (size_t i = start; i < chain.size(); ++i) {
      PrintCandidate(chain[i], true);
    }
  }
}

/// Units a kReserve record books (provisionally) or commits on `machine`.
struct ReserveTouch {
  int64_t reserved = 0;
  int64_t committed = 0;
};

ReserveTouch TouchOn(const DecisionRecord& r, int64_t machine) {
  ReserveTouch touch;
  for (const CandidateOutcome& c : r.candidates) {
    if (c.machine != machine) continue;
    if (c.granted > 0) {
      touch.committed += c.granted;
    } else if (c.reason == RejectReason::kNone) {
      touch.reserved += c.remaining;
    }
  }
  return touch;
}

/// The planner's view of one machine's future: every reservation event
/// that touched it, in order, plus whatever is still booked at the end
/// of the dump. Bookings name their window in the note
/// ("reserve=<id> start=<s> end=<e>"); a later kReserve record for the
/// same demand supersedes the booking (converted, aborted, expired, or
/// re-booked elsewhere).
void PrintMachineReservations(const std::vector<DecisionRecord>& records,
                              int64_t machine) {
  struct Open {
    double time;
    int64_t units;
    std::string note;
  };
  std::map<std::pair<int64_t, uint32_t>, Open> open;
  size_t events = 0;
  std::printf("== planner reservation timeline for m%lld ==\n",
              static_cast<long long>(machine));
  for (const DecisionRecord& r : records) {
    if (r.kind != DecisionKind::kReserve) {
      // A backfill-head fence is released without an audit record when
      // its demand starts via the instantaneous pass — retire the
      // booking when we see that demand granted anywhere.
      if (r.kind == DecisionKind::kPlace) {
        for (const CandidateOutcome& c : r.candidates) {
          if (c.granted > 0) open.erase({r.app, r.slot});
        }
      } else if (r.kind == DecisionKind::kPass) {
        for (const CandidateOutcome& c : r.candidates) {
          if (c.granted > 0) open.erase({c.app, c.slot});
        }
      }
      continue;
    }
    ReserveTouch touch = TouchOn(r, machine);
    std::pair<int64_t, uint32_t> key{r.app, r.slot};
    if (touch.reserved > 0) {
      open[key] = Open{r.time, touch.reserved, r.note};
    } else {
      // Any later planner decision about this demand retires its
      // booking here: it converted, aborted, expired, or moved.
      open.erase(key);
    }
    if (touch.reserved == 0 && touch.committed == 0 &&
        r.machine != machine) {
      continue;
    }
    ++events;
    std::printf("t=%.3f app%lld/s%u", r.time,
                static_cast<long long>(r.app), r.slot);
    if (touch.reserved > 0) {
      std::printf(" reserved %lld units",
                  static_cast<long long>(touch.reserved));
    }
    if (touch.committed > 0) {
      std::printf(" committed %lld units",
                  static_cast<long long>(touch.committed));
    }
    if (r.reason != RejectReason::kNone) {
      std::printf(" [%s]", fuxi::obs::RejectReasonName(r.reason).data());
    }
    if (!r.note.empty()) std::printf(" (%s)", r.note.c_str());
    std::printf("\n");
  }
  if (events == 0) {
    std::printf("no planner reservations touched this machine\n");
    return;
  }
  if (!open.empty()) {
    std::printf("still booked at end of dump:\n");
    for (const auto& [key, o] : open) {
      std::printf("  app%lld/s%u: %lld units, booked at t=%.3f (%s)\n",
                  static_cast<long long>(key.first), key.second,
                  static_cast<long long>(o.units), o.time, o.note.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s <audit.json> [--demand APP [SLOT] | --machine M | "
        "--unplaced | --timeline [M] | --gantt] [--trace trace.json]\n"
        "  --timeline       per-app utilization over time\n"
        "  --timeline M     machine M's planner reservation timeline\n",
        argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "fuxi_explain: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fuxi::Result<fuxi::Json> parsed = fuxi::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "fuxi_explain: %s: %s\n", argv[1],
                 parsed.status().message().c_str());
    return 2;
  }
  std::vector<DecisionRecord> records =
      fuxi::obs::AuditRecordsFromJson(parsed.value());
  if (records.empty()) {
    std::fprintf(stderr, "fuxi_explain: %s holds no auditRecords\n",
                 argv[1]);
    return 2;
  }

  enum class Mode { kSummary, kDemand, kMachine, kUnplaced, kTimeline,
                    kGantt };
  Mode mode = Mode::kSummary;
  int64_t app = -1, machine = -1, timeline_machine = -1;
  uint32_t slot = 0;
  bool any_slot = true;
  std::map<uint64_t, std::string> span_names;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demand") == 0 && i + 1 < argc) {
      mode = Mode::kDemand;
      app = std::atoll(argv[++i]);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        slot = static_cast<uint32_t>(std::atoi(argv[++i]));
        any_slot = false;
      }
    } else if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      mode = Mode::kMachine;
      machine = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--unplaced") == 0) {
      mode = Mode::kUnplaced;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      mode = Mode::kTimeline;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        timeline_machine = std::atoll(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--gantt") == 0) {
      mode = Mode::kGantt;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      span_names = LoadSpanNames(argv[++i]);
    } else {
      std::fprintf(stderr, "fuxi_explain: unknown argument %s\n", argv[i]);
      return 2;
    }
  }

  switch (mode) {
    case Mode::kSummary:
      PrintSummary(records);
      break;
    case Mode::kDemand: {
      // Without an explicit slot, explain every slot of the app seen in
      // the dump.
      std::vector<uint32_t> slots;
      if (any_slot) {
        std::map<uint32_t, bool> seen;
        for (const DecisionRecord& r : records) {
          if (r.app == app) seen[r.slot] = true;
          for (const CandidateOutcome& c : r.candidates) {
            if (c.app == app) seen[c.slot] = true;
          }
        }
        for (const auto& [s, unused] : seen) slots.push_back(s);
      } else {
        slots.push_back(slot);
      }
      for (uint32_t s : slots) {
        std::printf("== demand app%lld/s%u ==\n",
                    static_cast<long long>(app), s);
        for (const DecisionRecord* r :
             fuxi::obs::ExplainDemand(records, app, s)) {
          PrintRecord(*r, span_names);
        }
      }
      break;
    }
    case Mode::kMachine:
      for (const DecisionRecord* r :
           fuxi::obs::ExplainMachine(records, machine)) {
        PrintRecord(*r, span_names);
      }
      break;
    case Mode::kUnplaced:
      PrintUnplaced(records);
      break;
    case Mode::kTimeline: {
      if (timeline_machine >= 0) {
        PrintMachineReservations(records, timeline_machine);
        break;
      }
      std::vector<fuxi::obs::GrantEvent> events =
          fuxi::obs::ExtractGrantEvents(records);
      std::fputs(
          fuxi::obs::RenderTimeline(fuxi::obs::AppUtilization(events),
                                    "per-app utilization (units held)")
              .c_str(),
          stdout);
      break;
    }
    case Mode::kGantt: {
      std::vector<fuxi::obs::GrantEvent> events =
          fuxi::obs::ExtractGrantEvents(records);
      std::fputs(
          fuxi::obs::RenderTimeline(fuxi::obs::MachineOccupancy(events),
                                    "per-machine occupancy (units held)")
              .c_str(),
          stdout);
      break;
    }
  }
  return 0;
}
