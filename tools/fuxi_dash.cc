// Renders a fuxi telemetry dump (obs::TelemetryJson, e.g.
// fuxi_telemetry_seed<N>.json from bench_chaos_campaign) as an ASCII
// dashboard:
//
//   fuxi_dash dump.json                 # sparkline dashboard, all series
//   fuxi_dash dump.json --list          # series names, kinds, lengths
//   fuxi_dash dump.json --series NAME   # full tick-by-tick value table
//   fuxi_dash dump.json --events        # watchdog health-event timeline
//   fuxi_dash dump.json --csv           # long-form CSV of every sample
//   fuxi_dash dump.json --json          # decoded dump (deltas expanded)
//
// The dashboard shows, per series: kind, sample count, min/mean/max/
// latest over the retained window, and a sparkline of the values scaled
// to the series' own [min, max]. Series tagged realtime (wall-clock
// measurements) are marked with '~' — they vary run to run and are
// excluded from determinism comparisons. Health events render inline
// under the dashboard so a degradation signal is never off-screen.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/telemetry.h"

namespace {

using fuxi::obs::TelemetryDump;

/// Eight-level ASCII ramp. Unicode block elements would be prettier but
/// plain ASCII survives every terminal and CI log viewer.
const char kRamp[] = " .:-=+*#@";

std::string Sparkline(const std::vector<double>& values, size_t width) {
  if (values.empty()) return "";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Downsample to `width` buckets, each showing its bucket max — spikes
  // must survive compression, troughs may not.
  size_t n = values.size();
  size_t cols = std::min(width, n);
  std::string out;
  out.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = c * n / cols;
    size_t end = std::max(begin + 1, (c + 1) * n / cols);
    double bucket = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      bucket = std::max(bucket, values[i]);
    }
    size_t level = 0;
    if (hi > lo) {
      level = static_cast<size_t>((bucket - lo) / (hi - lo) * 8.0 + 0.5);
      level = std::min<size_t>(level, 8);
    } else if (hi != 0) {
      level = 4;  // flat nonzero line at mid-ramp
    }
    out.push_back(kRamp[level]);
  }
  return out;
}

struct Extents {
  double lo = 0;
  double hi = 0;
  double mean = 0;
};

Extents SeriesExtents(const std::vector<double>& values) {
  Extents e;
  if (values.empty()) return e;
  e.lo = values[0];
  e.hi = values[0];
  double sum = 0;
  for (double v : values) {
    e.lo = std::min(e.lo, v);
    e.hi = std::max(e.hi, v);
    sum += v;
  }
  e.mean = sum / static_cast<double>(values.size());
  return e;
}

void PrintDashboard(const TelemetryDump& dump) {
  std::printf("fuxi telemetry: %lld samples @ %.3gs interval, %zu series\n",
              static_cast<long long>(dump.samples), dump.interval,
              dump.series.size());
  std::printf("%-44s %-10s %6s %12s %12s %12s  %s\n", "series", "kind",
              "n", "min", "max", "latest", "sparkline");
  for (const TelemetryDump::Series& s : dump.series) {
    Extents e = SeriesExtents(s.values);
    double latest = s.values.empty() ? 0 : s.values.back();
    std::string name = s.name;
    if (s.realtime) name += " ~";
    std::printf("%-44.44s %-10s %6zu %12.6g %12.6g %12.6g  |%s|\n",
                name.c_str(), s.kind.c_str(), s.values.size(), e.lo, e.hi,
                latest, Sparkline(s.values, 40).c_str());
  }
  if (!dump.events.empty() || dump.events_dropped > 0) {
    std::printf("\nwatchdog: %zu health events (%llu dropped)\n",
                dump.events.size(),
                static_cast<unsigned long long>(dump.events_dropped));
    for (const fuxi::obs::HealthEvent& ev : dump.events) {
      std::printf("  t=%-9.3f [%s] %s=%.6g threshold=%.6g%s%s\n", ev.time,
                  ev.rule.c_str(), ev.series.c_str(), ev.value, ev.threshold,
                  ev.detail.empty() ? "" : " -- ", ev.detail.c_str());
    }
  }
}

void PrintList(const TelemetryDump& dump) {
  for (const TelemetryDump::Series& s : dump.series) {
    std::printf("%-44s %-10s n=%-6zu total=%-8llu%s\n", s.name.c_str(),
                s.kind.c_str(), s.values.size(),
                static_cast<unsigned long long>(s.total),
                s.realtime ? " realtime" : "");
  }
}

int PrintSeries(const TelemetryDump& dump, const char* name) {
  const TelemetryDump::Series* s = dump.Find(name);
  if (s == nullptr) {
    std::fprintf(stderr, "fuxi_dash: no series named %s (try --list)\n",
                 name);
    return 1;
  }
  std::printf("%s (%s%s): %zu retained of %llu sampled\n", s->name.c_str(),
              s->kind.c_str(), s->realtime ? ", realtime" : "",
              s->values.size(), static_cast<unsigned long long>(s->total));
  std::printf("%8s %12s %16s\n", "tick", "t(s)", "value");
  for (size_t i = 0; i < s->values.size(); ++i) {
    int64_t tick = s->first_tick + static_cast<int64_t>(i);
    std::printf("%8lld %12.3f %16.6f\n", static_cast<long long>(tick),
                static_cast<double>(tick) * dump.interval, s->values[i]);
  }
  return 0;
}

void PrintEvents(const TelemetryDump& dump) {
  std::printf("time,rule,series,value,threshold,detail\n");
  for (const fuxi::obs::HealthEvent& ev : dump.events) {
    std::printf("%.6f,%s,%s,%.6g,%.6g,%s\n", ev.time, ev.rule.c_str(),
                ev.series.c_str(), ev.value, ev.threshold,
                ev.detail.c_str());
  }
  if (dump.events_dropped > 0) {
    std::fprintf(stderr, "fuxi_dash: %llu further events dropped at the "
                 "watchdog's ring cap\n",
                 static_cast<unsigned long long>(dump.events_dropped));
  }
}

/// Long-form CSV: one row per (series, tick) — trivially pivotable.
void PrintCsv(const TelemetryDump& dump) {
  std::printf("series,kind,realtime,tick,time,value\n");
  for (const TelemetryDump::Series& s : dump.series) {
    for (size_t i = 0; i < s.values.size(); ++i) {
      int64_t tick = s.first_tick + static_cast<int64_t>(i);
      std::printf("%s,%s,%d,%lld,%.6f,%.6f\n", s.name.c_str(),
                  s.kind.c_str(), s.realtime ? 1 : 0,
                  static_cast<long long>(tick),
                  static_cast<double>(tick) * dump.interval, s.values[i]);
    }
  }
}

/// Decoded JSON: the dump with every delta chain expanded to absolute
/// values — what a plotting notebook wants to ingest directly.
void PrintJson(const TelemetryDump& dump) {
  fuxi::Json doc = fuxi::Json::MakeObject();
  doc["fuxi_telemetry_decoded"] = fuxi::Json(int64_t{1});
  doc["interval"] = fuxi::Json(dump.interval);
  doc["samples"] = fuxi::Json(dump.samples);
  fuxi::Json series = fuxi::Json::MakeArray();
  for (const TelemetryDump::Series& s : dump.series) {
    fuxi::Json entry = fuxi::Json::MakeObject();
    entry["name"] = fuxi::Json(s.name);
    entry["kind"] = fuxi::Json(s.kind);
    if (s.realtime) entry["realtime"] = fuxi::Json(true);
    entry["first_tick"] = fuxi::Json(s.first_tick);
    entry["total"] = fuxi::Json(static_cast<int64_t>(s.total));
    fuxi::Json values = fuxi::Json::MakeArray();
    for (double v : s.values) values.Append(fuxi::Json(v));
    entry["values"] = std::move(values);
    series.Append(std::move(entry));
  }
  doc["series"] = std::move(series);
  fuxi::Json events = fuxi::Json::MakeArray();
  for (const fuxi::obs::HealthEvent& ev : dump.events) {
    fuxi::Json entry = fuxi::Json::MakeObject();
    entry["t"] = fuxi::Json(ev.time);
    entry["rule"] = fuxi::Json(ev.rule);
    entry["series"] = fuxi::Json(ev.series);
    entry["value"] = fuxi::Json(ev.value);
    entry["threshold"] = fuxi::Json(ev.threshold);
    if (!ev.detail.empty()) entry["detail"] = fuxi::Json(ev.detail);
    events.Append(std::move(entry));
  }
  doc["events"] = std::move(events);
  std::printf("%s\n", doc.Dump().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* series_name = nullptr;
  bool list = false;
  bool events = false;
  bool csv = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--events") == 0) {
      events = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      series_name = argv[++i];
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <telemetry.json> [--list] [--series NAME] "
                   "[--events] [--csv] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <telemetry.json> [--list] [--series NAME] "
                 "[--events] [--csv] [--json]\n",
                 argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuxi_dash: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fuxi::Result<fuxi::Json> parsed = fuxi::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "fuxi_dash: %s: %s\n", path,
                 parsed.status().message().c_str());
    return 2;
  }
  TelemetryDump dump = fuxi::obs::TelemetryDumpFromJson(parsed.value());
  if (dump.series.empty() && dump.samples == 0) {
    std::fprintf(stderr,
                 "fuxi_dash: %s is not a telemetry dump (missing "
                 "fuxi_telemetry marker) or sampled nothing\n",
                 path);
    return 1;
  }

  if (list) {
    PrintList(dump);
  } else if (series_name != nullptr) {
    return PrintSeries(dump, series_name);
  } else if (events) {
    PrintEvents(dump);
  } else if (csv) {
    PrintCsv(dump);
  } else if (json) {
    PrintJson(dump);
  } else {
    PrintDashboard(dump);
  }
  return 0;
}
