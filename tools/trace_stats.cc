// Summarizes a Chrome-trace JSON dump produced by fuxi::obs (the chaos
// flight recorder or any exported span snapshot) as per-message-type
// latency/volume tables:
//
//   trace_stats trace.json [audit.json]
//   trace_stats --metrics metrics.csv
//
// For every span name (demangled payload type for RPCs, region name
// for local spans) it prints the count, drop count, total bytes, and
// the virtual-latency distribution; wall-clock-annotated spans get a
// second table with real costs. With a decision-audit dump as the
// second argument, the two are joined on span id: each span name gets
// the count of scheduling decisions committed while it was ambient.
//
// --metrics mode reads an obs::MetricsToCsv dump (e.g.
// fuxi_metrics_seed<N>.csv from a single-seed bench_chaos_campaign run)
// and prints the exact per-message-type wire accounting: the
// net.msgs.<type> / net.bytes.<type> counter pairs the network measures
// from real encoded frame sizes, joined into one volume table.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "obs/audit.h"

namespace {

struct NameStats {
  uint64_t count = 0;
  uint64_t dropped = 0;
  uint64_t bytes = 0;
  fuxi::Histogram latency_ms;  // virtual dur
  fuxi::Histogram wall_us;     // only spans carrying args.wall_us
};

/// Per-message-type wire volume from a metrics CSV: joins the
/// net.msgs.<type> and net.bytes.<type> counters the network keeps from
/// exact encoded frame sizes.
int PrintWireVolume(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_stats: cannot open %s\n", path);
    return 2;
  }
  struct TypeVolume {
    uint64_t msgs = 0;
    uint64_t bytes = 0;
  };
  std::map<std::string, TypeVolume> by_type;
  uint64_t total_sent = 0;
  uint64_t total_bytes = 0;
  uint64_t decode_drops = 0;
  // sweep.* rows from sweep::ExportStats — the parallel-sweep health
  // table. Counter and gauge rows both carry their reading in the
  // value column (the count column is only filled for histograms).
  std::map<std::string, double> sweep_stats;
  std::string line;
  while (std::getline(in, line)) {
    // MetricsToCsv rows: kind,name,count,value,mean,p50,...,realtime
    size_t c1 = line.find(',');
    if (c1 == std::string::npos) continue;
    bool is_counter = line.compare(0, c1, "counter") == 0;
    bool is_gauge = line.compare(0, c1, "gauge") == 0;
    if (!is_counter && !is_gauge) continue;
    size_t c2 = line.find(',', c1 + 1);
    size_t c3 = line.find(',', c2 + 1);
    if (c2 == std::string::npos || c3 == std::string::npos) continue;
    std::string name = line.substr(c1 + 1, c2 - c1 - 1);
    if (name.rfind("sweep.", 0) == 0) {
      sweep_stats[name] = std::strtod(line.c_str() + c3 + 1, nullptr);
      continue;
    }
    if (!is_counter) continue;
    uint64_t value = std::strtoull(line.c_str() + c3 + 1, nullptr, 10);
    if (name.rfind("net.msgs.", 0) == 0) {
      by_type[name.substr(9)].msgs = value;
    } else if (name.rfind("net.bytes.", 0) == 0) {
      by_type[name.substr(10)].bytes = value;
    } else if (name == "net.messages_sent") {
      total_sent = value;
    } else if (name == "net.bytes_sent") {
      total_bytes = value;
    } else if (name == "net.decode_drops") {
      decode_drops = value;
    }
  }
  if (by_type.empty() && sweep_stats.empty()) {
    std::fprintf(stderr,
                 "trace_stats: %s has no net.msgs.*/net.bytes.*/sweep.* "
                 "counters (not a metrics CSV, or a run that sent no "
                 "messages)\n",
                 path);
    return 1;
  }
  if (!by_type.empty()) {
    std::printf("%-32s %10s %12s %10s\n", "message type", "msgs", "bytes",
                "avg B/msg");
    for (const auto& [type, volume] : by_type) {
      std::printf("%-32.32s %10llu %12llu %10.1f\n", type.c_str(),
                  static_cast<unsigned long long>(volume.msgs),
                  static_cast<unsigned long long>(volume.bytes),
                  volume.msgs == 0
                      ? 0.0
                      : static_cast<double>(volume.bytes) /
                            static_cast<double>(volume.msgs));
    }
    std::printf(
        "total: %llu messages, %llu bytes (exact encoded frame sizes); "
        "%llu decode drops\n",
        static_cast<unsigned long long>(total_sent),
        static_cast<unsigned long long>(total_bytes),
        static_cast<unsigned long long>(decode_drops));
  }
  if (!sweep_stats.empty()) {
    if (!by_type.empty()) std::printf("\n");
    std::printf("%-32s %12s\n", "sweep stat", "value");
    for (const auto& [name, value] : sweep_stats) {
      std::printf("%-32.32s %12.3f\n", name.c_str(), value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--metrics") {
    return PrintWireVolume(argv[2]);
  }
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <chrome-trace.json> [audit.json]\n"
                 "       %s --metrics <metrics.csv>\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_stats: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fuxi::Result<fuxi::Json> parsed = fuxi::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_stats: %s: %s\n", argv[1],
                 parsed.status().message().c_str());
    return 2;
  }
  const fuxi::Json* events = parsed.value().Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace_stats: %s has no traceEvents array\n",
                 argv[1]);
    return 2;
  }

  std::map<std::string, NameStats> by_name;
  std::map<uint64_t, std::string> span_names;
  for (const fuxi::Json& event : events->as_array()) {
    std::string name = event.GetString("name", "<unnamed>");
    NameStats& stats = by_name[name];
    ++stats.count;
    stats.latency_ms.Add(event.GetNumber("dur", 0) / 1000.0);
    if (const fuxi::Json* args = event.Find("args")) {
      stats.bytes += static_cast<uint64_t>(args->GetInt("bytes", 0));
      if (args->GetBool("dropped", false)) ++stats.dropped;
      if (const fuxi::Json* wall = args->Find("wall_us")) {
        stats.wall_us.Add(wall->as_number());
      }
      int64_t span = args->GetInt("span", 0);
      if (span > 0) span_names[static_cast<uint64_t>(span)] = name;
    }
  }

  std::printf("%-48s %8s %7s %10s %9s %9s %9s\n", "span", "count", "drops",
              "bytes", "lat p50", "lat p95", "lat max");
  std::printf("%-48s %8s %7s %10s %9s %9s %9s\n", "(name)", "", "",
              "", "(ms)", "(ms)", "(ms)");
  uint64_t total = 0;
  for (const auto& [name, stats] : by_name) {
    total += stats.count;
    std::printf("%-48.48s %8llu %7llu %10s %9.3f %9.3f %9.3f\n",
                name.c_str(), static_cast<unsigned long long>(stats.count),
                static_cast<unsigned long long>(stats.dropped),
                fuxi::FormatBytes(static_cast<double>(stats.bytes)).c_str(),
                stats.latency_ms.Percentile(50),
                stats.latency_ms.Percentile(95), stats.latency_ms.max());
  }
  std::printf("total: %llu spans across %zu distinct names\n",
              static_cast<unsigned long long>(total), by_name.size());

  bool header = false;
  for (const auto& [name, stats] : by_name) {
    if (stats.wall_us.count() == 0) continue;
    if (!header) {
      std::printf("\n%-48s %8s %9s %9s %9s\n", "wall-clock span", "count",
                  "mean(us)", "p95(us)", "max(us)");
      header = true;
    }
    std::printf("%-48.48s %8llu %9.1f %9.1f %9.1f\n", name.c_str(),
                static_cast<unsigned long long>(stats.wall_us.count()),
                stats.wall_us.mean(), stats.wall_us.Percentile(95),
                stats.wall_us.max());
  }

  if (argc == 3) {
    std::ifstream audit_in(argv[2]);
    if (!audit_in) {
      std::fprintf(stderr, "trace_stats: cannot open %s\n", argv[2]);
      return 2;
    }
    std::ostringstream audit_buffer;
    audit_buffer << audit_in.rdbuf();
    fuxi::Result<fuxi::Json> audit_parsed =
        fuxi::Json::Parse(audit_buffer.str());
    if (!audit_parsed.ok()) {
      std::fprintf(stderr, "trace_stats: %s: %s\n", argv[2],
                   audit_parsed.status().message().c_str());
      return 2;
    }
    std::vector<fuxi::obs::DecisionRecord> records =
        fuxi::obs::AuditRecordsFromJson(audit_parsed.value());
    // Join on span id: which traced operations caused which decisions.
    std::map<std::string, std::map<std::string, uint64_t>> joined;
    uint64_t unjoined = 0;
    for (const fuxi::obs::DecisionRecord& record : records) {
      auto it = span_names.find(record.trace_span);
      if (record.trace_span == 0 || it == span_names.end()) {
        ++unjoined;
        continue;
      }
      ++joined[it->second][std::string(
          fuxi::obs::DecisionKindName(record.kind))];
    }
    std::printf("\n%-48s %-14s %8s\n", "ambient span", "decision", "count");
    for (const auto& [span, kinds] : joined) {
      for (const auto& [kind, count] : kinds) {
        std::printf("%-48.48s %-14s %8llu\n", span.c_str(), kind.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
    std::printf(
        "joined %zu audit records against %zu spans (%llu records with "
        "no matching span in this trace)\n",
        records.size(), span_names.size(),
        static_cast<unsigned long long>(unjoined));
  }
  return 0;
}
