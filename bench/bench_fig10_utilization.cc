// Reproduces Figure 10: planned memory and CPU utilization while the
// §5.2 synthetic workload keeps the cluster saturated.
//
//   FM_total    — capacity known to FuxiMaster
//   FM_planned  — resources FuxiMaster has granted out
//   AM_obtained — resources the application masters know they hold
//   FA_planned  — resources the agents' running processes occupy
//
// Paper: 97.1% / 95.9% / 95.2% of 442 TB memory; 92.3% / 91.3% of CPU.

#include <cstdio>

#include "bench_common.h"
#include "common/metrics.h"

int main() {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  bench::BenchScale scale = bench::BenchScale::FromEnv();

  runtime::SimCluster cluster(bench::BenchClusterOptions(scale.machines));
  cluster.Start();
  cluster.RunFor(2.0);
  master::FuxiMaster* primary = cluster.primary();
  FUXI_CHECK(primary != nullptr);

  bench::WorkloadDriver driver(&cluster, scale, 7);
  driver.Start();
  double t0 = cluster.sim().Now();
  double warmup = scale.duration * 0.25;

  struct Sample {
    double t;
    double fm_total_mem, fm_planned_mem, am_obtained_mem, fa_planned_mem;
    double fm_total_cpu, fm_planned_cpu, am_obtained_cpu, fa_planned_cpu;
  };
  std::vector<Sample> samples;
  Histogram mem_planned_pct, mem_obtained_pct, mem_fa_pct;
  Histogram cpu_planned_pct, cpu_obtained_pct, cpu_fa_pct;

  while (cluster.sim().Now() - t0 < scale.duration) {
    cluster.RunFor(10.0);
    const resource::Scheduler* scheduler = primary->scheduler();
    cluster::ResourceVector total = scheduler->TotalCapacity();
    cluster::ResourceVector planned = scheduler->TotalGranted();
    cluster::ResourceVector obtained = driver.ObtainedResources();
    cluster::ResourceVector fa;
    for (const cluster::Machine& m : cluster.topology().machines()) {
      fa += cluster.host(m.id)->TotalUsage();
    }
    Sample s;
    s.t = cluster.sim().Now() - t0;
    s.fm_total_mem = static_cast<double>(total.memory());
    s.fm_planned_mem = static_cast<double>(planned.memory());
    s.am_obtained_mem = static_cast<double>(obtained.memory());
    s.fa_planned_mem = static_cast<double>(fa.memory());
    s.fm_total_cpu = static_cast<double>(total.cpu());
    s.fm_planned_cpu = static_cast<double>(planned.cpu());
    s.am_obtained_cpu = static_cast<double>(obtained.cpu());
    s.fa_planned_cpu = static_cast<double>(fa.cpu());
    samples.push_back(s);
    if (s.t >= warmup && s.fm_total_mem > 0) {
      mem_planned_pct.Add(100.0 * s.fm_planned_mem / s.fm_total_mem);
      mem_obtained_pct.Add(100.0 * s.am_obtained_mem / s.fm_total_mem);
      mem_fa_pct.Add(100.0 * s.fa_planned_mem / s.fm_total_mem);
      cpu_planned_pct.Add(100.0 * s.fm_planned_cpu / s.fm_total_cpu);
      cpu_obtained_pct.Add(100.0 * s.am_obtained_cpu / s.fm_total_cpu);
      cpu_fa_pct.Add(100.0 * s.fa_planned_cpu / s.fm_total_cpu);
    }
  }

  std::printf(
      "=== Figure 10: planned memory/CPU usage (%d machines, %d "
      "concurrent jobs) ===\n\n",
      scale.machines, scale.concurrent_jobs);
  std::printf(
      "t(s)    FM_total(TB) FM_planned(TB) AM_obtained(TB) FA_planned(TB)"
      "   cpu: planned%% obtained%% fa%%\n");
  const double kTB = 1024.0 * 1024.0;  // MB -> TB
  for (size_t i = 0; i < samples.size(); i += samples.size() / 20 + 1) {
    const Sample& s = samples[i];
    std::printf("%5.0f %12.2f %14.2f %15.2f %14.2f      %8.1f %9.1f %5.1f\n",
                s.t, s.fm_total_mem / kTB, s.fm_planned_mem / kTB,
                s.am_obtained_mem / kTB, s.fa_planned_mem / kTB,
                100.0 * s.fm_planned_cpu / s.fm_total_cpu,
                100.0 * s.am_obtained_cpu / s.fm_total_cpu,
                100.0 * s.fa_planned_cpu / s.fm_total_cpu);
  }
  std::printf("\n--- steady-state averages (after %.0f s warm-up) ---\n",
              warmup);
  std::printf("memory: FM_planned %5.1f%%  AM_obtained %5.1f%%  FA_planned "
              "%5.1f%%   (paper: 97.1 / 95.9 / 95.2)\n",
              mem_planned_pct.mean(), mem_obtained_pct.mean(),
              mem_fa_pct.mean());
  std::printf("cpu:    FM_planned %5.1f%%  AM_obtained %5.1f%%  FA_planned "
              "%5.1f%%   (paper: 92.3 /   -  / 91.3)\n",
              cpu_planned_pct.mean(), cpu_obtained_pct.mean(),
              cpu_fa_pct.mean());
  std::printf("jobs completed: %lld\n",
              static_cast<long long>(driver.jobs_completed()));
  return 0;
}
