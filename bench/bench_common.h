#ifndef FUXI_BENCH_BENCH_COMMON_H_
#define FUXI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "runtime/sim_cluster.h"
#include "runtime/synthetic_app.h"
#include "trace/workloads.h"

namespace fuxi::bench {

/// Scale of a benchmark run. Defaults keep each binary around a minute
/// on a laptop; FUXI_BENCH_FULL=1 switches to the paper's testbed
/// dimensions (5,000 machines / 1,000 concurrent jobs) — slow, but the
/// code path is identical.
struct BenchScale {
  int machines = 500;
  /// FuxiMaster fault domains; > 1 selects the federated cluster shape
  /// (see BenchClusterOptions) and stripes jobs over the shards.
  int shards = 1;
  // Keeps demand above supply so the queues never empty — the paper's
  // 1,000 jobs over 5,000 machines likewise oversubscribe the cluster.
  int concurrent_jobs = 450;
  double duration = 400;        ///< virtual seconds of steady state
  double instance_scale = 0.08; ///< scales the paper's instance counts
  double min_instance_seconds = 10;
  double max_instance_seconds = 120;

  static BenchScale FromEnv() {
    BenchScale scale;
    if (const char* full = std::getenv("FUXI_BENCH_FULL");
        full != nullptr && full[0] == '1') {
      scale.machines = 5000;
      scale.concurrent_jobs = 1000;
      scale.duration = 1800;
      scale.instance_scale = 1.0;
      scale.max_instance_seconds = 600;
    }
    return scale;
  }
};

/// Keeps `concurrent_jobs` synthetic WordCount/TeraSort applications
/// running against a simulated cluster: whenever one finishes, the next
/// job from the §5.2 mix is submitted — the experiment design of
/// Figures 9/10 ("we keep 1,000 jobs concurrently running by starting a
/// new job when one job finishes").
class WorkloadDriver {
 public:
  WorkloadDriver(runtime::SimCluster* cluster, const BenchScale& scale,
                 uint64_t seed)
      : cluster_(cluster), rng_(seed) {
    trace::SyntheticWorkloadOptions options;
    options.instance_scale = scale.instance_scale;
    options.min_instance_seconds = scale.min_instance_seconds;
    options.max_instance_seconds = scale.max_instance_seconds;
    workload_ =
        std::make_unique<trace::SyntheticWorkload>(seed + 1, options);
    concurrent_ = scale.concurrent_jobs;
  }

  void Start() {
    for (int i = 0; i < concurrent_; ++i) SubmitNext();
  }

  int64_t jobs_completed() const { return jobs_completed_; }
  const std::vector<std::unique_ptr<runtime::SyntheticApp>>& apps() const {
    return apps_;
  }

  /// Sum of resources the application masters believe they hold
  /// (AM_obtained).
  cluster::ResourceVector ObtainedResources() const {
    cluster::ResourceVector total;
    for (const auto& app : apps_) {
      if (app->master_running() && !app->finished()) {
        total += app->GrantedResources();
      }
    }
    return total;
  }

  uint64_t total_deltas_sent() const {
    uint64_t total = deltas_from_finished_;
    for (const auto& app : apps_) {
      if (app->client() != nullptr) total += app->client()->deltas_sent();
    }
    return total;
  }
  uint64_t total_full_syncs_sent() const {
    uint64_t total = full_syncs_from_finished_;
    for (const auto& app : apps_) {
      if (app->client() != nullptr) {
        total += app->client()->full_syncs_sent();
      }
    }
    return total;
  }

 private:
  void SubmitNext() {
    AppId app_id(next_app_id_++);
    auto stages = workload_->NextStages();
    auto app = std::make_unique<runtime::SyntheticApp>(
        cluster_, app_id, stages, rng_.Next());
    runtime::SyntheticApp* ptr = app.get();
    apps_.push_back(std::move(app));
    ptr->set_done_callback([this](runtime::SyntheticApp* done) {
      ++jobs_completed_;
      if (done->client() != nullptr) {
        deltas_from_finished_ += done->client()->deltas_sent();
        full_syncs_from_finished_ += done->client()->full_syncs_sent();
      }
      // Replacement job, scheduled from a fresh event to keep the
      // callback shallow.
      cluster_->sim().Schedule(0.001, [this] { SubmitNext(); });
    });
    master::FuxiMaster* primary = cluster_->primary();
    if (cluster_->shard_count() > 1) {
      // Federated ladder: each job belongs to its home shard and its
      // AM follows that shard's election lease.
      int home = static_cast<int>(app_id.value() % cluster_->shard_count());
      primary = cluster_->shard_primary(home);
      ptr->set_master_lock(cluster_->shard_lock(home));
    }
    if (primary != nullptr) {
      master::SubmitAppRpc submit;
      submit.app = app_id;
      submit.client = cluster_->AllocateNodeId();
      cluster_->network().Send(submit.client, primary->node(), submit);
    }
    ptr->MarkSubmitted(cluster_->sim().Now());
    ptr->StartMaster();
  }

  runtime::SimCluster* cluster_;
  Rng rng_;
  std::unique_ptr<trace::SyntheticWorkload> workload_;
  int concurrent_ = 0;
  int64_t next_app_id_ = 1;
  int64_t jobs_completed_ = 0;
  uint64_t deltas_from_finished_ = 0;
  uint64_t full_syncs_from_finished_ = 0;
  std::vector<std::unique_ptr<runtime::SyntheticApp>> apps_;
};

/// Builds the standard benchmark cluster (paper §5 testbed machines:
/// 12 cores / 96 GB).
inline runtime::SimClusterOptions BenchClusterOptions(int machines,
                                                      int shards = 1) {
  runtime::SimClusterOptions options;
  options.topology.machines_per_rack = 50;
  options.topology.racks = (machines + 49) / 50;
  // The paper's testbed: 2x 6-core Xeon E5-2430 with hyper-threading
  // (24 schedulable cores) and 96 GB of which ~88 GB is schedulable
  // (FM_total is 442 TB across 5,000 nodes). With 0.5-core/2 GB units
  // this makes MEMORY the binding dimension, as in Figure 10.
  options.topology.machine_capacity =
      cluster::ResourceVector(2400, 91 * 1024);
  if (shards > 1) {
    // Federated ladder (20k-100k machines): one master per shard — the
    // ladder measures scheduling latency, not failover — and a relaxed
    // agent heartbeat so the cluster-wide event rate stays
    // benchmark-sized at 100k machines.
    options.shards = shards;
    options.master_replicas = 1;
    options.agent.heartbeat_interval = 5.0;
  }
  return options;
}

}  // namespace fuxi::bench

#endif  // FUXI_BENCH_BENCH_COMMON_H_
