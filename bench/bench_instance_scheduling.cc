// Micro-benchmarks of the two scheduling layers (google-benchmark):
//
//  * TaskMaster instance scheduling — paper §4.4 reports "less than 3
//    seconds to schedule 100 thousand instances"; we measure the
//    dispatch path directly.
//  * FuxiMaster request scheduling — the data-structure cost behind
//    Figure 9's sub-millisecond averages: incremental request
//    placement and free-up rescheduling against thousands of machines.

#include <benchmark/benchmark.h>

#include "cluster/topology.h"
#include "job/job_master.h"
#include "obs/metrics_registry.h"
#include "resource/scheduler.h"

namespace {

using namespace fuxi;

// ----------------------------------------------------- instance layer

void BM_TaskMasterDispatch(benchmark::State& state) {
  int64_t instances = state.range(0);
  int64_t workers = state.range(1);
  for (auto _ : state) {
    state.PauseTiming();
    job::TaskConfig config;
    config.name = "t";
    config.instances = instances;
    config.max_workers = workers;
    job::TaskMaster task(config, 0);
    for (int64_t w = 0; w < workers; ++w) {
      task.AddWorker(WorkerId(w + 1), MachineId(w % 5000), NodeId(w), 0);
    }
    state.ResumeTiming();
    // Drive the scheduling loop: every pick is followed by an immediate
    // completion so all `instances` flow through the dispatcher.
    int64_t scheduled = 0;
    while (scheduled < instances) {
      for (int64_t w = 0; w < workers && scheduled < instances; ++w) {
        const job::TaskMaster::WorkerInfo& info =
            task.workers().find(WorkerId(w + 1))->second;
        int64_t id = task.PickInstanceFor(info);
        if (id < 0) break;
        task.MarkRunning(id, info.worker, 0.0, false);
        task.MarkDone(id, info.worker, 1.0);
        ++scheduled;
      }
    }
    benchmark::DoNotOptimize(scheduled);
  }
  state.SetItemsProcessed(state.iterations() * instances);
}
BENCHMARK(BM_TaskMasterDispatch)
    ->Args({10000, 500})
    ->Args({100000, 5000})  // the paper's "<3 s for 100k instances"
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------- resource layer

cluster::ClusterTopology* BigTopology() {
  static cluster::ClusterTopology* topo = [] {
    cluster::ClusterTopology::Options options;
    options.racks = 100;
    options.machines_per_rack = 50;  // 5,000 machines
    options.machine_capacity = cluster::ResourceVector(1200, 96 * 1024);
    return new cluster::ClusterTopology(
        cluster::ClusterTopology::Build(options));
  }();
  return topo;
}

/// One incremental request (10 units) placed against a busy 5,000
/// machine cluster — the Figure 9 unit of work.
void BM_SchedulerIncrementalRequest(benchmark::State& state) {
  cluster::ClusterTopology* topo = BigTopology();
  resource::Scheduler scheduler(topo);
  obs::MetricsRegistry metrics;
  scheduler.set_metrics(&metrics);
  // Background load: 200 apps holding most of the cluster.
  resource::SchedulingResult scratch;
  for (int64_t a = 1; a <= 200; ++a) {
    (void)scheduler.RegisterApp(AppId(a));
    resource::ResourceRequest request;
    request.app = AppId(a);
    resource::UnitRequestDelta unit;
    unit.slot_id = 0;
    unit.has_def = true;
    unit.def.slot_id = 0;
    unit.def.priority = 100;
    unit.def.resources = cluster::ResourceVector(50, 2048);
    unit.total_count_delta = 500;
    request.units.push_back(unit);
    (void)scheduler.ApplyRequest(request, &scratch);
    scratch.Clear();
  }
  (void)scheduler.RegisterApp(AppId(999));
  resource::UnitRequestDelta unit;
  unit.slot_id = 0;
  unit.has_def = true;
  unit.def.slot_id = 0;
  unit.def.priority = 100;
  unit.def.resources = cluster::ResourceVector(50, 2048);
  int64_t round = 0;
  for (auto _ : state) {
    resource::ResourceRequest request;
    request.app = AppId(999);
    unit.total_count_delta = 10;
    request.units.clear();
    request.units.push_back(unit);
    resource::SchedulingResult result;
    (void)scheduler.ApplyRequest(request, &result);
    // Return what we got so the next iteration sees the same state.
    for (const resource::Assignment& a : result.assignments) {
      resource::SchedulingResult r2;
      (void)scheduler.Release(AppId(999), 0, a.machine, a.count, &r2);
    }
    benchmark::DoNotOptimize(round += result.assignments.size());
  }
  // Surface the fast-path effectiveness next to the wall-clock numbers:
  // how many machine passes ran vs were skipped by the epoch check.
  state.counters["passes"] = static_cast<double>(
      metrics.GetCounter("sched.schedule_passes")->value());
  state.counters["passes_skipped"] = static_cast<double>(
      metrics.GetCounter("sched.passes_skipped")->value());
}
BENCHMARK(BM_SchedulerIncrementalRequest)->Unit(benchmark::kMicrosecond);

/// Resource free-up on one machine with deep waiting queues — the
/// locality-tree pass that must stay micro/millisecond fast.
void BM_SchedulerFreeUpPass(benchmark::State& state) {
  cluster::ClusterTopology* topo = BigTopology();
  resource::Scheduler scheduler(topo);
  obs::MetricsRegistry metrics;
  scheduler.set_metrics(&metrics);
  resource::SchedulingResult scratch;
  // Saturate the cluster, then queue 100 waiting apps.
  for (int64_t a = 1; a <= 300; ++a) {
    (void)scheduler.RegisterApp(AppId(a));
    resource::ResourceRequest request;
    request.app = AppId(a);
    resource::UnitRequestDelta unit;
    unit.slot_id = 0;
    unit.has_def = true;
    unit.def.slot_id = 0;
    unit.def.priority = static_cast<resource::Priority>(a % 7);
    unit.def.resources = cluster::ResourceVector(50, 2048);
    unit.total_count_delta = 800;
    request.units.push_back(unit);
    (void)scheduler.ApplyRequest(request, &scratch);
    scratch.Clear();
  }
  for (auto _ : state) {
    // App 1 returns a unit on machine 0; the scheduler immediately
    // re-grants it to the best waiting demand.
    resource::SchedulingResult result;
    MachineId machine(0);
    AppId holder;
    // Find any grant on machine 0 to release.
    for (int64_t a = 1; a <= 300 && !holder.valid(); ++a) {
      if (scheduler.GrantCount(AppId(a), 0, machine) > 0) {
        holder = AppId(a);
      }
    }
    if (!holder.valid()) break;
    (void)scheduler.Release(holder, 0, machine, 1, &result);
    benchmark::DoNotOptimize(result.assignments.size());
  }
  state.counters["passes"] = static_cast<double>(
      metrics.GetCounter("sched.schedule_passes")->value());
  state.counters["passes_skipped"] = static_cast<double>(
      metrics.GetCounter("sched.passes_skipped")->value());
}
BENCHMARK(BM_SchedulerFreeUpPass)->Unit(benchmark::kMicrosecond);

}  // namespace
