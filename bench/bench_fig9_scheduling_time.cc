// Reproduces Figure 9: FuxiMaster request scheduling time with the
// §5.2 synthetic workload (1,000 concurrent WordCount/TeraSort jobs on
// 5,000 machines in the paper; scaled by default — set FUXI_BENCH_FULL=1
// for paper dimensions).
//
// The scheduler code is real; each request's handling is timed with the
// wall clock while the surrounding cluster is simulated. Paper: average
// 0.88 ms per request, peaks < 3 ms.

#include <cstdio>

#include "bench_common.h"
#include "common/metrics.h"

int main() {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  bench::BenchScale scale = bench::BenchScale::FromEnv();

  runtime::SimCluster cluster(bench::BenchClusterOptions(scale.machines));
  cluster.Start();
  cluster.RunFor(2.0);
  master::FuxiMaster* primary = cluster.primary();
  FUXI_CHECK(primary != nullptr);
  primary->EnableDecisionTiming(true);

  bench::WorkloadDriver driver(&cluster, scale, 42);
  driver.Start();
  double t0 = cluster.sim().Now();

  // Sample the decision-time series in 10-virtual-second windows.
  TimeSeries series;
  size_t consumed = 0;
  while (cluster.sim().Now() - t0 < scale.duration) {
    cluster.RunFor(10.0);
    const std::vector<double>& samples = primary->decision_micros();
    Histogram window;
    for (size_t i = consumed; i < samples.size(); ++i) {
      window.Add(samples[i] / 1000.0);  // ms
    }
    consumed = samples.size();
    if (window.count() > 0) {
      series.Add(cluster.sim().Now() - t0, window.mean());
    }
  }

  Histogram all;
  for (double us : primary->decision_micros()) all.Add(us / 1000.0);

  std::printf(
      "=== Figure 9: FuxiMaster scheduling time (%d machines, %d "
      "concurrent jobs, %.0f s) ===\n",
      scale.machines, scale.concurrent_jobs, scale.duration);
  std::printf("jobs completed during the window: %lld\n",
              static_cast<long long>(driver.jobs_completed()));
  std::printf("requests scheduled: %llu\n",
              static_cast<unsigned long long>(all.count()));
  std::printf("\ntime(s)  mean scheduling time per window (ms)\n");
  for (const TimeSeries::Point& p : series.Downsample(30).points()) {
    std::printf("%7.0f  %.4f\n", p.time, p.value);
  }
  std::printf("\nper-request scheduling time (ms): %s\n",
              all.Summary().c_str());
  std::printf(
      "paper: average 0.88 ms, peak < 3 ms on 5,000 machines / 1,000 "
      "jobs\n");
  return 0;
}
