// Reproduces Figure 9: FuxiMaster request scheduling time with the
// §5.2 synthetic workload (1,000 concurrent WordCount/TeraSort jobs on
// 5,000 machines in the paper; scaled by default — set FUXI_BENCH_FULL=1
// for paper dimensions).
//
// The scheduler code is real; each request's handling is timed with the
// wall clock while the surrounding cluster is simulated. Paper: average
// 0.88 ms per request, peaks < 3 ms.
//
//   bench_fig9_scheduling_time               # single point, env-scaled
//   bench_fig9_scheduling_time --ladder      # cluster-size ladder
//   bench_fig9_scheduling_time --ladder --sharded
//                     # federated ladder: 20k/50k machines over 8/16
//                     # shard masters (100k/32 with FUXI_BENCH_FULL=1),
//                     # per-request times merged across shard primaries
//   bench_fig9_scheduling_time --smoke       # one short point (CI guard)
//   bench_fig9_scheduling_time --json PATH   # where to write the report
//
// Every mode writes a machine-readable BENCH_fig9.json (p50/p99 per
// cluster size); scripts/check_fig9_regression.py compares such a
// report against bench/baselines/BENCH_fig9.json and fails on >2x
// regression — the CI smoke step that guards the incremental-scheduling
// fast path.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/metrics.h"

namespace {

using namespace fuxi;

struct PointResult {
  bench::BenchScale scale;
  uint64_t requests = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  uint64_t schedule_passes = 0;
  uint64_t passes_skipped = 0;
};

/// Runs one cluster size and collects the per-request decision-time
/// distribution. The first half of the run is warm-up (queues deepen
/// until demand saturates supply); percentiles are computed over the
/// steady-state second half only. `print_series` additionally prints
/// the Figure 9 style windowed time series (single-point mode only).
PointResult RunPoint(const bench::BenchScale& scale, bool print_series) {
  runtime::SimCluster cluster(
      bench::BenchClusterOptions(scale.machines, scale.shards));
  cluster.Start();
  cluster.RunFor(2.0);
  // In the federated ladder every shard primary schedules its own
  // machines; the request-time distribution merges all of them.
  std::vector<master::FuxiMaster*> primaries;
  for (int k = 0; k < cluster.shard_count(); ++k) {
    master::FuxiMaster* primary = cluster.shard_primary(k);
    FUXI_CHECK(primary != nullptr);
    primary->EnableDecisionTiming(true);
    primaries.push_back(primary);
  }

  bench::WorkloadDriver driver(&cluster, scale, 42);
  driver.Start();
  double t0 = cluster.sim().Now();

  // Sample the decision-time series in 10-virtual-second windows.
  TimeSeries series;
  std::vector<size_t> consumed(primaries.size(), 0);
  std::vector<size_t> steady_from(primaries.size(), 0);
  while (cluster.sim().Now() - t0 < scale.duration) {
    cluster.RunFor(10.0);
    Histogram window;
    for (size_t p = 0; p < primaries.size(); ++p) {
      const std::vector<double>& samples = primaries[p]->decision_micros();
      for (size_t i = consumed[p]; i < samples.size(); ++i) {
        window.Add(samples[i] / 1000.0);  // ms
      }
      consumed[p] = samples.size();
      if (cluster.sim().Now() - t0 <= scale.duration / 2) {
        steady_from[p] = samples.size();
      }
    }
    if (window.count() > 0) {
      series.Add(cluster.sim().Now() - t0, window.mean());
    }
  }

  Histogram all;
  PointResult point;
  for (size_t p = 0; p < primaries.size(); ++p) {
    const std::vector<double>& samples = primaries[p]->decision_micros();
    for (size_t i = steady_from[p]; i < samples.size(); ++i) {
      all.Add(samples[i] / 1000.0);
    }
    point.schedule_passes += primaries[p]->scheduler()->scheduling_passes();
    point.passes_skipped += primaries[p]->scheduler()->passes_skipped();
  }

  point.scale = scale;
  point.requests = all.count();
  point.mean_ms = all.mean();
  point.p50_ms = all.Percentile(50);
  point.p95_ms = all.Percentile(95);
  point.p99_ms = all.Percentile(99);
  point.max_ms = all.max();

  std::printf(
      "machines=%d shards=%d jobs=%d duration=%.0fs: requests=%llu "
      "mean=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f ms (passes=%llu "
      "skipped=%llu)\n",
      scale.machines, scale.shards, scale.concurrent_jobs, scale.duration,
      static_cast<unsigned long long>(point.requests), point.mean_ms,
      point.p50_ms, point.p95_ms, point.p99_ms, point.max_ms,
      static_cast<unsigned long long>(point.schedule_passes),
      static_cast<unsigned long long>(point.passes_skipped));
  if (print_series) {
    std::printf("jobs completed during the window: %lld\n",
                static_cast<long long>(driver.jobs_completed()));
    std::printf("\ntime(s)  mean scheduling time per window (ms)\n");
    for (const TimeSeries::Point& p : series.Downsample(30).points()) {
      std::printf("%7.0f  %.4f\n", p.time, p.value);
    }
    std::printf("\nper-request scheduling time (ms): %s\n",
                all.Summary().c_str());
  }
  return point;
}

Json ToJson(const std::vector<PointResult>& points, const char* mode) {
  Json report = Json::MakeObject();
  report["bench"] = "fig9_scheduling_time";
  report["mode"] = mode;
  report["workload"] = "synthetic WordCount/TeraSort mix, seed 42";
  Json array = Json::MakeArray();
  for (const PointResult& p : points) {
    Json entry = Json::MakeObject();
    entry["machines"] = p.scale.machines;
    entry["shards"] = p.scale.shards;
    entry["concurrent_jobs"] = p.scale.concurrent_jobs;
    entry["duration_s"] = p.scale.duration;
    entry["requests"] = p.requests;
    entry["mean_ms"] = p.mean_ms;
    entry["p50_ms"] = p.p50_ms;
    entry["p95_ms"] = p.p95_ms;
    entry["p99_ms"] = p.p99_ms;
    entry["max_ms"] = p.max_ms;
    entry["schedule_passes"] = p.schedule_passes;
    entry["passes_skipped"] = p.passes_skipped;
    array.Append(std::move(entry));
  }
  report["points"] = std::move(array);
  return report;
}

/// Short-duration points so the full ladder (including the paper's
/// 5,000-machine size) stays runnable in CI-class time budgets.
std::vector<bench::BenchScale> LadderScales() {
  std::vector<bench::BenchScale> scales;
  struct Shape {
    int machines;
    int jobs;
    double duration;
  };
  for (const Shape& shape : std::vector<Shape>{{500, 450, 120},
                                               {1000, 600, 90},
                                               {2000, 800, 70},
                                               {5000, 1000, 60}}) {
    bench::BenchScale scale;
    scale.machines = shape.machines;
    scale.concurrent_jobs = shape.jobs;
    scale.duration = shape.duration;
    scales.push_back(scale);
  }
  return scales;
}

/// The federated ladder: cluster sizes past any single FuxiMaster,
/// partitioned into shards of ~2,500-3,200 machines. The 100k point is
/// paper-scale-and-beyond and only runs under FUXI_BENCH_FULL=1.
std::vector<bench::BenchScale> ShardedLadderScales() {
  std::vector<bench::BenchScale> scales;
  struct Shape {
    int machines;
    int shards;
    int jobs;
    double duration;
  };
  std::vector<Shape> shapes{{20000, 8, 1200, 40}, {50000, 16, 1500, 30}};
  if (const char* full = std::getenv("FUXI_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    shapes.push_back({100000, 32, 2000, 30});
  }
  for (const Shape& shape : shapes) {
    bench::BenchScale scale;
    scale.machines = shape.machines;
    scale.shards = shape.shards;
    scale.concurrent_jobs = shape.jobs;
    scale.duration = shape.duration;
    scales.push_back(scale);
  }
  return scales;
}

std::vector<bench::BenchScale> SmokeScales() {
  bench::BenchScale scale;
  scale.machines = 500;
  scale.concurrent_jobs = 450;
  scale.duration = 60;
  return {scale};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);

  const char* mode = "single";
  bool sharded = false;
  std::string json_path = "BENCH_fig9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ladder") == 0) {
      mode = "ladder";
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      mode = "smoke";
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ladder [--sharded]|--smoke] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<bench::BenchScale> scales;
  bool print_series = false;
  if (std::strcmp(mode, "ladder") == 0) {
    scales = sharded ? ShardedLadderScales() : LadderScales();
    if (sharded) mode = "ladder-sharded";
  } else if (std::strcmp(mode, "smoke") == 0) {
    scales = SmokeScales();
  } else {
    scales = {bench::BenchScale::FromEnv()};
    print_series = true;
  }

  std::printf("=== Figure 9: FuxiMaster scheduling time (%s) ===\n", mode);
  std::vector<PointResult> points;
  for (const bench::BenchScale& scale : scales) {
    points.push_back(RunPoint(scale, print_series));
  }
  std::printf(
      "paper: average 0.88 ms, peak < 3 ms on 5,000 machines / 1,000 "
      "jobs\n");

  std::ofstream out(json_path, std::ios::binary);
  out << ToJson(points, mode).Pretty() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("report written to %s\n", json_path.c_str());
  return 0;
}
