// Reproduces Figure 9: FuxiMaster request scheduling time with the
// §5.2 synthetic workload (1,000 concurrent WordCount/TeraSort jobs on
// 5,000 machines in the paper; scaled by default — set FUXI_BENCH_FULL=1
// for paper dimensions).
//
// The scheduler code is real; each request's handling is timed with the
// wall clock while the surrounding cluster is simulated. Paper: average
// 0.88 ms per request, peaks < 3 ms.
//
//   bench_fig9_scheduling_time               # single point, env-scaled
//   bench_fig9_scheduling_time --ladder      # cluster-size ladder
//   bench_fig9_scheduling_time --smoke       # one short point (CI guard)
//   bench_fig9_scheduling_time --json PATH   # where to write the report
//
// Every mode writes a machine-readable BENCH_fig9.json (p50/p99 per
// cluster size); scripts/check_fig9_regression.py compares such a
// report against bench/baselines/BENCH_fig9.json and fails on >2x
// regression — the CI smoke step that guards the incremental-scheduling
// fast path.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/metrics.h"

namespace {

using namespace fuxi;

struct PointResult {
  bench::BenchScale scale;
  uint64_t requests = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  uint64_t schedule_passes = 0;
  uint64_t passes_skipped = 0;
};

/// Runs one cluster size and collects the per-request decision-time
/// distribution. The first half of the run is warm-up (queues deepen
/// until demand saturates supply); percentiles are computed over the
/// steady-state second half only. `print_series` additionally prints
/// the Figure 9 style windowed time series (single-point mode only).
PointResult RunPoint(const bench::BenchScale& scale, bool print_series) {
  runtime::SimCluster cluster(bench::BenchClusterOptions(scale.machines));
  cluster.Start();
  cluster.RunFor(2.0);
  master::FuxiMaster* primary = cluster.primary();
  FUXI_CHECK(primary != nullptr);
  primary->EnableDecisionTiming(true);

  bench::WorkloadDriver driver(&cluster, scale, 42);
  driver.Start();
  double t0 = cluster.sim().Now();

  // Sample the decision-time series in 10-virtual-second windows.
  TimeSeries series;
  size_t consumed = 0;
  size_t steady_from = 0;
  while (cluster.sim().Now() - t0 < scale.duration) {
    cluster.RunFor(10.0);
    const std::vector<double>& samples = primary->decision_micros();
    Histogram window;
    for (size_t i = consumed; i < samples.size(); ++i) {
      window.Add(samples[i] / 1000.0);  // ms
    }
    consumed = samples.size();
    if (cluster.sim().Now() - t0 <= scale.duration / 2) {
      steady_from = samples.size();
    }
    if (window.count() > 0) {
      series.Add(cluster.sim().Now() - t0, window.mean());
    }
  }

  Histogram all;
  const std::vector<double>& samples = primary->decision_micros();
  for (size_t i = steady_from; i < samples.size(); ++i) {
    all.Add(samples[i] / 1000.0);
  }

  PointResult point;
  point.scale = scale;
  point.requests = all.count();
  point.mean_ms = all.mean();
  point.p50_ms = all.Percentile(50);
  point.p95_ms = all.Percentile(95);
  point.p99_ms = all.Percentile(99);
  point.max_ms = all.max();
  point.schedule_passes = primary->scheduler()->scheduling_passes();
  point.passes_skipped = primary->scheduler()->passes_skipped();

  std::printf(
      "machines=%d jobs=%d duration=%.0fs: requests=%llu mean=%.4f "
      "p50=%.4f p95=%.4f p99=%.4f max=%.4f ms (passes=%llu skipped=%llu)\n",
      scale.machines, scale.concurrent_jobs, scale.duration,
      static_cast<unsigned long long>(point.requests), point.mean_ms,
      point.p50_ms, point.p95_ms, point.p99_ms, point.max_ms,
      static_cast<unsigned long long>(point.schedule_passes),
      static_cast<unsigned long long>(point.passes_skipped));
  if (print_series) {
    std::printf("jobs completed during the window: %lld\n",
                static_cast<long long>(driver.jobs_completed()));
    std::printf("\ntime(s)  mean scheduling time per window (ms)\n");
    for (const TimeSeries::Point& p : series.Downsample(30).points()) {
      std::printf("%7.0f  %.4f\n", p.time, p.value);
    }
    std::printf("\nper-request scheduling time (ms): %s\n",
                all.Summary().c_str());
  }
  return point;
}

Json ToJson(const std::vector<PointResult>& points, const char* mode) {
  Json report = Json::MakeObject();
  report["bench"] = "fig9_scheduling_time";
  report["mode"] = mode;
  report["workload"] = "synthetic WordCount/TeraSort mix, seed 42";
  Json array = Json::MakeArray();
  for (const PointResult& p : points) {
    Json entry = Json::MakeObject();
    entry["machines"] = p.scale.machines;
    entry["concurrent_jobs"] = p.scale.concurrent_jobs;
    entry["duration_s"] = p.scale.duration;
    entry["requests"] = p.requests;
    entry["mean_ms"] = p.mean_ms;
    entry["p50_ms"] = p.p50_ms;
    entry["p95_ms"] = p.p95_ms;
    entry["p99_ms"] = p.p99_ms;
    entry["max_ms"] = p.max_ms;
    entry["schedule_passes"] = p.schedule_passes;
    entry["passes_skipped"] = p.passes_skipped;
    array.Append(std::move(entry));
  }
  report["points"] = std::move(array);
  return report;
}

/// Short-duration points so the full ladder (including the paper's
/// 5,000-machine size) stays runnable in CI-class time budgets.
std::vector<bench::BenchScale> LadderScales() {
  std::vector<bench::BenchScale> scales;
  struct Shape {
    int machines;
    int jobs;
    double duration;
  };
  for (const Shape& shape : std::vector<Shape>{{500, 450, 120},
                                               {1000, 600, 90},
                                               {2000, 800, 70},
                                               {5000, 1000, 60}}) {
    bench::BenchScale scale;
    scale.machines = shape.machines;
    scale.concurrent_jobs = shape.jobs;
    scale.duration = shape.duration;
    scales.push_back(scale);
  }
  return scales;
}

std::vector<bench::BenchScale> SmokeScales() {
  bench::BenchScale scale;
  scale.machines = 500;
  scale.concurrent_jobs = 450;
  scale.duration = 60;
  return {scale};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);

  const char* mode = "single";
  std::string json_path = "BENCH_fig9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ladder") == 0) {
      mode = "ladder";
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      mode = "smoke";
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--ladder|--smoke] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<bench::BenchScale> scales;
  bool print_series = false;
  if (std::strcmp(mode, "ladder") == 0) {
    scales = LadderScales();
  } else if (std::strcmp(mode, "smoke") == 0) {
    scales = SmokeScales();
  } else {
    scales = {bench::BenchScale::FromEnv()};
    print_series = true;
  }

  std::printf("=== Figure 9: FuxiMaster scheduling time (%s) ===\n", mode);
  std::vector<PointResult> points;
  for (const bench::BenchScale& scale : scales) {
    points.push_back(RunPoint(scale, print_series));
  }
  std::printf(
      "paper: average 0.88 ms, peak < 3 ms on 5,000 machines / 1,000 "
      "jobs\n");

  std::ofstream out(json_path, std::ios::binary);
  out << ToJson(points, mode).Pretty() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("report written to %s\n", json_path.c_str());
  return 0;
}
