// Reproduces Table 4 (GraySort) and the §5.3 PetaSort data point. The
// simulated hardware matches the paper's testbed (12 cores / 96 GB /
// 12x2 TB disks / 2x GbE per node); the data plane is modelled, so we
// reproduce the *shape*: Fuxi's throughput advantage over a
// Hadoop/YARN-like execution model (no container reuse, no locality) on
// identical hardware, and near-linear scaling toward the paper's
// 2.364 TB/min at 5,000 nodes.
//
// Paper: Fuxi 100 TB in 2,538 s (2.364 TB/min); Yahoo! Hadoop
// 102.5 TB in 4,328 s (1.42 TB/min) -> Fuxi +66.5%.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "job/job_runtime.h"
#include "sort/graysort.h"

namespace {

using namespace fuxi;

sort::GraySortReport RunOne(int machines, int64_t data_bytes, bool fuxi_mode,
                            double deadline) {
  runtime::SimClusterOptions options = bench::BenchClusterOptions(machines);
  options.agent.worker_start_seconds = 11.0;  // 400 MB worker package
  runtime::SimCluster cluster(options);
  job::JobMasterOptions job_options;
  job_options.reuse_containers = fuxi_mode;
  job_options.use_locality = fuxi_mode;
  job::JobRuntime runtime(&cluster, job_options);
  cluster.Start();
  cluster.RunFor(2.0);

  sort::GraySortConfig config;
  config.data_bytes = data_bytes;
  config.map_bytes_per_instance = 512LL << 20;
  config.workers_per_machine = 6;
  config.container_reuse = fuxi_mode;
  config.locality = fuxi_mode;
  auto report = sort::RunGraySort(&cluster, &runtime, config, deadline);
  FUXI_CHECK(report.ok()) << report.status();
  return *report;
}

}  // namespace

int main() {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  bool full = std::getenv("FUXI_BENCH_FULL") != nullptr &&
              std::getenv("FUXI_BENCH_FULL")[0] == '1';
  // Scaled run: 20 TB over 250 nodes keeps the per-node data volume
  // (80 GB/node) in the paper's regime (100 TB over 5,000 = 20 GB/node
  // at 4x our default density).
  int machines = full ? 5000 : 250;
  int64_t data = full ? 100LL * 1000 * 1000 * 1000 * 1000  // 100 TB
                      : 20LL * 1000 * 1000 * 1000 * 1000;  // 20 TB

  std::printf("=== Table 4: GraySort (%d nodes, %.0f TB) ===\n\n", machines,
              static_cast<double>(data) / 1e12);
  sort::GraySortReport fuxi_run = RunOne(machines, data, true, 100000);
  sort::GraySortReport hadoop_run = RunOne(machines, data, false, 200000);

  std::printf("%-28s %10s %12s %10s %10s\n", "system", "elapsed",
              "TB/min", "workers", "finished");
  std::printf("%-28s %9.0fs %12.3f %10lld %10s\n",
              "Fuxi (reuse+locality)", fuxi_run.elapsed_seconds,
              fuxi_run.tb_per_minute,
              static_cast<long long>(fuxi_run.workers_started),
              fuxi_run.finished ? "yes" : "NO");
  std::printf("%-28s %9.0fs %12.3f %10lld %10s\n",
              "Hadoop/YARN-like baseline", hadoop_run.elapsed_seconds,
              hadoop_run.tb_per_minute,
              static_cast<long long>(hadoop_run.workers_started),
              hadoop_run.finished ? "yes" : "NO");
  if (hadoop_run.tb_per_minute > 0) {
    std::printf("\nFuxi advantage: %+.1f%%   (paper: +66.5%% over Yahoo's "
                "Hadoop record)\n",
                100.0 * (fuxi_run.tb_per_minute / hadoop_run.tb_per_minute -
                         1.0));
  }
  std::printf("paper absolute: Fuxi 2.364 TB/min, Hadoop 1.42 TB/min "
              "(real hardware; our data plane is a model)\n");

  // §5.3 PetaSort shape: 1 PB on 2,800 nodes in ~6 hours.
  if (full) {
    sort::GraySortReport peta =
        RunOne(2800, 1000LL * 1000 * 1000 * 1000 * 1000, true, 400000);
    std::printf("\nPetaSort: 1 PB on 2,800 nodes: %.0f s (%.2f h; paper "
                "~6 h)\n",
                peta.elapsed_seconds, peta.elapsed_seconds / 3600.0);
  } else {
    std::printf("\n(set FUXI_BENCH_FULL=1 for the 5,000-node 100 TB run "
                "and the 1 PB PetaSort)\n");
  }
  return 0;
}
