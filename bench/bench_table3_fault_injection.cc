// Reproduces Table 3 / §5.4: fault-injection overhead on a 300-node
// cluster. The same GraySort-shaped job runs (a) fault-free, (b) under
// the 5% mix (2 NodeDown + 2 PartialWorkerFailure + 11 SlowMachine),
// (c) under the 10% mix (2 + 4 + 23), and (d) 5% plus a FuxiMaster
// kill.
//
// Paper: normal 1,437 s -> 1,662 s at 5% (+15.7%) -> 1,762 s at 10%
// (+19.6%); the extra master kill costs only ~13 s more.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "job/job_runtime.h"
#include "trace/workloads.h"

namespace {

using namespace fuxi;

struct RunResult {
  double elapsed = 0;
  int64_t backups = 0;
  int64_t failures = 0;
  bool finished = false;
};

/// The workload of the §5.4 runs: a two-phase sort-like job big enough
/// that every machine stays busy for hundreds of virtual seconds.
job::JobDescription FaultWorkload(int machines) {
  job::JobDescription desc;
  desc.name = "fault-injection-sort";
  job::TaskConfig map;
  map.name = "map";
  map.instances = machines * 48;
  map.max_workers = machines * 4;
  map.unit = cluster::ResourceVector(200, 12 * 1024);
  map.instance_seconds = 40;
  map.backup_normal_seconds = 120;
  job::TaskConfig reduce;
  reduce.name = "reduce";
  reduce.instances = machines * 16;
  reduce.max_workers = machines * 4;
  reduce.unit = cluster::ResourceVector(200, 12 * 1024);
  reduce.instance_seconds = 60;
  reduce.backup_normal_seconds = 180;
  desc.tasks = {map, reduce};
  desc.pipes.push_back({"map", "reduce", ""});
  return desc;
}

RunResult RunScenario(int machines, double fault_ratio, bool kill_master,
                      uint64_t seed) {
  runtime::SimCluster cluster(bench::BenchClusterOptions(machines));
  job::JobRuntime runtime(&cluster);
  cluster.Start();
  cluster.RunFor(2.0);

  auto job = runtime.Submit(FaultWorkload(machines));
  FUXI_CHECK(job.ok()) << job.status();
  double start = cluster.sim().Now();

  if (fault_ratio > 0) {
    trace::FaultPlan plan = trace::MakeFaultPlan(
        fault_ratio, static_cast<size_t>(machines), seed);
    // Spread the injections over the first half of the expected run.
    double at = 30;
    for (MachineId m : plan.node_down) {
      cluster.sim().Schedule(at, [&cluster, m] { cluster.HaltMachine(m); });
      at += 25;
    }
    for (MachineId m : plan.partial_worker_failure) {
      // Disk corrupted: processes cannot be (re)launched and running
      // ones keep dying.
      cluster.sim().Schedule(at, [&cluster, m] {
        for (const agent::Process* p : cluster.host(m)->Alive()) {
          cluster.agent(m)->InjectWorkerCrash(p->id);
        }
        cluster.SetMachineHealth(m, 0.1);  // plugin sees the sick disk
      });
      at += 25;
    }
    for (MachineId m : plan.slow_machine) {
      cluster.sim().Schedule(at, [&cluster, m] {
        cluster.SetMachineSlowdown(m, 3.0);
      });
      at += 10;
    }
  }
  if (kill_master) {
    cluster.sim().Schedule(200, [&cluster] { cluster.KillPrimaryMaster(); });
  }

  RunResult result;
  result.finished = runtime.RunUntilAllFinished(start + 30000);
  result.elapsed =
      ((*job)->finished() ? (*job)->stats().finished_at
                          : cluster.sim().Now()) -
      start;
  result.backups = (*job)->stats().backups_launched;
  result.failures = (*job)->stats().instance_failures;
  return result;
}

}  // namespace

int main() {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  bool full = std::getenv("FUXI_BENCH_FULL") != nullptr &&
              std::getenv("FUXI_BENCH_FULL")[0] == '1';
  int machines = full ? 300 : 100;

  std::printf("=== Table 3 / §5.4: fault-injection overhead (%d nodes) "
              "===\n\n",
              machines);
  RunResult normal = RunScenario(machines, 0.0, false, 1);
  RunResult five = RunScenario(machines, 0.05, false, 2);
  RunResult ten = RunScenario(machines, 0.10, false, 3);
  RunResult five_master = RunScenario(machines, 0.05, true, 2);

  auto row = [&](const char* name, const RunResult& r,
                 const char* paper) {
    double overhead =
        normal.elapsed > 0
            ? 100.0 * (r.elapsed - normal.elapsed) / normal.elapsed
            : 0;
    std::printf("%-28s %9.0fs %8.1f%% %9lld %9lld %5s   %s\n", name,
                r.elapsed, overhead, static_cast<long long>(r.backups),
                static_cast<long long>(r.failures),
                r.finished ? "yes" : "NO", paper);
  };
  std::printf("%-28s %10s %9s %9s %9s %5s   %s\n", "scenario", "elapsed",
              "overhead", "backups", "failures", "done", "paper");
  row("no faults", normal, "1437s baseline");
  row("5% faults", five, "1662s (+15.7%)");
  row("10% faults", ten, "1762s (+19.6%)");
  row("5% + FuxiMaster kill", five_master, "+~13s vs 5%");
  std::printf("\nmaster-kill extra vs 5%%: %+.0fs (paper: ~13s)\n",
              five_master.elapsed - five.elapsed);
  return 0;
}
