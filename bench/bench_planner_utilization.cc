// fuxi::planner utilization bench: the same deterministic trace —
// periodic LARGE all-or-nothing jobs (full-machine units, half the
// cluster each) competing with a steady stream of small estimated jobs
// — driven twice through the scheduler:
//
//   greedy   — no planning hints: the instantaneous pass only. Small
//              jobs keep every machine partially busy, so a
//              full-machine unit can start only when an entire machine
//              happens to drain by accident; the large jobs crawl.
//   planner  — lifetime estimates + gang hints: the blocked large
//              demand books an earliest-start reservation, EASY
//              backfill admits only small jobs that provably finish
//              before it, and the gang starts all-or-nothing.
//
// Reported per mode: makespan, time-integrated cpu utilization up to
// the makespan, and the large jobs' full-allocation waits (p50 / p99).
// The planner must win on BOTH axes: the same total work finishes
// sooner (higher utilization over the busy horizon) and the large jobs
// stop starving (lower p99 wait).
//
// Usage: bench_planner_utilization [--machines N] [--large N] [--seed S]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "planner/planner.h"
#include "resource/scheduler.h"
#include "sim/simulator.h"

namespace fuxi {
namespace {

struct TraceJob {
  double arrival = 0;
  int64_t units = 0;
  int64_t cpu = 0;
  int64_t mem = 0;
  double duration = 0;
  bool large = false;
};

struct RunStats {
  double makespan = 0;
  double cpu_utilization = 0;  ///< busy cpu-seconds / (capacity * makespan)
  std::vector<double> large_waits;
};

/// The shared trace: `large` gangs of full-machine units arriving every
/// 50s, plus a 1-per-second stream of small estimated jobs for the
/// first 150s. Identical for both modes — only the hints differ.
std::vector<TraceJob> BuildTrace(int machines, int large_jobs,
                                 uint64_t seed) {
  std::vector<TraceJob> jobs;
  for (int i = 0; i < large_jobs; ++i) {
    TraceJob job;
    job.arrival = 10.0 + 50.0 * i;
    job.units = machines / 2;
    job.cpu = 400;
    job.mem = 8192;
    job.duration = 30.0;
    job.large = true;
    jobs.push_back(job);
  }
  // The small stream outlives the last large arrival by a wide margin
  // and keeps every machine partially busy — under greedy scheduling a
  // full-machine unit can start only when a machine drains by luck.
  Rng rng(seed);
  for (int t = 0; t < 250; ++t) {
    for (int k = 0; k < 2; ++k) {
      TraceJob job;
      job.arrival = static_cast<double>(t) + 0.5 * k;
      job.units = 3 + static_cast<int64_t>(rng.Uniform(3));
      job.cpu = 100;
      job.mem = 1024;
      job.duration = 5.0 + rng.NextDouble() * 10.0;
      jobs.push_back(job);
    }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const TraceJob& a, const TraceJob& b) {
              return a.arrival < b.arrival;
            });
  return jobs;
}

RunStats RunTrace(const std::vector<TraceJob>& trace, int machines,
                  bool planned, obs::MetricsRegistry* metrics) {
  cluster::ClusterTopology::Options options;
  options.racks = 4;
  options.machines_per_rack = machines / 4;
  options.machine_capacity = cluster::ResourceVector(400, 8192);
  cluster::ClusterTopology topo = cluster::ClusterTopology::Build(options);
  resource::Scheduler scheduler(&topo);
  if (metrics != nullptr) scheduler.set_metrics(metrics);

  // FUXI_BENCH_AUDIT=<path>: export the planned run's decision-audit
  // dump for fuxi_explain (e.g. `fuxi_explain dump.json --timeline 3`
  // renders machine 3's planner reservation future). The bench owns
  // the audit clock; RunUntil() on an empty queue just advances it, so
  // records are stamped with the trace's virtual time.
  sim::Simulator audit_clock;
  obs::AuditLog audit(&audit_clock, nullptr, /*capacity=*/1 << 16);
  const char* audit_path = std::getenv("FUXI_BENCH_AUDIT");
  if (planned && audit_path != nullptr) scheduler.set_audit(&audit);

  struct Ending {
    double at;
    AppId app;
    uint32_t slot;
    MachineId machine;
    int64_t count;
  };
  struct LargeTracker {
    AppId app;
    double arrival = 0;
    int64_t wanted = 0;
    int64_t granted = 0;
    double full_at = -1;
  };
  std::vector<Ending> endings;
  std::vector<LargeTracker> larges;
  std::vector<const TraceJob*> durations;  // indexed by app id - 1

  double busy_cpu_seconds = 0;
  double last_sample = 0;
  double now = 0;
  size_t next_job = 0;
  const double kDt = 0.5;

  auto absorb = [&](const resource::SchedulingResult& result) {
    for (const resource::Assignment& a : result.assignments) {
      const TraceJob* job = durations[a.app.value() - 1];
      endings.push_back(
          Ending{now + job->duration, a.app, a.slot_id, a.machine, a.count});
      for (LargeTracker& lt : larges) {
        if (lt.app == a.app) {
          lt.granted += a.count;
          if (lt.granted >= lt.wanted && lt.full_at < 0) lt.full_at = now;
        }
      }
    }
    // Preemption: the higher-priority large jobs may revoke small
    // grants. Revoked units go back to waiting and are re-granted
    // later (their work restarts, scheduling a fresh ending).
    for (const resource::Revocation& r : result.revocations) {
      // kAppRelease revocations are the echo of this bench's own
      // Release calls (the completion path) — already accounted.
      if (r.reason == resource::RevocationReason::kAppRelease) continue;
      int64_t remaining = r.count;
      for (Ending& e : endings) {
        if (remaining == 0) break;
        if (e.app == r.app && e.slot == r.slot_id &&
            e.machine == r.machine) {
          int64_t take = std::min(e.count, remaining);
          e.count -= take;
          remaining -= take;
        }
      }
      for (LargeTracker& lt : larges) {
        if (lt.app == r.app) lt.granted -= r.count;
      }
      endings.erase(std::remove_if(endings.begin(), endings.end(),
                                   [](const Ending& e) {
                                     return e.count == 0;
                                   }),
                    endings.end());
    }
  };

  while (next_job < trace.size() || !endings.empty()) {
    audit_clock.RunUntil(now);
    // Arrivals.
    while (next_job < trace.size() && trace[next_job].arrival <= now) {
      const TraceJob& job = trace[next_job];
      AppId app(static_cast<uint64_t>(durations.size()) + 1);
      durations.push_back(&job);
      FUXI_CHECK(scheduler.RegisterApp(app).ok());
      resource::UnitRequestDelta delta;
      delta.slot_id = 0;
      delta.has_def = true;
      delta.def.slot_id = 0;
      delta.def.priority = job.large ? 50 : 100;
      delta.def.resources = cluster::ResourceVector(job.cpu, job.mem);
      delta.total_count_delta = job.units;
      if (planned) {
        delta.has_plan = true;
        delta.plan.estimated_seconds = job.duration;
        if (job.large) {
          delta.plan.gang_id = app.value();
          delta.plan.gang_size = 1;
        }
      }
      if (job.large) {
        larges.push_back(LargeTracker{app, now, job.units, 0, -1});
      }
      resource::ResourceRequest request;
      request.app = app;
      request.units.push_back(delta);
      resource::SchedulingResult result;
      FUXI_CHECK(scheduler.ApplyRequest(request, &result).ok());
      absorb(result);
      ++next_job;
    }
    // Completions.
    for (size_t i = 0; i < endings.size();) {
      if (endings[i].at <= now) {
        Ending e = endings[i];
        endings.erase(endings.begin() + static_cast<std::ptrdiff_t>(i));
        resource::SchedulingResult result;
        FUXI_CHECK(scheduler
                       .Release(e.app, e.slot, e.machine, e.count, &result)
                       .ok());
        absorb(result);
      } else {
        ++i;
      }
    }
    // The planner pass (reservation conversion, gang starts, expiry).
    if (planned) {
      resource::SchedulingResult result;
      scheduler.PlannerTick(now, &result);
      absorb(result);
    }
    if (planned && std::getenv("FUXI_BENCH_DEBUG") != nullptr &&
        now - std::floor(now / 10.0) * 10.0 < kDt / 2) {
      for (const LargeTracker& lt : larges) {
        if (lt.full_at >= 0) continue;
        std::printf("t=%.0f app=%lu granted=%ld/%ld", now,
                    static_cast<unsigned long>(lt.app.value()), lt.granted,
                    lt.wanted);
        if (scheduler.planner_active()) {
          for (const auto& [id, res] :
               scheduler.planner()->reservations()) {
            size_t booked = 0;
            for (const auto& [key, bookings] : res.bookings) {
              if (key.app == lt.app.value()) booked += bookings.size();
            }
            if (booked > 0) {
              std::printf(" res=%lu start=%.1f booked=%zu",
                          static_cast<unsigned long>(id), res.start, booked);
            }
          }
        }
        std::printf("\n");
      }
    }
    // Utilization sample (piecewise-constant between steps).
    busy_cpu_seconds +=
        static_cast<double>(scheduler.TotalGranted().cpu()) *
        (now - last_sample);
    last_sample = now;
    now += kDt;
  }

  if (planned && audit_path != nullptr && obs::AuditLog::enabled()) {
    std::ofstream out(audit_path);
    out << obs::ExportAuditJson(audit.Snapshot());
    std::fprintf(stderr, "planner audit dump written to %s\n", audit_path);
  }

  RunStats stats;
  stats.makespan = last_sample;
  double capacity_cpu = static_cast<double>(scheduler.TotalCapacity().cpu());
  stats.cpu_utilization =
      100.0 * busy_cpu_seconds / (capacity_cpu * stats.makespan);
  for (const LargeTracker& lt : larges) {
    FUXI_CHECK(lt.full_at >= 0)
        << "large job never fully allocated: mode="
        << (planned ? "planner" : "greedy") << " app=" << lt.app.value()
        << " granted=" << lt.granted << "/" << lt.wanted
        << " makespan=" << stats.makespan;
    stats.large_waits.push_back(lt.full_at - lt.arrival);
  }
  std::sort(stats.large_waits.begin(), stats.large_waits.end());
  return stats;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace
}  // namespace fuxi

int main(int argc, char** argv) {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  int machines = 32;
  int large_jobs = 4;
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--machines") == 0 && i + 1 < argc) {
      machines = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--large") == 0 && i + 1 < argc) {
      large_jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    }
  }
  machines = std::max(4, machines / 4 * 4);  // whole racks

  std::vector<TraceJob> trace = BuildTrace(machines, large_jobs, seed);
  RunStats greedy = RunTrace(trace, machines, /*planned=*/false, nullptr);

  obs::MetricsRegistry metrics;
  RunStats planner = RunTrace(trace, machines, /*planned=*/true, &metrics);

  std::printf(
      "=== fuxi::planner utilization vs greedy (%d machines, %zu jobs, "
      "%d large gangs) ===\n\n",
      machines, trace.size(), large_jobs);
  std::printf("%-28s %12s %12s\n", "", "greedy", "planner");
  std::printf("%-28s %11.1fs %11.1fs\n", "makespan", greedy.makespan,
              planner.makespan);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "cpu utilization (to makespan)",
              greedy.cpu_utilization, planner.cpu_utilization);
  std::printf("%-28s %11.1fs %11.1fs\n", "large-gang wait p50",
              Percentile(greedy.large_waits, 0.5),
              Percentile(planner.large_waits, 0.5));
  std::printf("%-28s %11.1fs %11.1fs\n", "large-gang wait p99",
              Percentile(greedy.large_waits, 0.99),
              Percentile(planner.large_waits, 0.99));

  if (planner::ClusterPlanner::enabled()) {
    std::printf("\nplanner metrics (satellite check):\n");
    for (const auto& [name, counter] : metrics.counters()) {
      if (name.rfind("planner.", 0) == 0) {
        std::printf("  %-32s %10lu\n", name.c_str(),
                    static_cast<unsigned long>(counter->value()));
      }
    }
    for (const auto& [name, gauge] : metrics.gauges()) {
      if (name.rfind("planner.", 0) == 0) {
        std::printf("  %-32s %10.0f\n", name.c_str(), gauge->value());
      }
    }
    for (const auto& [name, histogram] : metrics.histograms()) {
      if (name.rfind("planner.", 0) == 0) {
        std::printf("  %-32s count=%lu p50=%.1f\n", name.c_str(),
                    static_cast<unsigned long>(histogram->count()),
                    histogram->Percentile(0.5));
      }
    }
  } else {
    std::printf("\n(FUXI_PLANNER=OFF build: planner mode == greedy)\n");
  }

  bool ok = true;
  if (planner::ClusterPlanner::enabled()) {
    ok = planner.cpu_utilization > greedy.cpu_utilization &&
         Percentile(planner.large_waits, 0.99) <
             Percentile(greedy.large_waits, 0.99);
    std::printf("\n%s\n", ok ? "PLANNER WINS ON BOTH AXES"
                             : "PLANNER DID NOT IMPROVE — regression");
  }
  return ok ? 0 : 1;
}
