// Reproduces Table 2: scheduling overheads with simultaneous jobs
// launched through the full Fuxi job framework (submission ->
// FuxiMaster -> agent starts the JobMaster process -> incremental
// resource protocol -> agents start workers with a 400 MB package
// download).
//
// Paper values (1,000 simultaneous jobs):
//   Job Running Time            359.89 s
//   JobMaster Start Overhead      1.91 s
//   Worker Start Overhead        11.84 s   (400 MB worker binaries)
//   Instance Running Overhead     0.33 s
//   Total overhead                 3.9 %

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/metrics.h"
#include "job/job_runtime.h"

int main() {
  using namespace fuxi;
  SetLogLevel(LogLevel::kError);
  bool full = std::getenv("FUXI_BENCH_FULL") != nullptr &&
              std::getenv("FUXI_BENCH_FULL")[0] == '1';
  int machines = full ? 5000 : 200;
  int jobs = full ? 1000 : 40;

  runtime::SimClusterOptions cluster_options =
      bench::BenchClusterOptions(machines);
  // Model the paper's worker binaries: ~400 MB download before a worker
  // can start (dominates the worker start overhead).
  cluster_options.agent.worker_start_seconds = 11.0;
  cluster_options.agent.app_master_start_seconds = 1.5;
  runtime::SimCluster cluster(cluster_options);
  job::JobRuntime runtime(&cluster);
  cluster.Start();
  cluster.RunFor(2.0);

  trace::SyntheticWorkloadOptions workload_options;
  workload_options.instance_scale = full ? 1.0 : 0.02;
  workload_options.min_instance_seconds = 20;
  workload_options.max_instance_seconds = full ? 600 : 240;
  trace::SyntheticWorkload workload(11, workload_options);

  std::vector<job::JobMaster*> submitted;
  for (int i = 0; i < jobs; ++i) {
    auto job = runtime.Submit(workload.NextJobDescription());
    FUXI_CHECK(job.ok()) << job.status();
    submitted.push_back(*job);
  }
  bool all_done = runtime.RunUntilAllFinished(full ? 36000 : 7200);

  Histogram job_time, am_start, worker_start, instance_overhead;
  for (job::JobMaster* job : submitted) {
    if (!job->finished()) continue;
    const job::JobMaster::Stats& stats = job->stats();
    job_time.Add(stats.finished_at - stats.am_started_at);
    am_start.Add(stats.am_started_at - stats.submitted_at);
    if (stats.worker_start_count > 0) {
      worker_start.Add(stats.worker_start_latency_sum /
                       static_cast<double>(stats.worker_start_count));
    }
    if (stats.instance_overhead_count > 0) {
      instance_overhead.Add(
          stats.instance_overhead_sum /
          static_cast<double>(stats.instance_overhead_count));
    }
  }
  double total_overhead_pct =
      100.0 * (am_start.mean() + worker_start.mean() +
               instance_overhead.mean()) /
      (job_time.mean() > 0 ? job_time.mean() : 1);

  std::printf(
      "=== Table 2: scheduling overhead (%d machines, %d simultaneous "
      "jobs, all finished: %s) ===\n\n",
      machines, jobs, all_done ? "yes" : "NO");
  std::printf("%-30s %10s %12s\n", "Type", "measured", "paper");
  std::printf("%-30s %9.2fs %12s\n", "Job Running Time", job_time.mean(),
              "359.89s");
  std::printf("%-30s %9.2fs %12s\n", "JobMaster Start Overhead",
              am_start.mean(), "1.91s");
  std::printf("%-30s %9.2fs %12s\n", "Worker Start Overhead",
              worker_start.mean(), "11.84s");
  std::printf("%-30s %9.2fs %12s\n", "Instance Running Overhead",
              instance_overhead.mean(), "0.33s");
  std::printf("%-30s %9.1f%% %12s\n", "Total overhead", total_overhead_pct,
              "3.9%");
  return 0;
}
