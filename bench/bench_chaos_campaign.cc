// Chaos campaign runner: sweeps seeded random fault schedules over the
// simulated cluster while the InvariantMonitor checks safety and
// liveness continuously (see EXPERIMENTS.md "Chaos campaigns").
//
//   bench_chaos_campaign                 # default sweep, seeds 1..25
//   bench_chaos_campaign --seeds 200     # wider sweep
//   bench_chaos_campaign --first 1000    # different seed range
//   bench_chaos_campaign --seed 50       # replay one seed, full dump
//   bench_chaos_campaign --jobs max      # fan seeds across all cores
//   bench_chaos_campaign --jobs 4        # ... or a fixed worker count
//                        # (per-seed output lines, digests and exit
//                        # status are byte-identical to --jobs 1; the
//                        # wall-clock summary goes to stderr)
//   bench_chaos_campaign --seed 1 --seed-restore-bug
//                        # seed the Figure 7 double-grant regression;
//                        # the run must FAIL and dump its causal trace
//   bench_chaos_campaign --serialize-on-send
//                        # every control-plane message round-trips
//                        # through its wire codec at Send; hashes and
//                        # event counts must match the default mode
//   bench_chaos_campaign --shards 4
//                        # federated sweep: shard crash-loops,
//                        # directory-replica outages and the mid-window
//                        # spillover wave, with per-shard AND global
//                        # invariants checked
//
// Exit status is non-zero when any campaign violates an invariant or
// fails to complete; the failure dump contains the fault schedule and
// the digest trace, both of which replay byte-identically from the
// seed. When a campaign fails, the flight-recorder snapshot taken at
// the first violation is written to fuxi_trace_seed<N>.json — load it
// in Perfetto or run tools/trace_stats on it to walk the message chain
// that led to the violation — and the virtual-time telemetry dump to
// fuxi_telemetry_seed<N>.json, the input for tools/fuxi_dash (single
// -seed replays write both even on PASS). --sweep-metrics PATH writes
// the sweep runner's own accounting (tasks/steals/workers/wall) as a
// MetricsToCsv file. All per-seed artifact files are written from the
// main thread after the sweep joined, so parallel runs never
// interleave dumps.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "sweep/sweep_runner.h"

namespace {

/// Prints one campaign's result line and, for failures or single-seed
/// replays, the full dump plus per-seed artifact files. Called from the
/// main thread only, in seed order.
bool Report(const fuxi::chaos::CampaignResult& result, bool single) {
  std::printf(
      "seed=%llu %s events=%llu heavy_checks=%llu instances=%lld "
      "done_at=%.1f hash=%016llx digest=%016llx violations=%zu\n",
      static_cast<unsigned long long>(result.seed),
      result.ok() ? "PASS" : "FAIL",
      static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.heavy_checks),
      static_cast<long long>(result.instances_done), result.completed_at,
      static_cast<unsigned long long>(result.state_hash),
      static_cast<unsigned long long>(result.replay_digest),
      result.violations.size());
  if (!result.ok() || single) {
    std::string dump = fuxi::chaos::FormatCampaignFailure(result);
    std::fputs(dump.c_str(), result.ok() ? stdout : stderr);
    uint64_t seed = result.seed;
    if (!result.chrome_trace.empty()) {
      std::string path = "fuxi_trace_seed" + std::to_string(seed) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << result.chrome_trace;
      std::fprintf(stderr, "flight-recorder trace written to %s\n",
                   path.c_str());
    }
    if (single && !result.metrics_csv.empty()) {
      std::string path = "fuxi_metrics_seed" + std::to_string(seed) + ".csv";
      std::ofstream out(path, std::ios::binary);
      out << result.metrics_csv;
      std::fprintf(stderr,
                   "metrics dump written to %s (per-type wire bytes: "
                   "trace_stats --metrics %s)\n",
                   path.c_str(), path.c_str());
    }
    if (!result.audit_json.empty()) {
      std::string path = "fuxi_audit_seed" + std::to_string(seed) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << result.audit_json;
      std::fprintf(stderr,
                   "decision-audit dump written to %s (query with "
                   "fuxi_explain)\n",
                   path.c_str());
    }
    if (!result.telemetry_json.empty()) {
      std::string path =
          "fuxi_telemetry_seed" + std::to_string(seed) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << result.telemetry_json;
      std::fprintf(stderr,
                   "telemetry dump written to %s (render with fuxi_dash)\n",
                   path.c_str());
    }
  }
  return result.ok();
}

/// Writes the sweep runner's accounting as a MetricsToCsv dump — the
/// same shape `trace_stats --metrics` renders. stderr-noted, never on
/// stdout: the realtime rows (steals/workers/wall) vary run to run.
void WriteSweepMetrics(const fuxi::sweep::SweepRunnerStats& stats,
                       const char* path) {
  fuxi::obs::MetricsRegistry registry;
  fuxi::sweep::ExportStats(stats, &registry);
  std::ofstream out(path, std::ios::binary);
  out << fuxi::obs::MetricsToCsv(registry);
  std::fprintf(stderr,
               "sweep metrics written to %s (render with "
               "trace_stats --metrics %s)\n",
               path, path);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t first_seed = 1;
  int count = 25;
  bool single = false;
  bool seed_restore_bug = false;
  bool serialize_on_send = false;
  int shards = 1;
  int jobs = 1;
  const char* sweep_metrics_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--first") == 0 && i + 1 < argc) {
      first_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      first_seed = std::strtoull(argv[++i], nullptr, 10);
      count = 1;
      single = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = fuxi::sweep::ParseJobs(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed-restore-bug") == 0) {
      seed_restore_bug = true;
    } else if (std::strcmp(argv[i], "--serialize-on-send") == 0) {
      serialize_on_send = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep-metrics") == 0 && i + 1 < argc) {
      sweep_metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--first S] [--seed S] "
                   "[--jobs N|max] [--seed-restore-bug] "
                   "[--serialize-on-send] [--shards N] "
                   "[--sweep-metrics PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  fuxi::chaos::CampaignConfig config;
  if (shards > 1) config = fuxi::chaos::ShardedCampaignConfig(shards);
  config.cluster.network.serialize_on_send = serialize_on_send;
  if (seed_restore_bug) {
    config.seed_restore_bug = true;
    // The periodic agent/master allocation reconcile would repair the
    // double grant before the monitor's sustained window elapses; the
    // seeded regression disables it, like the scripted chaos tests.
    config.cluster.agent.allocation_report_every = 0;
  }

  int failed = 0;
  if (jobs == 1) {
    // Serial mode streams each line as its campaign finishes.
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < count; ++i) {
      uint64_t seed = first_seed + static_cast<uint64_t>(i);
      if (!Report(fuxi::chaos::RunCampaign(seed, config), single)) ++failed;
    }
    std::printf("chaos sweep: %d/%d campaigns passed\n", count - failed,
                count);
    if (sweep_metrics_path != nullptr) {
      fuxi::sweep::SweepRunnerStats stats;
      stats.tasks = static_cast<size_t>(count > 0 ? count : 0);
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      WriteSweepMetrics(stats, sweep_metrics_path);
    }
    return failed == 0 ? 0 : 1;
  }

  // Parallel mode: fan the seeds across the work-stealing pool, then
  // report in seed order from the main thread — stdout is byte-
  // identical to --jobs 1.
  fuxi::sweep::SweepRunner runner({jobs});
  std::vector<fuxi::chaos::CampaignResult> results(
      static_cast<size_t>(count > 0 ? count : 0));
  runner.Run(results.size(), [&results, first_seed, &config](size_t i) {
    results[i] =
        fuxi::chaos::RunCampaign(first_seed + static_cast<uint64_t>(i),
                                 config);
  });
  for (const fuxi::chaos::CampaignResult& result : results) {
    if (!Report(result, single)) ++failed;
  }
  std::printf("chaos sweep: %d/%d campaigns passed\n", count - failed, count);
  // Wall-clock goes to stderr: CI legs diff stdout across wire modes.
  std::fprintf(stderr, "sweep wall-clock: %.3fs (jobs=%d, steals=%zu)\n",
               runner.stats().wall_seconds, runner.jobs(),
               runner.stats().steals);
  if (sweep_metrics_path != nullptr) {
    WriteSweepMetrics(runner.stats(), sweep_metrics_path);
  }
  return failed == 0 ? 0 : 1;
}
