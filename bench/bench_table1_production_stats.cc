// Reproduces Table 1: statistics of the production tracelog (91,990
// jobs; 185,444 tasks; 42.27 M instances; 16.3 M workers) from the
// calibrated synthetic trace generator.
//
// Paper reference values (Table 1):
//   Instance Number  avg 228/task   max 99,937/task   total 42,266,899
//   Worker Number    avg 87.92/task max 4,636/task    total 16,295,167
//   Task Number      avg 2.0/job    max 150/job       total 185,444

#include <cstdio>

#include "common/strings.h"
#include "trace/workloads.h"

int main() {
  fuxi::trace::ProductionTraceOptions options;  // full 91,990 jobs
  fuxi::trace::ProductionTraceSynthesizer synth(20140901, options);
  fuxi::trace::TraceStats stats = synth.Synthesize();

  std::printf("=== Table 1: statistics on a production cluster ===\n");
  std::printf("(synthetic trace calibrated to the published aggregates)\n\n");
  std::printf("%-18s %14s %14s %16s\n", "", "avg", "max", "total");
  std::printf("%-18s %11.1f/task %9lld/task %16lld   (paper: 228 / 99,937 / 42,266,899)\n",
              "Instance Number", stats.avg_instances_per_task,
              static_cast<long long>(stats.max_instances_per_task),
              static_cast<long long>(stats.total_instances));
  std::printf("%-18s %11.2f/task %9lld/task %16lld   (paper: 87.92 / 4,636 / 16,295,167)\n",
              "Worker Number", stats.avg_workers_per_task,
              static_cast<long long>(stats.max_workers_per_task),
              static_cast<long long>(stats.total_workers));
  std::printf("%-18s %11.1f/job  %9lld/job  %16lld   (paper: 2.0 / 150 / 185,444)\n",
              "Task Number", stats.avg_tasks_per_job,
              static_cast<long long>(stats.max_tasks_per_job),
              static_cast<long long>(stats.total_tasks));
  std::printf("%-18s %14s %14s %16lld   (paper: 91,990)\n", "Job Number", "",
              "", static_cast<long long>(stats.total_jobs));
  return 0;
}
