// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  1. Incremental vs full-state communication (paper §3.1): wire bytes
//     of Fuxi's delta protocol vs a YARN-style re-assert-everything
//     heartbeat for the same demand sequence.
//  2. Locality tree vs a single flat queue (paper §3.3): scheduling
//     pass cost and locality hit rate.
//  3. Event-driven free-up rescheduling vs Mesos-style offer rounds
//     (paper §6): how long a waiting framework sits idle.
//  4. Two-level preemption on/off (paper §3.4): time for a
//     quota-deficit group to reclaim its guarantee.

#include <chrono>
#include <cstdio>

#include "baseline/yarn_like.h"
#include "bench_common.h"
#include "common/metrics.h"
#include "resource/protocol.h"
#include "resource/scheduler.h"
#include "wire/wire.h"

namespace {

using namespace fuxi;

cluster::ClusterTopology MediumTopology() {
  cluster::ClusterTopology::Options options;
  options.racks = 20;
  options.machines_per_rack = 50;  // 1,000 machines
  options.machine_capacity = cluster::ResourceVector(1200, 96 * 1024);
  return cluster::ClusterTopology::Build(options);
}

// ------------------------------------------------ 1. message volume

void MessageVolumeAblation() {
  std::printf("--- ablation 1: incremental vs full-state communication ---\n");
  // A MapReduce-ish demand lifecycle: ask for 1,000 units, receive them
  // over 50 scheduling rounds, release them over 200 completions, with
  // a heartbeat every round.
  constexpr int kRounds = 250;
  constexpr int64_t kUnits = 1000;

  // Fuxi: deltas only + one full sync every 8 rounds (the safety sync).
  uint64_t fuxi_bytes = 0;
  uint64_t fuxi_messages = 0;
  int64_t outstanding = kUnits;
  for (int round = 0; round < kRounds; ++round) {
    resource::RequestMessage msg;
    if (round == 0) {
      resource::UnitRequestDelta delta;
      delta.slot_id = 0;
      delta.has_def = true;
      delta.total_count_delta = kUnits;
      msg.delta.units.push_back(delta);
    } else if (round % 8 == 0) {
      resource::SlotAbsoluteState full;
      full.total_count = outstanding;
      msg.full_slots.push_back(full);
      for (int64_t g = 0; g < (kUnits - outstanding) / 10; ++g) {
        msg.held_grants.push_back({0, MachineId(g), 10});
      }
    } else if (round % 3 == 1 && outstanding > 0) {
      outstanding -= 20;  // grants arrive; nothing to send at all
      continue;
    } else if (round % 5 == 2) {
      msg.releases.push_back({0, MachineId(round % 100), 5});
    } else {
      continue;  // no change -> no message (the incremental principle)
    }
    // Measure the exact frame the delta channel would put on the wire:
    // the message stamped with its epoch/sequence header.
    resource::StampedRequest stamped{1, static_cast<uint64_t>(round + 1),
                                     round > 0 && round % 8 == 0, msg};
    fuxi_bytes += wire::FramedSize(stamped);
    ++fuxi_messages;
  }

  // YARN-like: the full ask re-asserted on EVERY heartbeat.
  cluster::ClusterTopology topo = MediumTopology();
  baseline::YarnLikeScheduler yarn(&topo);
  (void)yarn.RegisterApp(AppId(1), cluster::ResourceVector(50, 2048));
  int64_t yarn_outstanding = kUnits;
  uint64_t yarn_bytes = 0;
  for (int round = 0; round < kRounds; ++round) {
    (void)yarn.Heartbeat(AppId(1), yarn_outstanding);
    // Each outstanding entry travels in the ask (ResourceRequest proto
    // in YARN carries per-priority/per-location counts; approximate the
    // same 12 bytes/entry plus header).
    yarn_bytes += 24 + static_cast<uint64_t>(yarn_outstanding / 10) * 12;
    if (round % 3 == 1 && yarn_outstanding > 0) yarn_outstanding -= 20;
  }
  std::printf("  Fuxi incremental: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(fuxi_messages),
              static_cast<unsigned long long>(fuxi_bytes));
  std::printf("  YARN-style full : %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(yarn.stats().ask_messages),
              static_cast<unsigned long long>(yarn_bytes));
  std::printf("  reduction: %.1fx fewer bytes\n\n",
              static_cast<double>(yarn_bytes) /
                  static_cast<double>(fuxi_bytes ? fuxi_bytes : 1));
}

// ------------------------------------- 2. locality tree vs flat queue

void LocalityTreeAblation() {
  std::printf("--- ablation 2: locality tree vs flat queue ---\n");
  for (bool tree : {true, false}) {
    cluster::ClusterTopology topo = MediumTopology();
    resource::SchedulerOptions options;
    options.locality_tree = tree;
    resource::Scheduler scheduler(&topo, options);
    resource::SchedulingResult scratch;
    // 50 apps each preferring 20 specific machines (data locality),
    // cluster nearly full.
    Rng rng(5);
    int64_t preferred_hits = 0;
    int64_t total_granted = 0;
    auto start = std::chrono::steady_clock::now();
    for (int64_t a = 1; a <= 50; ++a) {
      (void)scheduler.RegisterApp(AppId(a));
      resource::ResourceRequest request;
      request.app = AppId(a);
      resource::UnitRequestDelta unit;
      unit.slot_id = 0;
      unit.has_def = true;
      unit.def.priority = 10;
      unit.def.resources = cluster::ResourceVector(100, 8 * 1024);
      unit.total_count_delta = 200;
      std::set<int64_t> hinted;
      for (int h = 0; h < 20; ++h) {
        int64_t m = static_cast<int64_t>(rng.Uniform(1000));
        if (!hinted.insert(m).second) continue;
        unit.hints.push_back({resource::LocalityLevel::kMachine,
                              topo.machine(MachineId(m)).hostname, 5});
      }
      request.units.push_back(unit);
      resource::SchedulingResult result;
      (void)scheduler.ApplyRequest(request, &result);
      for (const resource::Assignment& g : result.assignments) {
        total_granted += g.count;
        if (hinted.count(g.machine.value()) > 0) preferred_hits += g.count;
      }
    }
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - start)
                    .count();
    std::printf(
        "  %-11s placement of 50 apps x 200 units: %7.2f ms, "
        "locality hits %5.1f%% (%lld/%lld)\n",
        tree ? "tree" : "flat-queue", ms,
        100.0 * static_cast<double>(preferred_hits) /
            static_cast<double>(total_granted ? total_granted : 1),
        static_cast<long long>(preferred_hits),
        static_cast<long long>(total_granted));
  }
  std::printf("\n");
}

// ------------------------------- 3. event-driven vs offer-round latency

void OfferLatencyAblation() {
  std::printf(
      "--- ablation 3: event-driven free-up vs Mesos offer rounds ---\n");
  cluster::ClusterTopology topo = MediumTopology();
  constexpr int kFrameworks = 50;
  // Mesos-like: a framework at the end of the rotation waits for every
  // earlier framework's offer round even when they need nothing.
  baseline::MesosLikeScheduler mesos(&topo);
  for (int64_t f = 1; f <= kFrameworks; ++f) {
    (void)mesos.RegisterFramework(AppId(f),
                                  cluster::ResourceVector(50, 2048));
  }
  (void)mesos.SetDemand(AppId(kFrameworks), 10);  // only the last one asks
  resource::SchedulingResult result;
  int rounds = 0;
  while (mesos.GrantedCount(AppId(kFrameworks)) < 10 &&
         rounds < 10 * kFrameworks) {
    mesos.OfferRound(&result);
    ++rounds;
  }
  std::printf("  Mesos-like: %d offer rounds before the asking framework "
              "was served (%llu offers declined)\n",
              rounds,
              static_cast<unsigned long long>(mesos.stats().offers_declined));

  // Fuxi: the request is matched against free resources immediately.
  resource::Scheduler scheduler(&topo);
  (void)scheduler.RegisterApp(AppId(1));
  resource::ResourceRequest request;
  request.app = AppId(1);
  resource::UnitRequestDelta unit;
  unit.slot_id = 0;
  unit.has_def = true;
  unit.def.resources = cluster::ResourceVector(50, 2048);
  unit.total_count_delta = 10;
  request.units.push_back(unit);
  result.Clear();
  (void)scheduler.ApplyRequest(request, &result);
  int64_t granted = 0;
  for (const resource::Assignment& a : result.assignments) {
    granted += a.count;
  }
  std::printf("  Fuxi: %lld/10 units granted in the SAME event (0 waiting "
              "rounds)\n\n",
              static_cast<long long>(granted));
}

// --------------------------------------------- 4. preemption on/off

void PreemptionAblation() {
  std::printf("--- ablation 4: two-level preemption on/off ---\n");
  for (bool preempt : {true, false}) {
    cluster::ClusterTopology topo = MediumTopology();
    resource::SchedulerOptions options;
    options.enable_preemption = preempt;
    resource::Scheduler scheduler(&topo, options);
    cluster::ResourceVector half(1200 * 500, 96 * 1024 * 500);
    (void)scheduler.CreateQuotaGroup("a", half);
    (void)scheduler.CreateQuotaGroup("b", half);
    (void)scheduler.RegisterApp(AppId(1), "a");
    (void)scheduler.RegisterApp(AppId(2), "b");
    resource::SchedulingResult result;
    // Group B borrows the whole cluster while A idles.
    resource::ResourceRequest borrow;
    borrow.app = AppId(2);
    resource::UnitRequestDelta unit;
    unit.slot_id = 0;
    unit.has_def = true;
    unit.def.resources = cluster::ResourceVector(1200, 96 * 1024);
    unit.total_count_delta = 1000;
    borrow.units.push_back(unit);
    (void)scheduler.ApplyRequest(borrow, &result);
    // Group A wakes up and claims 100 machines' worth.
    resource::ResourceRequest claim;
    claim.app = AppId(1);
    unit.total_count_delta = 100;
    claim.units.clear();
    claim.units.push_back(unit);
    result.Clear();
    (void)scheduler.ApplyRequest(claim, &result);
    int64_t reclaimed = 0;
    for (const resource::Assignment& a : result.assignments) {
      reclaimed += a.count;
    }
    std::printf("  preemption %-3s: deficit group reclaimed %lld/100 "
                "units immediately\n",
                preempt ? "on" : "off", static_cast<long long>(reclaimed));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SetLogLevel(fuxi::LogLevel::kError);
  std::printf("=== Design ablations ===\n\n");
  MessageVolumeAblation();
  LocalityTreeAblation();
  OfferLatencyAblation();
  PreemptionAblation();
  return 0;
}
