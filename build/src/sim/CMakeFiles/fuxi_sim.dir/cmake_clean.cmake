file(REMOVE_RECURSE
  "CMakeFiles/fuxi_sim.dir/simulator.cc.o"
  "CMakeFiles/fuxi_sim.dir/simulator.cc.o.d"
  "libfuxi_sim.a"
  "libfuxi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
