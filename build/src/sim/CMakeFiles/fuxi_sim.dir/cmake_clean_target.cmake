file(REMOVE_RECURSE
  "libfuxi_sim.a"
)
