# Empty compiler generated dependencies file for fuxi_sim.
# This may be replaced when dependencies are built.
