file(REMOVE_RECURSE
  "CMakeFiles/fuxi_baseline.dir/yarn_like.cc.o"
  "CMakeFiles/fuxi_baseline.dir/yarn_like.cc.o.d"
  "libfuxi_baseline.a"
  "libfuxi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
