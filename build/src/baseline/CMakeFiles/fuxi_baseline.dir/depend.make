# Empty dependencies file for fuxi_baseline.
# This may be replaced when dependencies are built.
