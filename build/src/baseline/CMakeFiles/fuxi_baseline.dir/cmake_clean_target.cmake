file(REMOVE_RECURSE
  "libfuxi_baseline.a"
)
