
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/yarn_like.cc" "src/baseline/CMakeFiles/fuxi_baseline.dir/yarn_like.cc.o" "gcc" "src/baseline/CMakeFiles/fuxi_baseline.dir/yarn_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resource/CMakeFiles/fuxi_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fuxi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
