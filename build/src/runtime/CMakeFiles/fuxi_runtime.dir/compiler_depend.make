# Empty compiler generated dependencies file for fuxi_runtime.
# This may be replaced when dependencies are built.
