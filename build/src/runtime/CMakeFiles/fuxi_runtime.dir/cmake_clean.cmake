file(REMOVE_RECURSE
  "CMakeFiles/fuxi_runtime.dir/sim_cluster.cc.o"
  "CMakeFiles/fuxi_runtime.dir/sim_cluster.cc.o.d"
  "CMakeFiles/fuxi_runtime.dir/synthetic_app.cc.o"
  "CMakeFiles/fuxi_runtime.dir/synthetic_app.cc.o.d"
  "libfuxi_runtime.a"
  "libfuxi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
