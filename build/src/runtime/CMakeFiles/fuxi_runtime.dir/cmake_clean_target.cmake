file(REMOVE_RECURSE
  "libfuxi_runtime.a"
)
