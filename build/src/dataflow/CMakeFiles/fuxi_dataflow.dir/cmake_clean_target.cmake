file(REMOVE_RECURSE
  "libfuxi_dataflow.a"
)
