file(REMOVE_RECURSE
  "CMakeFiles/fuxi_dataflow.dir/streamline.cc.o"
  "CMakeFiles/fuxi_dataflow.dir/streamline.cc.o.d"
  "libfuxi_dataflow.a"
  "libfuxi_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
