# Empty compiler generated dependencies file for fuxi_dataflow.
# This may be replaced when dependencies are built.
