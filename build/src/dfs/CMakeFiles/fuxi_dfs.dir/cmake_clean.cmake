file(REMOVE_RECURSE
  "CMakeFiles/fuxi_dfs.dir/file_system.cc.o"
  "CMakeFiles/fuxi_dfs.dir/file_system.cc.o.d"
  "libfuxi_dfs.a"
  "libfuxi_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
