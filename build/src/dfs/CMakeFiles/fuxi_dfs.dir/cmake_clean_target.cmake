file(REMOVE_RECURSE
  "libfuxi_dfs.a"
)
