# Empty compiler generated dependencies file for fuxi_dfs.
# This may be replaced when dependencies are built.
