file(REMOVE_RECURSE
  "CMakeFiles/fuxi_cluster.dir/resource_vector.cc.o"
  "CMakeFiles/fuxi_cluster.dir/resource_vector.cc.o.d"
  "CMakeFiles/fuxi_cluster.dir/topology.cc.o"
  "CMakeFiles/fuxi_cluster.dir/topology.cc.o.d"
  "libfuxi_cluster.a"
  "libfuxi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
