file(REMOVE_RECURSE
  "libfuxi_cluster.a"
)
