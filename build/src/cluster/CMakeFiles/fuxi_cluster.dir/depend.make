# Empty dependencies file for fuxi_cluster.
# This may be replaced when dependencies are built.
