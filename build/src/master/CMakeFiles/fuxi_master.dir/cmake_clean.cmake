file(REMOVE_RECURSE
  "CMakeFiles/fuxi_master.dir/fuxi_master.cc.o"
  "CMakeFiles/fuxi_master.dir/fuxi_master.cc.o.d"
  "CMakeFiles/fuxi_master.dir/resource_client.cc.o"
  "CMakeFiles/fuxi_master.dir/resource_client.cc.o.d"
  "libfuxi_master.a"
  "libfuxi_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
