# Empty dependencies file for fuxi_master.
# This may be replaced when dependencies are built.
