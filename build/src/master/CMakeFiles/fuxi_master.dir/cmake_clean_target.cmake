file(REMOVE_RECURSE
  "libfuxi_master.a"
)
