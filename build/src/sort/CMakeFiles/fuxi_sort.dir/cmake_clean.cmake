file(REMOVE_RECURSE
  "CMakeFiles/fuxi_sort.dir/graysort.cc.o"
  "CMakeFiles/fuxi_sort.dir/graysort.cc.o.d"
  "libfuxi_sort.a"
  "libfuxi_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
