# Empty compiler generated dependencies file for fuxi_sort.
# This may be replaced when dependencies are built.
