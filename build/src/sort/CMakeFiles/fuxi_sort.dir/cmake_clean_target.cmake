file(REMOVE_RECURSE
  "libfuxi_sort.a"
)
