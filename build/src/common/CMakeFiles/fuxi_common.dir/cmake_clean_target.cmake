file(REMOVE_RECURSE
  "libfuxi_common.a"
)
