# Empty dependencies file for fuxi_common.
# This may be replaced when dependencies are built.
