file(REMOVE_RECURSE
  "CMakeFiles/fuxi_common.dir/json.cc.o"
  "CMakeFiles/fuxi_common.dir/json.cc.o.d"
  "CMakeFiles/fuxi_common.dir/logging.cc.o"
  "CMakeFiles/fuxi_common.dir/logging.cc.o.d"
  "CMakeFiles/fuxi_common.dir/metrics.cc.o"
  "CMakeFiles/fuxi_common.dir/metrics.cc.o.d"
  "CMakeFiles/fuxi_common.dir/status.cc.o"
  "CMakeFiles/fuxi_common.dir/status.cc.o.d"
  "CMakeFiles/fuxi_common.dir/strings.cc.o"
  "CMakeFiles/fuxi_common.dir/strings.cc.o.d"
  "libfuxi_common.a"
  "libfuxi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
