file(REMOVE_RECURSE
  "libfuxi_agent.a"
)
