file(REMOVE_RECURSE
  "CMakeFiles/fuxi_agent.dir/fuxi_agent.cc.o"
  "CMakeFiles/fuxi_agent.dir/fuxi_agent.cc.o.d"
  "libfuxi_agent.a"
  "libfuxi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
