# Empty dependencies file for fuxi_agent.
# This may be replaced when dependencies are built.
