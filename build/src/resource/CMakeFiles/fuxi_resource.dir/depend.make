# Empty dependencies file for fuxi_resource.
# This may be replaced when dependencies are built.
