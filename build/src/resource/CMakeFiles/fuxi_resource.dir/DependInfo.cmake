
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resource/locality_tree.cc" "src/resource/CMakeFiles/fuxi_resource.dir/locality_tree.cc.o" "gcc" "src/resource/CMakeFiles/fuxi_resource.dir/locality_tree.cc.o.d"
  "/root/repo/src/resource/protocol.cc" "src/resource/CMakeFiles/fuxi_resource.dir/protocol.cc.o" "gcc" "src/resource/CMakeFiles/fuxi_resource.dir/protocol.cc.o.d"
  "/root/repo/src/resource/quota.cc" "src/resource/CMakeFiles/fuxi_resource.dir/quota.cc.o" "gcc" "src/resource/CMakeFiles/fuxi_resource.dir/quota.cc.o.d"
  "/root/repo/src/resource/request.cc" "src/resource/CMakeFiles/fuxi_resource.dir/request.cc.o" "gcc" "src/resource/CMakeFiles/fuxi_resource.dir/request.cc.o.d"
  "/root/repo/src/resource/scheduler.cc" "src/resource/CMakeFiles/fuxi_resource.dir/scheduler.cc.o" "gcc" "src/resource/CMakeFiles/fuxi_resource.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fuxi_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
