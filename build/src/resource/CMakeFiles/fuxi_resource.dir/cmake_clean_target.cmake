file(REMOVE_RECURSE
  "libfuxi_resource.a"
)
