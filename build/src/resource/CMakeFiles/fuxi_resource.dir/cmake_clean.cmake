file(REMOVE_RECURSE
  "CMakeFiles/fuxi_resource.dir/locality_tree.cc.o"
  "CMakeFiles/fuxi_resource.dir/locality_tree.cc.o.d"
  "CMakeFiles/fuxi_resource.dir/protocol.cc.o"
  "CMakeFiles/fuxi_resource.dir/protocol.cc.o.d"
  "CMakeFiles/fuxi_resource.dir/quota.cc.o"
  "CMakeFiles/fuxi_resource.dir/quota.cc.o.d"
  "CMakeFiles/fuxi_resource.dir/request.cc.o"
  "CMakeFiles/fuxi_resource.dir/request.cc.o.d"
  "CMakeFiles/fuxi_resource.dir/scheduler.cc.o"
  "CMakeFiles/fuxi_resource.dir/scheduler.cc.o.d"
  "libfuxi_resource.a"
  "libfuxi_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
