# Empty compiler generated dependencies file for fuxi_coord.
# This may be replaced when dependencies are built.
