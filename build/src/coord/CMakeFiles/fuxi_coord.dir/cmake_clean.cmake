file(REMOVE_RECURSE
  "CMakeFiles/fuxi_coord.dir/checkpoint_store.cc.o"
  "CMakeFiles/fuxi_coord.dir/checkpoint_store.cc.o.d"
  "CMakeFiles/fuxi_coord.dir/lock_service.cc.o"
  "CMakeFiles/fuxi_coord.dir/lock_service.cc.o.d"
  "libfuxi_coord.a"
  "libfuxi_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
