file(REMOVE_RECURSE
  "libfuxi_coord.a"
)
