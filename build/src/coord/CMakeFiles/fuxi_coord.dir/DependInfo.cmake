
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coord/checkpoint_store.cc" "src/coord/CMakeFiles/fuxi_coord.dir/checkpoint_store.cc.o" "gcc" "src/coord/CMakeFiles/fuxi_coord.dir/checkpoint_store.cc.o.d"
  "/root/repo/src/coord/lock_service.cc" "src/coord/CMakeFiles/fuxi_coord.dir/lock_service.cc.o" "gcc" "src/coord/CMakeFiles/fuxi_coord.dir/lock_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fuxi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
