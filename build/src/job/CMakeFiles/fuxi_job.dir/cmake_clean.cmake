file(REMOVE_RECURSE
  "CMakeFiles/fuxi_job.dir/description.cc.o"
  "CMakeFiles/fuxi_job.dir/description.cc.o.d"
  "CMakeFiles/fuxi_job.dir/job_master.cc.o"
  "CMakeFiles/fuxi_job.dir/job_master.cc.o.d"
  "CMakeFiles/fuxi_job.dir/job_runtime.cc.o"
  "CMakeFiles/fuxi_job.dir/job_runtime.cc.o.d"
  "CMakeFiles/fuxi_job.dir/task_master.cc.o"
  "CMakeFiles/fuxi_job.dir/task_master.cc.o.d"
  "CMakeFiles/fuxi_job.dir/task_worker.cc.o"
  "CMakeFiles/fuxi_job.dir/task_worker.cc.o.d"
  "libfuxi_job.a"
  "libfuxi_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
