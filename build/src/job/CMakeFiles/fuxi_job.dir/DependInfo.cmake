
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/job/description.cc" "src/job/CMakeFiles/fuxi_job.dir/description.cc.o" "gcc" "src/job/CMakeFiles/fuxi_job.dir/description.cc.o.d"
  "/root/repo/src/job/job_master.cc" "src/job/CMakeFiles/fuxi_job.dir/job_master.cc.o" "gcc" "src/job/CMakeFiles/fuxi_job.dir/job_master.cc.o.d"
  "/root/repo/src/job/job_runtime.cc" "src/job/CMakeFiles/fuxi_job.dir/job_runtime.cc.o" "gcc" "src/job/CMakeFiles/fuxi_job.dir/job_runtime.cc.o.d"
  "/root/repo/src/job/task_master.cc" "src/job/CMakeFiles/fuxi_job.dir/task_master.cc.o" "gcc" "src/job/CMakeFiles/fuxi_job.dir/task_master.cc.o.d"
  "/root/repo/src/job/task_worker.cc" "src/job/CMakeFiles/fuxi_job.dir/task_worker.cc.o" "gcc" "src/job/CMakeFiles/fuxi_job.dir/task_worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/fuxi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/fuxi_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/master/CMakeFiles/fuxi_master.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/fuxi_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/fuxi_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fuxi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/fuxi_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fuxi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
