# Empty compiler generated dependencies file for fuxi_job.
# This may be replaced when dependencies are built.
