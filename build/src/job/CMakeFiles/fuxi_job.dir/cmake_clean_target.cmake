file(REMOVE_RECURSE
  "libfuxi_job.a"
)
