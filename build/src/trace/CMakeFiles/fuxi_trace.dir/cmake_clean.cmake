file(REMOVE_RECURSE
  "CMakeFiles/fuxi_trace.dir/workloads.cc.o"
  "CMakeFiles/fuxi_trace.dir/workloads.cc.o.d"
  "libfuxi_trace.a"
  "libfuxi_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuxi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
