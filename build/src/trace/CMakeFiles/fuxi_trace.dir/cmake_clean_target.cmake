file(REMOVE_RECURSE
  "libfuxi_trace.a"
)
