# Empty compiler generated dependencies file for fuxi_trace.
# This may be replaced when dependencies are built.
