# Empty compiler generated dependencies file for fuxi_tests.
# This may be replaced when dependencies are built.
