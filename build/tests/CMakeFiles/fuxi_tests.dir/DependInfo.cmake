
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/fuxi_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/fuxi_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/coord_test.cc" "tests/CMakeFiles/fuxi_tests.dir/coord_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/coord_test.cc.o.d"
  "/root/repo/tests/dataflow_test.cc" "tests/CMakeFiles/fuxi_tests.dir/dataflow_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/dataflow_test.cc.o.d"
  "/root/repo/tests/delta_channel_test.cc" "tests/CMakeFiles/fuxi_tests.dir/delta_channel_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/delta_channel_test.cc.o.d"
  "/root/repo/tests/dfs_test.cc" "tests/CMakeFiles/fuxi_tests.dir/dfs_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/dfs_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/fuxi_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/graysort_test.cc" "tests/CMakeFiles/fuxi_tests.dir/graysort_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/graysort_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/fuxi_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/job_test.cc" "tests/CMakeFiles/fuxi_tests.dir/job_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/job_test.cc.o.d"
  "/root/repo/tests/locality_tree_test.cc" "tests/CMakeFiles/fuxi_tests.dir/locality_tree_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/locality_tree_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/fuxi_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/fuxi_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/quota_test.cc" "tests/CMakeFiles/fuxi_tests.dir/quota_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/quota_test.cc.o.d"
  "/root/repo/tests/resource_client_test.cc" "tests/CMakeFiles/fuxi_tests.dir/resource_client_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/resource_client_test.cc.o.d"
  "/root/repo/tests/scheduler_property_test.cc" "tests/CMakeFiles/fuxi_tests.dir/scheduler_property_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/scheduler_property_test.cc.o.d"
  "/root/repo/tests/scheduler_test.cc" "tests/CMakeFiles/fuxi_tests.dir/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/scheduler_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/fuxi_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/system_edge_test.cc" "tests/CMakeFiles/fuxi_tests.dir/system_edge_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/system_edge_test.cc.o.d"
  "/root/repo/tests/task_master_test.cc" "tests/CMakeFiles/fuxi_tests.dir/task_master_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/task_master_test.cc.o.d"
  "/root/repo/tests/trace_baseline_test.cc" "tests/CMakeFiles/fuxi_tests.dir/trace_baseline_test.cc.o" "gcc" "tests/CMakeFiles/fuxi_tests.dir/trace_baseline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sort/CMakeFiles/fuxi_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fuxi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fuxi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/fuxi_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/job/CMakeFiles/fuxi_job.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fuxi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/fuxi_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/master/CMakeFiles/fuxi_master.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/fuxi_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/fuxi_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/fuxi_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fuxi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fuxi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
