# Empty compiler generated dependencies file for terasort.
# This may be replaced when dependencies are built.
