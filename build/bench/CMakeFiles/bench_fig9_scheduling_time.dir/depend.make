# Empty dependencies file for bench_fig9_scheduling_time.
# This may be replaced when dependencies are built.
