file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_graysort.dir/bench_table4_graysort.cc.o"
  "CMakeFiles/bench_table4_graysort.dir/bench_table4_graysort.cc.o.d"
  "bench_table4_graysort"
  "bench_table4_graysort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_graysort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
