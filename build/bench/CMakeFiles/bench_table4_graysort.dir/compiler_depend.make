# Empty compiler generated dependencies file for bench_table4_graysort.
# This may be replaced when dependencies are built.
