
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_production_stats.cc" "bench/CMakeFiles/bench_table1_production_stats.dir/bench_table1_production_stats.cc.o" "gcc" "bench/CMakeFiles/bench_table1_production_stats.dir/bench_table1_production_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sort/CMakeFiles/fuxi_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fuxi_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fuxi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/job/CMakeFiles/fuxi_job.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fuxi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/fuxi_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/master/CMakeFiles/fuxi_master.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/fuxi_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/fuxi_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/fuxi_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/fuxi_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fuxi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fuxi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuxi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
