file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fault_injection.dir/bench_table3_fault_injection.cc.o"
  "CMakeFiles/bench_table3_fault_injection.dir/bench_table3_fault_injection.cc.o.d"
  "bench_table3_fault_injection"
  "bench_table3_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
