# Empty dependencies file for bench_table2_overheads.
# This may be replaced when dependencies are built.
