file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_overheads.dir/bench_table2_overheads.cc.o"
  "CMakeFiles/bench_table2_overheads.dir/bench_table2_overheads.cc.o.d"
  "bench_table2_overheads"
  "bench_table2_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
