file(REMOVE_RECURSE
  "CMakeFiles/bench_instance_scheduling.dir/bench_instance_scheduling.cc.o"
  "CMakeFiles/bench_instance_scheduling.dir/bench_instance_scheduling.cc.o.d"
  "bench_instance_scheduling"
  "bench_instance_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instance_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
