#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, builds with causal
# tracing, the decision audit and the virtual-time telemetry compiled
# out (every FUXI_OBS_TRACING / FUXI_OBS_AUDIT / FUXI_OBS_TELEMETRY
# configuration must stay green, and the telemetry leg diffs sweep
# stdout ON vs OFF byte for byte), a fuxi_dash smoke against a
# generated dump, then the chaos campaign sweep again under ASan/UBSan (memory
# errors in failover and fault-recovery paths are exactly what the
# campaigns shake out) and the parallel sweep engine under TSan (data
# races between concurrent SimClusters are exactly what --jobs N adds).
#
# The campaign legs run with --jobs 4: the sweep fans seeds across the
# work-stealing pool and each leg's stdout stays byte-identical to a
# serial run (the determinism battery in tests/sweep_test.cc asserts
# this; these legs exercise it end to end). The per-leg sweep wall-clock
# is printed to stderr so CI logs record the speedup.
#
# Usage: scripts/tier1.sh [--skip-asan] [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_asan=0
skip_tsan=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) skip_asan=1 ;;
    --skip-tsan) skip_tsan=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "== tier-1: Figure 9 scheduling-time smoke vs checked-in baseline =="
./build/bench/bench_fig9_scheduling_time --smoke --json build/BENCH_fig9_smoke.json
python3 scripts/check_fig9_regression.py build/BENCH_fig9_smoke.json

echo "== tier-1: tracing compiled out (FUXI_OBS_TRACING=OFF) =="
cmake -B build-notrace -S . -DFUXI_OBS_TRACING=OFF >/dev/null
cmake --build build-notrace -j"$(nproc)" --target fuxi_tests
(cd build-notrace &&
 ./tests/fuxi_tests \
   --gtest_filter='*Obs*:*Trace*:*Audit*:NetworkTest.*:*ChaosCampaign.*:ScriptedChaosTest.*:*Differential*:*Golden*:*HintSort*')

echo "== tier-1: decision audit compiled out (FUXI_OBS_AUDIT=OFF) =="
# The differential suite still runs its audit-attached scheduler here
# (against the no-op log), so byte-identical results are proven for the
# OFF configuration too; the integration test self-skips.
cmake -B build-noaudit -S . -DFUXI_OBS_AUDIT=OFF >/dev/null
cmake --build build-noaudit -j"$(nproc)" --target fuxi_tests
(cd build-noaudit &&
 ./tests/fuxi_tests \
   --gtest_filter='*Obs*:*Trace*:*Audit*:*Timeline*:*ChaosCampaign.*:ScriptedChaosTest.*:*Differential*:*Golden*')

echo "== tier-1: telemetry compiled out (FUXI_OBS_TELEMETRY=OFF) =="
# The virtual-time sampler and SLO watchdog fold down to the no-op
# classes: no series, no health events, and — the bar that matters —
# every golden replay hash, grant-log digest and differential-oracle
# seed byte-identical to the ON build. The 25-seed stdout diff below
# proves the sampler never perturbed the event sequence end to end.
cmake -B build-notelemetry -S . -DFUXI_OBS_TELEMETRY=OFF >/dev/null
cmake --build build-notelemetry -j"$(nproc)" --target fuxi_tests bench_chaos_campaign
(cd build-notelemetry &&
 ./tests/fuxi_tests \
   --gtest_filter='*Telemetry*:*SloWatchdog*:*Obs*:*ChaosCampaign.*:ScriptedChaosTest.*:*Differential*:*Golden*:SweepDeterminism.*')
./build/bench/bench_chaos_campaign --seeds 25 --jobs 4 > build/SWEEP_telemetry_on.txt
./build-notelemetry/bench/bench_chaos_campaign --seeds 25 --jobs 4 > build-notelemetry/SWEEP_telemetry_off.txt
diff build/SWEEP_telemetry_on.txt build-notelemetry/SWEEP_telemetry_off.txt
echo "telemetry ON/OFF sweep stdout byte-identical"

echo "== tier-1: fuxi_dash smoke against a generated dump =="
# A single-seed replay writes fuxi_telemetry_seed3.json; the dashboard,
# the per-series table, the event timeline and both exports must all
# render non-empty output from it.
cmake --build build -j"$(nproc)" --target fuxi_dash >/dev/null
# grep without -q so it drains the pipe fully: -q exits at first match
# and the dashboard's remaining writes die of SIGPIPE under pipefail.
(cd build &&
 ../build/bench/bench_chaos_campaign --seed 3 >/dev/null 2>&1 &&
 test -s fuxi_telemetry_seed3.json &&
 ./tools/fuxi_dash fuxi_telemetry_seed3.json | grep "fuxi telemetry:" >/dev/null &&
 ./tools/fuxi_dash fuxi_telemetry_seed3.json --list | grep "master.grant_units" >/dev/null &&
 ./tools/fuxi_dash fuxi_telemetry_seed3.json --series master.grant_units | grep "tick" >/dev/null &&
 ./tools/fuxi_dash fuxi_telemetry_seed3.json --csv | grep "^series,kind" >/dev/null &&
 ./tools/fuxi_dash fuxi_telemetry_seed3.json --json | grep "fuxi_telemetry_decoded" >/dev/null &&
 echo "fuxi_dash smoke OK")

echo "== tier-1: planner compiled out (FUXI_PLANNER=OFF) =="
# The whole time-aware placement layer compiles down to the no-op
# planner: planning hints are dropped at the scheduler boundary, legacy
# traffic never constructs a planner, and every golden replay hash,
# grant-log digest and differential-oracle seed must stay byte-
# identical to the ON build. The planner chaos sweeps still run — the
# gang apps degrade to ordinary apps and the two planner invariants are
# trivially true.
cmake -B build-noplanner -S . -DFUXI_PLANNER=OFF >/dev/null
cmake --build build-noplanner -j"$(nproc)" --target fuxi_tests
(cd build-noplanner &&
 ./tests/fuxi_tests \
   --gtest_filter='*Golden*:*Differential*:PlannerTimelineTest.*:PlannerChaosCampaign.*:*ChaosCampaign.*:ScriptedChaosTest.*')

echo "== tier-1: federated chaos sweep (shard crash-loops + spillover) =="
# Four shard masters on their own election leases, a replicated shard
# directory, and the submission router in the loop: shard crash-loops,
# directory-replica outages and the mid-window spillover wave must hold
# every per-shard AND global invariant on each seed.
./build/bench/bench_chaos_campaign --shards 4 --seeds 10 --jobs 4
./build/bench/bench_chaos_campaign --shards 4 --serialize-on-send --seeds 10 --jobs 4

echo "== tier-1: serialize-on-send campaign leg (wire codecs live) =="
# Every control-plane message round-trips through its fuxi::wire codec
# at Send; hashes must match the default in-memory-delivery mode (the
# SerializeOnSendIsInvisibleToTheSimulation test checks the equality,
# this leg sweeps more seeds in the ON configuration).
./build/bench/bench_chaos_campaign --serialize-on-send --seeds 10 --jobs 4

if [[ "$skip_asan" == 1 ]]; then
  echo "== tier-1: ASan/UBSan pass skipped =="
else
  echo "== tier-1: chaos campaign + wire fuzz under ASan/UBSan =="
  cmake -B build-asan -S . -DFUXI_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)" --target fuxi_tests
  (cd build-asan &&
   ./tests/fuxi_tests \
     --gtest_filter='*ChaosCampaign.*:Shard*:ScriptedChaosTest.*:Wire*:NetworkTest.*:Planner*')
fi

if [[ "$skip_tsan" == 1 ]]; then
  echo "== tier-1: TSan pass skipped =="
else
  echo "== tier-1: parallel sweep engine under TSan =="
  # The work-stealing pool, the concurrent SimClusters and the parallel
  # differential suite — every place campaign threads touch shared
  # memory — under the race detector.
  cmake -B build-tsan -S . -DFUXI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target fuxi_tests bench_chaos_campaign
  (cd build-tsan &&
   ./tests/fuxi_tests \
     --gtest_filter='SweepRunnerTest.*:SweepDeterminism.*:SweepViolation.*:ConcurrentClusters.*:*DifferentialSweep*')
  ./build-tsan/bench/bench_chaos_campaign --seeds 10 --jobs 4
  ./build-tsan/bench/bench_chaos_campaign --shards 4 --seeds 10 --jobs 4
fi

echo "tier-1 OK"
