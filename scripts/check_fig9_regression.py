#!/usr/bin/env python3
"""Guard the incremental-scheduling fast path against perf regressions.

Compares a freshly generated Figure 9 report (bench_fig9_scheduling_time
--smoke/--ladder --json ...) against the checked-in baseline
bench/baselines/BENCH_fig9.json. Points are matched by cluster size;
p50 and p99 per-request scheduling times may not regress by more than
--threshold (default 2x). Sub-floor values (< --floor-ms) are treated as
equal: at microsecond scale the reservoir percentiles jitter and a 2x
ratio there is noise, not a regression.

Exit status: 0 OK, 1 regression, 2 usage/IO error.

Usage:
  scripts/check_fig9_regression.py CANDIDATE.json [BASELINE.json]
      [--threshold 2.0] [--floor-ms 0.02]
"""

import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir, "bench", "baselines", "BENCH_fig9.json")

METRICS = ("p50_ms", "p99_ms")


def load_points(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as err:
        print("check_fig9: cannot read %s: %s" % (path, err), file=sys.stderr)
        sys.exit(2)
    points = report.get("points")
    if not isinstance(points, list) or not points:
        print("check_fig9: %s has no points" % path, file=sys.stderr)
        sys.exit(2)
    return {int(p["machines"]): p for p in points}


def main(argv):
    threshold = 2.0
    floor_ms = 0.02
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--threshold" and i + 1 < len(argv):
            threshold = float(argv[i + 1])
            i += 2
        elif arg == "--floor-ms" and i + 1 < len(argv):
            floor_ms = float(argv[i + 1])
            i += 2
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(arg)
            i += 1
    if not paths or len(paths) > 2:
        print(__doc__, file=sys.stderr)
        return 2

    candidate_path = paths[0]
    baseline_path = paths[1] if len(paths) == 2 else DEFAULT_BASELINE
    candidate = load_points(candidate_path)
    baseline = load_points(baseline_path)

    compared = 0
    failures = []
    for machines, cand in sorted(candidate.items()):
        base = baseline.get(machines)
        if base is None:
            print("check_fig9: no baseline point for %d machines, skipping"
                  % machines)
            continue
        for metric in METRICS:
            cand_ms = float(cand[metric])
            base_ms = float(base[metric])
            compared += 1
            if cand_ms <= floor_ms and base_ms <= floor_ms:
                verdict = "ok (sub-floor)"
            elif cand_ms > max(base_ms, floor_ms) * threshold:
                verdict = "REGRESSION (>%.1fx)" % threshold
                failures.append((machines, metric, base_ms, cand_ms))
            else:
                verdict = "ok"
            print("  %5d machines %-7s baseline=%.4fms candidate=%.4fms %s"
                  % (machines, metric, base_ms, cand_ms, verdict))

    if compared == 0:
        print("check_fig9: no comparable points between %s and %s"
              % (candidate_path, baseline_path), file=sys.stderr)
        return 2
    if failures:
        print("check_fig9: FAIL — scheduling time regressed vs %s"
              % baseline_path, file=sys.stderr)
        return 1
    print("check_fig9: OK (%d comparisons, threshold %.1fx)"
          % (compared, threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
