#include "shard/shard_directory.h"

namespace fuxi::shard {

ShardDirectory::ShardDirectory(sim::Simulator* simulator,
                               net::Network* network, NodeId self)
    : sim::Actor(simulator), network_(network), self_(self) {
  endpoint_.Handle<master::ShardStatusRpc>(
      [this](const net::Envelope&, const master::ShardStatusRpc& rpc) {
        OnStatus(rpc);
      });
  endpoint_.Handle<ShardLookupRpc>(
      [this](const net::Envelope&, const ShardLookupRpc& rpc) {
        OnLookup(rpc);
      });
}

void ShardDirectory::Start() { network_->Register(self_, &endpoint_); }

ShardEntry ShardDirectory::entry(int32_t shard) const {
  auto it = table_.find(shard);
  return it == table_.end() ? ShardEntry{} : it->second;
}

void ShardDirectory::OnStatus(const master::ShardStatusRpc& rpc) {
  auto it = table_.find(rpc.shard);
  if (it != table_.end() && rpc.generation < it->second.generation) {
    // A deposed primary's stale push: fence it out.
    ++fenced_reports_;
    return;
  }
  ShardEntry& e = table_[rpc.shard];
  e.shard = rpc.shard;
  e.primary = rpc.primary;
  e.generation = rpc.generation;
  e.machines_online = rpc.machines_online;
  e.total = rpc.total;
  e.granted = rpc.granted;
  e.updated_at = Now();
}

void ShardDirectory::OnLookup(const ShardLookupRpc& rpc) {
  ShardDirectoryReplyRpc reply;
  reply.request_id = rpc.request_id;
  reply.entries.reserve(table_.size());
  for (const auto& [shard, entry] : table_) reply.entries.push_back(entry);
  network_->Send(self_, rpc.reply_to, reply);
}

}  // namespace fuxi::shard
