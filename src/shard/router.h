#ifndef FUXI_SHARD_ROUTER_H_
#define FUXI_SHARD_ROUTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "master/messages.h"
#include "net/network.h"
#include "obs/observability.h"
#include "shard/messages.h"
#include "sim/simulator.h"

namespace fuxi::shard {

/// Tuning knobs for the submission router. Times are virtual seconds.
struct RouterOptions {
  int shards = 1;
  /// Directory replicas, tried in order; the router fails over to the
  /// next replica when the current one stops answering lookups.
  std::vector<NodeId> directory;
  double directory_refresh = 0.5;    ///< table refresh cadence
  double directory_timeout = 1.5;    ///< replica silence before failover
  /// A shard whose directory row is older than this is treated as
  /// mid-failover (its primary stopped reporting) and skipped.
  double status_stale_after = 3.0;
  /// A shard whose free share (per physical dimension) drops below this
  /// fraction is saturated; submissions spill to a healthier shard.
  double spill_free_fraction = 0.05;
  /// Resubmission backoff while no shard has accepted the app.
  BackoffPolicy submit_backoff{0.2, 2.0, 5.0, 0.3};
  uint64_t seed = 42;
};

/// The federation front door (degraded-mode spillover): application
/// clients submit RouteSubmitRpc here instead of talking to one
/// FuxiMaster. The router keeps a directory-fed view of every shard's
/// primary and load, sends the submission to the app's home shard
/// (app id modulo shard count), spills to the healthiest other shard
/// when the home is saturated or mid-failover, and retries with
/// jittered exponential backoff until some shard primary accepts —
/// so a crash-looping shard stalls only its own submissions, and only
/// until its election settles or a spill target absorbs them.
class SubmissionRouter : public sim::Actor {
 public:
  SubmissionRouter(sim::Simulator* simulator, net::Network* network,
                   NodeId self, RouterOptions options);

  /// Registers the endpoint and starts the directory refresh loop.
  void Start();

  /// Wires the cluster-wide observability bundle in (null detaches).
  void set_observability(obs::Observability* obs);

  NodeId node() const { return self_; }
  int shard_of(AppId app) const {
    return static_cast<int>(app.value() % options_.shards);
  }

  // --- introspection (tests / campaign assertions) ---
  uint64_t submits() const { return submits_; }
  uint64_t spillovers() const { return spillovers_; }
  uint64_t retries() const { return retries_; }
  uint64_t directory_failovers() const { return directory_failovers_; }
  size_t pending_count() const { return pending_.size(); }
  /// Latest directory row for `shard` (default entry when unknown).
  ShardEntry entry(int32_t shard) const;

 private:
  struct Pending {
    std::string quota_group;
    Json description;
    NodeId client;          ///< original submitter, gets the RouteReplyRpc
    int32_t shard = -1;     ///< last shard tried
    uint64_t epoch = 0;     ///< invalidates stale retry timers
    Backoff backoff;

    Pending(const BackoffPolicy& policy, uint64_t seed)
        : backoff(policy, seed) {}
  };

  void OnRouteSubmit(const RouteSubmitRpc& rpc);
  void OnSubmitReply(const net::Envelope& env,
                     const master::SubmitAppReplyRpc& rpc);
  void OnDirectoryReply(const ShardDirectoryReplyRpc& rpc);

  void RefreshDirectory();
  /// (Re)sends the pending submission for `app` to the chosen shard and
  /// arms the next backoff retry.
  void TrySubmit(AppId app);
  /// Routing decision: the home shard when healthy and unsaturated,
  /// else the healthiest spill target; -1 when no shard is routable.
  /// `why` receives a short reason for the audit note.
  int32_t PickShard(AppId app, std::string* why) const;
  bool Healthy(int32_t shard) const;
  bool Saturated(const ShardEntry& e) const;
  void AuditRoute(AppId app, int32_t shard, const std::string& why);

  net::Network* network_;
  NodeId self_;
  RouterOptions options_;
  net::Endpoint endpoint_;

  std::map<int32_t, ShardEntry> table_;
  std::map<AppId, Pending> pending_;
  size_t active_replica_ = 0;
  double last_directory_reply_ = -1;
  uint64_t next_request_id_ = 1;

  uint64_t submits_ = 0;
  uint64_t spillovers_ = 0;
  uint64_t retries_ = 0;
  uint64_t directory_failovers_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* submits_counter_ = nullptr;
  obs::Counter* spillovers_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* failovers_counter_ = nullptr;
};

}  // namespace fuxi::shard

#endif  // FUXI_SHARD_ROUTER_H_
