#ifndef FUXI_SHARD_SHARD_DIRECTORY_H_
#define FUXI_SHARD_SHARD_DIRECTORY_H_

#include <map>

#include "master/messages.h"
#include "net/network.h"
#include "shard/messages.h"
#include "sim/simulator.h"

namespace fuxi::shard {

/// One replica of the shard directory: a passive table of per-shard
/// status rows, fed by shard primaries pushing master::ShardStatusRpc
/// and read by the router with ShardLookupRpc.
///
/// Replicas are independent — there is no replication protocol between
/// them; each primary pushes to every replica, so the table converges
/// as long as any replica is reachable. Fencing rides on the election
/// generation: a row is only replaced by a report with generation >=
/// the stored one, so a deposed primary that keeps pushing stale status
/// (it has not yet noticed losing its lease) can never shadow the new
/// primary's row.
class ShardDirectory : public sim::Actor {
 public:
  ShardDirectory(sim::Simulator* simulator, net::Network* network,
                 NodeId self);

  /// Registers the endpoint with the network.
  void Start();

  NodeId node() const { return self_; }
  size_t known_shards() const { return table_.size(); }

  /// Test hook: the stored row for `shard` (default-constructed entry
  /// when no report was ever accepted).
  ShardEntry entry(int32_t shard) const;

  /// Status reports rejected by generation fencing.
  uint64_t fenced_reports() const { return fenced_reports_; }

 private:
  void OnStatus(const master::ShardStatusRpc& rpc);
  void OnLookup(const ShardLookupRpc& rpc);

  net::Network* network_;
  NodeId self_;
  net::Endpoint endpoint_;
  std::map<int32_t, ShardEntry> table_;
  uint64_t fenced_reports_ = 0;
};

}  // namespace fuxi::shard

#endif  // FUXI_SHARD_SHARD_DIRECTORY_H_
