#include "shard/messages.h"

namespace fuxi::shard {

void WireEncode(wire::Writer& w, const ShardEntry& m) {
  w.I32(m.shard);
  w.Id(m.primary);
  w.U64(m.generation);
  w.I64(m.machines_online);
  WireEncode(w, m.total);
  WireEncode(w, m.granted);
  w.F64(m.updated_at);
}

Status WireDecode(wire::Reader& r, ShardEntry& m) {
  FUXI_RETURN_IF_ERROR(r.I32(&m.shard));
  FUXI_RETURN_IF_ERROR(r.Id(&m.primary));
  FUXI_RETURN_IF_ERROR(r.U64(&m.generation));
  FUXI_RETURN_IF_ERROR(r.I64(&m.machines_online));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.total));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.granted));
  return r.F64(&m.updated_at);
}

void WireEncode(wire::Writer& w, const ShardLookupRpc& m) {
  w.Id(m.reply_to);
  w.U64(m.request_id);
}

Status WireDecode(wire::Reader& r, ShardLookupRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.reply_to));
  return r.U64(&m.request_id);
}

void WireEncode(wire::Writer& w, const ShardDirectoryReplyRpc& m) {
  w.U64(m.request_id);
  w.Vec(m.entries);
}

Status WireDecode(wire::Reader& r, ShardDirectoryReplyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.request_id));
  return r.Vec(&m.entries);
}

void WireEncode(wire::Writer& w, const RouteSubmitRpc& m) {
  w.Id(m.app);
  w.Str(m.quota_group);
  WireEncode(w, m.description);
  w.Id(m.client);
}

Status WireDecode(wire::Reader& r, RouteSubmitRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Str(&m.quota_group));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.description));
  return r.Id(&m.client);
}

void WireEncode(wire::Writer& w, const RouteReplyRpc& m) {
  w.Id(m.app);
  w.I32(m.shard);
  w.Bool(m.accepted);
  w.Str(m.error);
}

Status WireDecode(wire::Reader& r, RouteReplyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.I32(&m.shard));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.accepted));
  return r.Str(&m.error);
}

}  // namespace fuxi::shard
