#ifndef FUXI_SHARD_MESSAGES_H_
#define FUXI_SHARD_MESSAGES_H_

#include <string>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/json.h"
#include "wire/wire.h"

namespace fuxi::shard {

// ---------------------------------------------------------------------
// Shard directory (replicated lookup service).
//
// Shard primaries push master::ShardStatusRpc reports at the directory
// replicas (see master/messages.h — the push is master behaviour). The
// router reads the resulting table with the lookup RPCs below, failing
// over between replicas when one stops answering.
// ---------------------------------------------------------------------

/// One shard's row in the directory table.
struct ShardEntry {
  int32_t shard = 0;
  NodeId primary;            ///< invalid when no report was ever seen
  uint64_t generation = 0;   ///< fences deposed primaries' stale reports
  int64_t machines_online = 0;
  cluster::ResourceVector total;
  cluster::ResourceVector granted;
  double updated_at = -1;    ///< virtual time the replica stored the report
};

/// Router → directory replica: "send me the whole table".
struct ShardLookupRpc {
  NodeId reply_to;
  uint64_t request_id = 0;
};

/// Directory replica → router: the table snapshot.
struct ShardDirectoryReplyRpc {
  uint64_t request_id = 0;
  std::vector<ShardEntry> entries;
};

// ---------------------------------------------------------------------
// Submission routing. Clients submit through the router instead of a
// single master; the router picks the app's home shard, spills to a
// healthy shard when the home is saturated or mid-failover, and retries
// with jittered exponential backoff until some shard accepts.
// ---------------------------------------------------------------------

/// Client → router: application submission (the federated analogue of
/// master::SubmitAppRpc).
struct RouteSubmitRpc {
  AppId app;
  std::string quota_group;
  Json description;
  NodeId client;  ///< where the RouteReplyRpc goes
};

/// Router → client: which shard accepted the app. The client binds its
/// application master to that shard's election lock.
struct RouteReplyRpc {
  AppId app;
  int32_t shard = -1;
  bool accepted = false;
  std::string error;
};

// ---------------------------------------------------------------------
// Wire codecs (fuxi::wire, DESIGN.md §10).
// ---------------------------------------------------------------------

#define FUXI_SHARD_DECLARE_WIRE(TYPE)                  \
  void WireEncode(wire::Writer& w, const TYPE& m);     \
  Status WireDecode(wire::Reader& r, TYPE& m);         \
  constexpr wire::TypeInfo WireTypeInfo(const TYPE*) { \
    return {wire::MsgTag::k##TYPE, 1};                 \
  }

FUXI_SHARD_DECLARE_WIRE(ShardLookupRpc)
FUXI_SHARD_DECLARE_WIRE(ShardDirectoryReplyRpc)
FUXI_SHARD_DECLARE_WIRE(RouteSubmitRpc)
FUXI_SHARD_DECLARE_WIRE(RouteReplyRpc)

#undef FUXI_SHARD_DECLARE_WIRE

// ShardEntry is nested (unframed).
void WireEncode(wire::Writer& w, const ShardEntry& m);
Status WireDecode(wire::Reader& r, ShardEntry& m);

}  // namespace fuxi::shard

#endif  // FUXI_SHARD_MESSAGES_H_
