#include "shard/router.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::shard {

SubmissionRouter::SubmissionRouter(sim::Simulator* simulator,
                                   net::Network* network, NodeId self,
                                   RouterOptions options)
    : sim::Actor(simulator),
      network_(network),
      self_(self),
      options_(std::move(options)) {
  FUXI_CHECK(options_.shards >= 1);
  endpoint_.Handle<RouteSubmitRpc>(
      [this](const net::Envelope&, const RouteSubmitRpc& rpc) {
        OnRouteSubmit(rpc);
      });
  endpoint_.Handle<master::SubmitAppReplyRpc>(
      [this](const net::Envelope& env, const master::SubmitAppReplyRpc& rpc) {
        OnSubmitReply(env, rpc);
      });
  endpoint_.Handle<ShardDirectoryReplyRpc>(
      [this](const net::Envelope&, const ShardDirectoryReplyRpc& rpc) {
        OnDirectoryReply(rpc);
      });
}

void SubmissionRouter::Start() {
  network_->Register(self_, &endpoint_);
  last_directory_reply_ = Now();
  RefreshDirectory();
}

void SubmissionRouter::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs != nullptr) {
    submits_counter_ = obs->metrics.GetCounter("router.submits");
    spillovers_counter_ = obs->metrics.GetCounter("router.spillovers");
    retries_counter_ = obs->metrics.GetCounter("router.retries");
    failovers_counter_ = obs->metrics.GetCounter("router.directory_failovers");
  } else {
    submits_counter_ = spillovers_counter_ = retries_counter_ =
        failovers_counter_ = nullptr;
  }
}

ShardEntry SubmissionRouter::entry(int32_t shard) const {
  auto it = table_.find(shard);
  return it == table_.end() ? ShardEntry{} : it->second;
}

void SubmissionRouter::RefreshDirectory() {
  if (!options_.directory.empty()) {
    // Fail over when the active replica has been silent too long: a
    // partitioned replica answers nothing, so lookups stall until the
    // router rotates to the next one.
    if (Now() - last_directory_reply_ > options_.directory_timeout) {
      active_replica_ = (active_replica_ + 1) % options_.directory.size();
      last_directory_reply_ = Now();
      ++directory_failovers_;
      if (failovers_counter_ != nullptr) failovers_counter_->Add();
      FUXI_LOG(kInfo) << "router: directory replica silent, failing over to "
                      << options_.directory[active_replica_].value();
    }
    ShardLookupRpc lookup;
    lookup.reply_to = self_;
    lookup.request_id = next_request_id_++;
    network_->Send(self_, options_.directory[active_replica_], lookup);
  }
  After(options_.directory_refresh, [this] { RefreshDirectory(); });
}

void SubmissionRouter::OnDirectoryReply(const ShardDirectoryReplyRpc& rpc) {
  last_directory_reply_ = Now();
  for (const ShardEntry& e : rpc.entries) {
    ShardEntry& stored = table_[e.shard];
    // The same generation fence the replicas apply: never let one
    // replica's stale row roll back a fresher row another replica (or
    // an earlier reply) already gave us.
    if (e.generation < stored.generation) continue;
    stored = e;
  }
}

bool SubmissionRouter::Healthy(int32_t shard) const {
  auto it = table_.find(shard);
  if (it == table_.end()) return false;
  const ShardEntry& e = it->second;
  if (!e.primary.valid()) return false;
  return Now() - e.updated_at <= options_.status_stale_after;
}

bool SubmissionRouter::Saturated(const ShardEntry& e) const {
  if (e.machines_online <= 0) return true;
  for (cluster::DimensionId dim :
       {cluster::kCpu, cluster::kMemory}) {
    int64_t total = e.total.Get(dim);
    if (total <= 0) continue;
    int64_t free = total - e.granted.Get(dim);
    if (static_cast<double>(free) <
        options_.spill_free_fraction * static_cast<double>(total)) {
      return true;
    }
  }
  return false;
}

int32_t SubmissionRouter::PickShard(AppId app, std::string* why) const {
  int32_t home = static_cast<int32_t>(shard_of(app));
  bool home_healthy = Healthy(home);
  if (home_healthy && !Saturated(table_.at(home))) {
    *why = "home";
    return home;
  }
  // Spill: the healthiest other shard by free-CPU share (deterministic
  // tie-break on shard id). A saturated spill target is still better
  // than an unroutable home, so saturation only orders candidates here.
  int32_t best = -1;
  double best_free = -1;
  for (int32_t shard = 0; shard < options_.shards; ++shard) {
    if (shard == home || !Healthy(shard)) continue;
    const ShardEntry& e = table_.at(shard);
    int64_t total = e.total.cpu();
    double free_share =
        total > 0 ? static_cast<double>(total - e.granted.cpu()) /
                        static_cast<double>(total)
                  : 0;
    if (free_share > best_free) {
      best_free = free_share;
      best = shard;
    }
  }
  if (best >= 0) {
    *why = home_healthy ? "spill:saturated" : "spill:failover";
    return best;
  }
  if (home_healthy) {
    // Saturated home, no spill target: keep submitting home rather
    // than stalling — the master queues demand it cannot yet place.
    *why = "home:saturated";
    return home;
  }
  *why = "unroutable";
  return -1;
}

void SubmissionRouter::AuditRoute(AppId app, int32_t shard,
                                  const std::string& why) {
  if (obs_ == nullptr || !obs::AuditLog::enabled()) return;
  obs::DecisionRecord r;
  r.kind = obs::DecisionKind::kRoute;
  r.app = app.value();
  r.units = shard;
  r.note = StrFormat("home=%d %s", shard_of(app), why.c_str());
  obs_->audit.Commit(std::move(r));
}

void SubmissionRouter::OnRouteSubmit(const RouteSubmitRpc& rpc) {
  auto it = pending_.find(rpc.app);
  if (it != pending_.end()) return;  // duplicate: routing is in progress
  Pending pending(options_.submit_backoff,
                  options_.seed ^ static_cast<uint64_t>(rpc.app.value()));
  pending.quota_group = rpc.quota_group;
  pending.description = rpc.description;
  pending.client = rpc.client;
  pending_.emplace(rpc.app, std::move(pending));
  TrySubmit(rpc.app);
}

void SubmissionRouter::TrySubmit(AppId app) {
  auto it = pending_.find(app);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  uint64_t epoch = ++p.epoch;
  std::string why;
  int32_t shard = PickShard(app, &why);
  AuditRoute(app, shard, why);
  if (shard >= 0) {
    const ShardEntry& e = table_.at(shard);
    master::SubmitAppRpc submit;
    submit.app = app;
    submit.quota_group = p.quota_group;
    submit.description = p.description;
    submit.client = self_;  // the reply comes back here, not to the app
    network_->Send(self_, e.primary, submit);
    p.shard = shard;
    ++submits_;
    if (submits_counter_ != nullptr) submits_counter_->Add();
    if (shard != static_cast<int32_t>(shard_of(app))) {
      ++spillovers_;
      if (spillovers_counter_ != nullptr) spillovers_counter_->Add();
    }
  }
  // Arm the retry regardless: an unroutable app re-picks once the
  // directory recovers, and an in-flight submission to a dying primary
  // resubmits after the backoff. Replies cancel via the epoch check.
  After(p.backoff.NextDelay(), [this, app, epoch] {
    auto retry = pending_.find(app);
    if (retry == pending_.end() || retry->second.epoch != epoch) return;
    ++retries_;
    if (retries_counter_ != nullptr) retries_counter_->Add();
    TrySubmit(app);
  });
}

void SubmissionRouter::OnSubmitReply(const net::Envelope& env,
                                     const master::SubmitAppReplyRpc& rpc) {
  auto it = pending_.find(rpc.app);
  if (it == pending_.end()) return;  // a slower duplicate acceptance
  Pending& p = it->second;
  // Map the accepting master back to its shard: retries may have raced
  // submissions to two shards, and the app must bind to the one that
  // actually answered (a stale registration on the other shard is
  // benign — it never receives demand).
  int32_t shard = p.shard;
  for (const auto& [id, entry] : table_) {
    if (entry.primary == env.from) {
      shard = id;
      break;
    }
  }
  RouteReplyRpc reply;
  reply.app = rpc.app;
  reply.shard = shard;
  reply.accepted = rpc.accepted;
  reply.error = rpc.error;
  network_->Send(self_, p.client, reply);
  pending_.erase(it);
}

}  // namespace fuxi::shard
