#ifndef FUXI_JOB_JOB_MASTER_H_
#define FUXI_JOB_JOB_MASTER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "job/description.h"
#include "job/messages.h"
#include "master/resource_client.h"
#include "runtime/sim_cluster.h"

namespace fuxi::job {

struct JobMasterOptions {
  /// Distinct instances that must fail on a machine before the *task*
  /// blacklists it (§4.3.2's bottom-up job-level blacklist).
  int task_blacklist_threshold = 2;
  /// Instances that must run `slow_instance_factor`x slower than the
  /// task average on a machine before it is treated as a slow/bad node.
  int slow_instance_threshold = 2;
  double slow_instance_factor = 3.0;
  /// Minimum completed instances before slowness judgements are made.
  int64_t slow_min_samples = 10;
  /// Tasks that must blacklist a machine before the *job* blacklists it
  /// and reports it to FuxiMaster for cross-job judgement.
  int job_blacklist_threshold = 2;
  /// Cadence of the long-tail / backup-instance check.
  double backup_check_interval = 2.0;
  /// A worker silent for this long is presumed dead and its instance
  /// requeued (the TaskWorker status stream doubles as its heartbeat).
  double worker_silence_timeout = 7.0;
  /// Fraction of instances that must be done before backups launch
  /// (criterion 1, §4.3.2).
  double backup_done_fraction = 0.9;
  /// How many times slower than the average done-instance duration a
  /// running instance must be (criterion 2).
  double backup_slowdown_factor = 2.0;
  /// Minimum spacing between instance-status snapshot writes; the
  /// snapshot is event-driven but throttled.
  double snapshot_min_interval = 0.5;
  /// Window of the pending queue scanned for a locality match when
  /// dispatching to an idle worker.
  size_t locality_scan_window = 32;
  /// Ablations (benchmarks flip these): Fuxi reuses a granted container
  /// for many instances (§3.2.3); with reuse off the container is
  /// released after every instance and re-requested, YARN-style.
  bool reuse_containers = true;
  /// With locality off, no DFS-based hints or preferred dispatch.
  bool use_locality = true;
};

/// Per-task instance scheduler (the TaskMaster of the two-level
/// hierarchical model, §4.4): owns the task's instances, dispatches
/// them to registered workers with data locality and load balance,
/// tracks failures for the multi-level blacklist, and runs the
/// backup-instance (speculative execution) scheme.
class TaskMaster {
 public:
  enum class InstanceStateKind { kPending, kRunning, kDone };

  struct InstanceState {
    InstanceStateKind state = InstanceStateKind::kPending;
    WorkerId worker;         ///< primary runner when kRunning
    WorkerId backup_worker;  ///< valid when a backup copy also runs
    double started_at = 0;
    int attempts = 0;
    std::vector<MachineId> preferred;  ///< replica machines of its input
    std::set<MachineId> avoid;         ///< machines it failed on
  };

  struct WorkerInfo {
    WorkerId worker;
    MachineId machine;
    NodeId node;
    int64_t instance = -1;  ///< -1 idle
    bool running_backup = false;
    double last_seen = 0;   ///< last ready/status/done from the worker
  };

  TaskMaster(const TaskConfig& config, uint32_t slot_id);

  const TaskConfig& config() const { return config_; }
  uint32_t slot_id() const { return slot_id_; }

  bool launched = false;   ///< demand published to FuxiMaster
  bool complete() const { return done_count_ == config_.instances; }
  int64_t done_count() const { return done_count_; }
  int64_t pending_count() const {
    return static_cast<int64_t>(pending_.size());
  }
  int64_t running_count() const { return running_count_; }
  int64_t backups_launched() const { return backups_launched_; }

  const std::map<WorkerId, WorkerInfo>& workers() const { return workers_; }
  const std::set<MachineId>& blacklist() const { return blacklist_; }

  /// Sets per-instance preferred machines from the DFS placement.
  void SetInstanceLocality(int64_t instance,
                           std::vector<MachineId> preferred);

  /// Registers a worker (container) of this task.
  void AddWorker(WorkerId worker, MachineId machine, NodeId node,
                 double now);

  /// Records worker liveness (any message from it).
  void TouchWorker(WorkerId worker, double now);

  /// Workers silent longer than `timeout`; the JobMaster treats them as
  /// dead (their status stream is the liveness signal).
  std::vector<WorkerId> SilentWorkers(double now, double timeout) const;
  bool HasWorker(WorkerId worker) const {
    return workers_.count(worker) > 0;
  }

  /// Removes a worker; a running instance on it is requeued. Returns
  /// its info (for container release bookkeeping).
  Result<WorkerInfo> RemoveWorker(WorkerId worker, bool count_as_failure);

  /// Picks the next instance for an idle worker, preferring instances
  /// whose input is local to the worker's machine (bounded scan).
  /// Returns -1 when nothing is dispatchable to this worker.
  int64_t PickInstanceFor(const WorkerInfo& worker);

  /// Marks the instance running on `worker`.
  void MarkRunning(int64_t instance, WorkerId worker, double now,
                   bool is_backup);

  /// Marks done. Returns the *other* worker still running a copy (to be
  /// cancelled), or an invalid WorkerId. No-op when already done.
  struct DoneResult {
    bool first_completion = false;
    WorkerId other_worker;  ///< running a redundant copy
  };
  DoneResult MarkDone(int64_t instance, WorkerId worker, double now);

  /// Instance failed on `machine`: requeues it, bumps the failure
  /// bookkeeping. Returns true when the machine newly entered the task
  /// blacklist.
  bool RecordFailure(int64_t instance, MachineId machine);

  /// Instance on `machine` ran far slower than the task average (the
  /// paper's job-level health estimation from worker statuses). Returns
  /// true when the machine newly entered the task blacklist.
  bool RecordSlowness(MachineId machine);

  /// Average duration of completed instances (0 when too few samples).
  double AverageDoneDuration() const {
    return done_count_ > 0
               ? done_duration_sum_ / static_cast<double>(done_count_)
               : 0;
  }

  /// Post-failover reattachment: binds a pending instance to the worker
  /// that reports to be running it.
  void AttachRunning(int64_t instance, WorkerId worker, double now);

  /// Puts a believed-running instance back into the pending queue and
  /// idles its worker (lost ExecuteInstance message).
  void Requeue(int64_t instance, WorkerId worker);

  /// Backup-instance sweep (paper's three criteria). Returns instances
  /// that deserve a backup copy right now.
  std::vector<int64_t> FindLongTails(double now) const;

  /// Locality factor for running `instance` on `machine` (1.0 local /
  /// 1.15 rack / 1.3 remote), given the topology.
  double LocalityFactor(int64_t instance, MachineId machine,
                        const cluster::ClusterTopology& topology) const;

  const InstanceState& instance(int64_t id) const {
    return instances_[static_cast<size_t>(id)];
  }

  /// Snapshot support: done instance ids (the light-weight state).
  std::vector<int64_t> DoneInstances() const;
  /// Restores "done" marks from a snapshot; everything else pending.
  void RestoreDone(const std::vector<int64_t>& done);

  /// Workers currently idle, in registration order.
  std::vector<WorkerId> IdleWorkers() const;

  JobMasterOptions options;

 private:
  TaskConfig config_;
  uint32_t slot_id_;
  std::vector<InstanceState> instances_;
  std::deque<int64_t> pending_;
  std::map<WorkerId, WorkerInfo> workers_;
  int64_t done_count_ = 0;
  int64_t running_count_ = 0;
  int64_t backups_launched_ = 0;
  double done_duration_sum_ = 0;
  std::map<MachineId, std::set<int64_t>> failures_by_machine_;
  std::map<MachineId, int> slow_counts_;
  std::set<MachineId> blacklist_;
};

/// The JobMaster: Fuxi's application master for DAG jobs (§4). Parses
/// the description, schedules tasks in topological order, negotiates
/// containers with FuxiMaster through the incremental protocol, runs a
/// TaskMaster per task for fine-grained instance scheduling, survives
/// its own crash via the instance-status snapshot, and feeds the
/// multi-level blacklist.
class JobMaster {
 public:
  struct Stats {
    double submitted_at = 0;
    double am_started_at = -1;
    double finished_at = -1;
    int64_t instances_done = 0;
    int64_t backups_launched = 0;
    int64_t workers_started = 0;
    int64_t instance_failures = 0;
    /// Worker start overhead (Table 2): plan sent -> agent confirms.
    double worker_start_latency_sum = 0;
    int64_t worker_start_count = 0;
    /// Instance running overhead (Table 2): AM-observed duration minus
    /// worker-observed execution time.
    double instance_overhead_sum = 0;
    int64_t instance_overhead_count = 0;
  };

  using DoneCallback = std::function<void(JobMaster*)>;

  JobMaster(runtime::SimCluster* cluster, AppId app, JobDescription desc,
            uint64_t seed, JobMasterOptions options = JobMasterOptions());
  ~JobMaster();

  void StartMaster();
  void CrashMaster();
  void RestartMaster();

  bool master_running() const { return running_; }
  bool finished() const { return finished_; }
  AppId app() const { return app_; }
  NodeId node() const { return node_; }
  const Stats& stats() const { return stats_; }
  const JobDescription& description() const { return desc_; }
  const TaskMaster* task(const std::string& name) const;
  const master::ResourceClient* client() const { return client_.get(); }

  void MarkSubmitted(double when) { stats_.submitted_at = when; }
  void set_done_callback(DoneCallback callback) {
    done_callback_ = std::move(callback);
  }

  /// Machines blacklisted at job level (reported to FuxiMaster).
  const std::set<MachineId>& job_blacklist() const { return job_blacklist_; }

  uint64_t snapshot_writes() const { return snapshot_writes_; }

 private:
  std::string SnapshotKey() const;

  void LaunchRunnableTasks();
  void LaunchTask(TaskMaster* task);
  bool TaskIsRunnable(const TaskMaster& task) const;
  void OnGrantChange(uint32_t slot, MachineId machine, int64_t delta,
                     resource::RevocationReason reason);
  void TryStartWorkers(TaskMaster* task, MachineId machine);
  void OnWorkerStarted(const master::WorkerStartedRpc& rpc);
  void OnWorkerReady(const WorkerReadyRpc& rpc);
  void OnInstanceDone(const InstanceDoneRpc& rpc);
  void OnWorkerStatus(const WorkerStatusReportRpc& rpc);
  void OnWorkerCrashed(const master::WorkerCrashedRpc& rpc);
  void OnAdoptQuery(const master::AdoptQueryRpc& rpc);
  void DispatchTo(TaskMaster* task, WorkerId worker);
  void DispatchIdle(TaskMaster* task);
  void ReleaseWorker(TaskMaster* task, WorkerId worker);
  void HandleTaskBlacklist(TaskMaster* task, MachineId machine);
  void OnTaskProgress(TaskMaster* task);
  void BackupTick();
  void MarkSnapshotDirty();
  void WriteSnapshot();
  void RestoreFromSnapshot();
  TaskMaster* FindTaskBySlot(uint32_t slot);
  TaskMaster* FindTask(const std::string& name);
  void ComputeLocality(TaskMaster* task);

  runtime::SimCluster* cluster_;
  AppId app_;
  JobDescription desc_;
  NodeId node_;
  Rng rng_;
  JobMasterOptions options_;

  bool running_ = false;
  bool finished_ = false;
  uint64_t life_ = 0;
  net::Endpoint endpoint_;
  std::unique_ptr<master::ResourceClient> client_;
  std::vector<std::unique_ptr<TaskMaster>> tasks_;
  uint64_t next_plan_id_ = 1;
  /// plan id -> (slot, machine, sent_at) awaiting WorkerStartedRpc.
  struct PendingPlan {
    uint32_t slot;
    MachineId machine;
    double sent_at;
  };
  std::map<uint64_t, PendingPlan> pending_plans_;
  /// Workers we stopped or presumed dead: their in-flight status
  /// reports must not be re-adopted as live workers (zombie guard).
  std::set<WorkerId> stopped_workers_;
  std::set<MachineId> job_blacklist_;

  bool snapshot_dirty_ = false;
  double last_snapshot_at_ = -1e9;
  bool snapshot_timer_armed_ = false;
  uint64_t snapshot_writes_ = 0;

  Stats stats_;
  DoneCallback done_callback_;
};

}  // namespace fuxi::job

#endif  // FUXI_JOB_JOB_MASTER_H_
