#include "job/job_master.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::job {

TaskMaster::TaskMaster(const TaskConfig& config, uint32_t slot_id)
    : config_(config), slot_id_(slot_id) {
  instances_.resize(static_cast<size_t>(config.instances));
  for (int64_t i = 0; i < config.instances; ++i) pending_.push_back(i);
}

void TaskMaster::SetInstanceLocality(int64_t instance,
                                     std::vector<MachineId> preferred) {
  instances_[static_cast<size_t>(instance)].preferred =
      std::move(preferred);
}

void TaskMaster::AddWorker(WorkerId worker, MachineId machine, NodeId node,
                           double now) {
  workers_[worker] = WorkerInfo{worker, machine, node, -1, false, now};
}

void TaskMaster::TouchWorker(WorkerId worker, double now) {
  auto it = workers_.find(worker);
  if (it != workers_.end()) it->second.last_seen = now;
}

std::vector<WorkerId> TaskMaster::SilentWorkers(double now,
                                                double timeout) const {
  std::vector<WorkerId> silent;
  for (const auto& [id, info] : workers_) {
    if (now - info.last_seen > timeout) silent.push_back(id);
  }
  return silent;
}

Result<TaskMaster::WorkerInfo> TaskMaster::RemoveWorker(
    WorkerId worker, bool count_as_failure) {
  auto it = workers_.find(worker);
  if (it == workers_.end()) {
    return Status::NotFound("unknown worker " + worker.ToString());
  }
  WorkerInfo info = it->second;
  workers_.erase(it);
  if (info.instance >= 0) {
    InstanceState& instance = instances_[static_cast<size_t>(info.instance)];
    if (instance.state == InstanceStateKind::kRunning) {
      if (info.running_backup) {
        // Only the backup copy died; the primary keeps running.
        instance.backup_worker = WorkerId();
      } else if (instance.backup_worker.valid() &&
                 workers_.count(instance.backup_worker) > 0) {
        // Primary died but a backup copy lives: promote it.
        instance.worker = instance.backup_worker;
        instance.backup_worker = WorkerId();
        workers_[instance.worker].running_backup = false;
      } else {
        instance.state = InstanceStateKind::kPending;
        instance.worker = WorkerId();
        instance.backup_worker = WorkerId();
        --running_count_;
        pending_.push_front(info.instance);  // re-run soon
      }
      if (count_as_failure) {
        ++instance.attempts;
        instance.avoid.insert(info.machine);
      }
    }
  }
  return info;
}

int64_t TaskMaster::PickInstanceFor(const WorkerInfo& worker) {
  if (pending_.empty()) return -1;
  if (blacklist_.count(worker.machine) > 0) return -1;
  // Bounded locality scan: prefer an instance whose input lives on this
  // worker's machine; otherwise take the oldest dispatchable one.
  size_t window = std::min(options.locality_scan_window, pending_.size());
  size_t fallback = pending_.size();  // sentinel
  for (size_t i = 0; i < window; ++i) {
    int64_t id = pending_[i];
    const InstanceState& instance = instances_[static_cast<size_t>(id)];
    if (instance.avoid.count(worker.machine) > 0) continue;
    if (std::find(instance.preferred.begin(), instance.preferred.end(),
                  worker.machine) != instance.preferred.end()) {
      pending_.erase(pending_.begin() + static_cast<long>(i));
      return id;
    }
    if (fallback == pending_.size()) fallback = i;
  }
  if (fallback != pending_.size()) {
    int64_t id = pending_[fallback];
    pending_.erase(pending_.begin() + static_cast<long>(fallback));
    return id;
  }
  // Everything in the window avoids this machine; deep-scan the rest.
  for (size_t i = window; i < pending_.size(); ++i) {
    int64_t id = pending_[i];
    if (instances_[static_cast<size_t>(id)].avoid.count(worker.machine) ==
        0) {
      pending_.erase(pending_.begin() + static_cast<long>(i));
      return id;
    }
  }
  return -1;
}

void TaskMaster::MarkRunning(int64_t id, WorkerId worker, double now,
                             bool is_backup) {
  InstanceState& instance = instances_[static_cast<size_t>(id)];
  auto wit = workers_.find(worker);
  FUXI_CHECK(wit != workers_.end());
  wit->second.instance = id;
  wit->second.running_backup = is_backup;
  if (is_backup) {
    FUXI_CHECK(instance.state == InstanceStateKind::kRunning);
    instance.backup_worker = worker;
    ++backups_launched_;
    return;
  }
  FUXI_CHECK(instance.state == InstanceStateKind::kPending);
  instance.state = InstanceStateKind::kRunning;
  instance.worker = worker;
  instance.started_at = now;
  ++running_count_;
}

TaskMaster::DoneResult TaskMaster::MarkDone(int64_t id, WorkerId worker,
                                            double now) {
  DoneResult result;
  InstanceState& instance = instances_[static_cast<size_t>(id)];
  // Free the reporting worker regardless.
  auto wit = workers_.find(worker);
  if (wit != workers_.end() && wit->second.instance == id) {
    wit->second.instance = -1;
    wit->second.running_backup = false;
  }
  if (instance.state == InstanceStateKind::kDone) return result;
  if (instance.state == InstanceStateKind::kRunning) {
    --running_count_;
    done_duration_sum_ += now - instance.started_at;
  } else {
    // Completion report for an instance we had requeued (e.g. a worker
    // presumed dead finished after all): take the result, drop the
    // pending copy.
    auto pit = std::find(pending_.begin(), pending_.end(), id);
    if (pit != pending_.end()) pending_.erase(pit);
  }
  instance.state = InstanceStateKind::kDone;
  ++done_count_;
  result.first_completion = true;
  // The losing copy (primary or backup) must be cancelled.
  WorkerId other;
  if (instance.worker.valid() && instance.worker != worker) {
    other = instance.worker;
  }
  if (instance.backup_worker.valid() && instance.backup_worker != worker) {
    other = instance.backup_worker;
  }
  if (other.valid()) {
    auto oit = workers_.find(other);
    if (oit != workers_.end() && oit->second.instance == id) {
      result.other_worker = other;
      oit->second.instance = -1;
      oit->second.running_backup = false;
    }
  }
  instance.worker = WorkerId();
  instance.backup_worker = WorkerId();
  return result;
}

void TaskMaster::AttachRunning(int64_t id, WorkerId worker, double now) {
  InstanceState& instance = instances_[static_cast<size_t>(id)];
  auto wit = workers_.find(worker);
  if (wit == workers_.end()) return;
  if (instance.state == InstanceStateKind::kPending) {
    auto pit = std::find(pending_.begin(), pending_.end(), id);
    if (pit != pending_.end()) pending_.erase(pit);
    instance.state = InstanceStateKind::kRunning;
    instance.worker = worker;
    instance.started_at = now;
    ++running_count_;
    wit->second.instance = id;
    wit->second.running_backup = false;
  } else if (instance.state == InstanceStateKind::kRunning &&
             instance.worker != worker && !instance.backup_worker.valid()) {
    // Two workers claim the same instance (failover edge); keep the
    // second as a de-facto backup copy — first completion wins.
    instance.backup_worker = worker;
    wit->second.instance = id;
    wit->second.running_backup = true;
  }
}

void TaskMaster::Requeue(int64_t id, WorkerId worker) {
  InstanceState& instance = instances_[static_cast<size_t>(id)];
  auto wit = workers_.find(worker);
  if (wit != workers_.end() && wit->second.instance == id) {
    wit->second.instance = -1;
    wit->second.running_backup = false;
  }
  if (instance.state != InstanceStateKind::kRunning) return;
  if (instance.backup_worker == worker) {
    instance.backup_worker = WorkerId();
    return;  // primary still runs it
  }
  if (instance.worker == worker) {
    if (instance.backup_worker.valid()) {
      instance.worker = instance.backup_worker;
      instance.backup_worker = WorkerId();
      return;
    }
    instance.state = InstanceStateKind::kPending;
    instance.worker = WorkerId();
    --running_count_;
    pending_.push_front(id);
  }
}

bool TaskMaster::RecordSlowness(MachineId machine) {
  ++slow_counts_[machine];
  if (blacklist_.count(machine) == 0 &&
      slow_counts_[machine] >= options.slow_instance_threshold) {
    blacklist_.insert(machine);
    return true;
  }
  return false;
}

bool TaskMaster::RecordFailure(int64_t id, MachineId machine) {
  InstanceState& instance = instances_[static_cast<size_t>(id)];
  instance.avoid.insert(machine);
  ++instance.attempts;
  failures_by_machine_[machine].insert(id);
  if (blacklist_.count(machine) == 0 &&
      static_cast<int>(failures_by_machine_[machine].size()) >=
          options.task_blacklist_threshold) {
    blacklist_.insert(machine);
    return true;
  }
  return false;
}

std::vector<int64_t> TaskMaster::FindLongTails(double now) const {
  std::vector<int64_t> long_tails;
  if (config_.backup_normal_seconds <= 0) return long_tails;  // disabled
  // Criterion 1: the majority (e.g. 90%) of instances finished.
  if (done_count_ <
      static_cast<int64_t>(options.backup_done_fraction *
                           static_cast<double>(config_.instances))) {
    return long_tails;
  }
  if (done_count_ == 0) return long_tails;
  double avg = done_duration_sum_ / static_cast<double>(done_count_);
  for (size_t i = 0; i < instances_.size(); ++i) {
    const InstanceState& instance = instances_[i];
    if (instance.state != InstanceStateKind::kRunning) continue;
    if (instance.backup_worker.valid()) continue;  // already backed up
    double elapsed = now - instance.started_at;
    // Criterion 2: several times the average done duration.
    if (elapsed < options.backup_slowdown_factor * avg) continue;
    // Criterion 3: beyond the user-declared normal runtime, so genuine
    // data skew is not mistaken for a sick machine.
    if (elapsed < config_.backup_normal_seconds) continue;
    long_tails.push_back(static_cast<int64_t>(i));
  }
  return long_tails;
}

double TaskMaster::LocalityFactor(
    int64_t id, MachineId machine,
    const cluster::ClusterTopology& topology) const {
  const InstanceState& instance = instances_[static_cast<size_t>(id)];
  if (instance.preferred.empty()) return 1.0;  // no input data
  bool same_rack = false;
  for (MachineId replica : instance.preferred) {
    if (replica == machine) return 1.0;
    if (topology.SameRack(replica, machine)) same_rack = true;
  }
  return same_rack ? 1.15 : 1.3;
}

std::vector<int64_t> TaskMaster::DoneInstances() const {
  std::vector<int64_t> done;
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].state == InstanceStateKind::kDone) {
      done.push_back(static_cast<int64_t>(i));
    }
  }
  return done;
}

void TaskMaster::RestoreDone(const std::vector<int64_t>& done) {
  std::set<int64_t> done_set(done.begin(), done.end());
  pending_.clear();
  done_count_ = 0;
  running_count_ = 0;
  workers_.clear();
  for (size_t i = 0; i < instances_.size(); ++i) {
    InstanceState& instance = instances_[i];
    instance.worker = WorkerId();
    instance.backup_worker = WorkerId();
    if (done_set.count(static_cast<int64_t>(i)) > 0) {
      instance.state = InstanceStateKind::kDone;
      ++done_count_;
    } else {
      instance.state = InstanceStateKind::kPending;
      pending_.push_back(static_cast<int64_t>(i));
    }
  }
}

std::vector<WorkerId> TaskMaster::IdleWorkers() const {
  std::vector<WorkerId> idle;
  for (const auto& [id, info] : workers_) {
    if (info.instance < 0) idle.push_back(id);
  }
  return idle;
}

}  // namespace fuxi::job
