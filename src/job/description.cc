#include "job/description.h"

#include <map>
#include <set>

namespace fuxi::job {

int JobDescription::FindTask(const std::string& task_name) const {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].name == task_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> JobDescription::UpstreamOf(
    const std::string& task) const {
  std::vector<std::string> upstream;
  for (const Pipe& pipe : pipes) {
    if (pipe.destination == task && !pipe.source.empty()) {
      upstream.push_back(pipe.source);
    }
  }
  return upstream;
}

Status JobDescription::Validate() const {
  std::set<std::string> names;
  for (const TaskConfig& task : tasks) {
    if (task.name.empty()) {
      return Status::InvalidArgument("task with empty name");
    }
    if (!names.insert(task.name).second) {
      return Status::InvalidArgument("duplicate task name: " + task.name);
    }
    if (task.instances < 0 || task.max_workers <= 0) {
      return Status::InvalidArgument("bad instance/worker counts in task " +
                                     task.name);
    }
    if (task.unit.IsZero() || task.unit.AnyNegative()) {
      return Status::InvalidArgument("bad unit size in task " + task.name);
    }
  }
  for (const Pipe& pipe : pipes) {
    if (!pipe.source.empty() && FindTask(pipe.source) < 0) {
      return Status::InvalidArgument("pipe from unknown task: " +
                                     pipe.source);
    }
    if (!pipe.destination.empty() && FindTask(pipe.destination) < 0) {
      return Status::InvalidArgument("pipe into unknown task: " +
                                     pipe.destination);
    }
    if (pipe.source.empty() && pipe.destination.empty()) {
      return Status::InvalidArgument("pipe with neither source nor "
                                     "destination task");
    }
  }
  // Cycle detection (Kahn's algorithm over task-level edges).
  std::map<std::string, int> indegree;
  for (const TaskConfig& task : tasks) indegree[task.name] = 0;
  for (const Pipe& pipe : pipes) {
    if (!pipe.source.empty() && !pipe.destination.empty()) {
      ++indegree[pipe.destination];
    }
  }
  std::vector<std::string> frontier;
  for (const auto& [name, degree] : indegree) {
    if (degree == 0) frontier.push_back(name);
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const Pipe& pipe : pipes) {
      if (pipe.source == current && !pipe.destination.empty()) {
        if (--indegree[pipe.destination] == 0) {
          frontier.push_back(pipe.destination);
        }
      }
    }
  }
  if (visited != tasks.size()) {
    return Status::InvalidArgument("job DAG contains a cycle");
  }
  return Status::Ok();
}

Json JobDescription::ToJson() const {
  Json root = Json::MakeObject();
  root["Name"] = Json(name);
  if (!quota_group.empty()) root["QuotaGroup"] = Json(quota_group);
  Json tasks_json = Json::MakeObject();
  for (const TaskConfig& task : tasks) {
    Json t = Json::MakeObject();
    t["Instances"] = Json(task.instances);
    t["MaxWorkers"] = Json(task.max_workers);
    t["CpuCentiCores"] = Json(task.unit.cpu());
    t["MemoryMB"] = Json(task.unit.memory());
    t["Priority"] = Json(static_cast<int64_t>(task.priority));
    t["InstanceSeconds"] = Json(task.instance_seconds);
    t["InputBytesPerInstance"] = Json(task.input_bytes_per_instance);
    if (!task.input_file.empty()) t["InputFile"] = Json(task.input_file);
    if (task.backup_normal_seconds > 0) {
      t["BackupNormalSeconds"] = Json(task.backup_normal_seconds);
    }
    if (task.gang) t["Gang"] = Json(true);
    if (task.estimated_seconds > 0) {
      t["EstimatedSeconds"] = Json(task.estimated_seconds);
    }
    tasks_json[task.name] = std::move(t);
  }
  root["Tasks"] = std::move(tasks_json);
  Json pipes_json = Json::MakeArray();
  for (const Pipe& pipe : pipes) {
    Json p = Json::MakeObject();
    Json source = Json::MakeObject();
    if (pipe.source.empty()) {
      source["FilePattern"] = Json(pipe.file_pattern);
    } else {
      source["AccessPoint"] = Json(pipe.source + ":out");
    }
    Json destination = Json::MakeObject();
    if (pipe.destination.empty()) {
      destination["FilePattern"] = Json(pipe.file_pattern);
    } else {
      destination["AccessPoint"] = Json(pipe.destination + ":in");
    }
    p["Source"] = std::move(source);
    p["Destination"] = std::move(destination);
    pipes_json.Append(std::move(p));
  }
  root["Pipes"] = std::move(pipes_json);
  return root;
}

Result<JobDescription> JobDescription::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("job description must be a JSON object");
  }
  JobDescription desc;
  desc.name = json.GetString("Name", "job");
  desc.quota_group = json.GetString("QuotaGroup");
  const Json* tasks = json.Find("Tasks");
  if (tasks == nullptr || !tasks->is_object()) {
    return Status::InvalidArgument("job description missing Tasks object");
  }
  for (const auto& [name, t] : tasks->as_object()) {
    TaskConfig task;
    task.name = name;
    task.instances = t.GetInt("Instances", 1);
    task.max_workers = t.GetInt("MaxWorkers", 1);
    task.unit = cluster::ResourceVector(t.GetInt("CpuCentiCores", 50),
                                        t.GetInt("MemoryMB", 2048));
    task.priority =
        static_cast<resource::Priority>(t.GetInt("Priority", 100));
    task.instance_seconds = t.GetNumber("InstanceSeconds", 1.0);
    task.input_bytes_per_instance = t.GetInt("InputBytesPerInstance", 0);
    task.input_file = t.GetString("InputFile");
    task.backup_normal_seconds = t.GetNumber("BackupNormalSeconds", 0);
    task.gang = t.GetBool("Gang", false);
    task.estimated_seconds = t.GetNumber("EstimatedSeconds", 0);
    desc.tasks.push_back(std::move(task));
  }
  const Json* pipes = json.Find("Pipes");
  if (pipes != nullptr && pipes->is_array()) {
    for (const Json& p : pipes->as_array()) {
      Pipe pipe;
      if (const Json* source = p.Find("Source")) {
        std::string access = source->GetString("AccessPoint");
        if (!access.empty()) {
          pipe.source = access.substr(0, access.find(':'));
        } else {
          pipe.file_pattern = source->GetString("FilePattern");
        }
      }
      if (const Json* destination = p.Find("Destination")) {
        std::string access = destination->GetString("AccessPoint");
        if (!access.empty()) {
          pipe.destination = access.substr(0, access.find(':'));
        } else if (pipe.file_pattern.empty()) {
          pipe.file_pattern = destination->GetString("FilePattern");
        }
      }
      desc.pipes.push_back(std::move(pipe));
    }
  }
  FUXI_RETURN_IF_ERROR(desc.Validate());
  return desc;
}

}  // namespace fuxi::job
