#include "job/task_worker.h"

#include "common/logging.h"
#include "runtime/sim_cluster.h"

namespace fuxi::job {

TaskWorker::TaskWorker(runtime::SimCluster* cluster, AppId app,
                       std::string task, WorkerId worker, MachineId machine,
                       NodeId self, NodeId am_node, uint64_t seed)
    : Actor(&cluster->sim()),
      cluster_(cluster),
      app_(app),
      task_(std::move(task)),
      worker_(worker),
      machine_(machine),
      self_(self),
      am_node_(am_node),
      rng_(seed) {
  endpoint_.Handle<ExecuteInstanceRpc>(
      [this](const net::Envelope&, const ExecuteInstanceRpc& rpc) {
        if (alive_) OnExecute(rpc);
      });
  endpoint_.Handle<CancelInstanceRpc>(
      [this](const net::Envelope&, const CancelInstanceRpc& rpc) {
        if (alive_) OnCancel(rpc);
      });
}

TaskWorker::~TaskWorker() { Kill(); }

void TaskWorker::Start() {
  FUXI_CHECK(!alive_);
  alive_ = true;
  cluster_->network().Register(self_, &endpoint_);
  WorkerReadyRpc ready;
  ready.app = app_;
  ready.task = task_;
  ready.worker = worker_;
  ready.machine = machine_;
  ready.worker_node = self_;
  cluster_->network().Send(self_, am_node_, ready);
  StatusTick();
}

void TaskWorker::Kill() {
  if (!alive_) return;
  alive_ = false;
  exec_timer_.Cancel();
  status_timer_.Cancel();
  cluster_->network().Unregister(self_);
}

void TaskWorker::OnExecute(const ExecuteInstanceRpc& rpc) {
  if (running_instance_ >= 0) {
    // Already busy: the master's view is stale; our next status report
    // will correct it.
    return;
  }
  running_instance_ = rpc.instance;
  running_is_backup_ = rpc.is_backup;
  started_at_ = Now();
  // Execution-time model: base compute, scaled by the machine's
  // slowdown factor (SlowMachine faults) and the read-locality factor,
  // with +/-25% workload jitter.
  double duration = rpc.base_seconds * rpc.locality_factor *
                    cluster_->machine_slowdown(machine_) *
                    (0.75 + 0.5 * rng_.NextDouble());
  if (duration < 1e-6) duration = 1e-6;
  expected_duration_ = duration;
  exec_timer_ = After(duration, [this] {
    if (alive_) FinishCurrent();
  });
}

void TaskWorker::OnCancel(const CancelInstanceRpc& rpc) {
  if (running_instance_ != rpc.instance) return;
  exec_timer_.Cancel();
  running_instance_ = -1;
  running_is_backup_ = false;
}

void TaskWorker::FinishCurrent() {
  FUXI_CHECK_GE(running_instance_, 0);
  InstanceDoneRpc done;
  done.app = app_;
  done.task = task_;
  done.instance = running_instance_;
  done.is_backup = running_is_backup_;
  done.worker = worker_;
  done.machine = machine_;
  done.elapsed = Now() - started_at_;
  completed_.push_back(running_instance_);
  running_instance_ = -1;
  running_is_backup_ = false;
  // If the JobMaster is down this message is lost; the periodic status
  // report (carrying `completed_`) repairs that after failover.
  cluster_->network().Send(self_, am_node_, done);
}

void TaskWorker::StatusTick() {
  if (!alive_) return;
  SendStatus();
  // The handle is cancelled on Kill so no callback outlives the worker.
  status_timer_ = After(options_.status_interval, [this] { StatusTick(); });
}

void TaskWorker::SendStatus() {
  WorkerStatusReportRpc status;
  status.app = app_;
  status.task = task_;
  status.worker = worker_;
  status.machine = machine_;
  status.worker_node = self_;
  status.running_instance = running_instance_;
  if (running_instance_ >= 0 && expected_duration_ > 0) {
    status.progress =
        std::min(1.0, (Now() - started_at_) / expected_duration_);
  }
  status.completed = completed_;
  cluster_->network().Send(self_, am_node_, status);
}

}  // namespace fuxi::job
