#ifndef FUXI_JOB_JOB_RUNTIME_H_
#define FUXI_JOB_JOB_RUNTIME_H_

#include <map>
#include <memory>

#include "job/job_master.h"
#include "job/task_worker.h"
#include "runtime/sim_cluster.h"

namespace fuxi::job {

/// Wires the Fuxi job framework into a SimCluster: process-host launch
/// hooks turn agent-started processes into TaskWorker actors, the
/// application-master launcher starts (or fails over) JobMasters, and
/// Submit() drives the §4.2 job-submission workflow end to end.
class JobRuntime {
 public:
  explicit JobRuntime(runtime::SimCluster* cluster,
                      JobMasterOptions options = JobMasterOptions());
  ~JobRuntime();

  JobRuntime(const JobRuntime&) = delete;
  JobRuntime& operator=(const JobRuntime&) = delete;

  /// Submits a job: allocates an AppId, registers the JobMaster shell,
  /// and sends the submission (with its JSON description) to
  /// FuxiMaster, which will pick an agent to start the JobMaster.
  Result<JobMaster*> Submit(const JobDescription& description);

  /// Submit with per-job options (ablation benchmarks flip container
  /// reuse / locality per run).
  Result<JobMaster*> Submit(const JobDescription& description,
                            const JobMasterOptions& options);

  JobMaster* job(AppId app);
  size_t job_count() const { return jobs_.size(); }

  /// True when every submitted job has finished.
  bool AllFinished() const;

  /// True while `app` belongs to a submitted job that has not finished.
  /// The chaos InvariantMonitor treats machine processes of non-live
  /// apps as orphans once they outstay the reconcile grace period.
  bool IsAppLive(AppId app) const;

  /// Runs the simulator until all jobs finish or `deadline` passes.
  /// Returns true on completion.
  bool RunUntilAllFinished(double deadline);

  /// Live worker actors (for tests/fault injection).
  TaskWorker* worker(WorkerId id);
  size_t live_worker_count() const { return workers_.size(); }

 private:
  void InstallHooks();

  runtime::SimCluster* cluster_;
  JobMasterOptions options_;
  Rng rng_{0xF00D};
  AppId next_app_{1};
  std::map<AppId, std::unique_ptr<JobMaster>> jobs_;
  std::map<WorkerId, std::unique_ptr<TaskWorker>> workers_;
};

}  // namespace fuxi::job

#endif  // FUXI_JOB_JOB_RUNTIME_H_
