#include "job/job_master.h"

#include <algorithm>

#include "common/logging.h"
#include "dfs/file_system.h"
#include "master/messages.h"

namespace fuxi::job {

namespace {
constexpr double kPlanRetryDelay = 0.5;
constexpr double kPlanTimeout = 10.0;
}  // namespace

JobMaster::JobMaster(runtime::SimCluster* cluster, AppId app,
                     JobDescription desc, uint64_t seed,
                     JobMasterOptions options)
    : cluster_(cluster),
      app_(app),
      desc_(std::move(desc)),
      node_(cluster->AllocateNodeId()),
      rng_(seed),
      options_(options) {
  Status valid = desc_.Validate();
  FUXI_CHECK(valid.ok()) << valid.ToString();
  for (size_t i = 0; i < desc_.tasks.size(); ++i) {
    tasks_.push_back(std::make_unique<TaskMaster>(
        desc_.tasks[i], static_cast<uint32_t>(i)));
    tasks_.back()->options = options_;
  }
  endpoint_.Handle<master::WorkerStartedRpc>(
      [this](const net::Envelope&, const master::WorkerStartedRpc& rpc) {
        if (running_) OnWorkerStarted(rpc);
      });
  endpoint_.Handle<WorkerReadyRpc>(
      [this](const net::Envelope&, const WorkerReadyRpc& rpc) {
        if (running_) OnWorkerReady(rpc);
      });
  endpoint_.Handle<InstanceDoneRpc>(
      [this](const net::Envelope&, const InstanceDoneRpc& rpc) {
        if (running_) OnInstanceDone(rpc);
      });
  endpoint_.Handle<WorkerStatusReportRpc>(
      [this](const net::Envelope&, const WorkerStatusReportRpc& rpc) {
        if (running_) OnWorkerStatus(rpc);
      });
  endpoint_.Handle<master::WorkerCrashedRpc>(
      [this](const net::Envelope&, const master::WorkerCrashedRpc& rpc) {
        if (running_) OnWorkerCrashed(rpc);
      });
  endpoint_.Handle<master::AdoptQueryRpc>(
      [this](const net::Envelope&, const master::AdoptQueryRpc& rpc) {
        if (running_) OnAdoptQuery(rpc);
      });
  endpoint_.Handle<master::StopAppRpc>(
      [this](const net::Envelope&, const master::StopAppRpc&) {
        running_ = false;
      });
}

JobMaster::~JobMaster() {
  if (running_) cluster_->network().Unregister(node_);
}

std::string JobMaster::SnapshotKey() const {
  return "fuxi/jobsnap/" + std::to_string(app_.value());
}

void JobMaster::StartMaster() {
  FUXI_CHECK(!running_);
  running_ = true;
  ++life_;
  if (stats_.am_started_at < 0) {
    stats_.am_started_at = cluster_->sim().Now();
  }
  cluster_->network().Register(node_, &endpoint_);
  client_ = std::make_unique<master::ResourceClient>(
      &cluster_->sim(), &cluster_->network(), &cluster_->locks(), node_,
      app_, master::ResourceClientOptions(), life_);
  client_->set_grant_callback(
      [this](uint32_t slot, MachineId machine, int64_t delta,
             resource::RevocationReason reason) {
        OnGrantChange(slot, machine, delta, reason);
      });
  client_->Start(&endpoint_);
  LaunchRunnableTasks();
  uint64_t life = life_;
  cluster_->sim().Schedule(options_.backup_check_interval, [this, life] {
    if (running_ && life == life_) BackupTick();
  });
}

void JobMaster::CrashMaster() {
  if (!running_) return;
  running_ = false;
  ++life_;
  client_->Stop();
  client_.reset();
  cluster_->network().Unregister(node_);
  pending_plans_.clear();
  stopped_workers_.clear();
  // In-memory scheduling state dies with the process; the instance
  // snapshot in the checkpoint store plus worker status reports will
  // rebuild it (§4.3.1 JobMaster failover).
}

void JobMaster::RestartMaster() {
  FUXI_CHECK(!running_);
  running_ = true;
  ++life_;
  cluster_->network().Register(node_, &endpoint_);
  RestoreFromSnapshot();
  client_ = std::make_unique<master::ResourceClient>(
      &cluster_->sim(), &cluster_->network(), &cluster_->locks(), node_,
      app_, master::ResourceClientOptions(), life_);
  client_->set_grant_callback(
      [this](uint32_t slot, MachineId machine, int64_t delta,
             resource::RevocationReason reason) {
        OnGrantChange(slot, machine, delta, reason);
      });
  client_->StartRecovering(&endpoint_, [this] {
    // Grant snapshot recovered; re-declare demand on top of it and
    // restart/reattach workers. Status reports reattach the running
    // ones over the next report interval.
    for (auto& task : tasks_) {
      task->launched = false;
    }
    LaunchRunnableTasks();
  });
  uint64_t life = life_;
  cluster_->sim().Schedule(options_.backup_check_interval, [this, life] {
    if (running_ && life == life_) BackupTick();
  });
}

bool JobMaster::TaskIsRunnable(const TaskMaster& task) const {
  for (const std::string& upstream : desc_.UpstreamOf(task.config().name)) {
    int index = desc_.FindTask(upstream);
    FUXI_CHECK_GE(index, 0);
    if (!tasks_[static_cast<size_t>(index)]->complete()) return false;
  }
  return true;
}

void JobMaster::LaunchRunnableTasks() {
  for (auto& task : tasks_) {
    if (task->launched || task->complete()) continue;
    if (TaskIsRunnable(*task)) LaunchTask(task.get());
  }
  // A job whose tasks are all already complete (restored snapshot).
  OnTaskProgress(nullptr);
}

void JobMaster::LaunchTask(TaskMaster* task) {
  task->launched = true;
  const TaskConfig& config = task->config();
  resource::ScheduleUnitDef def;
  def.slot_id = task->slot_id();
  def.priority = config.priority;
  def.resources = config.unit;
  client_->DefineUnit(def);
  // Planner metadata (fuxi::planner): a gang task's worker set is
  // requested all-or-nothing; a lifetime estimate (explicit, or derived
  // from the instance plan for gangs) makes the task backfill-eligible.
  if (config.gang || config.estimated_seconds > 0) {
    resource::PlanningHints plan;
    plan.estimated_seconds = config.estimated_seconds;
    if (config.gang) {
      if (plan.estimated_seconds <= 0 && config.max_workers > 0) {
        int64_t waves =
            (config.instances + config.max_workers - 1) / config.max_workers;
        plan.estimated_seconds =
            config.instance_seconds * static_cast<double>(waves);
      }
      // One gang per task: the single member is this slot's demand, so
      // the whole worker set places atomically.
      plan.gang_id = static_cast<uint64_t>(app_.value()) * 1000 +
                     task->slot_id() + 1;
      plan.gang_size = 1;
    }
    client_->SetPlan(task->slot_id(), plan);
  }
  ComputeLocality(task);
  int64_t remaining = config.instances - task->done_count();
  int64_t wanted = std::min<int64_t>(config.max_workers, remaining);
  client_->SetDesired(
      task->slot_id(),
      std::max<int64_t>(wanted, client_->granted_total(task->slot_id())));
  // Containers we already hold (failover recovery) may sit idle on
  // machines with no registered worker yet; kick the launch path.
  for (const auto& [machine, count] :
       client_->grants_by_machine(task->slot_id())) {
    (void)count;
    TryStartWorkers(task, machine);
  }
}

void JobMaster::ComputeLocality(TaskMaster* task) {
  const TaskConfig& config = task->config();
  if (!options_.use_locality) return;
  if (config.input_file.empty()) return;
  auto file = cluster_->dfs().Stat(config.input_file);
  if (!file.ok() || (*file)->blocks.empty()) return;
  const std::vector<dfs::Block>& blocks = (*file)->blocks;
  std::map<MachineId, int64_t> hint_counts;
  for (int64_t i = 0; i < config.instances; ++i) {
    const dfs::Block& block =
        blocks[static_cast<size_t>(i) % blocks.size()];
    task->SetInstanceLocality(i, block.replicas);
    for (MachineId replica : block.replicas) hint_counts[replica] += 1;
  }
  // Publish the strongest preferences (Figure 4 Locality_hints). The
  // master decrements them as it grants on those machines.
  std::vector<std::pair<MachineId, int64_t>> ranked(hint_counts.begin(),
                                                    hint_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  constexpr size_t kMaxHints = 10;
  for (size_t i = 0; i < ranked.size() && i < kMaxHints; ++i) {
    int64_t count =
        std::min<int64_t>(ranked[i].second, config.max_workers);
    client_->SetLocalityHint(task->slot_id(),
                             resource::LocalityLevel::kMachine,
                             cluster_->topology()
                                 .machine(ranked[i].first)
                                 .hostname,
                             count);
  }
}

void JobMaster::OnGrantChange(uint32_t slot, MachineId machine,
                              int64_t delta,
                              resource::RevocationReason reason) {
  (void)reason;
  TaskMaster* task = FindTaskBySlot(slot);
  if (task == nullptr) return;
  FUXI_LOG(kDebug) << "grantchange slot " << slot << " machine "
                   << machine.value() << " delta " << delta << " reason "
                   << resource::RevocationReasonName(reason);
  if (delta > 0) {
    TryStartWorkers(task, machine);
    return;
  }
  // Revocation: drop workers on this machine, requeueing their work.
  int64_t to_drop = -delta;
  std::vector<WorkerId> victims;
  for (const auto& [id, info] : task->workers()) {
    if (to_drop == 0) break;
    if (info.machine == machine) {
      victims.push_back(id);
      --to_drop;
    }
  }
  for (WorkerId id : victims) {
    auto removed = task->RemoveWorker(id, /*count_as_failure=*/false);
    (void)removed;
    stopped_workers_.insert(id);
  }
  DispatchIdle(task);
}

void JobMaster::TryStartWorkers(TaskMaster* task, MachineId machine) {
  int64_t granted = client_->granted(task->slot_id(), machine);
  int64_t live = 0;
  for (const auto& [id, info] : task->workers()) {
    if (info.machine == machine) ++live;
  }
  for (const auto& [plan, info] : pending_plans_) {
    if (info.slot == task->slot_id() && info.machine == machine) ++live;
  }
  while (live < granted) {
    master::StartWorkerRpc rpc;
    rpc.app = app_;
    rpc.slot_id = task->slot_id();
    rpc.am_node = node_;
    rpc.plan_id = next_plan_id_++;
    Json plan = Json::MakeObject();
    plan["fuxi_job"] = Json(app_.value());
    plan["task"] = Json(task->config().name);
    plan["package"] = Json("pangu://packages/" + desc_.name + ".tar.gz");
    rpc.plan = std::move(plan);
    pending_plans_.emplace(
        rpc.plan_id,
        PendingPlan{task->slot_id(), machine, cluster_->sim().Now()});
    FUXI_LOG(kDebug) << "plan " << rpc.plan_id << " slot "
                     << task->slot_id() << " machine " << machine.value()
                     << " granted=" << granted << " live=" << live;
    cluster_->network().Send(node_, cluster_->agent(machine)->node(), rpc);
    ++live;
  }
}

void JobMaster::OnWorkerStarted(const master::WorkerStartedRpc& rpc) {
  auto it = pending_plans_.find(rpc.plan_id);
  if (rpc.ok) {
    ++stats_.workers_started;
    if (it != pending_plans_.end()) {
      stats_.worker_start_latency_sum +=
          cluster_->sim().Now() - it->second.sent_at;
      ++stats_.worker_start_count;
    }
    // The worker's own WorkerReadyRpc finishes the handshake; the plan
    // entry is cleared there (or by timeout).
    return;
  }
  if (it != pending_plans_.end()) {
    uint32_t slot = it->second.slot;
    MachineId machine = it->second.machine;
    pending_plans_.erase(it);
    uint64_t life = life_;
    cluster_->sim().Schedule(kPlanRetryDelay, [this, life, slot, machine] {
      if (!running_ || life != life_) return;
      if (TaskMaster* task = FindTaskBySlot(slot)) {
        TryStartWorkers(task, machine);
      }
    });
  }
}

void JobMaster::OnWorkerReady(const WorkerReadyRpc& rpc) {
  TaskMaster* task = FindTask(rpc.task);
  if (task == nullptr) return;
  if (stopped_workers_.count(rpc.worker) > 0) return;  // zombie
  if (task->HasWorker(rpc.worker)) return;  // duplicate announcement
  // Clear the oldest matching pending plan (the normal handshake) —
  // agent-restarted replacements arrive with no plan, which is fine.
  for (auto it = pending_plans_.begin(); it != pending_plans_.end(); ++it) {
    if (it->second.slot == task->slot_id() &&
        it->second.machine == rpc.machine) {
      pending_plans_.erase(it);
      break;
    }
  }
  task->AddWorker(rpc.worker, rpc.machine, rpc.worker_node,
                  cluster_->sim().Now());
  DispatchTo(task, rpc.worker);
}

void JobMaster::DispatchTo(TaskMaster* task, WorkerId worker) {
  auto wit = task->workers().find(worker);
  if (wit == task->workers().end() || wit->second.instance >= 0) return;
  const TaskMaster::WorkerInfo& info = wit->second;
  int64_t instance = task->PickInstanceFor(info);
  if (instance < 0) {
    // Nothing dispatchable. Keep the container idle while backups may
    // still need it; otherwise return it (Fuxi reuses containers while
    // useful, and releases promptly when not — §3.2.3). Containers on
    // task-blacklisted machines are always returned.
    bool keep_for_backups = task->config().backup_normal_seconds > 0 &&
                            !task->complete() &&
                            task->running_count() > 0 &&
                            task->blacklist().count(info.machine) == 0;
    if (!keep_for_backups) ReleaseWorker(task, worker);
    return;
  }
  ExecuteInstanceRpc exec;
  exec.instance = instance;
  exec.is_backup = false;
  exec.base_seconds = task->config().instance_seconds;
  exec.bytes = task->config().input_bytes_per_instance;
  exec.locality_factor =
      task->LocalityFactor(instance, info.machine, cluster_->topology());
  task->MarkRunning(instance, worker, cluster_->sim().Now(), false);
  cluster_->network().Send(node_, info.node, exec);
  MarkSnapshotDirty();
}

void JobMaster::DispatchIdle(TaskMaster* task) {
  for (WorkerId worker : task->IdleWorkers()) {
    DispatchTo(task, worker);
  }
}

void JobMaster::ReleaseWorker(TaskMaster* task, WorkerId worker) {
  auto removed = task->RemoveWorker(worker, /*count_as_failure=*/false);
  if (!removed.ok()) return;
  FUXI_LOG(kDebug) << "release worker " << worker.value() << " slot "
                   << task->slot_id() << " machine "
                   << removed->machine.value();
  stopped_workers_.insert(worker);
  cluster_->network().Send(node_,
                           cluster_->agent(removed->machine)->node(),
                           master::StopWorkerRpc{worker});
  client_->Release(task->slot_id(), removed->machine, 1);
}

void JobMaster::OnInstanceDone(const InstanceDoneRpc& rpc) {
  TaskMaster* task = FindTask(rpc.task);
  if (task == nullptr) return;
  task->TouchWorker(rpc.worker, cluster_->sim().Now());
  // Instance running overhead: our view of the instance's lifetime vs
  // the worker's measured execution time (Table 2).
  const TaskMaster::InstanceState& pre_state = task->instance(rpc.instance);
  if (pre_state.state == TaskMaster::InstanceStateKind::kRunning) {
    double am_elapsed = cluster_->sim().Now() - pre_state.started_at;
    stats_.instance_overhead_sum += am_elapsed - rpc.elapsed;
    ++stats_.instance_overhead_count;
  }
  TaskMaster::DoneResult done =
      task->MarkDone(rpc.instance, rpc.worker, cluster_->sim().Now());
  if (done.first_completion) {
    ++stats_.instances_done;
    MarkSnapshotDirty();
    // Job-level health estimation (§4.3.2): a machine whose instances
    // repeatedly run far slower than the task average is a sick node.
    double avg = task->AverageDoneDuration();
    if (task->done_count() >= options_.slow_min_samples && avg > 0 &&
        rpc.elapsed > options_.slow_instance_factor * avg) {
      if (task->RecordSlowness(rpc.machine)) {
        HandleTaskBlacklist(task, rpc.machine);
      }
    }
  }
  if (done.other_worker.valid()) {
    auto oit = task->workers().find(done.other_worker);
    if (oit != task->workers().end()) {
      // The losing copy's machine was outrun; when the winner is a
      // backup the loser's host earns a slowness strike.
      if (done.first_completion && rpc.is_backup) {
        if (task->RecordSlowness(oit->second.machine)) {
          HandleTaskBlacklist(task, oit->second.machine);
        }
      }
      cluster_->network().Send(node_, oit->second.node,
                               CancelInstanceRpc{rpc.instance});
      DispatchTo(task, done.other_worker);
    }
  }
  if (task->HasWorker(rpc.worker)) {
    if (options_.reuse_containers) {
      DispatchTo(task, rpc.worker);
    } else {
      // YARN-style ablation: the container dies with its task; a fresh
      // one must be requested through another scheduling round.
      ReleaseWorker(task, rpc.worker);
      int64_t live = static_cast<int64_t>(task->workers().size());
      int64_t want_new = std::min<int64_t>(
          task->config().max_workers - live, task->pending_count());
      if (want_new > 0) {
        client_->SetDesired(task->slot_id(),
                            client_->granted_total(task->slot_id()) +
                                want_new);
      }
    }
  }
  OnTaskProgress(task);
}

void JobMaster::OnWorkerStatus(const WorkerStatusReportRpc& rpc) {
  TaskMaster* task = FindTask(rpc.task);
  if (task == nullptr) return;
  if (!task->HasWorker(rpc.worker)) {
    if (stopped_workers_.count(rpc.worker) > 0) {
      // A zombie we already stopped/presumed dead: re-assert the stop
      // (the original StopWorker may have raced this report) and take
      // only its completions below — do not re-adopt it.
      cluster_->network().Send(node_,
                               cluster_->agent(rpc.machine)->node(),
                               master::StopWorkerRpc{rpc.worker});
      TaskMaster* t = task;
      for (int64_t id : rpc.completed) {
        TaskMaster::DoneResult done =
            t->MarkDone(id, rpc.worker, cluster_->sim().Now());
        if (done.first_completion) {
          ++stats_.instances_done;
          MarkSnapshotDirty();
        }
      }
      return;
    }
    // A worker from before our restart: adopt it.
    task->AddWorker(rpc.worker, rpc.machine, rpc.worker_node,
                    cluster_->sim().Now());
  }
  task->TouchWorker(rpc.worker, cluster_->sim().Now());
  // Completions we may have missed.
  bool progressed = false;
  for (int64_t id : rpc.completed) {
    TaskMaster::DoneResult done =
        task->MarkDone(id, rpc.worker, cluster_->sim().Now());
    if (done.first_completion) {
      ++stats_.instances_done;
      progressed = true;
    }
    if (done.other_worker.valid()) {
      auto oit = task->workers().find(done.other_worker);
      if (oit != task->workers().end()) {
        cluster_->network().Send(node_, oit->second.node,
                                 CancelInstanceRpc{id});
      }
    }
  }
  if (progressed) MarkSnapshotDirty();
  auto wit = task->workers().find(rpc.worker);
  FUXI_CHECK(wit != task->workers().end());
  const TaskMaster::WorkerInfo& info = wit->second;
  if (rpc.running_instance >= 0) {
    const TaskMaster::InstanceState& state =
        task->instance(rpc.running_instance);
    if (state.state == TaskMaster::InstanceStateKind::kDone) {
      // Someone else already finished it.
      cluster_->network().Send(node_, rpc.worker_node,
                               CancelInstanceRpc{rpc.running_instance});
    } else if (info.instance != rpc.running_instance) {
      // Reattach (post-failover): bind the running instance to this
      // worker in our view.
      task->AttachRunning(rpc.running_instance, rpc.worker,
                          cluster_->sim().Now());
    }
  } else if (info.instance >= 0) {
    // We believe it is busy but it reports idle and has not completed
    // the instance: our ExecuteInstanceRpc was lost. Requeue + retry.
    const TaskMaster::InstanceState& state =
        task->instance(info.instance);
    bool completed_it =
        std::find(rpc.completed.begin(), rpc.completed.end(),
                  info.instance) != rpc.completed.end();
    if (!completed_it &&
        state.state == TaskMaster::InstanceStateKind::kRunning) {
      task->Requeue(info.instance, rpc.worker);
      DispatchTo(task, rpc.worker);
    }
  } else {
    DispatchTo(task, rpc.worker);
  }
  OnTaskProgress(task);
}

void JobMaster::OnWorkerCrashed(const master::WorkerCrashedRpc& rpc) {
  TaskMaster* task = FindTaskBySlot(rpc.slot_id);
  if (task == nullptr || !task->HasWorker(rpc.worker)) return;
  ++stats_.instance_failures;
  auto wit = task->workers().find(rpc.worker);
  int64_t instance = wit->second.instance;
  MachineId machine = wit->second.machine;
  auto removed = task->RemoveWorker(rpc.worker, /*count_as_failure=*/true);
  (void)removed;
  stopped_workers_.insert(rpc.worker);
  if (instance >= 0) {
    if (task->RecordFailure(instance, machine)) {
      HandleTaskBlacklist(task, machine);
    }
    MarkSnapshotDirty();
  }
  // rpc.restarted: the agent relaunched the process; the replacement
  // registers itself via WorkerReadyRpc. Otherwise the grant may still
  // stand — start a fresh worker.
  if (!rpc.restarted) TryStartWorkers(task, machine);
}

void JobMaster::HandleTaskBlacklist(TaskMaster* task, MachineId machine) {
  FUXI_LOG(kInfo) << "job " << app_.value() << " task "
                  << task->config().name << " blacklisted machine "
                  << machine.value();
  client_->Avoid(task->slot_id(),
                 cluster_->topology().machine(machine).hostname);
  // Evacuate gently: idle workers on the sick machine return their
  // containers immediately (FuxiMaster re-places them elsewhere — the
  // avoid list now excludes this machine); busy workers finish their
  // current instance (or get outrun by a backup copy) and are released
  // at their next dispatch, because PickInstanceFor refuses blacklisted
  // machines.
  std::vector<WorkerId> idle_here;
  for (const auto& [id, info] : task->workers()) {
    if (info.machine == machine && info.instance < 0) {
      idle_here.push_back(id);
    }
  }
  for (WorkerId id : idle_here) ReleaseWorker(task, id);
  // Job level: enough task blacklists escalate to the job blacklist and
  // a report to FuxiMaster for cross-job judgement (§4.3.2).
  int task_blacklists = 0;
  for (const auto& t : tasks_) {
    if (t->blacklist().count(machine) > 0) ++task_blacklists;
  }
  bool escalate =
      task_blacklists >= options_.job_blacklist_threshold ||
      static_cast<int>(tasks_.size()) < options_.job_blacklist_threshold;
  if (escalate && job_blacklist_.insert(machine).second) {
    for (auto& t : tasks_) {
      if (t->launched && !t->complete()) {
        client_->Avoid(t->slot_id(),
                       cluster_->topology().machine(machine).hostname);
      }
    }
    NodeId primary =
        cluster_->locks().Holder(master::FuxiMaster::kMasterLock);
    if (primary.valid()) {
      master::BadMachineReportRpc report;
      report.app = app_;
      report.machine = machine;
      cluster_->network().Send(node_, primary, report);
    }
  }
}

void JobMaster::OnAdoptQuery(const master::AdoptQueryRpc& rpc) {
  master::AdoptReplyRpc reply;
  reply.app = app_;
  reply.machine = rpc.machine;
  for (WorkerId id : rpc.workers) {
    for (const auto& task : tasks_) {
      if (task->HasWorker(id)) {
        reply.keep.push_back(id);
        break;
      }
    }
  }
  cluster_->network().Send(node_, rpc.agent_node, reply);
}

void JobMaster::OnTaskProgress(TaskMaster* task) {
  if (task != nullptr && task->complete()) {
    // Return every container of the finished task.
    std::vector<WorkerId> workers;
    for (const auto& [id, info] : task->workers()) workers.push_back(id);
    for (WorkerId id : workers) ReleaseWorker(task, id);
    client_->SetDesired(task->slot_id(),
                        client_->granted_total(task->slot_id()));
    LaunchRunnableTasks();
  }
  for (const auto& t : tasks_) {
    if (!t->complete()) return;
  }
  if (!finished_) {
    finished_ = true;
    stats_.finished_at = cluster_->sim().Now();
    stats_.backups_launched = 0;
    for (const auto& t : tasks_) {
      stats_.backups_launched += t->backups_launched();
    }
    WriteSnapshot();
    if (done_callback_) done_callback_(this);
  }
}

void JobMaster::BackupTick() {
  double now = cluster_->sim().Now();
  for (auto& task : tasks_) {
    if (!task->launched || task->complete()) continue;
    for (int64_t id : task->FindLongTails(now)) {
      // Pick an idle worker on a machine the instance has not failed on
      // and different from the primary's machine.
      const TaskMaster::InstanceState& state = task->instance(id);
      MachineId primary_machine;
      if (state.worker.valid()) {
        auto wit = task->workers().find(state.worker);
        if (wit != task->workers().end()) {
          primary_machine = wit->second.machine;
        }
      }
      for (WorkerId idle : task->IdleWorkers()) {
        const TaskMaster::WorkerInfo& info =
            task->workers().find(idle)->second;
        if (info.machine == primary_machine) continue;
        if (state.avoid.count(info.machine) > 0) continue;
        ExecuteInstanceRpc exec;
        exec.instance = id;
        exec.is_backup = true;
        exec.base_seconds = task->config().instance_seconds;
        exec.bytes = task->config().input_bytes_per_instance;
        exec.locality_factor =
            task->LocalityFactor(id, info.machine, cluster_->topology());
        task->MarkRunning(id, idle, now, /*is_backup=*/true);
        cluster_->network().Send(node_, info.node, exec);
        break;
      }
    }
  }
  // Presumed-dead workers: the status stream is the liveness signal.
  for (auto& task : tasks_) {
    if (!task->launched || task->complete()) continue;
    for (WorkerId silent :
         task->SilentWorkers(now, options_.worker_silence_timeout)) {
      auto removed = task->RemoveWorker(silent, /*count_as_failure=*/true);
      stopped_workers_.insert(silent);
      if (removed.ok()) {
        FUXI_LOG(kInfo) << "job " << app_.value() << " presumes worker "
                        << silent.value() << " dead (silent)";
        TryStartWorkers(task.get(), removed->machine);
      }
    }
    DispatchIdle(task.get());
  }
  // Garbage-collect worker-start plans nobody answered (agent died
  // while the plan was in flight) and retry the launch: the grant may
  // still stand.
  std::vector<std::pair<uint32_t, MachineId>> to_retry;
  for (auto it = pending_plans_.begin(); it != pending_plans_.end();) {
    if (now - it->second.sent_at > kPlanTimeout) {
      to_retry.emplace_back(it->second.slot, it->second.machine);
      it = pending_plans_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [slot, machine] : to_retry) {
    if (TaskMaster* task = FindTaskBySlot(slot)) {
      TryStartWorkers(task, machine);
    }
  }
  uint64_t life = life_;
  cluster_->sim().Schedule(options_.backup_check_interval, [this, life] {
    if (running_ && life == life_) BackupTick();
  });
}

void JobMaster::MarkSnapshotDirty() {
  snapshot_dirty_ = true;
  double now = cluster_->sim().Now();
  if (now - last_snapshot_at_ >= options_.snapshot_min_interval) {
    WriteSnapshot();
    return;
  }
  if (!snapshot_timer_armed_) {
    snapshot_timer_armed_ = true;
    uint64_t life = life_;
    cluster_->sim().Schedule(options_.snapshot_min_interval, [this, life] {
      snapshot_timer_armed_ = false;
      if (running_ && life == life_ && snapshot_dirty_) WriteSnapshot();
    });
  }
}

void JobMaster::WriteSnapshot() {
  // The light-weight instance-status snapshot (§4.3.1): only completed
  // instance ids per task. Exported on status-change events, throttled.
  Json snapshot = Json::MakeObject();
  Json tasks_json = Json::MakeObject();
  for (const auto& task : tasks_) {
    Json done = Json::MakeArray();
    for (int64_t id : task->DoneInstances()) done.Append(Json(id));
    Json t = Json::MakeObject();
    t["done"] = std::move(done);
    tasks_json[task->config().name] = std::move(t);
  }
  snapshot["tasks"] = std::move(tasks_json);
  cluster_->checkpoint().Put(SnapshotKey(), std::move(snapshot));
  ++snapshot_writes_;
  snapshot_dirty_ = false;
  last_snapshot_at_ = cluster_->sim().Now();
}

void JobMaster::RestoreFromSnapshot() {
  auto snapshot = cluster_->checkpoint().Get(SnapshotKey());
  if (!snapshot.ok()) return;  // nothing written yet: fresh start
  const Json* tasks_json = snapshot->Find("tasks");
  if (tasks_json == nullptr) return;
  int64_t done_total = 0;
  for (auto& task : tasks_) {
    std::vector<int64_t> done;
    if (const Json* t = tasks_json->Find(task->config().name)) {
      if (const Json* ids = t->Find("done")) {
        for (const Json& id : ids->as_array()) done.push_back(id.as_int());
      }
    }
    task->RestoreDone(done);
    done_total += task->done_count();
  }
  stats_.instances_done = done_total;
}

TaskMaster* JobMaster::FindTaskBySlot(uint32_t slot) {
  if (slot >= tasks_.size()) return nullptr;
  return tasks_[slot].get();
}

TaskMaster* JobMaster::FindTask(const std::string& name) {
  int index = desc_.FindTask(name);
  return index < 0 ? nullptr : tasks_[static_cast<size_t>(index)].get();
}

const TaskMaster* JobMaster::task(const std::string& name) const {
  int index = desc_.FindTask(name);
  return index < 0 ? nullptr : tasks_[static_cast<size_t>(index)].get();
}

}  // namespace fuxi::job
