#ifndef FUXI_JOB_DESCRIPTION_H_
#define FUXI_JOB_DESCRIPTION_H_

#include <string>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/json.h"
#include "resource/request.h"

namespace fuxi::job {

/// One task (vertex) of a Fuxi DAG job. A task runs `instances` work
/// items over at most `max_workers` concurrently granted containers.
struct TaskConfig {
  std::string name;
  int64_t instances = 1;
  int64_t max_workers = 1;
  /// One container's size (the ScheduleUnit).
  cluster::ResourceVector unit{50, 2048};
  resource::Priority priority = 100;
  /// Baseline seconds of compute per instance on a healthy machine.
  double instance_seconds = 1.0;
  /// Bytes each instance reads; with a DFS input this drives locality
  /// preferences and the read-bandwidth part of the duration.
  int64_t input_bytes_per_instance = 0;
  /// Optional DFS file pattern feeding this task ("pangu://...").
  /// Empty for tasks fed purely by upstream pipes.
  std::string input_file;
  /// User-declared normal runtime for the backup-instance scheme
  /// (paper §4.3.2 third criterion); 0 disables backups for the task.
  double backup_normal_seconds = 0;
  /// Gang scheduling (fuxi::planner): the task's full worker set is
  /// granted all-or-nothing — no worker starts until every one fits.
  bool gang = false;
  /// Declared container lifetime fed to the planner as a backfill /
  /// reservation estimate; 0 = unknown (derived from instance_seconds
  /// when gang is set).
  double estimated_seconds = 0;
};

/// A data shuffle edge between two tasks (Figure 6's "Pipes"). Only
/// task-level edges matter for scheduling: a task becomes runnable when
/// all its upstream tasks finished.
struct Pipe {
  std::string source;       ///< task name, or "" when reading a file
  std::string destination;  ///< task name, or "" when writing a file
  std::string file_pattern; ///< set when source/destination is the DFS
};

/// A Fuxi DAG job description (Figure 6). Serializes to/from the JSON
/// job-description format.
struct JobDescription {
  std::string name;
  std::string quota_group;
  std::vector<TaskConfig> tasks;
  std::vector<Pipe> pipes;

  /// Index of the named task, or -1.
  int FindTask(const std::string& name) const;

  /// Task names that feed `task` (via pipes).
  std::vector<std::string> UpstreamOf(const std::string& task) const;

  /// Validates the DAG: known task names, no cycles.
  Status Validate() const;

  Json ToJson() const;
  static Result<JobDescription> FromJson(const Json& json);
};

}  // namespace fuxi::job

#endif  // FUXI_JOB_DESCRIPTION_H_
