// Wire codecs for the job-level control plane (messages.h). Field order
// is the struct declaration order; bump the version byte in messages.h on
// any layout change.

#include "job/messages.h"

namespace fuxi::job {

void WireEncode(wire::Writer& w, const WorkerReadyRpc& m) {
  w.Id(m.app);
  w.Str(m.task);
  w.Id(m.worker);
  w.Id(m.machine);
  w.Id(m.worker_node);
}

Status WireDecode(wire::Reader& r, WorkerReadyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Str(&m.task));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.Id(&m.worker_node);
}

void WireEncode(wire::Writer& w, const ExecuteInstanceRpc& m) {
  w.I64(m.instance);
  w.Bool(m.is_backup);
  w.F64(m.base_seconds);
  w.I64(m.bytes);
  w.F64(m.locality_factor);
}

Status WireDecode(wire::Reader& r, ExecuteInstanceRpc& m) {
  FUXI_RETURN_IF_ERROR(r.I64(&m.instance));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.is_backup));
  FUXI_RETURN_IF_ERROR(r.F64(&m.base_seconds));
  FUXI_RETURN_IF_ERROR(r.I64(&m.bytes));
  return r.F64(&m.locality_factor);
}

void WireEncode(wire::Writer& w, const CancelInstanceRpc& m) {
  w.I64(m.instance);
}

Status WireDecode(wire::Reader& r, CancelInstanceRpc& m) {
  return r.I64(&m.instance);
}

void WireEncode(wire::Writer& w, const InstanceDoneRpc& m) {
  w.Id(m.app);
  w.Str(m.task);
  w.I64(m.instance);
  w.Bool(m.is_backup);
  w.Id(m.worker);
  w.Id(m.machine);
  w.F64(m.elapsed);
}

Status WireDecode(wire::Reader& r, InstanceDoneRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Str(&m.task));
  FUXI_RETURN_IF_ERROR(r.I64(&m.instance));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.is_backup));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.F64(&m.elapsed);
}

void WireEncode(wire::Writer& w, const WorkerStatusReportRpc& m) {
  w.Id(m.app);
  w.Str(m.task);
  w.Id(m.worker);
  w.Id(m.machine);
  w.Id(m.worker_node);
  w.I64(m.running_instance);
  w.F64(m.progress);
  w.Vec(m.completed);
}

Status WireDecode(wire::Reader& r, WorkerStatusReportRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Str(&m.task));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker_node));
  FUXI_RETURN_IF_ERROR(r.I64(&m.running_instance));
  FUXI_RETURN_IF_ERROR(r.F64(&m.progress));
  return r.Vec(&m.completed);
}

}  // namespace fuxi::job
