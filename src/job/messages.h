#ifndef FUXI_JOB_MESSAGES_H_
#define FUXI_JOB_MESSAGES_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "wire/wire.h"

namespace fuxi::job {

/// TaskWorker → JobMaster: the worker process came up and is ready for
/// instances ("the application worker registers itself to the
/// application master", §2.2).
struct WorkerReadyRpc {
  AppId app;
  std::string task;
  WorkerId worker;
  MachineId machine;
  NodeId worker_node;
};

/// JobMaster → TaskWorker: execute one instance.
struct ExecuteInstanceRpc {
  int64_t instance = -1;
  bool is_backup = false;
  double base_seconds = 1.0;
  int64_t bytes = 0;
  /// Read-locality multiplier computed by the TaskMaster from the DFS
  /// placement (1.0 local, >1 rack/remote).
  double locality_factor = 1.0;
};

/// JobMaster → TaskWorker: abandon the current instance (backup copy
/// lost the race) and go idle.
struct CancelInstanceRpc {
  int64_t instance = -1;
};

/// TaskWorker → JobMaster: instance finished.
struct InstanceDoneRpc {
  AppId app;
  std::string task;
  int64_t instance = -1;
  bool is_backup = false;
  WorkerId worker;
  MachineId machine;
  double elapsed = 0;
};

/// TaskWorker → JobMaster: periodic status ("All TaskWorkers will
/// periodically report their status including execution progresses",
/// §4.2). Carries everything a restarted JobMaster needs to rebuild its
/// in-memory view: identity, the running instance, and all completed
/// instance ids this worker has produced.
struct WorkerStatusReportRpc {
  AppId app;
  std::string task;
  WorkerId worker;
  MachineId machine;
  NodeId worker_node;
  int64_t running_instance = -1;  ///< -1 when idle
  double progress = 0;            ///< [0,1] of the running instance
  std::vector<int64_t> completed;
};

// ---------------------------------------------------------------------
// Wire codecs (fuxi::wire, DESIGN.md §10); definitions in
// messages_wire.cc. Bump the version byte on any layout change.
// ---------------------------------------------------------------------

#define FUXI_JOB_DECLARE_WIRE(TYPE)                    \
  void WireEncode(wire::Writer& w, const TYPE& m);     \
  Status WireDecode(wire::Reader& r, TYPE& m);         \
  constexpr wire::TypeInfo WireTypeInfo(const TYPE*) { \
    return {wire::MsgTag::k##TYPE, 1};                 \
  }

FUXI_JOB_DECLARE_WIRE(WorkerReadyRpc)
FUXI_JOB_DECLARE_WIRE(ExecuteInstanceRpc)
FUXI_JOB_DECLARE_WIRE(CancelInstanceRpc)
FUXI_JOB_DECLARE_WIRE(InstanceDoneRpc)
FUXI_JOB_DECLARE_WIRE(WorkerStatusReportRpc)

#undef FUXI_JOB_DECLARE_WIRE

}  // namespace fuxi::job

#endif  // FUXI_JOB_MESSAGES_H_
