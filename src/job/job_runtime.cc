#include "job/job_runtime.h"

#include "common/logging.h"
#include "master/messages.h"

namespace fuxi::job {

JobRuntime::JobRuntime(runtime::SimCluster* cluster,
                       JobMasterOptions options)
    : cluster_(cluster), options_(options) {
  InstallHooks();
}

JobRuntime::~JobRuntime() {
  for (auto& [id, worker] : workers_) worker->Kill();
}

void JobRuntime::InstallHooks() {
  // Process launches on any machine: plans tagged "fuxi_job" become
  // TaskWorker actors.
  for (const cluster::Machine& machine : cluster_->topology().machines()) {
    agent::ProcessHost* host = cluster_->host(machine.id);
    MachineId machine_id = machine.id;
    host->set_launch_hook([this, machine_id](const agent::Process& process) {
      const Json* job_tag = process.plan.Find("fuxi_job");
      if (job_tag == nullptr) return;  // not a Fuxi-job worker
      AppId app = AppId(job_tag->as_int());
      std::string task = process.plan.GetString("task");
      auto worker = std::make_unique<TaskWorker>(
          cluster_, app, task, process.id, machine_id,
          cluster_->AllocateNodeId(), process.owner_am, rng_.Next());
      TaskWorker* ptr = worker.get();
      workers_[process.id] = std::move(worker);
      ptr->Start();
    });
    host->set_kill_hook([this](const agent::Process& process) {
      auto it = workers_.find(process.id);
      if (it == workers_.end()) return;
      it->second->Kill();
      workers_.erase(it);
    });
  }
  // Application-master starts requested by FuxiMaster via agents.
  cluster_->SetAppMasterLauncher(
      [this](const master::StartAppMasterRpc& rpc, MachineId machine) {
        (void)machine;
        auto it = jobs_.find(rpc.app);
        if (it == jobs_.end()) return;
        JobMaster* job = it->second.get();
        if (job->master_running() || job->finished()) return;
        if (job->stats().am_started_at < 0) {
          job->StartMaster();
        } else {
          job->RestartMaster();  // AM died earlier; this is a failover
        }
      });
}

Result<JobMaster*> JobRuntime::Submit(const JobDescription& description) {
  return Submit(description, options_);
}

Result<JobMaster*> JobRuntime::Submit(const JobDescription& description,
                                      const JobMasterOptions& options) {
  FUXI_RETURN_IF_ERROR(description.Validate());
  AppId app = next_app_;
  next_app_ = AppId(app.value() + 1);
  auto job = std::make_unique<JobMaster>(cluster_, app, description,
                                         rng_.Next(), options);
  JobMaster* ptr = job.get();
  jobs_[app] = std::move(job);
  ptr->MarkSubmitted(cluster_->sim().Now());

  NodeId primary =
      cluster_->locks().Holder(master::FuxiMaster::kMasterLock);
  if (!primary.valid()) {
    return Status::Unavailable("no FuxiMaster primary elected");
  }
  master::SubmitAppRpc submit;
  submit.app = app;
  submit.quota_group = description.quota_group;
  submit.description = description.ToJson();
  submit.client = cluster_->AllocateNodeId();
  cluster_->network().Send(submit.client, primary, submit);
  return ptr;
}

JobMaster* JobRuntime::job(AppId app) {
  auto it = jobs_.find(app);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool JobRuntime::AllFinished() const {
  for (const auto& [app, job] : jobs_) {
    if (!job->finished()) return false;
  }
  return true;
}

bool JobRuntime::IsAppLive(AppId app) const {
  auto it = jobs_.find(app);
  return it != jobs_.end() && !it->second->finished();
}

bool JobRuntime::RunUntilAllFinished(double deadline) {
  while (cluster_->sim().Now() < deadline) {
    if (AllFinished()) return true;
    cluster_->RunFor(1.0);
  }
  return AllFinished();
}

TaskWorker* JobRuntime::worker(WorkerId id) {
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

}  // namespace fuxi::job
