#ifndef FUXI_JOB_TASK_WORKER_H_
#define FUXI_JOB_TASK_WORKER_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "job/messages.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace fuxi::runtime {
class SimCluster;
}

namespace fuxi::job {

/// A task worker process: executes instances handed to it by its
/// JobMaster, reports status periodically, and keeps running even when
/// the JobMaster is away (master failover transparency). Execution time
/// scales with the host machine's slowdown factor, which is how the
/// SlowMachine fault injection manifests.
class TaskWorker : public sim::Actor {
 public:
  struct Options {
    double status_interval = 2.0;
  };

  TaskWorker(runtime::SimCluster* cluster, AppId app, std::string task,
             WorkerId worker, MachineId machine, NodeId self,
             NodeId am_node, uint64_t seed);
  ~TaskWorker() override;

  /// Registers on the network, announces readiness, starts the status
  /// loop.
  void Start();

  /// The process is killed (agent kill / machine halt). Idempotent.
  void Kill();

  bool alive() const { return alive_; }
  WorkerId worker_id() const { return worker_; }
  MachineId machine() const { return machine_; }
  int64_t running_instance() const { return running_instance_; }
  const std::vector<int64_t>& completed() const { return completed_; }

 private:
  void OnExecute(const ExecuteInstanceRpc& rpc);
  void OnCancel(const CancelInstanceRpc& rpc);
  void FinishCurrent();
  void StatusTick();
  void SendStatus();

  runtime::SimCluster* cluster_;
  AppId app_;
  std::string task_;
  WorkerId worker_;
  MachineId machine_;
  NodeId self_;
  NodeId am_node_;
  Rng rng_;
  Options options_;

  bool alive_ = false;
  net::Endpoint endpoint_;
  int64_t running_instance_ = -1;
  bool running_is_backup_ = false;
  double started_at_ = 0;
  double expected_duration_ = 0;
  sim::EventHandle exec_timer_;
  sim::EventHandle status_timer_;
  std::vector<int64_t> completed_;
};

}  // namespace fuxi::job

#endif  // FUXI_JOB_TASK_WORKER_H_
