#ifndef FUXI_SORT_GRAYSORT_H_
#define FUXI_SORT_GRAYSORT_H_

#include <cstdint>
#include <string>

#include "job/job_runtime.h"
#include "runtime/sim_cluster.h"

namespace fuxi::sort {

/// Configuration of a GraySort-class distributed sort (paper §5.3,
/// Table 4). The data plane is modelled, not materialized: instance
/// durations derive from bytes moved through the disk/NIC/CPU model of
/// the simulated machines.
struct GraySortConfig {
  int64_t data_bytes = 100LL * 1000 * 1000 * 1000 * 1000;  ///< 100 TB
  int64_t map_bytes_per_instance = 512LL << 20;            ///< 512 MB
  /// Reduce instance count; 0 = one per map worker slot.
  int64_t reduces = 0;
  /// Worker slots per machine for each phase (paper machines have 12
  /// cores; sort runs roughly one worker per core pair).
  int64_t workers_per_machine = 6;
  /// Per-core effective processing rate for partition/merge (MB/s).
  double cpu_throughput_mbps = 400;
  /// End-to-end software efficiency vs the raw hardware model —
  /// real systems lose time to skew, stragglers, framework overheads.
  double efficiency = 0.5;
  bool container_reuse = true;  ///< off = the Hadoop/YARN-like baseline
  bool locality = true;
  /// User-declared normal instance runtime for backup instances.
  double backup_normal_seconds = 60;
};

struct GraySortReport {
  int64_t data_bytes = 0;
  int64_t map_instances = 0;
  int64_t reduce_instances = 0;
  double elapsed_seconds = 0;
  double tb_per_minute = 0;
  int64_t backups_launched = 0;
  int64_t workers_started = 0;
  bool finished = false;
};

/// Builds the two-phase sort job: `sort_map` reads and range-partitions
/// the input (with DFS locality), `sort_reduce` shuffles, merges and
/// writes. Instance durations come from the cluster's hardware model.
Result<job::JobDescription> BuildGraySortJob(
    const GraySortConfig& config, const cluster::ClusterTopology& topology);

/// Creates the input file in the simulated DFS, submits the job, runs
/// it to completion (or `deadline` virtual seconds) and reports the
/// sort throughput.
Result<GraySortReport> RunGraySort(runtime::SimCluster* cluster,
                                   job::JobRuntime* runtime,
                                   const GraySortConfig& config,
                                   double deadline);

}  // namespace fuxi::sort

#endif  // FUXI_SORT_GRAYSORT_H_
