#include "sort/graysort.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::sort {

namespace {
constexpr double kMB = 1024.0 * 1024.0;
}

Result<job::JobDescription> BuildGraySortJob(
    const GraySortConfig& config,
    const cluster::ClusterTopology& topology) {
  if (topology.machine_count() == 0) {
    return Status::InvalidArgument("empty cluster");
  }
  if (config.data_bytes <= 0 || config.map_bytes_per_instance <= 0) {
    return Status::InvalidArgument("bad data sizing");
  }
  const cluster::Machine& machine = topology.machine(MachineId(0));
  int64_t machines = static_cast<int64_t>(topology.machine_count());
  int64_t map_instances =
      (config.data_bytes + config.map_bytes_per_instance - 1) /
      config.map_bytes_per_instance;
  int64_t map_workers = machines * config.workers_per_machine;
  int64_t reduces = config.reduces > 0 ? config.reduces : map_workers;
  int64_t reduce_bytes = config.data_bytes / std::max<int64_t>(1, reduces);

  // Hardware shares: a machine's disks and NIC are split across its
  // concurrently running workers.
  double disk_share =
      machine.disk_bandwidth_mbps /
      static_cast<double>(config.workers_per_machine);
  double nic_share = machine.nic_bandwidth_mbps /
                     static_cast<double>(config.workers_per_machine);
  double cpu = config.cpu_throughput_mbps;

  double map_mb = static_cast<double>(config.map_bytes_per_instance) / kMB;
  // Map: read input + partition (CPU) + write the sorted spill.
  double map_seconds =
      (map_mb / disk_share + map_mb / cpu + map_mb / disk_share) /
      config.efficiency;
  double reduce_mb = static_cast<double>(reduce_bytes) / kMB;
  // Reduce: shuffle over the network + merge (CPU) + write output.
  double reduce_seconds = (reduce_mb / nic_share + reduce_mb / cpu +
                           reduce_mb / disk_share) /
                          config.efficiency;

  job::JobDescription desc;
  desc.name = "graysort";
  job::TaskConfig map;
  map.name = "sort_map";
  map.instances = map_instances;
  map.max_workers = std::min(map_instances, map_workers);
  map.unit = cluster::ResourceVector(200, 12 * 1024);  // 2 cores, 12 GB
  map.instance_seconds = map_seconds;
  map.input_bytes_per_instance = config.map_bytes_per_instance;
  map.input_file = "pangu://graysort/input";
  map.backup_normal_seconds =
      config.backup_normal_seconds > 0
          ? std::max(config.backup_normal_seconds, 3 * map_seconds)
          : 0;
  job::TaskConfig reduce;
  reduce.name = "sort_reduce";
  reduce.instances = reduces;
  reduce.max_workers = std::min(reduces, map_workers);
  reduce.unit = cluster::ResourceVector(200, 12 * 1024);
  reduce.instance_seconds = reduce_seconds;
  reduce.input_bytes_per_instance = reduce_bytes;
  reduce.backup_normal_seconds =
      config.backup_normal_seconds > 0
          ? std::max(config.backup_normal_seconds, 3 * reduce_seconds)
          : 0;
  desc.tasks = {map, reduce};
  desc.pipes.push_back({"", "sort_map", "pangu://graysort/input"});
  desc.pipes.push_back({"sort_map", "sort_reduce", ""});
  desc.pipes.push_back({"sort_reduce", "", "pangu://graysort/output"});
  return desc;
}

Result<GraySortReport> RunGraySort(runtime::SimCluster* cluster,
                                   job::JobRuntime* runtime,
                                   const GraySortConfig& config,
                                   double deadline) {
  FUXI_ASSIGN_OR_RETURN(
      job::JobDescription desc,
      BuildGraySortJob(config, cluster->topology()));
  // Materialize the input's block placement for locality scheduling.
  if (!cluster->dfs().Stat("pangu://graysort/input").ok()) {
    FUXI_RETURN_IF_ERROR(cluster->dfs()
                             .CreateFile("pangu://graysort/input",
                                         config.data_bytes,
                                         config.map_bytes_per_instance)
                             .status());
  }
  FUXI_ASSIGN_OR_RETURN(job::JobMaster * job, runtime->Submit(desc));
  double start = cluster->sim().Now();
  runtime->RunUntilAllFinished(start + deadline);

  GraySortReport report;
  report.data_bytes = config.data_bytes;
  report.map_instances = desc.tasks[0].instances;
  report.reduce_instances = desc.tasks[1].instances;
  report.finished = job->finished();
  report.elapsed_seconds =
      (report.finished ? job->stats().finished_at : cluster->sim().Now()) -
      start;
  if (report.elapsed_seconds > 0) {
    double tb = static_cast<double>(config.data_bytes) / 1e12;
    report.tb_per_minute = tb / (report.elapsed_seconds / 60.0);
  }
  report.backups_launched = job->stats().backups_launched;
  report.workers_started = job->stats().workers_started;
  return report;
}

}  // namespace fuxi::sort
