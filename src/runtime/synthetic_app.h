#ifndef FUXI_RUNTIME_SYNTHETIC_APP_H_
#define FUXI_RUNTIME_SYNTHETIC_APP_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "master/resource_client.h"
#include "runtime/sim_cluster.h"

namespace fuxi::runtime {

/// Configuration of one stage (ScheduleUnit) of a synthetic job: e.g.
/// the map stage of a WordCount with 100 instances over 10 workers.
struct SyntheticStage {
  uint32_t slot_id = 0;
  resource::Priority priority = 100;
  cluster::ResourceVector unit{50, 2048};  ///< 0.5 core + 2 GB (paper §5.2)
  int64_t workers = 1;     ///< parallelism (units requested)
  int64_t instances = 1;   ///< work items executed across the workers
  double instance_duration = 1.0;  ///< seconds per instance
  /// Stage starts only when this slot finishes (-1 = start immediately);
  /// models map -> reduce dependencies.
  int depends_on = -1;
  /// Planner metadata (fuxi::planner): lifetime estimate, reservation
  /// window, gang membership. Any() == false leaves the stage on the
  /// legacy instantaneous-only path.
  resource::PlanningHints plan;
};

/// A synthetic application master: requests units via the incremental
/// protocol, launches a worker per granted unit, runs `instances` work
/// items across its workers (reusing containers for consecutive
/// instances, as Fuxi does and YARN does not — §3.2.3), releases units
/// when a stage drains, and finishes when every stage is done. Used by
/// the scheduling-performance and utilization experiments (Fig 9/10,
/// Table 2).
class SyntheticApp {
 public:
  struct Stats {
    double submitted_at = 0;
    double am_started_at = -1;
    double finished_at = -1;
    int64_t instances_done = 0;
    int64_t workers_started = 0;
    double worker_start_latency_sum = 0;  ///< plan->first status (Table 2)
    int64_t worker_start_count = 0;
  };

  using DoneCallback = std::function<void(SyntheticApp*)>;

  SyntheticApp(SimCluster* cluster, AppId app,
               std::vector<SyntheticStage> stages, uint64_t seed);
  ~SyntheticApp();

  /// Brings the application master up (normally invoked by the agent's
  /// AppMasterLauncher once FuxiMaster schedules the AM).
  void StartMaster();

  /// Crashes the AM process (JobMaster-failure injection). Workers keep
  /// running; a restarted AM re-adopts them.
  void CrashMaster();
  void RestartMaster();

  bool master_running() const { return running_; }
  bool finished() const { return finished_; }
  AppId app() const { return app_; }
  NodeId node() const { return node_; }
  const Stats& stats() const { return stats_; }
  int64_t running_workers() const;

  void set_done_callback(DoneCallback callback) {
    done_callback_ = std::move(callback);
  }

  /// The protocol client (benchmarks read message counters off it).
  const master::ResourceClient* client() const { return client_.get(); }

  /// Options for the protocol client (applied at the next (re)start).
  /// Sharded clusters set `master_lock` here so the app follows its
  /// assigned shard's primary instead of the default election lease.
  void set_client_options(master::ResourceClientOptions options) {
    client_options_ = std::move(options);
  }
  void set_master_lock(const std::string& lock) {
    client_options_.master_lock = lock;
  }

  /// Resources this application currently believes it holds
  /// (AM_obtained in Figure 10).
  cluster::ResourceVector GrantedResources() const {
    cluster::ResourceVector total;
    if (client_ == nullptr) return total;
    for (const StageState& stage : stages_) {
      total += stage.config.unit *
               client_->granted_total(stage.config.slot_id);
    }
    return total;
  }

  /// Marks submission time for overhead accounting.
  void MarkSubmitted(double when) { stats_.submitted_at = when; }

 private:
  struct WorkerRecord {
    WorkerId worker;
    MachineId machine;
    uint32_t slot_id = 0;
    bool busy = false;
    sim::EventHandle work_timer;
  };

  struct StageState {
    SyntheticStage config;
    int64_t remaining_instances = 0;  ///< not yet started
    int64_t inflight = 0;             ///< currently executing
    int64_t done = 0;
    bool launched = false;  ///< demand published
    bool complete = false;
    /// Worker-start plans awaiting agent replies, keyed by plan id.
    std::map<uint64_t, MachineId> pending_plans;
  };

  resource::ScheduleUnitDef MakeDefFor(const StageState& stage) const;
  void LaunchStage(StageState* stage);
  void OnGrantChange(uint32_t slot, MachineId machine, int64_t delta,
                     resource::RevocationReason reason);
  void TryStartWorkers(StageState* stage, MachineId machine);
  void OnWorkerStarted(const master::WorkerStartedRpc& rpc);
  void OnWorkerCrashed(const master::WorkerCrashedRpc& rpc);
  void OnAdoptQuery(const master::AdoptQueryRpc& rpc);
  void AssignWork(WorkerRecord* worker);
  void FinishInstance(WorkerId worker_id);
  void CheckStageCompletion(StageState* stage);
  StageState* FindStage(uint32_t slot_id);

  SimCluster* cluster_;
  AppId app_;
  NodeId node_;
  std::vector<StageState> stages_;
  Rng rng_;

  net::Endpoint endpoint_;
  master::ResourceClientOptions client_options_;
  std::unique_ptr<master::ResourceClient> client_;
  bool running_ = false;
  bool finished_ = false;
  uint64_t life_ = 0;
  uint64_t next_plan_id_ = 1;
  std::map<uint64_t, double> plan_sent_at_;  ///< Table 2 start latency
  std::map<WorkerId, WorkerRecord> workers_;
  Stats stats_;
  DoneCallback done_callback_;
};

}  // namespace fuxi::runtime

#endif  // FUXI_RUNTIME_SYNTHETIC_APP_H_
