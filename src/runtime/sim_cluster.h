#ifndef FUXI_RUNTIME_SIM_CLUSTER_H_
#define FUXI_RUNTIME_SIM_CLUSTER_H_

#include <memory>
#include <set>
#include <vector>

#include "agent/fuxi_agent.h"
#include "agent/process_host.h"
#include "cluster/topology.h"
#include "coord/checkpoint_store.h"
#include "coord/lock_service.h"
#include "dfs/file_system.h"
#include "master/fuxi_master.h"
#include "net/network.h"
#include "obs/observability.h"
#include "shard/router.h"
#include "shard/shard_directory.h"
#include "sim/simulator.h"

namespace fuxi::runtime {

struct SimClusterOptions {
  cluster::ClusterTopology::Options topology;
  net::Network::Config network;
  master::FuxiMasterOptions master;
  agent::FuxiAgentOptions agent;
  obs::ObsOptions obs;
  int master_replicas = 2;  ///< hot-standby pair by default
  uint64_t seed = 42;

  // --- federation (fuxi::shard) -----------------------------------------

  /// Number of FuxiMaster fault domains. 1 = the legacy single-master
  /// cluster: no shard directory, no router — construction and event
  /// order are byte-identical to the pre-federation cluster. With
  /// shards > 1 each shard gets `master_replicas` masters electing on
  /// their own lease, machines join shard `machine.id % shards`, and a
  /// replicated directory plus submission router come up.
  int shards = 1;
  /// Shard-directory replica count (only used when shards > 1).
  int directory_replicas = 2;
  /// Router tunables. `shards`, `directory` and `seed` are filled in by
  /// SimCluster; set the rest (backoff, spill thresholds) here.
  shard::RouterOptions router;
};

/// Assembles a complete simulated Fuxi cluster: the shared simulator,
/// network, lock service and checkpoint store; a hot-standby FuxiMaster
/// pair; one ProcessHost + FuxiAgent per machine; and a simulated DFS.
/// Fault-injection entry points mirror the paper's §5.4 scenarios
/// (NodeDown, PartialWorkerFailure via agents, SlowMachine via health
/// scores, FuxiMasterFailure).
class SimCluster {
 public:
  explicit SimCluster(SimClusterOptions options = SimClusterOptions());
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Starts masters and agents. Run the simulator a little afterwards
  /// to let the election and first heartbeats settle.
  void Start();

  // --- component access -------------------------------------------------

  sim::Simulator& sim() { return sim_; }
  const SimClusterOptions& options() const { return options_; }
  net::Network& network() { return *network_; }
  coord::LockService& locks() { return *locks_; }
  coord::CheckpointStore& checkpoint() { return checkpoint_; }
  cluster::ClusterTopology& topology() { return topology_; }
  dfs::FileSystem& dfs() { return *dfs_; }

  /// The cluster-wide trace recorder + metrics registry. Every
  /// component is wired to it at construction.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  master::FuxiMaster* master(int index) { return masters_[index].get(); }
  int master_count() const { return static_cast<int>(masters_.size()); }
  /// The currently elected primary, or nullptr mid-election. In a
  /// sharded cluster this is shard 0's primary (legacy call sites).
  master::FuxiMaster* primary();

  // --- federation access (shards > 1; safe defaults otherwise) ----------

  int shard_count() const { return options_.shards; }
  int shard_of_machine(MachineId machine) const {
    return static_cast<int>(machine.value() % options_.shards);
  }
  /// The election lease shard `shard` contends on (kMasterLock when the
  /// cluster is unsharded).
  std::string shard_lock(int shard) const;
  /// Shard `shard`'s elected primary, or nullptr mid-election.
  master::FuxiMaster* shard_primary(int shard);
  /// Crashes shard `shard`'s current primary (no-op mid-election).
  void KillShardPrimary(int shard);

  shard::SubmissionRouter* router() { return router_.get(); }
  shard::ShardDirectory* directory(int index) {
    return directories_[static_cast<size_t>(index)].get();
  }
  int directory_count() const { return static_cast<int>(directories_.size()); }

  agent::FuxiAgent* agent(MachineId machine) {
    return agents_[static_cast<size_t>(machine.value())].get();
  }
  agent::ProcessHost* host(MachineId machine) {
    return hosts_[static_cast<size_t>(machine.value())].get();
  }

  /// Fresh NodeId for dynamically created actors (application masters,
  /// workers, clients).
  NodeId AllocateNodeId() { return NodeId(next_node_id_++); }

  /// Installs the application-master launcher on every agent.
  void SetAppMasterLauncher(agent::FuxiAgent::AppMasterLauncher launcher);

  // --- convenience ------------------------------------------------------

  void RunFor(double seconds) { sim_.RunUntil(sim_.Now() + seconds); }
  void RunUntil(double when) { sim_.RunUntil(when); }

  // --- fault injection (§5.4 scenarios) ----------------------------------

  /// FuxiMasterFailure: crashes the current primary. The standby takes
  /// over after the lock lease lapses.
  void KillPrimaryMaster();

  /// NodeDown: machine halts — agent and all its processes die.
  void HaltMachine(MachineId machine);

  /// Brings a halted machine back (fresh agent, empty process host).
  void ReviveMachine(MachineId machine);

  /// Machines currently halted via HaltMachine (not mere agent
  /// crashes). The chaos InvariantMonitor uses this to assert a dead
  /// machine cannot host live processes.
  bool machine_halted(MachineId machine) const {
    return halted_.count(machine) > 0;
  }
  const std::set<MachineId>& halted_machines() const { return halted_; }

  /// Restarts every crashed FuxiMaster replica (chaos recovery step
  /// after crash-loop campaigns). Returns how many were restarted.
  int RestartDeadMasters();

  /// SlowMachine: lowers the health score the agent reports, eventually
  /// tripping the master's plugin-based disabling.
  void SetMachineHealth(MachineId machine, double score);

  /// SlowMachine (silent variant): multiplies the runtime of every
  /// instance executed on the machine (the paper injects sleeps into
  /// worker programs). Detected only by job-level long-tail handling.
  void SetMachineSlowdown(MachineId machine, double factor);
  double machine_slowdown(MachineId machine) const {
    return slowdown_[static_cast<size_t>(machine.value())];
  }

 private:
  SimClusterOptions options_;
  sim::Simulator sim_;
  /// Declared before the components that register instruments with it,
  /// after the simulator the recorder stamps time from.
  obs::Observability obs_;
  cluster::ClusterTopology topology_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<coord::LockService> locks_;
  coord::CheckpointStore checkpoint_;
  std::unique_ptr<dfs::FileSystem> dfs_;
  std::vector<std::unique_ptr<master::FuxiMaster>> masters_;
  std::vector<std::unique_ptr<shard::ShardDirectory>> directories_;
  std::unique_ptr<shard::SubmissionRouter> router_;
  std::vector<std::unique_ptr<agent::ProcessHost>> hosts_;
  std::vector<std::unique_ptr<agent::FuxiAgent>> agents_;
  std::vector<double> slowdown_;
  std::set<MachineId> halted_;
  int64_t next_node_id_ = 10000;
  /// Post-event observer token driving the telemetry sampler (0 when
  /// telemetry is compiled out or runtime-disabled).
  uint64_t telemetry_observer_ = 0;
};

}  // namespace fuxi::runtime

#endif  // FUXI_RUNTIME_SIM_CLUSTER_H_
