#include "runtime/synthetic_app.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::runtime {

namespace {
/// Worker-start plans time out and are retried after this long.
constexpr double kPlanRetryDelay = 0.5;
/// A plan nobody answered (agent died, or the message/reply was lost)
/// is garbage-collected and the launch retried after this long.
constexpr double kPlanTimeout = 10.0;
}  // namespace

SyntheticApp::SyntheticApp(SimCluster* cluster, AppId app,
                           std::vector<SyntheticStage> stages,
                           uint64_t seed)
    : cluster_(cluster),
      app_(app),
      node_(cluster->AllocateNodeId()),
      rng_(seed) {
  for (SyntheticStage& stage : stages) {
    StageState state;
    state.config = stage;
    state.remaining_instances = stage.instances;
    stages_.push_back(std::move(state));
  }
  endpoint_.Handle<master::WorkerStartedRpc>(
      [this](const net::Envelope&, const master::WorkerStartedRpc& rpc) {
        if (running_) OnWorkerStarted(rpc);
      });
  endpoint_.Handle<master::WorkerCrashedRpc>(
      [this](const net::Envelope&, const master::WorkerCrashedRpc& rpc) {
        if (running_) OnWorkerCrashed(rpc);
      });
  endpoint_.Handle<master::AdoptQueryRpc>(
      [this](const net::Envelope&, const master::AdoptQueryRpc& rpc) {
        if (running_) OnAdoptQuery(rpc);
      });
  endpoint_.Handle<master::StopAppRpc>(
      [this](const net::Envelope&, const master::StopAppRpc&) {
        // Master-initiated teardown; nothing else to do in the
        // synthetic app (workers are reclaimed by the agents).
        running_ = false;
      });
}

SyntheticApp::~SyntheticApp() {
  if (running_) {
    cluster_->network().Unregister(node_);
  }
}

void SyntheticApp::StartMaster() {
  FUXI_CHECK(!running_);
  running_ = true;
  ++life_;
  if (stats_.am_started_at < 0) stats_.am_started_at = cluster_->sim().Now();
  cluster_->network().Register(node_, &endpoint_);
  client_ = std::make_unique<master::ResourceClient>(
      &cluster_->sim(), &cluster_->network(), &cluster_->locks(), node_,
      app_, client_options_, life_);
  client_->set_grant_callback(
      [this](uint32_t slot, MachineId machine, int64_t delta,
             resource::RevocationReason reason) {
        OnGrantChange(slot, machine, delta, reason);
      });
  client_->Start(&endpoint_);
  for (StageState& stage : stages_) {
    if (stage.config.depends_on < 0) LaunchStage(&stage);
  }
}

void SyntheticApp::CrashMaster() {
  if (!running_) return;
  running_ = false;
  ++life_;
  client_->Stop();
  client_.reset();
  cluster_->network().Unregister(node_);
  // Worker records and their execution timers survive: the processes
  // are real and keep computing while the master is away (§4.3.1 —
  // "all the workers are still running the instances without
  // interruption"). In-flight plans are lost with the master.
  for (StageState& stage : stages_) stage.pending_plans.clear();
}

void SyntheticApp::RestartMaster() {
  FUXI_CHECK(!running_);
  running_ = true;
  ++life_;
  if (stats_.am_started_at < 0) stats_.am_started_at = cluster_->sim().Now();
  cluster_->network().Register(node_, &endpoint_);
  client_ = std::make_unique<master::ResourceClient>(
      &cluster_->sim(), &cluster_->network(), &cluster_->locks(), node_,
      app_, client_options_, life_);
  client_->set_grant_callback(
      [this](uint32_t slot, MachineId machine, int64_t delta,
             resource::RevocationReason reason) {
        OnGrantChange(slot, machine, delta, reason);
      });
  // Failover: recover the grant snapshot first, then re-declare demand
  // on top of it (our instance progress was never lost — the snapshot
  // of instance status lives in this object, standing in for the
  // JobMaster's light-weight checkpoint).
  client_->StartRecovering(&endpoint_, [this] {
    for (StageState& stage : stages_) {
      if (!stage.launched || stage.complete) continue;
      client_->DefineUnit(MakeDefFor(stage));
      if (stage.config.plan.Any()) {
        client_->SetPlan(stage.config.slot_id, stage.config.plan);
      }
      int64_t granted = client_->granted_total(stage.config.slot_id);
      int64_t wanted = std::min<int64_t>(
          stage.config.workers,
          stage.remaining_instances + stage.inflight);
      client_->SetDesired(stage.config.slot_id,
                          std::max(granted, wanted));
      // Idle grants may exist on machines where our workers died with
      // the old master's plans; restart workers where needed.
      for (const auto& [machine, count] :
           client_->grants_by_machine(stage.config.slot_id)) {
        (void)count;
        TryStartWorkers(&stage, machine);
      }
    }
    // Adopted workers that finished their instance while we were away
    // sit idle; hand them the next instance (the paper's "collect the
    // status from TaskWorker, recover the inner scheduling results").
    std::vector<WorkerId> idle;
    for (const auto& [id, record] : workers_) {
      if (!record.busy) idle.push_back(id);
    }
    for (WorkerId id : idle) {
      auto it = workers_.find(id);
      if (it != workers_.end() && !it->second.busy) {
        AssignWork(&it->second);
      }
    }
  });
}

resource::ScheduleUnitDef SyntheticApp::MakeDefFor(
    const StageState& stage) const {
  resource::ScheduleUnitDef def;
  def.slot_id = stage.config.slot_id;
  def.priority = stage.config.priority;
  def.resources = stage.config.unit;
  return def;
}

void SyntheticApp::LaunchStage(StageState* stage) {
  if (stage->launched) return;
  stage->launched = true;
  if (stage->config.instances == 0) {
    stage->complete = true;
    CheckStageCompletion(stage);
    return;
  }
  client_->DefineUnit(MakeDefFor(*stage));
  if (stage->config.plan.Any()) {
    client_->SetPlan(stage->config.slot_id, stage->config.plan);
  }
  int64_t wanted =
      std::min<int64_t>(stage->config.workers, stage->config.instances);
  client_->SetDesired(stage->config.slot_id, wanted);
}

void SyntheticApp::OnGrantChange(uint32_t slot, MachineId machine,
                                 int64_t delta,
                                 resource::RevocationReason reason) {
  StageState* stage = FindStage(slot);
  if (stage == nullptr) return;
  if (delta > 0) {
    TryStartWorkers(stage, machine);
    return;
  }
  // Revocation: |delta| units on this machine are gone. Drop worker
  // records there (the processes are killed by the agent or died with
  // the machine) and requeue their in-flight instances.
  (void)reason;
  int64_t to_drop = -delta;
  std::vector<WorkerId> victims;
  for (auto& [id, record] : workers_) {
    if (to_drop == 0) break;
    if (record.machine == machine && record.slot_id == slot) {
      victims.push_back(id);
      --to_drop;
    }
  }
  for (WorkerId id : victims) {
    auto it = workers_.find(id);
    if (it == workers_.end()) continue;
    if (it->second.busy) {
      it->second.work_timer.Cancel();
      stage->remaining_instances += 1;
      stage->inflight -= 1;
    }
    workers_.erase(it);
  }
}

void SyntheticApp::TryStartWorkers(StageState* stage, MachineId machine) {
  int64_t granted = client_->granted(stage->config.slot_id, machine);
  int64_t running = 0;
  for (const auto& [id, record] : workers_) {
    if (record.machine == machine &&
        record.slot_id == stage->config.slot_id) {
      ++running;
    }
  }
  int64_t pending = 0;
  for (const auto& [plan, pending_machine] : stage->pending_plans) {
    if (pending_machine == machine) ++pending;
  }
  while (running + pending < granted) {
    master::StartWorkerRpc rpc;
    rpc.app = app_;
    rpc.slot_id = stage->config.slot_id;
    rpc.am_node = node_;
    rpc.plan_id = next_plan_id_++;
    Json plan = Json::MakeObject();
    plan["package"] = Json("pangu://packages/synthetic_worker.tar.gz");
    plan["slot"] = Json(static_cast<int64_t>(stage->config.slot_id));
    rpc.plan = std::move(plan);
    stage->pending_plans.emplace(rpc.plan_id, machine);
    plan_sent_at_[rpc.plan_id] = cluster_->sim().Now();
    // Plans are not fire-and-forget: if the StartWorkerRpc or its reply
    // is lost the pending entry would block this machine's launch slot
    // forever. Time the plan out and retry while the grant stands.
    uint64_t plan_id = rpc.plan_id;
    uint64_t life = life_;
    cluster_->sim().Schedule(kPlanTimeout,
                             [this, life, plan_id, stage, machine] {
                               if (!running_ || life != life_) return;
                               auto it = stage->pending_plans.find(plan_id);
                               if (it == stage->pending_plans.end()) return;
                               stage->pending_plans.erase(it);
                               plan_sent_at_.erase(plan_id);
                               TryStartWorkers(stage, machine);
                             });
    cluster_->network().Send(node_, cluster_->agent(machine)->node(), rpc);
    ++pending;
  }
}

void SyntheticApp::OnWorkerStarted(const master::WorkerStartedRpc& rpc) {
  double sent_at = -1;
  if (auto it = plan_sent_at_.find(rpc.plan_id);
      it != plan_sent_at_.end()) {
    sent_at = it->second;
    plan_sent_at_.erase(it);
  }
  StageState* owning_stage = nullptr;
  for (StageState& stage : stages_) {
    auto it = stage.pending_plans.find(rpc.plan_id);
    if (it != stage.pending_plans.end()) {
      owning_stage = &stage;
      stage.pending_plans.erase(it);
      break;
    }
  }
  if (owning_stage == nullptr) {
    // Unknown plan (e.g. reply to a pre-crash plan): stop the stray.
    if (rpc.ok) {
      cluster_->network().Send(node_,
                               cluster_->agent(rpc.machine)->node(),
                               master::StopWorkerRpc{rpc.worker});
    }
    return;
  }
  if (!rpc.ok) {
    // The agent may already run workers of ours it reported in the
    // refusal — a started worker whose reply was lost. Adopt them so
    // the retry loop cannot spin against a phantom capacity deficit.
    for (WorkerId id : rpc.running) {
      if (workers_.count(id) > 0) continue;
      WorkerRecord orphan;
      orphan.worker = id;
      orphan.machine = rpc.machine;
      orphan.slot_id = owning_stage->config.slot_id;
      auto [oit, inserted] = workers_.emplace(id, std::move(orphan));
      if (inserted) AssignWork(&oit->second);
    }
    // Capacity message may still be in flight to the agent; retry while
    // the grant stands.
    uint64_t life = life_;
    StageState* stage = owning_stage;
    MachineId machine = rpc.machine;
    cluster_->sim().Schedule(kPlanRetryDelay, [this, life, stage, machine] {
      if (running_ && life == life_) TryStartWorkers(stage, machine);
    });
    return;
  }
  WorkerRecord record;
  record.worker = rpc.worker;
  record.machine = rpc.machine;
  record.slot_id = owning_stage->config.slot_id;
  auto [it, inserted] = workers_.emplace(rpc.worker, std::move(record));
  FUXI_CHECK(inserted);
  ++stats_.workers_started;
  if (sent_at >= 0) {
    stats_.worker_start_latency_sum += cluster_->sim().Now() - sent_at;
    ++stats_.worker_start_count;
  }
  AssignWork(&it->second);
}

void SyntheticApp::AssignWork(WorkerRecord* worker) {
  StageState* stage = FindStage(worker->slot_id);
  FUXI_CHECK(stage != nullptr);
  if (stage->remaining_instances > 0) {
    stage->remaining_instances -= 1;
    stage->inflight += 1;
    worker->busy = true;
    double duration = stage->config.instance_duration *
                      (0.75 + 0.5 * rng_.NextDouble());
    WorkerId id = worker->worker;
    uint64_t life = life_;
    worker->work_timer =
        cluster_->sim().Schedule(duration, [this, id, life] {
          // The worker finishes its instance even if the master is away
          // (life guard only protects against double-restarts races on
          // the same worker id).
          (void)life;
          FinishInstance(id);
        });
    return;
  }
  // No work left in this stage: return the container (one unit on the
  // worker's machine) and stop the worker.
  worker->busy = false;
  MachineId machine = worker->machine;
  uint32_t slot = worker->slot_id;
  WorkerId id = worker->worker;
  workers_.erase(id);
  if (running_ && client_ != nullptr) {
    cluster_->network().Send(node_, cluster_->agent(machine)->node(),
                             master::StopWorkerRpc{id});
    client_->Release(slot, machine, 1);
  }
  CheckStageCompletion(stage);
}

void SyntheticApp::FinishInstance(WorkerId worker_id) {
  auto it = workers_.find(worker_id);
  if (it == workers_.end()) return;
  StageState* stage = FindStage(it->second.slot_id);
  FUXI_CHECK(stage != nullptr);
  stage->inflight -= 1;
  stage->done += 1;
  ++stats_.instances_done;
  it->second.busy = false;
  if (running_) {
    AssignWork(&it->second);
  }
  // If the master is down, the worker simply idles with its result;
  // the restarted master resumes assignment from its recovered state.
  CheckStageCompletion(stage);
}

void SyntheticApp::CheckStageCompletion(StageState* stage) {
  if (!stage->complete && stage->done >= stage->config.instances) {
    stage->complete = true;
  }
  if (!stage->complete) return;
  // Unblock dependent stages.
  if (running_) {
    for (StageState& next : stages_) {
      if (!next.launched && next.config.depends_on >= 0 &&
          static_cast<uint32_t>(next.config.depends_on) ==
              stage->config.slot_id) {
        LaunchStage(&next);
      }
    }
  }
  for (const StageState& s : stages_) {
    if (!s.complete) return;
  }
  if (!finished_) {
    finished_ = true;
    stats_.finished_at = cluster_->sim().Now();
    if (done_callback_) done_callback_(this);
  }
}

void SyntheticApp::OnWorkerCrashed(const master::WorkerCrashedRpc& rpc) {
  auto it = workers_.find(rpc.worker);
  if (it != workers_.end()) {
    StageState* stage = FindStage(it->second.slot_id);
    if (it->second.busy && stage != nullptr) {
      it->second.work_timer.Cancel();
      stage->remaining_instances += 1;
      stage->inflight -= 1;
    }
    MachineId machine = it->second.machine;
    uint32_t slot = it->second.slot_id;
    workers_.erase(it);
    if (rpc.restarted) {
      // The agent relaunched the process in place under the same grant.
      WorkerRecord record;
      record.worker = rpc.replacement;
      record.machine = machine;
      record.slot_id = slot;
      auto [new_it, inserted] =
          workers_.emplace(rpc.replacement, std::move(record));
      FUXI_CHECK(inserted);
      AssignWork(&new_it->second);
    } else if (StageState* s = FindStage(slot)) {
      // Killed for capacity or restart budget exhausted; if the grant
      // still stands we can start a fresh worker.
      TryStartWorkers(s, machine);
    }
  }
}

void SyntheticApp::OnAdoptQuery(const master::AdoptQueryRpc& rpc) {
  master::AdoptReplyRpc reply;
  reply.app = app_;
  reply.machine = rpc.machine;
  for (WorkerId id : rpc.workers) {
    if (workers_.count(id) > 0) reply.keep.push_back(id);
  }
  cluster_->network().Send(node_, rpc.agent_node, reply);
}

SyntheticApp::StageState* SyntheticApp::FindStage(uint32_t slot_id) {
  for (StageState& stage : stages_) {
    if (stage.config.slot_id == slot_id) return &stage;
  }
  return nullptr;
}

int64_t SyntheticApp::running_workers() const {
  return static_cast<int64_t>(workers_.size());
}

}  // namespace fuxi::runtime
