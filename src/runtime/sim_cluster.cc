#include "runtime/sim_cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::runtime {

namespace {

// Federation NodeId layout: masters live in [1, 80), directory replicas
// in [80, 95), the router at 95, agents at 100 + machine id, dynamic
// actors from next_node_id_.
constexpr int64_t kDirectoryNodeBase = 80;
constexpr int64_t kRouterNode = 95;

}  // namespace

SimCluster::SimCluster(SimClusterOptions options)
    : options_(options),
      obs_(&sim_, options.obs),
      topology_(cluster::ClusterTopology::Build(options.topology)) {
  FUXI_CHECK(options_.shards >= 1);
  network_ = std::make_unique<net::Network>(&sim_, options_.network,
                                            options_.seed);
  network_->SetObservability(&obs_.trace, &obs_.metrics);
  locks_ = std::make_unique<coord::LockService>(&sim_);
  dfs_ = std::make_unique<dfs::FileSystem>(&topology_, options_.seed + 1);
  dfs_->set_metrics(&obs_.metrics);

  // Keep the dynamic-id pool clear of the agent range on huge
  // topologies (100 + machine id would collide past ~9900 machines).
  next_node_id_ = std::max<int64_t>(
      next_node_id_,
      100 + static_cast<int64_t>(topology_.machine_count()) + 100);

  if (options_.shards == 1) {
    // Legacy single-master cluster, byte-identical to pre-federation
    // construction: default master options, no directory, no router.
    for (int i = 0; i < options_.master_replicas; ++i) {
      masters_.push_back(std::make_unique<master::FuxiMaster>(
          &sim_, network_.get(), locks_.get(), &checkpoint_, &topology_,
          NodeId(1 + i), options_.master));
      masters_.back()->set_observability(&obs_);
    }
  } else {
    FUXI_CHECK(1 + options_.shards * options_.master_replicas <=
               kDirectoryNodeBase)
        << "shard masters would overflow the master NodeId range";
    FUXI_CHECK(options_.directory_replicas >= 1 &&
               kDirectoryNodeBase + options_.directory_replicas <=
                   kRouterNode)
        << "directory replicas would overflow their NodeId range";
    std::vector<NodeId> directory_nodes;
    for (int j = 0; j < options_.directory_replicas; ++j) {
      directory_nodes.push_back(NodeId(kDirectoryNodeBase + j));
    }
    std::vector<int64_t> shard_machines(
        static_cast<size_t>(options_.shards), 0);
    for (const cluster::Machine& machine : topology_.machines()) {
      ++shard_machines[static_cast<size_t>(shard_of_machine(machine.id))];
    }
    for (int k = 0; k < options_.shards; ++k) {
      master::FuxiMasterOptions shard_options = options_.master;
      shard_options.lock_name = shard_lock(k);
      shard_options.checkpoint_prefix = StrFormat("shard%d/", k);
      shard_options.shard = k;
      shard_options.shard_machine_count =
          shard_machines[static_cast<size_t>(k)];
      shard_options.directory_replicas = directory_nodes;
      for (int r = 0; r < options_.master_replicas; ++r) {
        masters_.push_back(std::make_unique<master::FuxiMaster>(
            &sim_, network_.get(), locks_.get(), &checkpoint_, &topology_,
            NodeId(1 + k * options_.master_replicas + r), shard_options));
        masters_.back()->set_observability(&obs_);
      }
    }
    for (NodeId node : directory_nodes) {
      directories_.push_back(std::make_unique<shard::ShardDirectory>(
          &sim_, network_.get(), node));
    }
    shard::RouterOptions router_options = options_.router;
    router_options.shards = options_.shards;
    router_options.directory = directory_nodes;
    router_options.seed = options_.seed ^ 0x5D111A6E5ull;
    router_ = std::make_unique<shard::SubmissionRouter>(
        &sim_, network_.get(), NodeId(kRouterNode), router_options);
    router_->set_observability(&obs_);
  }
  slowdown_.assign(topology_.machine_count(), 1.0);
  obs::Gauge* running = obs_.metrics.GetGauge("agent.running_processes");
  for (const cluster::Machine& machine : topology_.machines()) {
    hosts_.push_back(std::make_unique<agent::ProcessHost>(machine.id));
    hosts_.back()->set_running_gauge(running);
    agent::FuxiAgentOptions agent_options = options_.agent;
    if (options_.shards > 1) {
      agent_options.master_lock = shard_lock(shard_of_machine(machine.id));
    }
    agents_.push_back(std::make_unique<agent::FuxiAgent>(
        &sim_, network_.get(), locks_.get(), hosts_.back().get(),
        &topology_, NodeId(100 + machine.id.value()), agent_options));
    agents_.back()->set_metrics(&obs_.metrics);
    agents_.back()->set_audit(&obs_.audit);
  }

  if (obs::TelemetrySampler::enabled() && options_.obs.telemetry.enabled) {
    // Derived probes: the observable symptoms the SLO watchdog's
    // standard rules watch (see chaos::RunCampaign). Probes are pure
    // reads of simulation state — sampling can never perturb a replay.
    obs_.telemetry.AddProbe("derived.agent.overcommit_units", [this] {
      // Sum of per-dimension excess (centicores + MB) that live agents'
      // capacity tables promise above physical capacity — the symptom
      // of a double-grant, visible the moment it happens (the invariant
      // monitor only *fails* the run after its sustained grace window).
      double units = 0;
      for (const cluster::Machine& machine : topology_.machines()) {
        agent::FuxiAgent* a =
            agents_[static_cast<size_t>(machine.id.value())].get();
        if (!a->is_alive()) continue;
        cluster::ResourceVector promised = a->TotalGrantedCapacity();
        units += static_cast<double>(
            std::max<int64_t>(0, promised.cpu() - machine.capacity.cpu()));
        units += static_cast<double>(std::max<int64_t>(
            0, promised.memory() - machine.capacity.memory()));
      }
      return units;
    });
    if (options_.shards > 1) {
      obs_.telemetry.AddProbe("derived.shard.imbalance", [this] {
        // Relative spread of granted CPU across shards: (max - min) /
        // max over per-shard sums; 0 when balanced or nothing granted.
        std::vector<int64_t> granted(
            static_cast<size_t>(options_.shards), 0);
        for (const cluster::Machine& machine : topology_.machines()) {
          agent::FuxiAgent* a =
              agents_[static_cast<size_t>(machine.id.value())].get();
          if (!a->is_alive()) continue;
          granted[static_cast<size_t>(shard_of_machine(machine.id))] +=
              a->TotalGrantedCapacity().cpu();
        }
        int64_t lo = *std::min_element(granted.begin(), granted.end());
        int64_t hi = *std::max_element(granted.begin(), granted.end());
        return hi > 0 ? static_cast<double>(hi - lo) /
                            static_cast<double>(hi)
                      : 0.0;
      });
    }
    obs_.telemetry.AddRate("net.decode_drops");
    telemetry_observer_ = sim_.AddPostEventObserver(
        [this](double now) { obs_.telemetry.Poll(now); });
  }
}

SimCluster::~SimCluster() {
  if (telemetry_observer_ != 0) {
    sim_.RemovePostEventObserver(telemetry_observer_);
  }
}

void SimCluster::Start() {
  for (auto& m : masters_) m->Start();
  for (auto& a : agents_) a->Start();
  for (auto& d : directories_) d->Start();
  if (router_ != nullptr) router_->Start();
}

master::FuxiMaster* SimCluster::primary() { return shard_primary(0); }

std::string SimCluster::shard_lock(int shard) const {
  if (options_.shards == 1) return master::FuxiMaster::kMasterLock;
  return StrFormat("fuxi_master/shard%d", shard);
}

master::FuxiMaster* SimCluster::shard_primary(int shard) {
  NodeId holder = locks_->Holder(shard_lock(shard));
  for (auto& m : masters_) {
    if (m->node() == holder && m->is_primary()) return m.get();
  }
  return nullptr;
}

void SimCluster::KillShardPrimary(int shard) {
  master::FuxiMaster* p = shard_primary(shard);
  if (p != nullptr) p->Crash();
}

void SimCluster::SetAppMasterLauncher(
    agent::FuxiAgent::AppMasterLauncher launcher) {
  for (auto& a : agents_) a->set_app_master_launcher(launcher);
}

void SimCluster::KillPrimaryMaster() {
  master::FuxiMaster* p = primary();
  if (p != nullptr) p->Crash();
}

void SimCluster::HaltMachine(MachineId machine) {
  agent(machine)->HaltMachine();
  halted_.insert(machine);
}

void SimCluster::ReviveMachine(MachineId machine) {
  halted_.erase(machine);
  agent::FuxiAgent* a = agent(machine);
  if (!a->is_alive()) a->Restart();
}

int SimCluster::RestartDeadMasters() {
  int restarted = 0;
  for (auto& m : masters_) {
    if (!m->is_alive()) {
      m->Restart();
      ++restarted;
    }
  }
  return restarted;
}

void SimCluster::SetMachineHealth(MachineId machine, double score) {
  agent(machine)->set_health_score(score);
}

void SimCluster::SetMachineSlowdown(MachineId machine, double factor) {
  slowdown_[static_cast<size_t>(machine.value())] = factor;
}

}  // namespace fuxi::runtime
