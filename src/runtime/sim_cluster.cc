#include "runtime/sim_cluster.h"

#include "common/logging.h"

namespace fuxi::runtime {

SimCluster::SimCluster(SimClusterOptions options)
    : options_(options),
      obs_(&sim_, options.obs),
      topology_(cluster::ClusterTopology::Build(options.topology)) {
  network_ = std::make_unique<net::Network>(&sim_, options_.network,
                                            options_.seed);
  network_->SetObservability(&obs_.trace, &obs_.metrics);
  locks_ = std::make_unique<coord::LockService>(&sim_);
  dfs_ = std::make_unique<dfs::FileSystem>(&topology_, options_.seed + 1);
  dfs_->set_metrics(&obs_.metrics);

  for (int i = 0; i < options_.master_replicas; ++i) {
    masters_.push_back(std::make_unique<master::FuxiMaster>(
        &sim_, network_.get(), locks_.get(), &checkpoint_, &topology_,
        NodeId(1 + i), options_.master));
    masters_.back()->set_observability(&obs_);
  }
  slowdown_.assign(topology_.machine_count(), 1.0);
  obs::Gauge* running = obs_.metrics.GetGauge("agent.running_processes");
  for (const cluster::Machine& machine : topology_.machines()) {
    hosts_.push_back(std::make_unique<agent::ProcessHost>(machine.id));
    hosts_.back()->set_running_gauge(running);
    agents_.push_back(std::make_unique<agent::FuxiAgent>(
        &sim_, network_.get(), locks_.get(), hosts_.back().get(),
        &topology_, NodeId(100 + machine.id.value()), options_.agent));
    agents_.back()->set_metrics(&obs_.metrics);
    agents_.back()->set_audit(&obs_.audit);
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::Start() {
  for (auto& m : masters_) m->Start();
  for (auto& a : agents_) a->Start();
}

master::FuxiMaster* SimCluster::primary() {
  NodeId holder = locks_->Holder(master::FuxiMaster::kMasterLock);
  for (auto& m : masters_) {
    if (m->node() == holder && m->is_primary()) return m.get();
  }
  return nullptr;
}

void SimCluster::SetAppMasterLauncher(
    agent::FuxiAgent::AppMasterLauncher launcher) {
  for (auto& a : agents_) a->set_app_master_launcher(launcher);
}

void SimCluster::KillPrimaryMaster() {
  master::FuxiMaster* p = primary();
  if (p != nullptr) p->Crash();
}

void SimCluster::HaltMachine(MachineId machine) {
  agent(machine)->HaltMachine();
  halted_.insert(machine);
}

void SimCluster::ReviveMachine(MachineId machine) {
  halted_.erase(machine);
  agent::FuxiAgent* a = agent(machine);
  if (!a->is_alive()) a->Restart();
}

int SimCluster::RestartDeadMasters() {
  int restarted = 0;
  for (auto& m : masters_) {
    if (!m->is_alive()) {
      m->Restart();
      ++restarted;
    }
  }
  return restarted;
}

void SimCluster::SetMachineHealth(MachineId machine, double score) {
  agent(machine)->set_health_score(score);
}

void SimCluster::SetMachineSlowdown(MachineId machine, double factor) {
  slowdown_[static_cast<size_t>(machine.value())] = factor;
}

}  // namespace fuxi::runtime
