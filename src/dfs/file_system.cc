#include "dfs/file_system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::dfs {

Result<const FileInfo*> FileSystem::CreateFile(const std::string& path,
                                               int64_t size_bytes,
                                               int64_t block_size,
                                               int replication) {
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file exists: " + path);
  }
  if (size_bytes < 0 || block_size <= 0 || replication < 1) {
    return Status::InvalidArgument("bad size/block/replication for " + path);
  }
  size_t machine_count = topology_->machine_count();
  if (machine_count == 0) {
    return Status::FailedPrecondition("empty cluster");
  }
  replication = std::min<int>(replication, static_cast<int>(machine_count));

  FileInfo info;
  info.path = path;
  info.size_bytes = size_bytes;
  int64_t remaining = size_bytes;
  while (remaining > 0) {
    Block block;
    block.id = next_block_id_++;
    block.size_bytes = std::min(remaining, block_size);
    remaining -= block.size_bytes;

    // Primary replica on a random machine; second in the same rack when
    // possible; remaining replicas on other racks.
    MachineId primary(static_cast<int64_t>(rng_.Uniform(machine_count)));
    block.replicas.push_back(primary);
    const cluster::Rack& rack = topology_->rack(topology_->machine(primary).rack);
    if (replication >= 2 && rack.machines.size() > 1) {
      MachineId buddy = primary;
      while (buddy == primary) {
        buddy = rack.machines[rng_.Uniform(rack.machines.size())];
      }
      block.replicas.push_back(buddy);
    }
    while (block.replicas.size() < static_cast<size_t>(replication)) {
      MachineId candidate(
          static_cast<int64_t>(rng_.Uniform(machine_count)));
      if (std::find(block.replicas.begin(), block.replicas.end(),
                    candidate) == block.replicas.end()) {
        block.replicas.push_back(candidate);
      }
    }
    info.blocks.push_back(std::move(block));
  }

  auto [it, inserted] = files_.emplace(path, std::move(info));
  FUXI_CHECK(inserted);
  if (files_created_counter_ != nullptr) {
    files_created_counter_->Add();
    blocks_placed_counter_->Add(it->second.blocks.size());
    bytes_written_counter_->Add(static_cast<uint64_t>(size_bytes));
  }
  return &it->second;
}

Result<const FileInfo*> FileSystem::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file: " + path);
  return &it->second;
}

Status FileSystem::DeleteFile(const std::string& path) {
  if (files_.erase(path) == 0) return Status::NotFound("no file: " + path);
  return Status::Ok();
}

std::vector<const FileInfo*> FileSystem::Glob(
    const std::string& pattern) const {
  std::vector<const FileInfo*> out;
  if (!pattern.empty() && pattern.back() == '*') {
    std::string prefix = pattern.substr(0, pattern.size() - 1);
    for (const auto& [path, info] : files_) {
      if (StartsWith(path, prefix)) out.push_back(&info);
    }
    std::sort(out.begin(), out.end(),
              [](const FileInfo* a, const FileInfo* b) {
                return a->path < b->path;
              });
  } else {
    auto it = files_.find(pattern);
    if (it != files_.end()) out.push_back(&it->second);
  }
  return out;
}

Locality FileSystem::ClosestLocality(MachineId reader,
                                     const Block& block) const {
  Locality best = Locality::kRemote;
  for (MachineId replica : block.replicas) {
    if (IsDead(replica)) continue;
    if (replica == reader) {
      best = Locality::kLocal;
      break;
    }
    if (topology_->SameRack(replica, reader)) best = Locality::kRack;
  }
  if (read_local_counter_ != nullptr) {
    switch (best) {
      case Locality::kLocal: read_local_counter_->Add(); break;
      case Locality::kRack: read_rack_counter_->Add(); break;
      case Locality::kRemote: read_remote_counter_->Add(); break;
    }
  }
  return best;
}

std::unordered_map<MachineId, int64_t> FileSystem::LocalityMap(
    const std::string& path) const {
  std::unordered_map<MachineId, int64_t> bytes_by_machine;
  auto it = files_.find(path);
  if (it == files_.end()) return bytes_by_machine;
  for (const Block& block : it->second.blocks) {
    for (MachineId replica : block.replicas) {
      if (IsDead(replica)) continue;
      bytes_by_machine[replica] += block.size_bytes;
    }
  }
  return bytes_by_machine;
}

void FileSystem::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    files_created_counter_ = blocks_placed_counter_ = nullptr;
    bytes_written_counter_ = nullptr;
    read_local_counter_ = read_rack_counter_ = read_remote_counter_ =
        nullptr;
    return;
  }
  files_created_counter_ = metrics->GetCounter("dfs.files_created");
  blocks_placed_counter_ = metrics->GetCounter("dfs.blocks_placed");
  bytes_written_counter_ = metrics->GetCounter("dfs.bytes_written");
  read_local_counter_ = metrics->GetCounter("dfs.reads.local");
  read_rack_counter_ = metrics->GetCounter("dfs.reads.rack");
  read_remote_counter_ = metrics->GetCounter("dfs.reads.remote");
}

}  // namespace fuxi::dfs
