#ifndef FUXI_DFS_FILE_SYSTEM_H_
#define FUXI_DFS_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace fuxi::dfs {

/// Where a reader sits relative to a block replica. Drives both the
/// locality hints in resource requests (Figure 4) and the data-plane
/// read-bandwidth model.
enum class Locality { kLocal, kRack, kRemote };

/// One replicated block of a file.
struct Block {
  uint64_t id = 0;
  int64_t size_bytes = 0;
  std::vector<MachineId> replicas;
};

struct FileInfo {
  std::string path;
  int64_t size_bytes = 0;
  std::vector<Block> blocks;
};

/// Simulated replicated block store — our stand-in for Pangu, the
/// Apsara DFS that backs Fuxi jobs ("pangu://..." in Figure 6). It only
/// models what the scheduler needs: block→machine placement for
/// locality-aware scheduling, and replica choice for read-bandwidth
/// estimation. Data contents are never materialized.
class FileSystem {
 public:
  FileSystem(const cluster::ClusterTopology* topology, uint64_t seed = 7)
      : topology_(topology), rng_(seed) {}

  /// Creates `path` with `size_bytes` split into `block_size` chunks,
  /// placing `replication` replicas per block: the first on a random
  /// machine, the second in the same rack, the rest on remote racks
  /// (HDFS/Pangu-style placement).
  Result<const FileInfo*> CreateFile(const std::string& path,
                                     int64_t size_bytes, int64_t block_size,
                                     int replication = 3);

  Result<const FileInfo*> Stat(const std::string& path) const;

  Status DeleteFile(const std::string& path);

  /// All files whose path starts with `pattern` up to a trailing '*',
  /// or the exact path when no wildcard — mirrors "FilePattern" inputs.
  std::vector<const FileInfo*> Glob(const std::string& pattern) const;

  /// Relationship between `reader` and the closest replica of `block`.
  Locality ClosestLocality(MachineId reader, const Block& block) const;

  /// Machines that hold any block of `path`, with the total bytes each
  /// holds — the input for building locality hints.
  std::unordered_map<MachineId, int64_t> LocalityMap(
      const std::string& path) const;

  /// Marks a machine dead: its replicas no longer count for locality.
  void MarkMachineDead(MachineId machine) { dead_.insert(machine); }
  void MarkMachineAlive(MachineId machine) { dead_.erase(machine); }

  /// Wires the metrics registry in (null detaches): file/block creation
  /// volume plus replica-read locality tiers — the data-plane side of
  /// the bandwidth model.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  bool IsDead(MachineId machine) const { return dead_.count(machine) > 0; }

  const cluster::ClusterTopology* topology_;
  Rng rng_;
  uint64_t next_block_id_ = 1;
  std::unordered_map<std::string, FileInfo> files_;
  std::unordered_set<MachineId> dead_;

  obs::Counter* files_created_counter_ = nullptr;
  obs::Counter* blocks_placed_counter_ = nullptr;
  obs::Counter* bytes_written_counter_ = nullptr;
  // Mutated from the const read path; counting reads is not a logical
  // state change.
  obs::Counter* read_local_counter_ = nullptr;
  obs::Counter* read_rack_counter_ = nullptr;
  obs::Counter* read_remote_counter_ = nullptr;
};

}  // namespace fuxi::dfs

#endif  // FUXI_DFS_FILE_SYSTEM_H_
