// Wire codecs for the lease protocol (messages.h). Field order is the
// struct declaration order; bump the version byte in messages.h on any
// layout change.

#include "coord/messages.h"

namespace fuxi::coord {

void WireEncode(wire::Writer& w, const LeaseAcquireRpc& m) {
  w.Str(m.name);
  w.Id(m.owner);
  w.F64(m.lease_seconds);
  w.U64(m.request_id);
}

Status WireDecode(wire::Reader& r, LeaseAcquireRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Str(&m.name));
  FUXI_RETURN_IF_ERROR(r.Id(&m.owner));
  FUXI_RETURN_IF_ERROR(r.F64(&m.lease_seconds));
  return r.U64(&m.request_id);
}

void WireEncode(wire::Writer& w, const LeaseRenewRpc& m) {
  w.Str(m.name);
  w.Id(m.owner);
  w.F64(m.lease_seconds);
  w.U64(m.request_id);
}

Status WireDecode(wire::Reader& r, LeaseRenewRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Str(&m.name));
  FUXI_RETURN_IF_ERROR(r.Id(&m.owner));
  FUXI_RETURN_IF_ERROR(r.F64(&m.lease_seconds));
  return r.U64(&m.request_id);
}

void WireEncode(wire::Writer& w, const LeaseReleaseRpc& m) {
  w.Str(m.name);
  w.Id(m.owner);
  w.U64(m.request_id);
}

Status WireDecode(wire::Reader& r, LeaseReleaseRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Str(&m.name));
  FUXI_RETURN_IF_ERROR(r.Id(&m.owner));
  return r.U64(&m.request_id);
}

void WireEncode(wire::Writer& w, const LeaseReplyRpc& m) {
  w.U64(m.request_id);
  w.Bool(m.granted);
  w.Id(m.holder);
  w.U64(m.generation);
  w.Str(m.error);
}

Status WireDecode(wire::Reader& r, LeaseReplyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.request_id));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.granted));
  FUXI_RETURN_IF_ERROR(r.Id(&m.holder));
  FUXI_RETURN_IF_ERROR(r.U64(&m.generation));
  return r.Str(&m.error);
}

}  // namespace fuxi::coord
