#ifndef FUXI_COORD_MESSAGES_H_
#define FUXI_COORD_MESSAGES_H_

#include <string>

#include "common/ids.h"
#include "wire/wire.h"

namespace fuxi::coord {

/// The lease protocol of the lock service (lock_service.h) as wire
/// messages. Inside the simulator LockService is still a direct-call
/// service — elections run through its in-process API so failover timing
/// is unchanged — but this is the RPC surface a socket-backed lock server
/// will speak (ROADMAP north star), defined and codec-tested now so the
/// on-wire contract is pinned before any transport exists.

/// Candidate → lock server: TryAcquire(name, owner, lease).
struct LeaseAcquireRpc {
  std::string name;
  NodeId owner;
  double lease_seconds = 0;
  uint64_t request_id = 0;  ///< echoed in the reply
};

/// Holder → lock server: Renew(name, owner, lease).
struct LeaseRenewRpc {
  std::string name;
  NodeId owner;
  double lease_seconds = 0;
  uint64_t request_id = 0;
};

/// Holder → lock server: Release(name, owner).
struct LeaseReleaseRpc {
  std::string name;
  NodeId owner;
  uint64_t request_id = 0;
};

/// Lock server → client: outcome of any lease operation. `generation`
/// is the lock's acquire counter, so a client can discard replies from
/// before the most recent handover it observed.
struct LeaseReplyRpc {
  uint64_t request_id = 0;
  bool granted = false;
  NodeId holder;            ///< current holder (may be someone else)
  uint64_t generation = 0;
  std::string error;
};

// ---------------------------------------------------------------------
// Wire codecs (fuxi::wire, DESIGN.md §10); definitions in
// messages_wire.cc. Bump the version byte on any layout change.
// ---------------------------------------------------------------------

#define FUXI_COORD_DECLARE_WIRE(TYPE)                  \
  void WireEncode(wire::Writer& w, const TYPE& m);     \
  Status WireDecode(wire::Reader& r, TYPE& m);         \
  constexpr wire::TypeInfo WireTypeInfo(const TYPE*) { \
    return {wire::MsgTag::k##TYPE, 1};                 \
  }

FUXI_COORD_DECLARE_WIRE(LeaseAcquireRpc)
FUXI_COORD_DECLARE_WIRE(LeaseRenewRpc)
FUXI_COORD_DECLARE_WIRE(LeaseReleaseRpc)
FUXI_COORD_DECLARE_WIRE(LeaseReplyRpc)

#undef FUXI_COORD_DECLARE_WIRE

}  // namespace fuxi::coord

#endif  // FUXI_COORD_MESSAGES_H_
