#ifndef FUXI_COORD_CHECKPOINT_STORE_H_
#define FUXI_COORD_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace fuxi::coord {

/// Durable key→JSON store standing in for the reliable storage Fuxi
/// checkpoints hard state into (§4.3.1): job descriptions, cluster-level
/// blacklists, JobMaster instance snapshots. It survives any simulated
/// process failure because it is owned by the test harness, not by the
/// failing component. Write/byte counters let benchmarks show that
/// "light-weighted checkpoint" stays light.
class CheckpointStore {
 public:
  /// Stores `value` under `key`, replacing any previous version.
  void Put(const std::string& key, Json value);

  /// Loads the value under `key`.
  Result<Json> Get(const std::string& key) const;

  /// Removes `key`. Missing keys are fine (idempotent delete).
  void Delete(const std::string& key);

  bool Contains(const std::string& key) const {
    return data_.count(key) > 0;
  }
  size_t size() const { return data_.size(); }

  uint64_t write_count() const { return write_count_; }
  uint64_t bytes_written() const { return bytes_written_; }
  void ResetStats() {
    write_count_ = 0;
    bytes_written_ = 0;
  }

  /// Keys with the given prefix, in lexicographic order.
  std::vector<std::string> ListKeys(const std::string& prefix) const;

  // --- torn-write fault injection ---------------------------------------
  // A process crash mid-Put leaves a partial record on disk: the key is
  // present (ListKeys still returns it) but its bytes no longer parse.
  // Chaos faults mark a record torn; readers see Status::Corruption
  // until the record is overwritten by a fresh Put (or Deleted).

  /// Marks `key` as torn. No-op for absent keys.
  void CorruptKey(const std::string& key);

  /// The key of the most recent Put — "the write in flight at crash
  /// time" for the TornCheckpointWrite chaos fault.
  const std::string& last_put_key() const { return last_put_key_; }

  size_t corrupt_count() const { return corrupt_.size(); }

 private:
  std::map<std::string, Json> data_;
  std::set<std::string> corrupt_;
  std::string last_put_key_;
  uint64_t write_count_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace fuxi::coord

#endif  // FUXI_COORD_CHECKPOINT_STORE_H_
