#ifndef FUXI_COORD_CHECKPOINT_STORE_H_
#define FUXI_COORD_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace fuxi::coord {

/// Durable key→JSON store standing in for the reliable storage Fuxi
/// checkpoints hard state into (§4.3.1): job descriptions, cluster-level
/// blacklists, JobMaster instance snapshots. It survives any simulated
/// process failure because it is owned by the test harness, not by the
/// failing component. Write/byte counters let benchmarks show that
/// "light-weighted checkpoint" stays light.
class CheckpointStore {
 public:
  /// Stores `value` under `key`, replacing any previous version.
  void Put(const std::string& key, Json value);

  /// Loads the value under `key`.
  Result<Json> Get(const std::string& key) const;

  /// Removes `key`. Missing keys are fine (idempotent delete).
  void Delete(const std::string& key);

  bool Contains(const std::string& key) const {
    return data_.count(key) > 0;
  }
  size_t size() const { return data_.size(); }

  uint64_t write_count() const { return write_count_; }
  uint64_t bytes_written() const { return bytes_written_; }
  void ResetStats() {
    write_count_ = 0;
    bytes_written_ = 0;
  }

  /// Keys with the given prefix, in lexicographic order.
  std::vector<std::string> ListKeys(const std::string& prefix) const;

 private:
  std::map<std::string, Json> data_;
  uint64_t write_count_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace fuxi::coord

#endif  // FUXI_COORD_CHECKPOINT_STORE_H_
