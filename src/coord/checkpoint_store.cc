#include "coord/checkpoint_store.h"

#include "common/strings.h"

namespace fuxi::coord {

void CheckpointStore::Put(const std::string& key, Json value) {
  ++write_count_;
  bytes_written_ += value.Dump().size();
  data_[key] = std::move(value);
  // A complete rewrite repairs a previously torn record.
  corrupt_.erase(key);
  last_put_key_ = key;
}

Result<Json> CheckpointStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return Status::NotFound("no checkpoint under key " + key);
  }
  if (corrupt_.count(key) > 0) {
    return Status::Corruption("torn checkpoint record under key " + key);
  }
  return it->second;
}

void CheckpointStore::Delete(const std::string& key) {
  data_.erase(key);
  corrupt_.erase(key);
}

void CheckpointStore::CorruptKey(const std::string& key) {
  if (data_.count(key) > 0) corrupt_.insert(key);
}

std::vector<std::string> CheckpointStore::ListKeys(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  return keys;
}

}  // namespace fuxi::coord
