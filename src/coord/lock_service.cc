#include "coord/lock_service.h"

#include <utility>

namespace fuxi::coord {

Status LockService::TryAcquire(const std::string& name, NodeId owner,
                               double lease_seconds) {
  Lock& lock = locks_[name];
  double now = sim_->Now();
  if (lock.holder.valid() && lock.lease_deadline > now) {
    if (lock.holder == owner) {
      // Re-acquisition by the holder refreshes the lease.
      lock.lease_deadline = now + lease_seconds;
      ++lock.generation;
      ScheduleExpiry(name, lock.generation, lock.lease_deadline);
      return Status::Ok();
    }
    return Status::AlreadyExists("lock " + name + " held by node " +
                                 lock.holder.ToString());
  }
  lock.holder = owner;
  lock.lease_deadline = now + lease_seconds;
  ++lock.generation;
  ScheduleExpiry(name, lock.generation, lock.lease_deadline);
  return Status::Ok();
}

Status LockService::Renew(const std::string& name, NodeId owner,
                          double lease_seconds) {
  auto it = locks_.find(name);
  if (it == locks_.end() || it->second.holder != owner ||
      it->second.lease_deadline <= sim_->Now()) {
    return Status::NotFound("lock " + name + " not held by node " +
                            owner.ToString());
  }
  Lock& lock = it->second;
  lock.lease_deadline = sim_->Now() + lease_seconds;
  ++lock.generation;
  ScheduleExpiry(name, lock.generation, lock.lease_deadline);
  return Status::Ok();
}

Status LockService::Release(const std::string& name, NodeId owner) {
  auto it = locks_.find(name);
  if (it == locks_.end() || it->second.holder != owner) {
    return Status::NotFound("lock " + name + " not held by node " +
                            owner.ToString());
  }
  ReleaseInternal(name);
  return Status::Ok();
}

NodeId LockService::Holder(const std::string& name) const {
  auto it = locks_.find(name);
  if (it == locks_.end()) return NodeId();
  if (it->second.lease_deadline <= sim_->Now()) return NodeId();
  return it->second.holder;
}

void LockService::WatchRelease(const std::string& name,
                               std::function<void()> callback) {
  locks_[name].watchers.push_back(std::move(callback));
}

void LockService::ExpireNow(const std::string& name) {
  auto it = locks_.find(name);
  if (it == locks_.end() || !it->second.holder.valid()) return;
  ReleaseInternal(name);
}

void LockService::ScheduleExpiry(const std::string& name,
                                 uint64_t generation, double deadline) {
  sim_->ScheduleAt(deadline, [this, name, generation]() {
    auto it = locks_.find(name);
    if (it == locks_.end()) return;
    Lock& lock = it->second;
    // A later renew/acquire bumped the generation; this expiry is stale.
    if (lock.generation != generation) return;
    if (!lock.holder.valid()) return;
    ReleaseInternal(name);
  });
}

void LockService::ReleaseInternal(const std::string& name) {
  Lock& lock = locks_[name];
  lock.holder = NodeId();
  lock.lease_deadline = 0;
  ++lock.generation;
  // Watchers may re-acquire synchronously; move the list out first so
  // re-registration during callbacks is safe.
  std::vector<std::function<void()>> watchers = std::move(lock.watchers);
  lock.watchers.clear();
  for (auto& w : watchers) w();
}

}  // namespace fuxi::coord
