#ifndef FUXI_COORD_LOCK_SERVICE_H_
#define FUXI_COORD_LOCK_SERVICE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace fuxi::coord {

/// Simulated distributed lock service with leases — our stand-in for
/// the Apsara lock service the paper uses for FuxiMaster hot-standby
/// election (§4.3.1): the primary holds the lock; when it dies its lease
/// expires and the standby's acquisition callback fires.
class LockService {
 public:
  explicit LockService(sim::Simulator* simulator) : sim_(simulator) {}

  /// Attempts to take `name` for `owner` with the given lease duration.
  /// Returns AlreadyExists when another live owner holds it.
  Status TryAcquire(const std::string& name, NodeId owner,
                    double lease_seconds);

  /// Extends the lease. Fails with NotFound if `owner` does not hold it
  /// (e.g. the lease already expired and someone else acquired it).
  Status Renew(const std::string& name, NodeId owner, double lease_seconds);

  /// Voluntarily drops the lock; waiters are notified immediately.
  Status Release(const std::string& name, NodeId owner);

  /// Current holder, or invalid NodeId when free.
  NodeId Holder(const std::string& name) const;

  /// Registers a callback invoked whenever `name` becomes free (release
  /// or lease expiry). Waiters typically re-call TryAcquire inside it.
  void WatchRelease(const std::string& name, std::function<void()> callback);

  /// Forces immediate expiry of `name`'s lease (fault injection: lock
  /// server declares the holder dead).
  void ExpireNow(const std::string& name);

 private:
  struct Lock {
    NodeId holder;
    uint64_t generation = 0;  ///< bumps on every acquire; stale expiry guard
    double lease_deadline = 0;
    std::vector<std::function<void()>> watchers;
  };

  void ScheduleExpiry(const std::string& name, uint64_t generation,
                      double deadline);
  void ReleaseInternal(const std::string& name);

  sim::Simulator* sim_;
  std::map<std::string, Lock> locks_;
};

}  // namespace fuxi::coord

#endif  // FUXI_COORD_LOCK_SERVICE_H_
