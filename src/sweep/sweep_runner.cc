#include "sweep/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace fuxi::sweep {

namespace {

int HardwareJobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// One worker's queue. Owner pops from the front, thieves steal from
/// the back, so an owner working through its own stripe and a thief
/// raiding it never contend for the same end's cache line for long —
/// and a stolen task is always the one the owner would have reached
/// last.
struct WorkQueue {
  std::mutex mu;
  std::deque<size_t> tasks;
};

}  // namespace

SweepRunner::SweepRunner(SweepRunnerOptions options)
    : jobs_(options.jobs == 0 ? HardwareJobs() : std::max(options.jobs, 1)) {}

void SweepRunner::Run(size_t count, const std::function<void(size_t)>& fn) {
  stats_ = SweepRunnerStats{};
  stats_.tasks = count;
  auto start = std::chrono::steady_clock::now();
  auto stamp_wall = [this, start] {
    stats_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  };
  if (count == 0) {
    stamp_wall();
    return;
  }

  int workers = std::min<size_t>(static_cast<size_t>(jobs_), count);
  if (workers <= 1) {
    // Serial reference mode: no threads, no queues — the exact loop the
    // parallel path must be indistinguishable from.
    for (size_t i = 0; i < count; ++i) fn(i);
    stamp_wall();
    return;
  }

  // Stripe the index space round-robin across the workers' deques:
  // heterogeneous seed costs (a violating campaign dumps artifacts, a
  // clean one does not) spread across all queues instead of loading one.
  std::vector<WorkQueue> queues(static_cast<size_t>(workers));
  for (size_t i = 0; i < count; ++i) {
    queues[i % static_cast<size_t>(workers)].tasks.push_back(i);
  }

  // First thrown exception per index; the lowest index wins the rethrow
  // so a failure report is deterministic regardless of interleaving.
  std::vector<std::exception_ptr> errors(count);
  std::atomic<bool> abort{false};
  std::atomic<size_t> steals{0};

  auto worker_loop = [&](size_t me) {
    while (!abort.load(std::memory_order_relaxed)) {
      size_t task = count;  // sentinel: nothing found
      {
        std::lock_guard<std::mutex> lock(queues[me].mu);
        if (!queues[me].tasks.empty()) {
          task = queues[me].tasks.front();
          queues[me].tasks.pop_front();
        }
      }
      if (task == count) {
        for (size_t k = 1; k < queues.size() && task == count; ++k) {
          WorkQueue& victim = queues[(me + k) % queues.size()];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.tasks.empty()) {
            task = victim.tasks.back();
            victim.tasks.pop_back();
          }
        }
        if (task == count) return;  // every queue drained
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        fn(task);
      } catch (...) {
        errors[task] = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(worker_loop, static_cast<size_t>(w));
  }
  for (std::thread& t : threads) t.join();

  stats_.workers = workers;
  stats_.steals = steals.load();
  stamp_wall();

  for (size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

void ExportStats(const SweepRunnerStats& stats,
                 obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->GetCounter("sweep.tasks")->Add(stats.tasks);
  registry->GetCounter("sweep.steals")->Add(stats.steals);
  registry->GetGauge("sweep.workers")
      ->Set(static_cast<double>(stats.workers));
  registry->GetGauge("sweep.wall_seconds")->Set(stats.wall_seconds);
  registry->MarkRealtime("sweep.steals");
  registry->MarkRealtime("sweep.workers");
  registry->MarkRealtime("sweep.wall_seconds");
}

int ParseJobs(const char* text) {
  if (text == nullptr) return 1;
  if (std::strcmp(text, "max") == 0) return 0;
  int jobs = std::atoi(text);
  return jobs < 0 ? 1 : jobs;
}

int DefaultSweepJobs() {
  const char* env = std::getenv("FUXI_SWEEP_JOBS");
  int jobs = env != nullptr && *env != '\0' ? ParseJobs(env) : 0;
  if (jobs == 0) jobs = HardwareJobs();
  return std::max(jobs, 2);
}

}  // namespace fuxi::sweep
