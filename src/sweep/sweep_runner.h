#ifndef FUXI_SWEEP_SWEEP_RUNNER_H_
#define FUXI_SWEEP_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/metrics_registry.h"

namespace fuxi::sweep {

/// How many workers a sweep fans out over.
struct SweepRunnerOptions {
  /// Worker threads. 1 runs every task inline on the calling thread (no
  /// threads are created — the serial reference mode the determinism
  /// battery compares against); 0 means one worker per hardware core;
  /// any other value is used as given, even above the core count
  /// (oversubscription is a useful interleaving stressor).
  int jobs = 1;
};

/// Per-Run() accounting, for the CI wall-clock record and the
/// work-stealing tests.
struct SweepRunnerStats {
  size_t tasks = 0;         ///< indices executed by the last Run()
  size_t steals = 0;        ///< tasks executed off another worker's queue
  int workers = 0;          ///< threads actually spawned (0 = ran inline)
  double wall_seconds = 0;  ///< wall-clock of the last Run()
};

/// Work-stealing parallel-for over independent indices.
///
/// Each worker owns a deque pre-striped with every jobs-th index; it
/// pops work from the front of its own deque and, when empty, steals
/// from the back of the first non-empty victim. Campaign-grained tasks
/// (milliseconds to seconds each) make a mutex per deque cheaper than
/// anything lock-free would buy.
///
/// The contract that makes parallel sweeps safe to trust:
///  * every index in [0, count) runs exactly once, on exactly one
///    worker;
///  * `fn` must touch only state owned by its index (each chaos seed
///    builds its own SimCluster; the per-cluster Observability bundle
///    keeps metrics/trace/audit isolated) — the determinism battery in
///    tests/sweep_test.cc enforces this by comparing jobs=1 and jobs=N
///    digests byte for byte;
///  * reductions stay deterministic because callers collect results
///    into a caller-owned, index-addressed slot (see RunIndexed) and
///    fold them in index order after Run() returns, never in
///    completion order;
///  * an exception thrown by `fn` is captured, the remaining queue is
///    drained without running further tasks, and the lowest-index
///    exception is rethrown from Run() on the calling thread.
class SweepRunner {
 public:
  explicit SweepRunner(SweepRunnerOptions options = {});

  /// The resolved worker count (options.jobs with 0 expanded to the
  /// hardware concurrency).
  int jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(count-1), each exactly once. Blocks until every
  /// task finished (or was abandoned after a thrown exception).
  void Run(size_t count, const std::function<void(size_t)>& fn);

  const SweepRunnerStats& stats() const { return stats_; }

 private:
  int jobs_;
  SweepRunnerStats stats_;
};

/// Seed-ordered reduction helper: results land in an index-addressed
/// vector, so the caller's fold over them is independent of which
/// worker finished when.
template <typename R>
std::vector<R> RunIndexed(size_t count, const std::function<R(size_t)>& fn,
                          SweepRunnerOptions options = {},
                          SweepRunnerStats* stats = nullptr) {
  std::vector<R> results(count);
  SweepRunner runner(options);
  runner.Run(count, [&results, &fn](size_t i) { results[i] = fn(i); });
  if (stats != nullptr) *stats = runner.stats();
  return results;
}

/// Publishes a Run()'s accounting through a MetricsRegistry so
/// parallel-sweep health travels the same export paths as every other
/// instrument (MetricsToCsv, telemetry dumps, `trace_stats --metrics`):
/// counters sweep.tasks / sweep.steals, gauges sweep.workers /
/// sweep.wall_seconds. Steals, worker count and wall-clock depend on
/// the host and scheduling luck, so they are tagged realtime;
/// sweep.tasks is deterministic.
void ExportStats(const SweepRunnerStats& stats,
                 obs::MetricsRegistry* registry);

/// Parses a --jobs flag value: "max" or "0" → 0 (one per core), else
/// the integer (minimum 1).
int ParseJobs(const char* text);

/// Default parallelism for test sweeps: the FUXI_SWEEP_JOBS environment
/// variable when set (same "max"/number grammar as --jobs), else one
/// worker per hardware core. Never returns less than 2 — on a
/// single-core host the determinism battery still wants real thread
/// interleaving to bite.
int DefaultSweepJobs();

}  // namespace fuxi::sweep

#endif  // FUXI_SWEEP_SWEEP_RUNNER_H_
