#include "trace/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fuxi::trace {

const std::vector<std::pair<int64_t, int64_t>>& SyntheticWorkload::Shapes() {
  static const std::vector<std::pair<int64_t, int64_t>> kShapes = {
      {10, 10},     {100, 10},   {100, 100},
      {1000, 100},  {1000, 1000}, {10000, 5000},
  };
  return kShapes;
}

SyntheticWorkload::Shape SyntheticWorkload::NextShape() {
  const auto& shapes = Shapes();
  const auto& [maps, reduces] =
      shapes[static_cast<size_t>(counter_) % shapes.size()];
  Shape shape;
  shape.maps = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(maps) *
                              options_.instance_scale));
  shape.reduces = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(reduces) *
                              options_.instance_scale));
  // Log-uniform duration across the paper's 10 s … 10 min band.
  double log_min = std::log(options_.min_instance_seconds);
  double log_max = std::log(options_.max_instance_seconds);
  shape.seconds =
      std::exp(log_min + (log_max - log_min) * rng_.NextDouble());
  shape.wordcount = counter_ % 2 == 0;
  ++counter_;
  return shape;
}

job::JobDescription SyntheticWorkload::NextJobDescription() {
  Shape shape = NextShape();
  job::JobDescription desc;
  desc.name = (shape.wordcount ? "wordcount-" : "terasort-") +
              std::to_string(counter_);
  job::TaskConfig map;
  map.name = "map";
  map.instances = shape.maps;
  map.max_workers =
      std::min<int64_t>(shape.maps, options_.max_workers_per_task);
  map.unit = options_.unit;
  map.instance_seconds = shape.seconds;
  job::TaskConfig reduce;
  reduce.name = "reduce";
  reduce.instances = shape.reduces;
  reduce.max_workers =
      std::min<int64_t>(shape.reduces, options_.max_workers_per_task);
  reduce.unit = options_.unit;
  reduce.instance_seconds = shape.seconds;
  desc.tasks = {map, reduce};
  desc.pipes.push_back({"map", "reduce", ""});
  return desc;
}

std::vector<runtime::SyntheticStage> SyntheticWorkload::NextStages() {
  Shape shape = NextShape();
  runtime::SyntheticStage map;
  map.slot_id = 0;
  map.unit = options_.unit;
  map.instances = shape.maps;
  map.workers = std::min<int64_t>(shape.maps, options_.max_workers_per_task);
  map.instance_duration = shape.seconds;
  runtime::SyntheticStage reduce;
  reduce.slot_id = 1;
  reduce.unit = options_.unit;
  reduce.instances = shape.reduces;
  reduce.workers =
      std::min<int64_t>(shape.reduces, options_.max_workers_per_task);
  reduce.instance_duration = shape.seconds;
  reduce.depends_on = 0;
  return {map, reduce};
}

TraceStats ProductionTraceSynthesizer::Synthesize() {
  TraceStats stats;
  stats.total_jobs = options_.jobs;
  for (int64_t j = 0; j < options_.jobs; ++j) {
    // Tasks per job: truncated Pareto, most jobs have 1-2 tasks, the
    // most complex reach 150 (Table 1).
    int64_t tasks = static_cast<int64_t>(
        rng_.Pareto(1.0, options_.tasks_pareto_alpha));
    tasks = std::clamp<int64_t>(tasks, 1, options_.max_tasks_per_job);
    stats.total_tasks += tasks;
    stats.max_tasks_per_job = std::max(stats.max_tasks_per_job, tasks);
    for (int64_t t = 0; t < tasks; ++t) {
      // Instances per task: truncated log-normal with a heavy tail so
      // the largest tasks approach 100k instances.
      int64_t instances = static_cast<int64_t>(
          rng_.LogNormal(options_.instances_lognormal_mu,
                         options_.instances_lognormal_sigma));
      instances =
          std::clamp<int64_t>(instances, 1, options_.max_instances_per_task);
      stats.total_instances += instances;
      stats.max_instances_per_task =
          std::max(stats.max_instances_per_task, instances);
      // Workers per task: a fraction of the instance count (containers
      // are reused across instances), capped at 4,636.
      double ratio = 0.1 + 0.57 * rng_.NextDouble();
      int64_t workers = static_cast<int64_t>(
          std::ceil(static_cast<double>(instances) * ratio));
      workers = std::clamp<int64_t>(
          workers, 1,
          std::min<int64_t>(instances, options_.max_workers_per_task));
      stats.total_workers += workers;
      stats.max_workers_per_task =
          std::max(stats.max_workers_per_task, workers);
    }
  }
  stats.avg_tasks_per_job = static_cast<double>(stats.total_tasks) /
                            static_cast<double>(stats.total_jobs);
  stats.avg_instances_per_task = static_cast<double>(stats.total_instances) /
                                 static_cast<double>(stats.total_tasks);
  stats.avg_workers_per_task = static_cast<double>(stats.total_workers) /
                               static_cast<double>(stats.total_tasks);
  return stats;
}

FaultPlan MakeFaultPlan(double ratio, size_t machine_count, uint64_t seed) {
  FaultPlan plan;
  // The paper's mixes on its 300-node testbed (Table 3).
  int64_t down;
  int64_t partial;
  int64_t slow;
  if (std::abs(ratio - 0.05) < 1e-9 && machine_count == 300) {
    down = 2;
    partial = 2;
    slow = 11;
  } else if (std::abs(ratio - 0.10) < 1e-9 && machine_count == 300) {
    down = 2;
    partial = 4;
    slow = 23;
  } else {
    // Scale the 5% mix's 2:2:11 proportions.
    double total = ratio * static_cast<double>(machine_count);
    down = std::max<int64_t>(total > 0 ? 1 : 0,
                             static_cast<int64_t>(total * 2 / 15));
    partial = std::max<int64_t>(total > 0 ? 1 : 0,
                                static_cast<int64_t>(total * 2 / 15));
    slow = std::max<int64_t>(0, static_cast<int64_t>(total) - down - partial);
  }
  Rng rng(seed);
  std::vector<MachineId> pool;
  pool.reserve(machine_count);
  for (size_t m = 0; m < machine_count; ++m) {
    pool.push_back(MachineId(static_cast<int64_t>(m)));
  }
  // Fisher-Yates prefix shuffle for distinct picks.
  size_t needed = static_cast<size_t>(down + partial + slow);
  FUXI_CHECK_LE(needed, pool.size());
  for (size_t i = 0; i < needed; ++i) {
    size_t j = i + rng.Uniform(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  size_t cursor = 0;
  for (int64_t i = 0; i < down; ++i) plan.node_down.push_back(pool[cursor++]);
  for (int64_t i = 0; i < partial; ++i) {
    plan.partial_worker_failure.push_back(pool[cursor++]);
  }
  for (int64_t i = 0; i < slow; ++i) {
    plan.slow_machine.push_back(pool[cursor++]);
  }
  return plan;
}

}  // namespace fuxi::trace
