#ifndef FUXI_TRACE_WORKLOADS_H_
#define FUXI_TRACE_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "job/description.h"
#include "runtime/synthetic_app.h"

namespace fuxi::trace {

/// Generates the §5.2 synthetic workload: WordCount and TeraSort jobs
/// with (map, reduce) instance counts of (10,10), (100,10), (100,100),
/// (1k,100), (1k,1k) and (10k,5k) evenly distributed, instance
/// durations spanning 10 s … 10 min, and 0.5-core/2 GB units.
struct SyntheticWorkloadOptions {
  /// Scales all instance counts down (1.0 = the paper's sizes). The
  /// shape of the mix is preserved.
  double instance_scale = 1.0;
  /// Scales instance durations (paper range: 10 s to 10 min).
  double min_instance_seconds = 10;
  double max_instance_seconds = 600;
  cluster::ResourceVector unit{50, 2048};  ///< 0.5 core, 2 GB
  int64_t max_workers_per_task = 200;
};

class SyntheticWorkload {
 public:
  using Options = SyntheticWorkloadOptions;

  explicit SyntheticWorkload(uint64_t seed, Options options = Options())
      : rng_(seed), options_(options) {}

  /// The six (map, reduce) shapes of the paper.
  static const std::vector<std::pair<int64_t, int64_t>>& Shapes();

  /// Next job as a full DAG JobDescription (map -> reduce).
  job::JobDescription NextJobDescription();

  /// Next job as SyntheticApp stages (the lighter-weight form used by
  /// the large-scale scheduling benchmarks).
  std::vector<runtime::SyntheticStage> NextStages();

 private:
  struct Shape {
    int64_t maps;
    int64_t reduces;
    double seconds;
    bool wordcount;
  };
  Shape NextShape();

  Rng rng_;
  Options options_;
  int64_t counter_ = 0;
};

/// Row of the Table 1 statistics (avg/max/total per entity).
struct TraceStats {
  double avg_instances_per_task = 0;
  int64_t max_instances_per_task = 0;
  int64_t total_instances = 0;
  double avg_workers_per_task = 0;
  int64_t max_workers_per_task = 0;
  int64_t total_workers = 0;
  double avg_tasks_per_job = 0;
  int64_t max_tasks_per_job = 0;
  int64_t total_tasks = 0;
  int64_t total_jobs = 0;
};

/// Synthesizes a production-like tracelog with the heavy-tailed shape
/// of Table 1 (91,990 jobs; 185k tasks; 42 M instances; 16.3 M
/// workers). Only the published aggregate statistics are known, so the
/// generator draws tasks-per-job, instances-per-task and
/// workers-per-task from truncated power-law/log-normal distributions
/// calibrated to reproduce those aggregates.
struct ProductionTraceOptions {
  int64_t jobs = 91990;
  /// Calibrated distribution parameters (see bench_table1 output).
  double tasks_pareto_alpha = 1.7;
  int64_t max_tasks_per_job = 150;
  double instances_lognormal_mu = 3.62;
  double instances_lognormal_sigma = 1.9;
  int64_t max_instances_per_task = 99937;
  int64_t max_workers_per_task = 4636;
};

class ProductionTraceSynthesizer {
 public:
  using Options = ProductionTraceOptions;

  explicit ProductionTraceSynthesizer(uint64_t seed,
                                      Options options = Options())
      : rng_(seed), options_(options) {}

  /// Generates the trace and returns its aggregate statistics.
  TraceStats Synthesize();

 private:
  Rng rng_;
  Options options_;
};

/// The §5.4 / Table 3 fault-injection plan: which machines experience
/// which fault for a given injection ratio on a given cluster size.
struct FaultPlan {
  std::vector<MachineId> node_down;
  std::vector<MachineId> partial_worker_failure;
  std::vector<MachineId> slow_machine;
  bool kill_fuxi_master = false;

  size_t total_faulty() const {
    return node_down.size() + partial_worker_failure.size() +
           slow_machine.size();
  }
};

/// Builds the paper's fault mixes: at 5% of 300 nodes — 2 NodeDown,
/// 2 PartialWorkerFailure, 11 SlowMachine; at 10% — 2/4/23 (Table 3).
/// Other ratios scale the same 2:2:11 mix.
FaultPlan MakeFaultPlan(double ratio, size_t machine_count, uint64_t seed);

}  // namespace fuxi::trace

#endif  // FUXI_TRACE_WORKLOADS_H_
