#include "master/fuxi_master.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::master {

namespace {

constexpr const char* kAppKeyPrefix = "fuxi/app/";
constexpr const char* kBlacklistKey = "fuxi/blacklist";
constexpr const char* kGenerationKey = "fuxi/master/generation";

}  // namespace

std::string FuxiMaster::AppKeyPrefix() const {
  return options_.checkpoint_prefix + kAppKeyPrefix;
}

std::string FuxiMaster::AppKeyFor(AppId app) const {
  return AppKeyPrefix() + std::to_string(app.value());
}

std::string FuxiMaster::BlacklistKeyFor() const {
  return options_.checkpoint_prefix + kBlacklistKey;
}

std::string FuxiMaster::GenerationKeyFor() const {
  return options_.checkpoint_prefix + kGenerationKey;
}

FuxiMaster::FuxiMaster(sim::Simulator* simulator, net::Network* network,
                       coord::LockService* locks,
                       coord::CheckpointStore* checkpoint,
                       const cluster::ClusterTopology* topology, NodeId self,
                       FuxiMasterOptions options)
    : Actor(simulator),
      network_(network),
      locks_(locks),
      checkpoint_(checkpoint),
      topology_(topology),
      self_(self),
      options_(std::move(options)),
      lock_name_(options_.lock_name.empty() ? kMasterLock
                                            : options_.lock_name) {
  endpoint_.Handle<SubmitAppRpc>(
      [this](const net::Envelope& env, const SubmitAppRpc& rpc) {
        if (alive_ && primary_) OnSubmitApp(env, rpc);
      });
  endpoint_.Handle<StopAppRpc>(
      [this](const net::Envelope& env, const StopAppRpc& rpc) {
        if (alive_ && primary_) OnStopApp(env, rpc);
      });
  endpoint_.Handle<RequestRpc>(
      [this](const net::Envelope& env, const RequestRpc& rpc) {
        if (alive_ && primary_) OnRequest(env, rpc);
      });
  endpoint_.Handle<ResyncRpc>(
      [this](const net::Envelope& env, const ResyncRpc& rpc) {
        if (alive_ && primary_) OnResync(env, rpc);
      });
  endpoint_.Handle<AgentHeartbeatRpc>(
      [this](const net::Envelope& env, const AgentHeartbeatRpc& rpc) {
        if (alive_ && primary_) OnHeartbeat(env, rpc);
      });
  endpoint_.Handle<BadMachineReportRpc>(
      [this](const net::Envelope& env, const BadMachineReportRpc& rpc) {
        if (alive_ && primary_) OnBadMachineReport(env, rpc);
      });
}

void FuxiMaster::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    grant_units_counter_ = revoke_units_counter_ = nullptr;
    blacklist_adds_counter_ = machines_down_counter_ = nullptr;
    elections_counter_ = am_restarts_counter_ = nullptr;
    checkpoint_skips_counter_ = nullptr;
    apps_gauge_ = blacklist_gauge_ = request_backlog_gauge_ = nullptr;
    schedule_wall_us_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = obs->metrics;
  grant_units_counter_ = m.GetCounter("master.grant_units");
  revoke_units_counter_ = m.GetCounter("master.revoke_units");
  blacklist_adds_counter_ = m.GetCounter("master.blacklist_adds");
  machines_down_counter_ = m.GetCounter("master.machines_down");
  elections_counter_ = m.GetCounter("master.elections");
  am_restarts_counter_ = m.GetCounter("master.am_restarts");
  checkpoint_skips_counter_ =
      m.GetCounter("master.checkpoint_records_skipped");
  apps_gauge_ = m.GetGauge("master.apps");
  blacklist_gauge_ = m.GetGauge("master.blacklist_size");
  request_backlog_gauge_ = m.GetGauge("master.request_backlog");
  schedule_wall_us_ = m.GetHistogram("master.schedule_wall_us");
  // Real wall-clock measurements: legitimately differ between
  // byte-identical simulation runs, so determinism diffs filter on the
  // attribute instead of stripping rows by name.
  m.MarkRealtime("master.schedule_wall_us");
}

void FuxiMaster::Start() {
  network_->Register(self_, &endpoint_);
  TryBecomePrimary();
}

void FuxiMaster::Crash() {
  if (!alive_) return;
  bool was_primary = primary_;
  alive_ = false;
  primary_ = false;
  ++life_;
  network_->Unregister(self_);
  // All soft state is lost with the process (§4.3.1: it will be
  // re-collected from agents and application masters on failover).
  scheduler_.reset();
  apps_.clear();
  agents_.clear();
  blacklist_.clear();
  blacklist_votes_.clear();
  // Gauges mirror *the primary's* soft state; a crashing standby must
  // not zero what the live primary owns.
  if (was_primary) SyncStateGauges();
}

void FuxiMaster::Restart() {
  if (alive_) return;
  alive_ = true;
  ++life_;
  network_->Register(self_, &endpoint_);
  TryBecomePrimary();
}

void FuxiMaster::TryBecomePrimary() {
  if (!alive_ || primary_) return;
  Status acquired = locks_->TryAcquire(lock_name_, self_,
                                       options_.lock_lease);
  if (acquired.ok()) {
    BecomePrimary();
    return;
  }
  // Standby: watch for the primary's lease to lapse. The callback may
  // fire after this instance crashed, so guard with the life counter.
  uint64_t life = life_;
  locks_->WatchRelease(lock_name_, [this, life]() {
    if (alive_ && life == life_) TryBecomePrimary();
  });
}

void FuxiMaster::BecomePrimary() {
  primary_ = true;
  uint64_t previous_generation = 0;
  if (auto gen = checkpoint_->Get(GenerationKeyFor()); gen.ok()) {
    previous_generation = static_cast<uint64_t>(gen->as_int());
  }
  generation_ = previous_generation + 1;
  checkpoint_->Put(GenerationKeyFor(),
                   Json(static_cast<int64_t>(generation_)));
  FUXI_LOG(kInfo) << "FuxiMaster node " << self_.value()
                  << " became primary, generation " << generation_;
  if (elections_counter_ != nullptr) elections_counter_->Add();

  resource::SchedulerOptions scheduler_options = options_.scheduler;
  scheduler_options.starvation_age_after = options_.starvation_age_after;
  scheduler_ = std::make_unique<resource::Scheduler>(topology_,
                                                     scheduler_options);
  if (obs_ != nullptr) {
    scheduler_->set_metrics(&obs_->metrics);
    scheduler_->set_audit(&obs_->audit);
  }
  for (const auto& [name, quota] : options_.quota_groups) {
    Status s = scheduler_->CreateQuotaGroup(name, quota);
    FUXI_CHECK(s.ok()) << s.ToString();
  }
  // Machines come online only when their agent reports in (with its
  // allocation table after a failover), so restored grants can be
  // installed before any new scheduling touches the machine.
  resource::SchedulingResult scratch;
  for (const cluster::Machine& machine : topology_->machines()) {
    scheduler_->SetMachineOffline(machine.id, &scratch);
  }
  RecoverHardState();
  SyncStateGauges();

  uint64_t life = life_;
  After(options_.lock_renew_every, [this, life] {
    if (alive_ && life == life_ && primary_) RenewLease();
  });
  After(options_.monitor_interval, [this, life] {
    if (alive_ && life == life_ && primary_) MonitorTick();
  });
  After(options_.rollup_interval, [this, life] {
    if (alive_ && life == life_ && primary_) RollupTick();
  });
  // Federated mode: announce the new primary to the shard directory
  // right away (the router is waiting out a failover) and then on the
  // periodic status cadence.
  if (!options_.directory_replicas.empty()) SendShardStatus();
}

void FuxiMaster::StepDown() {
  primary_ = false;
  scheduler_.reset();
  apps_.clear();
  agents_.clear();
  SyncStateGauges();
  TryBecomePrimary();
}

/// Level gauges mirror primary-only soft state; recompute them at the
/// state transitions (election, step-down, crash) where that state is
/// rebuilt or discarded wholesale, so the incremental updates in the
/// hot paths always start from a correct base.
void FuxiMaster::SyncStateGauges() {
  if (apps_gauge_ == nullptr) return;
  apps_gauge_->Set(static_cast<double>(apps_.size()));
  blacklist_gauge_->Set(static_cast<double>(blacklist_.size()));
  double backlog = 0;
  for (const auto& [app, record] : apps_) {
    backlog += static_cast<double>(record.request_receiver.buffered());
  }
  request_backlog_gauge_->Set(backlog);
}

void FuxiMaster::RenewLease() {
  Status s = locks_->Renew(lock_name_, self_, options_.lock_lease);
  if (!s.ok()) {
    FUXI_LOG(kWarning) << "FuxiMaster node " << self_.value()
                       << " lost the master lock: " << s.ToString();
    StepDown();
    return;
  }
  uint64_t life = life_;
  After(options_.lock_renew_every, [this, life] {
    if (alive_ && life == life_ && primary_) RenewLease();
  });
}

void FuxiMaster::RecoverHardState() {
  // Hard state (paper §4.3.1): only application configurations and the
  // cluster-level blacklist are checkpointed. Everything else is soft.
  checkpoint_records_skipped_ = 0;
  for (const std::string& key : checkpoint_->ListKeys(AppKeyPrefix())) {
    auto record_json = checkpoint_->Get(key);
    if (!record_json.ok()) {
      // Torn write: the process that crashed mid-Put left a partial
      // record. Losing one app's hard state must not take down the
      // whole recovery — skip it, count it, and let the client's
      // idempotent re-submit repair the record.
      FUXI_LOG(kWarning) << "skipping damaged checkpoint record " << key
                         << ": " << record_json.status().ToString();
      ++checkpoint_records_skipped_;
      if (checkpoint_skips_counter_ != nullptr) {
        checkpoint_skips_counter_->Add();
      }
      continue;
    }
    AppRecord record;
    record.app = AppId(record_json->GetInt("app"));
    record.quota_group = record_json->GetString("quota_group");
    if (const Json* desc = record_json->Find("description")) {
      record.description = *desc;
    }
    record.client = NodeId(record_json->GetInt("client", -1));
    record.am_started = record_json->GetBool("am_started");
    record.last_contact = Now();
    Status s = scheduler_->RegisterApp(record.app, record.quota_group);
    FUXI_CHECK(s.ok()) << s.ToString();
    apps_.emplace(record.app, std::move(record));
  }
  if (auto blacklist = checkpoint_->Get(BlacklistKeyFor()); blacklist.ok()) {
    for (const Json& entry : blacklist->as_array()) {
      blacklist_.insert(MachineId(entry.as_int()));
    }
  }
}

void FuxiMaster::OnSubmitApp(const net::Envelope& env,
                             const SubmitAppRpc& rpc) {
  (void)env;
  SubmitAppReplyRpc reply;
  reply.app = rpc.app;
  if (apps_.count(rpc.app) > 0) {
    reply.accepted = true;  // duplicate submission is idempotent
    network_->Send(self_, rpc.client, reply);
    return;
  }
  Status registered = scheduler_->RegisterApp(rpc.app, rpc.quota_group);
  if (!registered.ok()) {
    reply.accepted = false;
    reply.error = registered.ToString();
    network_->Send(self_, rpc.client, reply);
    return;
  }
  AppRecord record;
  record.app = rpc.app;
  record.quota_group = rpc.quota_group;
  record.description = rpc.description;
  record.client = rpc.client;
  record.last_contact = Now();

  // Hard-state checkpoint: happens only on submit/stop, by design.
  Json hard = Json::MakeObject();
  hard["app"] = Json(rpc.app.value());
  hard["quota_group"] = Json(rpc.quota_group);
  hard["description"] = rpc.description;
  hard["client"] = Json(rpc.client.value());
  hard["am_started"] = Json(true);
  checkpoint_->Put(AppKeyFor(rpc.app), hard);

  // Find a FuxiAgent with capacity for the application master and ask
  // it to start one (paper §2.2 workflow).
  record.am_started = false;
  for (const auto& [machine, agent] : agents_) {
    if (!agent.online || blacklist_.count(machine) > 0) continue;
    network_->Send(self_, agent.node,
                   StartAppMasterRpc{rpc.app, rpc.description});
    record.am_started = true;
    break;
  }
  apps_.emplace(rpc.app, std::move(record));
  if (apps_gauge_ != nullptr) apps_gauge_->Add(1);
  reply.accepted = true;
  network_->Send(self_, rpc.client, reply);
}

void FuxiMaster::OnStopApp(const net::Envelope& env, const StopAppRpc& rpc) {
  (void)env;
  auto it = apps_.find(rpc.app);
  if (it == apps_.end()) return;
  resource::SchedulingResult result;
  Status s = scheduler_->UnregisterApp(rpc.app, &result);
  if (!s.ok()) FUXI_LOG(kWarning) << "stop app: " << s.ToString();
  if (it->second.am_node.valid()) {
    network_->Send(self_, it->second.am_node, StopAppRpc{rpc.app});
  }
  checkpoint_->Delete(AppKeyFor(rpc.app));
  if (apps_gauge_ != nullptr) {
    apps_gauge_->Add(-1);
    request_backlog_gauge_->Add(
        -static_cast<double>(it->second.request_receiver.buffered()));
  }
  apps_.erase(it);
  // Freed resources flowed to other apps' queues; tell them.
  Dispatch(result);
}

void FuxiMaster::OnRequest(const net::Envelope& env, const RequestRpc& rpc) {
  (void)env;
  AppRecord* record = FindApp(rpc.app);
  if (record == nullptr) {
    FUXI_LOG(kWarning) << "request from unknown app " << rpc.app.value();
    return;
  }
  record->am_node = rpc.reply_to;
  record->last_contact = Now();
  if (rpc.incarnation != record->am_incarnation) {
    // The application master restarted: both delta channels start over.
    record->am_incarnation = rpc.incarnation;
    if (request_backlog_gauge_ != nullptr) {
      request_backlog_gauge_->Add(
          -static_cast<double>(record->request_receiver.buffered()));
    }
    record->request_receiver =
        resource::DeltaReceiver<resource::RequestMessage>();
    record->grant_sender = resource::DeltaSender<resource::GrantMessage>();
  }
  // Delta-channel queue depth, tracked incrementally: Receive() may
  // buffer an out-of-order message or drain earlier buffered ones.
  size_t buffered_before = record->request_receiver.buffered();
  using Outcome = resource::DeltaReceiver<resource::RequestMessage>::Outcome;
  Outcome outcome = record->request_receiver.Receive(
      rpc.msg, [this, record](const resource::RequestMessage& msg,
                              bool is_full) {
        ApplyRequestMessage(record, msg, is_full);
      });
  if (request_backlog_gauge_ != nullptr) {
    request_backlog_gauge_->Add(
        static_cast<double>(record->request_receiver.buffered()) -
        static_cast<double>(buffered_before));
  }
  if (outcome == Outcome::kNeedResync) {
    ResyncRpc resync;
    resync.app = rpc.app;
    network_->Send(self_, record->am_node, resync);
  }
}

void FuxiMaster::OnResync(const net::Envelope& env, const ResyncRpc& rpc) {
  (void)env;
  AppRecord* record = FindApp(rpc.app);
  if (record == nullptr) return;
  if (rpc.reply_to.valid()) record->am_node = rpc.reply_to;
  record->last_contact = Now();
  if (rpc.incarnation != 0 && rpc.incarnation != record->am_incarnation) {
    record->am_incarnation = rpc.incarnation;
    if (request_backlog_gauge_ != nullptr) {
      request_backlog_gauge_->Add(
          -static_cast<double>(record->request_receiver.buffered()));
    }
    record->request_receiver =
        resource::DeltaReceiver<resource::RequestMessage>();
    record->grant_sender = resource::DeltaSender<resource::GrantMessage>();
  }
  SendFullGrantState(record);
}

void FuxiMaster::ApplyRequestMessage(AppRecord* record,
                                     const resource::RequestMessage& msg,
                                     bool is_full) {
  // The Figure 9 measurement: real wall-clock time of the full request
  // path. Measured when either the legacy sample vector or the registry
  // histogram wants it; the span additionally carries the cost so a
  // trace dump shows where scheduler time went.
  bool timing = time_decisions_ || schedule_wall_us_ != nullptr;
  std::chrono::steady_clock::time_point start;
  if (timing) start = std::chrono::steady_clock::now();
  uint64_t span = 0;
  if (obs_ != nullptr) {
    span = obs_->trace.BeginSpan("sched",
                                 is_full ? "ApplyFullState" : "ApplyRequest");
  }

  if (is_full) {
    ApplyFullState(record, msg);
  } else {
    resource::SchedulingResult result;
    if (!msg.delta.units.empty()) {
      resource::ResourceRequest request = msg.delta;
      request.app = record->app;  // never trust the inner app id blindly
      Status s = scheduler_->ApplyRequest(request, &result);
      if (!s.ok()) {
        FUXI_LOG(kWarning) << "request from app " << record->app.value()
                           << " rejected: " << s.ToString();
      }
    }
    for (const resource::ReleaseDelta& release : msg.releases) {
      Status s = scheduler_->Release(record->app, release.slot_id,
                                     release.machine, release.count,
                                     &result);
      if (!s.ok()) {
        // Benign race: the master may have reconciled this grant away
        // while the release was in flight; the full sync converges it.
        FUXI_LOG(kDebug) << "release from app " << record->app.value()
                         << " rejected: " << s.ToString();
      }
    }
    Dispatch(result);
  }

  double wall_us = -1;
  if (timing) {
    auto end = std::chrono::steady_clock::now();
    wall_us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count() /
        1000.0;
    if (time_decisions_) decision_micros_.push_back(wall_us);
    if (schedule_wall_us_ != nullptr) schedule_wall_us_->Add(wall_us);
  }
  if (obs_ != nullptr) obs_->trace.EndSpan(span, wall_us);
}

void FuxiMaster::ApplyFullState(AppRecord* record,
                                const resource::RequestMessage& msg) {
  resource::SchedulingResult result;
  // Snapshot the grants that existed BEFORE this reconcile: the
  // application's held-grant view can only speak about those. Grants
  // created by the demand reconcile below are newer than the snapshot
  // the AM sent and must not be mistaken for lost releases.
  std::vector<resource::Scheduler::GrantEntry> grants_before =
      scheduler_->GrantsOf(record->app);
  // 1. Demand side: drive the scheduler's outstanding counts to the
  // absolute values the application asserts.
  const resource::LocalityTree& tree = scheduler_->locality_tree();
  resource::ResourceRequest reconcile;
  reconcile.app = record->app;
  std::map<uint32_t, int64_t> granted_per_slot;
  for (const resource::Scheduler::GrantEntry& grant : grants_before) {
    granted_per_slot[grant.slot_id] += grant.count;
  }
  std::set<uint32_t> mentioned;
  for (const resource::SlotAbsoluteState& slot : msg.full_slots) {
    mentioned.insert(slot.def.slot_id);
    const resource::PendingDemand* demand =
        tree.Find(resource::SlotKey{record->app, slot.def.slot_id});
    resource::UnitRequestDelta delta;
    delta.slot_id = slot.def.slot_id;
    delta.has_def = true;
    delta.def = slot.def;
    // Reconcile desired TOTALS (outstanding + granted): in-flight grant
    // deltas shift units between the halves on the two peers but leave
    // the total invariant.
    int64_t current_total = (demand ? demand->total_remaining : 0) +
                            granted_per_slot[slot.def.slot_id];
    delta.total_count_delta = slot.total_count - current_total;
    // Hints: absolute -> delta against the current view.
    std::map<std::pair<int, std::string>, int64_t> desired;
    for (const resource::LocalityHint& hint : slot.hints) {
      desired[{static_cast<int>(hint.level), hint.value}] += hint.count;
    }
    if (demand != nullptr) {
      for (const auto& [machine, count] : demand->machine_remaining) {
        std::string host = topology_->machine(machine).hostname;
        desired[{static_cast<int>(resource::LocalityLevel::kMachine),
                 host}] -= count;
      }
      for (const auto& [rack, count] : demand->rack_remaining) {
        desired[{static_cast<int>(resource::LocalityLevel::kRack),
                 topology_->rack(rack).name}] -= count;
      }
    }
    for (const auto& [level_value, count] : desired) {
      if (count == 0) continue;
      delta.hints.push_back(
          {static_cast<resource::LocalityLevel>(level_value.first),
           level_value.second, count});
    }
    delta.avoid_add = slot.avoid;
    // Planner metadata rides the full sync too (NoteDemand is
    // idempotent, so re-asserting it every reconcile is harmless).
    if (slot.plan.Any()) {
      delta.has_plan = true;
      delta.plan = slot.plan;
    }
    reconcile.units.push_back(std::move(delta));
  }
  // Slots the application no longer mentions: zero them out.
  for (const resource::PendingDemand* demand : tree.AllDemands()) {
    if (demand->key.app != record->app) continue;
    if (mentioned.count(demand->key.slot_id) > 0) continue;
    if (demand->total_remaining == 0) continue;
    resource::UnitRequestDelta delta;
    delta.slot_id = demand->key.slot_id;
    delta.total_count_delta = -demand->total_remaining;
    reconcile.units.push_back(std::move(delta));
  }
  if (!reconcile.units.empty()) {
    Status s = scheduler_->ApplyRequest(reconcile, &result);
    if (!s.ok()) {
      FUXI_LOG(kWarning) << "full-state reconcile failed for app "
                         << record->app.value() << ": " << s.ToString();
    }
  }
  // 2. Grant side: the application's held view vs ours. Grants we hold
  // that the app does not believe it has are treated as released (lost
  // release messages); the full grant state we send below snaps the
  // application to our authoritative view.
  std::map<std::pair<uint32_t, MachineId>, int64_t> held;
  for (const resource::GrantAbsolute& grant : msg.held_grants) {
    held[{grant.slot_id, grant.machine}] += grant.count;
  }
  std::map<std::pair<uint32_t, int64_t>, int64_t> still_suspected;
  for (const resource::Scheduler::GrantEntry& grant : grants_before) {
    int64_t app_view = 0;
    auto it = held.find({grant.slot_id, grant.machine});
    if (it != held.end()) app_view = it->second;
    int64_t excess = grant.count - app_view;
    if (excess <= 0) continue;
    auto key = std::make_pair(grant.slot_id, grant.machine.value());
    auto sit = record->suspected_lost.find(key);
    int64_t confirmed = sit == record->suspected_lost.end()
                            ? 0
                            : std::min(sit->second, excess);
    if (confirmed > 0) {
      // The AM failed to acknowledge these units across two consecutive
      // full syncs: the release message really was lost.
      Status s = scheduler_->Release(record->app, grant.slot_id,
                                     grant.machine, confirmed, &result,
                                     resource::RevocationReason::kReconcile);
      if (!s.ok()) {
        FUXI_LOG(kWarning) << "grant reconcile release failed: "
                           << s.ToString();
      }
      excess -= confirmed;
    }
    if (excess > 0) still_suspected[key] = excess;
  }
  record->suspected_lost = std::move(still_suspected);
  Dispatch(result);
  SendFullGrantState(record);
}

void FuxiMaster::Dispatch(const resource::SchedulingResult& result) {
  if (result.empty()) return;
  if (grant_units_counter_ != nullptr) {
    uint64_t granted = 0;
    for (const resource::Assignment& a : result.assignments) {
      granted += static_cast<uint64_t>(a.count);
    }
    if (granted > 0) grant_units_counter_->Add(granted);
    uint64_t revoked = 0;
    for (const resource::Revocation& r : result.revocations) {
      revoked += static_cast<uint64_t>(r.count);
    }
    if (revoked > 0) revoke_units_counter_->Add(revoked);
  }
  // Group grant changes per application and capacity changes per agent.
  std::map<AppId, resource::GrantMessage> per_app;
  std::map<MachineId, AgentCapacityRpc> per_machine;
  auto def_of = [this](AppId app, uint32_t slot) {
    return LookupDef(app, slot);
  };
  for (const resource::Assignment& a : result.assignments) {
    per_app[a.app].deltas.push_back(
        {a.slot_id, a.machine, a.count, resource::RevocationReason::kAppRelease});
    per_machine[a.machine].entries.push_back(
        {a.app, a.slot_id, def_of(a.app, a.slot_id), a.count});
  }
  for (const resource::Revocation& r : result.revocations) {
    // App-initiated releases are not echoed back to the application:
    // it already decremented its own view when it sent the release
    // (echoing would double-count). Agents always hear about them.
    if (r.reason != resource::RevocationReason::kAppRelease) {
      per_app[r.app].deltas.push_back(
          {r.slot_id, r.machine, -r.count, r.reason});
    }
    per_machine[r.machine].entries.push_back(
        {r.app, r.slot_id, def_of(r.app, r.slot_id), -r.count});
  }
  for (auto& [app, message] : per_app) {
    AppRecord* record = FindApp(app);
    if (record == nullptr || !record->am_node.valid()) continue;
    network_->Send(self_, record->am_node,
                   GrantRpc{record->grant_sender.Stamp(std::move(message))});
  }
  for (auto& [machine, rpc] : per_machine) {
    auto it = agents_.find(machine);
    if (it == agents_.end() || !it->second.online) continue;
    rpc.master_generation = generation_;
    rpc.seq = ++it->second.capacity_seq;
    network_->Send(self_, it->second.node, rpc);
  }
}

void FuxiMaster::SendFullCapacity(MachineId machine) {
  auto it = agents_.find(machine);
  if (it == agents_.end()) return;
  AgentCapacityRpc rpc;
  rpc.full = true;
  for (const auto& [key, count] :
       scheduler_->machine_state(machine).grants) {
    if (count <= 0) continue;
    rpc.entries.push_back(
        {key.app, key.slot_id, LookupDef(key.app, key.slot_id), count});
  }
  rpc.master_generation = generation_;
  rpc.seq = ++it->second.capacity_seq;
  network_->Send(self_, it->second.node, rpc);
}

void FuxiMaster::SendFullGrantState(AppRecord* record) {
  if (!record->am_node.valid()) return;
  resource::GrantMessage message;
  for (const resource::Scheduler::GrantEntry& grant :
       scheduler_->GrantsOf(record->app)) {
    message.full_grants.push_back(
        {grant.slot_id, grant.machine, grant.count});
  }
  network_->Send(
      self_, record->am_node,
      GrantRpc{record->grant_sender.StampFull(std::move(message))});
}

void FuxiMaster::OnHeartbeat(const net::Envelope& env,
                             const AgentHeartbeatRpc& rpc) {
  (void)env;
  bool known = agents_.count(rpc.machine) > 0;
  AgentRecord& agent = agents_[rpc.machine];
  agent.machine = rpc.machine;
  agent.node = rpc.agent_node;
  agent.last_heartbeat = Now();
  constexpr double kAlpha = 0.3;
  agent.health_ewma =
      known ? (1 - kAlpha) * agent.health_ewma + kAlpha * rpc.health_score
            : rpc.health_score;

  bool blacklisted = blacklist_.count(rpc.machine) > 0;
  bool scheduler_online =
      scheduler_->machine_state(rpc.machine).online;

  if (rpc.carries_allocations && !scheduler_online && !blacklisted) {
    // Failover / node-return path: restore the machine's allocations as
    // soft state, then open it up for scheduling (Figure 7).
    resource::SchedulingResult result;
    scheduler_->SetMachineOnline(rpc.machine, &result, /*run_pass=*/false);
    if (options_.failover_restore_grants) {
      for (const AgentAllocation& alloc : rpc.allocations) {
        if (apps_.count(alloc.app) == 0) continue;  // app no longer exists
        Status s = scheduler_->RestoreGrant(alloc.app, alloc.def,
                                            rpc.machine, alloc.count);
        if (!s.ok()) {
          FUXI_LOG(kWarning) << "failed to restore grant on machine "
                             << rpc.machine.value() << ": " << s.ToString();
        }
      }
    }
    scheduler_->RunSchedulePass(rpc.machine, &result);
    agent.online = true;
    Dispatch(result);
  } else if (rpc.carries_allocations) {
    // Periodic agent/master capacity reconcile: the agent volunteered
    // its allocation table; compare it against the scheduler's grants
    // for the machine and push a corrective full snapshot when the two
    // disagree (a capacity delta, stop request or blacklist revocation
    // was lost — without repair the divergence is permanent and the
    // orphaned processes leak). A snapshot in flight past a newer delta
    // is harmless: the sequence stamps let the agent drop the stale one.
    std::map<std::pair<AppId, uint32_t>, int64_t> reported;
    for (const AgentAllocation& alloc : rpc.allocations) {
      if (alloc.count > 0) reported[{alloc.app, alloc.slot_id}] = alloc.count;
    }
    std::map<std::pair<AppId, uint32_t>, int64_t> granted;
    for (const auto& [key, count] :
         scheduler_->machine_state(rpc.machine).grants) {
      if (count > 0) granted[{key.app, key.slot_id}] = count;
    }
    if (reported != granted) SendFullCapacity(rpc.machine);
  }

  AgentHeartbeatAckRpc ack;
  ack.master_generation = generation_;
  ack.need_allocations = !scheduler_->machine_state(rpc.machine).online &&
                         !blacklisted;
  network_->Send(self_, rpc.agent_node, ack);
}

void FuxiMaster::OnBadMachineReport(const net::Envelope& env,
                                    const BadMachineReportRpc& rpc) {
  (void)env;
  blacklist_votes_[rpc.machine].insert(rpc.app);
  // Vote evaluation itself is deferred to the roll-up tick (§3.4:
  // bad-node detection is heavy-but-not-urgent work).
}

void FuxiMaster::MonitorTick() {
  for (auto& [machine, agent] : agents_) {
    if (!agent.online) continue;
    if (Now() - agent.last_heartbeat > options_.heartbeat_timeout) {
      MarkMachineDown(machine, "heartbeat timeout");
    }
  }
  uint64_t life = life_;
  After(options_.monitor_interval, [this, life] {
    if (alive_ && life == life_ && primary_) MonitorTick();
  });
}

void FuxiMaster::RollupTick() {
  // Health-score based disabling (plugin scheme, §4.3.2).
  for (auto& [machine, agent] : agents_) {
    if (!agent.online) continue;
    if (agent.health_ewma < options_.health_disable_threshold) {
      if (agent.unhealthy_since < 0) agent.unhealthy_since = Now();
      if (Now() - agent.unhealthy_since >= options_.health_disable_after) {
        DisableMachine(machine, "sustained low health score");
      }
    } else {
      agent.unhealthy_since = -1;
    }
  }
  // Cross-job blacklist voting. When more machines are eligible than
  // the blacklist cap admits, the most-voted (= most widely observed
  // bad) machines win the scarce blacklist slots; ties break toward
  // the lower machine id for determinism.
  std::vector<std::pair<size_t, MachineId>> eligible;
  for (const auto& [machine, votes] : blacklist_votes_) {
    if (static_cast<int>(votes.size()) >= options_.blacklist_votes &&
        blacklist_.count(machine) == 0) {
      eligible.emplace_back(votes.size(), machine);
    }
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [votes, machine] : eligible) {
    DisableMachine(machine, "blacklisted by " + std::to_string(votes) +
                                " apps");
  }
  // Starvation guard: long-waiting demands get an aging boost (heavy
  // non-urgent work, handled in the roll-up like quota adjustment).
  if (options_.starvation_age_after > 0) {
    scheduler_->AgeWaitingDemands(Now());
    for (resource::SchedulingResult& result :
         scheduler_->TakeAgedResults()) {
      Dispatch(result);
    }
  }
  // Planner pass (fuxi::planner, DESIGN.md §12): advance virtual time,
  // convert due reservations into grants, plan new reservations/gangs.
  // The planner is lazily built and stays null without planning-hinted
  // demands, so legacy traffic never enters this branch.
  if (scheduler_->planner_active()) {
    resource::SchedulingResult result;
    scheduler_->PlannerTick(Now(), &result);
    Dispatch(result);
  }
  // Application-master liveness: restart silent AMs.
  for (auto& [app, record] : apps_) {
    if (Now() - record.last_contact > options_.app_master_timeout) {
      for (const auto& [machine, agent] : agents_) {
        if (!agent.online || blacklist_.count(machine) > 0) continue;
        FUXI_LOG(kInfo) << "restarting application master for app "
                        << app.value();
        if (am_restarts_counter_ != nullptr) am_restarts_counter_->Add();
        network_->Send(self_, agent.node,
                       StartAppMasterRpc{app, record.description});
        record.last_contact = Now();  // give the new AM time to come up
        break;
      }
    }
  }
  uint64_t life = life_;
  After(options_.rollup_interval, [this, life] {
    if (alive_ && life == life_ && primary_) RollupTick();
  });
}

void FuxiMaster::SendShardStatus() {
  if (!primary_ || scheduler_ == nullptr) return;
  ShardStatusRpc rpc;
  rpc.shard = options_.shard;
  rpc.primary = self_;
  rpc.generation = generation_;
  // Only this shard's machines ever heartbeat here, so agents_ is the
  // shard membership; scan it rather than the global topology.
  cluster::ResourceVector total;
  for (const auto& [machine, agent] : agents_) {
    if (!agent.online) continue;
    ++rpc.machines_online;
    total += topology_->machine(machine).capacity;
  }
  rpc.total = total;
  rpc.granted = scheduler_->TotalGranted();
  for (NodeId replica : options_.directory_replicas) {
    network_->Send(self_, replica, rpc);
  }
  uint64_t life = life_;
  After(options_.shard_status_interval, [this, life] {
    if (alive_ && life == life_ && primary_) SendShardStatus();
  });
}

void FuxiMaster::AuditMachineEvent(MachineId machine,
                                   const std::string& note) {
  if (!obs::AuditLog::enabled() || obs_ == nullptr) return;
  obs::DecisionRecord rec;
  rec.kind = obs::DecisionKind::kMachineEvent;
  rec.machine = machine.value();
  rec.note = note;
  obs_->audit.Commit(std::move(rec));
}

void FuxiMaster::MarkMachineDown(MachineId machine, const std::string& why) {
  auto it = agents_.find(machine);
  if (it != agents_.end()) it->second.online = false;
  if (machines_down_counter_ != nullptr) machines_down_counter_->Add();
  FUXI_LOG(kInfo) << "machine " << machine.value() << " down: " << why;
  AuditMachineEvent(machine, "down: " + why);
  resource::SchedulingResult result;
  scheduler_->SetMachineOffline(machine, &result);
  Dispatch(result);
}

void FuxiMaster::DisableMachine(MachineId machine, const std::string& why) {
  if (blacklist_.count(machine) > 0) return;
  int64_t machine_count = options_.shard_machine_count > 0
                              ? options_.shard_machine_count
                              : static_cast<int64_t>(
                                    topology_->machine_count());
  size_t cap = static_cast<size_t>(options_.blacklist_cap_fraction *
                                   static_cast<double>(machine_count));
  if (blacklist_.size() >= std::max<size_t>(cap, 1)) {
    FUXI_LOG(kWarning) << "blacklist cap reached; not disabling machine "
                       << machine.value();
    return;
  }
  FUXI_LOG(kInfo) << "disabling machine " << machine.value() << ": " << why;
  AuditMachineEvent(machine, "blacklist: " + why);
  blacklist_.insert(machine);
  if (blacklist_adds_counter_ != nullptr) {
    blacklist_adds_counter_->Add();
    blacklist_gauge_->Set(static_cast<double>(blacklist_.size()));
  }
  CheckpointBlacklist();
  MarkMachineDown(machine, why);
}

void FuxiMaster::CheckpointBlacklist() {
  Json list = Json::MakeArray();
  for (MachineId machine : blacklist_) list.Append(Json(machine.value()));
  checkpoint_->Put(BlacklistKeyFor(), list);
}

FuxiMaster::AppRecord* FuxiMaster::FindApp(AppId app) {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

resource::ScheduleUnitDef FuxiMaster::LookupDef(AppId app,
                                                uint32_t slot) const {
  const resource::PendingDemand* demand =
      scheduler_->locality_tree().Find(resource::SlotKey{app, slot});
  if (demand != nullptr) return demand->def;
  resource::ScheduleUnitDef def;
  def.slot_id = slot;
  return def;
}

std::vector<MachineId> FuxiMaster::Blacklisted() const {
  return std::vector<MachineId>(blacklist_.begin(), blacklist_.end());
}

}  // namespace fuxi::master
