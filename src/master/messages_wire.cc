// Wire codecs for the master control plane (messages.h). Field order is
// the struct declaration order. Keep each pair in sync and bump the
// version byte in messages.h when a layout changes.

#include "master/messages.h"

namespace fuxi::master {

void WireEncode(wire::Writer& w, const RequestRpc& m) {
  w.Id(m.app);
  w.Id(m.reply_to);
  w.U64(m.incarnation);
  WireEncode(w, m.msg);
}

Status WireDecode(wire::Reader& r, RequestRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Id(&m.reply_to));
  FUXI_RETURN_IF_ERROR(r.U64(&m.incarnation));
  return WireDecode(r, m.msg);
}

void WireEncode(wire::Writer& w, const GrantRpc& m) { WireEncode(w, m.msg); }

Status WireDecode(wire::Reader& r, GrantRpc& m) { return WireDecode(r, m.msg); }

void WireEncode(wire::Writer& w, const ResyncRpc& m) {
  w.Id(m.app);
  w.Id(m.reply_to);
  w.U64(m.incarnation);
}

Status WireDecode(wire::Reader& r, ResyncRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Id(&m.reply_to));
  return r.U64(&m.incarnation);
}

void WireEncode(wire::Writer& w, const BadMachineReportRpc& m) {
  w.Id(m.app);
  w.Id(m.machine);
}

Status WireDecode(wire::Reader& r, BadMachineReportRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  return r.Id(&m.machine);
}

void WireEncode(wire::Writer& w, const AgentAllocation& m) {
  w.Id(m.app);
  w.U32(m.slot_id);
  WireEncode(w, m.def);
  w.I64(m.count);
}

Status WireDecode(wire::Reader& r, AgentAllocation& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.def));
  return r.I64(&m.count);
}

void WireEncode(wire::Writer& w, const AgentHeartbeatRpc& m) {
  w.Id(m.machine);
  w.Id(m.agent_node);
  w.U64(m.seq);
  w.F64(m.health_score);
  WireEncode(w, m.capacity);
  w.Bool(m.carries_allocations);
  w.Vec(m.allocations);
  w.Bool(m.need_capacity);
}

Status WireDecode(wire::Reader& r, AgentHeartbeatRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  FUXI_RETURN_IF_ERROR(r.Id(&m.agent_node));
  FUXI_RETURN_IF_ERROR(r.U64(&m.seq));
  FUXI_RETURN_IF_ERROR(r.F64(&m.health_score));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.capacity));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.carries_allocations));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.allocations));
  return r.Bool(&m.need_capacity);
}

void WireEncode(wire::Writer& w, const AgentCapacityRpc::Entry& m) {
  w.Id(m.app);
  w.U32(m.slot_id);
  WireEncode(w, m.def);
  w.I64(m.delta);
}

Status WireDecode(wire::Reader& r, AgentCapacityRpc::Entry& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.def));
  return r.I64(&m.delta);
}

void WireEncode(wire::Writer& w, const AgentCapacityRpc& m) {
  w.U64(m.master_generation);
  w.U64(m.seq);
  w.Bool(m.full);
  w.Vec(m.entries);
}

Status WireDecode(wire::Reader& r, AgentCapacityRpc& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.master_generation));
  FUXI_RETURN_IF_ERROR(r.U64(&m.seq));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.full));
  return r.Vec(&m.entries);
}

void WireEncode(wire::Writer& w, const AgentHeartbeatAckRpc& m) {
  w.U64(m.master_generation);
  w.Bool(m.need_allocations);
}

Status WireDecode(wire::Reader& r, AgentHeartbeatAckRpc& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.master_generation));
  return r.Bool(&m.need_allocations);
}

void WireEncode(wire::Writer& w, const MasterRecoveryAnnounceRpc& m) {
  w.Id(m.new_master);
  w.U64(m.master_generation);
}

Status WireDecode(wire::Reader& r, MasterRecoveryAnnounceRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.new_master));
  return r.U64(&m.master_generation);
}

void WireEncode(wire::Writer& w, const ShardStatusRpc& m) {
  w.I32(m.shard);
  w.Id(m.primary);
  w.U64(m.generation);
  w.I64(m.machines_online);
  WireEncode(w, m.total);
  WireEncode(w, m.granted);
}

Status WireDecode(wire::Reader& r, ShardStatusRpc& m) {
  FUXI_RETURN_IF_ERROR(r.I32(&m.shard));
  FUXI_RETURN_IF_ERROR(r.Id(&m.primary));
  FUXI_RETURN_IF_ERROR(r.U64(&m.generation));
  FUXI_RETURN_IF_ERROR(r.I64(&m.machines_online));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.total));
  return WireDecode(r, m.granted);
}

void WireEncode(wire::Writer& w, const SubmitAppRpc& m) {
  w.Id(m.app);
  w.Str(m.quota_group);
  WireEncode(w, m.description);
  w.Id(m.client);
}

Status WireDecode(wire::Reader& r, SubmitAppRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Str(&m.quota_group));
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.description));
  return r.Id(&m.client);
}

void WireEncode(wire::Writer& w, const SubmitAppReplyRpc& m) {
  w.Id(m.app);
  w.Bool(m.accepted);
  w.Str(m.error);
}

Status WireDecode(wire::Reader& r, SubmitAppReplyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.accepted));
  return r.Str(&m.error);
}

void WireEncode(wire::Writer& w, const StartAppMasterRpc& m) {
  w.Id(m.app);
  WireEncode(w, m.description);
}

Status WireDecode(wire::Reader& r, StartAppMasterRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  return WireDecode(r, m.description);
}

void WireEncode(wire::Writer& w, const StopAppRpc& m) { w.Id(m.app); }

Status WireDecode(wire::Reader& r, StopAppRpc& m) { return r.Id(&m.app); }

void WireEncode(wire::Writer& w, const StartWorkerRpc& m) {
  w.Id(m.app);
  w.U32(m.slot_id);
  w.Id(m.am_node);
  w.U64(m.plan_id);
  WireEncode(w, m.plan);
}

Status WireDecode(wire::Reader& r, StartWorkerRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.am_node));
  FUXI_RETURN_IF_ERROR(r.U64(&m.plan_id));
  return WireDecode(r, m.plan);
}

void WireEncode(wire::Writer& w, const WorkerStartedRpc& m) {
  w.U64(m.plan_id);
  w.Id(m.worker);
  w.Id(m.machine);
  w.Bool(m.ok);
  w.Str(m.error);
  w.Vec(m.running);
}

Status WireDecode(wire::Reader& r, WorkerStartedRpc& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.plan_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.ok));
  FUXI_RETURN_IF_ERROR(r.Str(&m.error));
  return r.Vec(&m.running);
}

void WireEncode(wire::Writer& w, const StopWorkerRpc& m) { w.Id(m.worker); }

Status WireDecode(wire::Reader& r, StopWorkerRpc& m) {
  return r.Id(&m.worker);
}

void WireEncode(wire::Writer& w, const WorkerCrashedRpc& m) {
  w.Id(m.app);
  w.U32(m.slot_id);
  w.Id(m.worker);
  w.Id(m.replacement);
  w.Id(m.machine);
  w.Bool(m.restarted);
}

Status WireDecode(wire::Reader& r, WorkerCrashedRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.worker));
  FUXI_RETURN_IF_ERROR(r.Id(&m.replacement));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.Bool(&m.restarted);
}

void WireEncode(wire::Writer& w, const AdoptQueryRpc& m) {
  w.Id(m.app);
  w.Id(m.machine);
  w.Id(m.agent_node);
  w.Vec(m.workers);
}

Status WireDecode(wire::Reader& r, AdoptQueryRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  FUXI_RETURN_IF_ERROR(r.Id(&m.agent_node));
  return r.Vec(&m.workers);
}

void WireEncode(wire::Writer& w, const AdoptReplyRpc& m) {
  w.Id(m.app);
  w.Id(m.machine);
  w.Vec(m.keep);
}

Status WireDecode(wire::Reader& r, AdoptReplyRpc& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.Vec(&m.keep);
}

}  // namespace fuxi::master
