#include "master/resource_client.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "master/fuxi_master.h"

namespace fuxi::master {

namespace {

/// Finds (or appends) the pending delta entry for `slot`.
resource::UnitRequestDelta* PendingUnit(resource::RequestMessage* pending,
                                        uint32_t slot) {
  for (resource::UnitRequestDelta& unit : pending->delta.units) {
    if (unit.slot_id == slot) return &unit;
  }
  pending->delta.units.emplace_back();
  pending->delta.units.back().slot_id = slot;
  return &pending->delta.units.back();
}

}  // namespace

ResourceClient::ResourceClient(sim::Simulator* simulator,
                               net::Network* network,
                               coord::LockService* locks, NodeId self,
                               AppId app, Options options,
                               uint64_t incarnation)
    : sim_(simulator),
      network_(network),
      locks_(locks),
      self_(self),
      app_(app),
      options_(std::move(options)),
      master_lock_(options_.master_lock.empty() ? FuxiMaster::kMasterLock
                                                : options_.master_lock),
      incarnation_(incarnation),
      // Jitter seeds derived from stable identity so replays of the
      // same (app, node) produce the same retry schedule.
      resync_backoff_(options_.retry_backoff,
                      (static_cast<uint64_t>(app.value()) << 20) ^
                          static_cast<uint64_t>(self.value()) ^
                          0x9E3779B97F4A7C15ull),
      flush_backoff_(options_.retry_backoff,
                     (static_cast<uint64_t>(app.value()) << 20) ^
                         static_cast<uint64_t>(self.value())) {}

void ResourceClient::Start(net::Endpoint* endpoint) {
  FUXI_CHECK(!running_);
  running_ = true;
  ++life_;
  // ReplaceHandle, not Handle: a restarted application master builds a
  // fresh ResourceClient on its surviving endpoint, deliberately taking
  // these payload types over from the dead incarnation.
  endpoint->ReplaceHandle<GrantRpc>(
      [this](const net::Envelope&, const GrantRpc& rpc) {
        if (running_) OnGrant(rpc);
      });
  endpoint->ReplaceHandle<ResyncRpc>(
      [this](const net::Envelope&, const ResyncRpc&) {
        // Master lost our request stream: re-send everything.
        if (running_) {
          need_full_sync_ = true;
          Flush();
        }
      });
  uint64_t life = life_;
  sim_->Schedule(options_.full_sync_interval, [this, life] {
    if (running_ && life == life_) PeriodicSync();
  });
}

void ResourceClient::StartRecovering(net::Endpoint* endpoint,
                                     std::function<void()> on_snapshot) {
  recovering_ = true;
  on_snapshot_ = std::move(on_snapshot);
  resync_backoff_.Reset();
  Start(endpoint);
  // Ask the master for the authoritative grant snapshot; retry until a
  // primary is reachable and the snapshot arrives.
  SendRecoveryResync();
}

void ResourceClient::SendRecoveryResync() {
  if (!running_ || !recovering_) return;
  NodeId primary = CurrentMaster();
  if (primary.valid()) {
    ResyncRpc rpc;
    rpc.app = app_;
    rpc.reply_to = self_;
    rpc.incarnation = incarnation_;
    known_master_ = primary;
    network_->Send(self_, primary, rpc);
  }
  uint64_t life = life_;
  ++retries_scheduled_;
  if (resync_retry_counter_ != nullptr) resync_retry_counter_->Add();
  sim_->Schedule(resync_backoff_.NextDelay(), [this, life] {
    if (running_ && life == life_ && recovering_) SendRecoveryResync();
  });
}

void ResourceClient::Stop() {
  running_ = false;
  ++life_;
}

void ResourceClient::DefineUnit(const resource::ScheduleUnitDef& def) {
  SlotState& slot = slots_[def.slot_id];
  slot.def = def;
  resource::UnitRequestDelta* unit = PendingUnit(&pending_, def.slot_id);
  unit->has_def = true;
  unit->def = def;
  pending_dirty_ = true;
  Flush();
}

void ResourceClient::SetDesired(uint32_t slot_id, int64_t desired_total) {
  auto it = slots_.find(slot_id);
  FUXI_CHECK(it != slots_.end()) << "DefineUnit before SetDesired";
  SlotState& slot = it->second;
  if (desired_total < slot.granted_total) {
    // Cannot un-desire units that are already granted; the application
    // must Release them instead.
    desired_total = slot.granted_total;
  }
  int64_t outstanding_before = slot.desired - slot.granted_total;
  slot.desired = desired_total;
  int64_t outstanding_after = slot.desired - slot.granted_total;
  int64_t delta = outstanding_after - outstanding_before;
  if (delta != 0) {
    PendingUnit(&pending_, slot_id)->total_count_delta += delta;
    pending_dirty_ = true;
    Flush();
  }
}

void ResourceClient::AddDesired(uint32_t slot_id, int64_t delta) {
  auto it = slots_.find(slot_id);
  FUXI_CHECK(it != slots_.end());
  SetDesired(slot_id, it->second.desired + delta);
}

void ResourceClient::SetLocalityHint(uint32_t slot_id,
                                     resource::LocalityLevel level,
                                     const std::string& value,
                                     int64_t count) {
  SlotState& slot = slots_[slot_id];
  auto key = std::make_pair(static_cast<int>(level), value);
  int64_t current = 0;
  if (auto it = slot.hints.find(key); it != slot.hints.end()) {
    current = it->second;
  }
  if (count == current) return;
  if (count == 0) {
    slot.hints.erase(key);
  } else {
    slot.hints[key] = count;
  }
  PendingUnit(&pending_, slot_id)
      ->hints.push_back({level, value, count - current});
  pending_dirty_ = true;
  Flush();
}

void ResourceClient::Avoid(uint32_t slot_id, const std::string& hostname) {
  SlotState& slot = slots_[slot_id];
  if (!slot.avoid.insert(hostname).second) return;
  PendingUnit(&pending_, slot_id)->avoid_add.push_back(hostname);
  pending_dirty_ = true;
  Flush();
}

void ResourceClient::SetPlan(uint32_t slot_id,
                             const resource::PlanningHints& plan) {
  SlotState& slot = slots_[slot_id];
  if (slot.plan == plan) return;
  slot.plan = plan;
  resource::UnitRequestDelta* unit = PendingUnit(&pending_, slot_id);
  unit->has_plan = true;
  unit->plan = plan;
  pending_dirty_ = true;
  Flush();
}

void ResourceClient::Release(uint32_t slot_id, MachineId machine,
                             int64_t count) {
  auto it = slots_.find(slot_id);
  FUXI_CHECK(it != slots_.end());
  SlotState& slot = it->second;
  auto git = slot.granted.find(machine);
  int64_t held = git == slot.granted.end() ? 0 : git->second;
  if (count > held) count = held;
  if (count <= 0) return;
  slot.granted[machine] -= count;
  if (slot.granted[machine] == 0) slot.granted.erase(machine);
  slot.granted_total -= count;
  // A returned unit is finished work: desired shrinks with it so the
  // outstanding ask (desired - granted) is unchanged.
  slot.desired -= count;
  pending_.releases.push_back({slot_id, machine, count});
  pending_dirty_ = true;
  Flush();
}

NodeId ResourceClient::CurrentMaster() const {
  return locks_->Holder(master_lock_);
}

void ResourceClient::Flush() {
  if (!running_ || recovering_) return;
  if (!pending_dirty_ && !need_full_sync_) return;
  NodeId primary = CurrentMaster();
  if (!primary.valid()) {
    // No elected master right now; retry on the backoff schedule.
    if (!retry_scheduled_) {
      retry_scheduled_ = true;
      uint64_t life = life_;
      ++retries_scheduled_;
      if (no_master_retry_counter_ != nullptr) {
        no_master_retry_counter_->Add();
      }
      sim_->Schedule(flush_backoff_.NextDelay(), [this, life] {
        if (running_ && life == life_) {
          retry_scheduled_ = false;
          Flush();
        }
      });
    }
    return;
  }
  flush_backoff_.Reset();
  if (primary != known_master_) {
    // New primary: our delta stream and its grant stream both restart.
    known_master_ = primary;
    grant_receiver_ = resource::DeltaReceiver<resource::GrantMessage>();
    need_full_sync_ = true;
  }
  RequestRpc rpc;
  rpc.app = app_;
  rpc.reply_to = self_;
  rpc.incarnation = incarnation_;
  if (need_full_sync_) {
    rpc.msg = sender_.StampFull(BuildFullState());
    need_full_sync_ = false;
    pending_ = resource::RequestMessage();  // superseded by full state
    pending_dirty_ = false;
    ++full_syncs_sent_;
    network_->Send(self_, primary, rpc);
  } else {
    resource::RequestMessage delta = std::move(pending_);
    pending_ = resource::RequestMessage();
    pending_dirty_ = false;
    delta.delta.app = app_;
    rpc.msg = sender_.Stamp(std::move(delta));
    ++deltas_sent_;
    network_->Send(self_, primary, rpc);
  }
}

resource::RequestMessage ResourceClient::BuildFullState() const {
  resource::RequestMessage full;
  for (const auto& [slot_id, slot] : slots_) {
    resource::SlotAbsoluteState absolute;
    absolute.def = slot.def;
    // The *desired total* (granted + outstanding), not the outstanding
    // remainder: grants in flight move units between the two halves on
    // the two peers, but the total is stable, so reconciling totals is
    // immune to that race.
    absolute.total_count = slot.desired;
    for (const auto& [key, count] : slot.hints) {
      absolute.hints.push_back(
          {static_cast<resource::LocalityLevel>(key.first), key.second,
           count});
    }
    absolute.avoid.assign(slot.avoid.begin(), slot.avoid.end());
    absolute.plan = slot.plan;
    full.full_slots.push_back(std::move(absolute));
    for (const auto& [machine, count] : slot.granted) {
      full.held_grants.push_back({slot_id, machine, count});
    }
  }
  return full;
}

void ResourceClient::OnGrant(const GrantRpc& rpc) {
  using Outcome = resource::DeltaReceiver<resource::GrantMessage>::Outcome;
  Outcome outcome = grant_receiver_.Receive(
      rpc.msg,
      [this](const resource::GrantMessage& msg, bool is_full) {
        ApplyGrantMessage(msg, is_full);
      });
  if (outcome == Outcome::kNeedResync) {
    NodeId primary = CurrentMaster();
    if (primary.valid()) {
      ResyncRpc rpc;
      rpc.app = app_;
      rpc.reply_to = self_;
      network_->Send(self_, primary, rpc);
    }
  }
}

void ResourceClient::ApplyGrantMessage(const resource::GrantMessage& msg,
                                       bool is_full) {
  if (is_full) {
    // Snap the granted view to the master's authoritative state, firing
    // callbacks for the differences so the application reacts.
    std::map<std::pair<uint32_t, MachineId>, int64_t> authoritative;
    for (const resource::GrantAbsolute& grant : msg.full_grants) {
      authoritative[{grant.slot_id, grant.machine}] += grant.count;
      if (recovering_) slots_[grant.slot_id];  // materialize the slot
    }
    // Compute diffs per slot, apply the new view FIRST, then fire the
    // callbacks: callbacks read the granted view (e.g. to decide how
    // many workers to start), so it must already be current.
    struct Diff {
      uint32_t slot_id;
      MachineId machine;
      int64_t delta;
    };
    std::vector<Diff> diffs;
    for (auto& [slot_id, slot] : slots_) {
      std::map<MachineId, int64_t> new_granted;
      int64_t new_total = 0;
      for (const auto& [key, count] : authoritative) {
        if (key.first != slot_id) continue;
        new_granted[key.second] = count;
        new_total += count;
      }
      for (const auto& [machine, count] : new_granted) {
        int64_t old = 0;
        if (auto it = slot.granted.find(machine); it != slot.granted.end()) {
          old = it->second;
        }
        if (count != old) diffs.push_back({slot_id, machine, count - old});
      }
      for (const auto& [machine, old] : slot.granted) {
        if (new_granted.count(machine) == 0 && old != 0) {
          diffs.push_back({slot_id, machine, -old});
        }
      }
      slot.granted = std::move(new_granted);
      slot.granted_total = new_total;
      // A snapshot can only reveal that outstanding demand was already
      // satisfied (or that grants were lost); desired itself is the
      // application's business — just keep the invariant
      // desired >= granted (relevant on failover recovery, where the
      // fresh slot starts at desired 0).
      if (slot.desired < slot.granted_total) {
        slot.desired = slot.granted_total;
      }
    }
    for (const Diff& diff : diffs) {
      if (grant_callback_) {
        grant_callback_(diff.slot_id, diff.machine, diff.delta,
                        resource::RevocationReason::kAppRelease);
      }
    }
    if (recovering_) {
      recovering_ = false;
      resync_backoff_.Reset();
      if (on_snapshot_) on_snapshot_();
    }
    return;
  }
  for (const resource::GrantDelta& delta : msg.deltas) {
    auto it = slots_.find(delta.slot_id);
    if (it == slots_.end()) continue;  // slot torn down meanwhile
    SlotState& slot = it->second;
    // Clamp revocations to what we actually hold: a revocation racing a
    // local release must not drive the view negative.
    int64_t current = 0;
    if (auto git = slot.granted.find(delta.machine);
        git != slot.granted.end()) {
      current = git->second;
    }
    int64_t applied = std::max(delta.delta, -current);
    if (applied == 0) continue;
    slot.granted[delta.machine] = current + applied;
    if (slot.granted[delta.machine] <= 0) slot.granted.erase(delta.machine);
    slot.granted_total += applied;
    if (delta.delta > 0) {
      // The master consumed machine-level preference along with the
      // grant; mirror that in our absolute hint bookkeeping. (Rack
      // hints drift slightly — the periodic full sync re-asserts them;
      // see DESIGN.md.)
      // We only know the hostname mapping for hints we set ourselves.
    } else {
      // Involuntary revocation: the master re-queued the outstanding
      // ask on its side, and our (desired - granted) grows by the same
      // amount automatically as granted shrinks. Nothing else to do.
    }
    if (grant_callback_) {
      grant_callback_(delta.slot_id, delta.machine, applied, delta.reason);
    }
  }
}

void ResourceClient::PeriodicSync() {
  need_full_sync_ = true;
  Flush();
  uint64_t life = life_;
  sim_->Schedule(options_.full_sync_interval, [this, life] {
    if (running_ && life == life_) PeriodicSync();
  });
}

int64_t ResourceClient::desired(uint32_t slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? 0 : it->second.desired;
}

int64_t ResourceClient::granted_total(uint32_t slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? 0 : it->second.granted_total;
}

int64_t ResourceClient::granted(uint32_t slot, MachineId machine) const {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return 0;
  auto git = it->second.granted.find(machine);
  return git == it->second.granted.end() ? 0 : git->second;
}

const std::map<MachineId, int64_t>& ResourceClient::grants_by_machine(
    uint32_t slot) const {
  static const std::map<MachineId, int64_t> kEmpty;
  auto it = slots_.find(slot);
  return it == slots_.end() ? kEmpty : it->second.granted;
}

}  // namespace fuxi::master
