#ifndef FUXI_MASTER_FUXI_MASTER_H_
#define FUXI_MASTER_FUXI_MASTER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "coord/checkpoint_store.h"
#include "coord/lock_service.h"
#include "master/messages.h"
#include "net/network.h"
#include "obs/observability.h"
#include "resource/delta_channel.h"
#include "resource/scheduler.h"
#include "sim/simulator.h"

namespace fuxi::master {

/// Tuning knobs for FuxiMaster. Times are virtual seconds.
struct FuxiMasterOptions {
  double lock_lease = 10.0;        ///< hot-standby lease duration
  double lock_renew_every = 3.0;
  double heartbeat_timeout = 4.0;  ///< agent silence before node-down
  double monitor_interval = 1.0;   ///< heartbeat/health check cadence
  /// Heavy, non-urgent work (health scoring roll-up, blacklist review)
  /// runs at this fixed interval — the paper's prioritized request
  /// handling (§3.4): urgent events are processed immediately, the rest
  /// in batch.
  double rollup_interval = 10.0;
  double health_disable_threshold = 0.3;
  double health_disable_after = 20.0;  ///< sustained low score duration
  /// Distinct JobMasters that must mark a machine bad before the
  /// cluster blacklists it (§4.3.2).
  int blacklist_votes = 3;
  /// Upper bound on the blacklisted fraction of the cluster, to stop
  /// blacklist abuse from draining the cluster.
  double blacklist_cap_fraction = 0.1;
  /// Application-master silence before FuxiMaster starts a new one
  /// (the AM heartbeat of §4.3.1; the periodic full-state reconcile
  /// doubles as the heartbeat).
  double app_master_timeout = 20.0;
  /// Starvation aging period fed to the scheduler (0 = disabled).
  double starvation_age_after = 0;
  /// Chaos-testing fault: when false, a newly elected primary opens
  /// machines for scheduling WITHOUT restoring the grants their agents
  /// report (skipping the Figure 7 soft-state rebuild). This reproduces
  /// the double-grant failover bug the chaos InvariantMonitor must
  /// catch; production behaviour is `true`.
  bool failover_restore_grants = true;
  /// Quota groups to create on election (cluster configuration).
  std::vector<std::pair<std::string, cluster::ResourceVector>> quota_groups;
  resource::SchedulerOptions scheduler;

  // --- federation (fuxi::shard) -----------------------------------------
  // All defaults preserve legacy single-master behaviour byte-for-byte.

  /// Election lease this master contends for; empty = kMasterLock.
  /// Sharded clusters give each shard its own lease so elections are
  /// independent fault domains.
  std::string lock_name;
  /// Prefix for every checkpoint key, so shard masters sharing one
  /// CheckpointStore keep disjoint app / blacklist / generation records.
  std::string checkpoint_prefix;
  /// This master's shard index (stamped into directory status reports).
  int shard = 0;
  /// Machines this shard owns; 0 = the whole topology. Feeds the
  /// blacklist cap so per-shard caps stay proportional to shard size.
  int64_t shard_machine_count = 0;
  /// Shard-directory replicas to push ShardStatusRpc to (empty = none,
  /// the single-master case).
  std::vector<NodeId> directory_replicas;
  double shard_status_interval = 1.0;
};

/// The central resource manager (paper §2.2, §3): matches application
/// demand against machine supply with the incremental protocol, detects
/// faulty nodes, and supports hot-standby failover where the new
/// primary rebuilds all soft state from FuxiAgents and application
/// masters while only app descriptions and the cluster blacklist are
/// read from the checkpoint (Figure 7).
///
/// Two instances are normally created per cluster; whichever holds the
/// "fuxi_master" lock is primary. The standby ignores traffic until its
/// lock watch fires.
class FuxiMaster : public sim::Actor {
 public:
  static constexpr const char* kMasterLock = "fuxi_master";

  FuxiMaster(sim::Simulator* simulator, net::Network* network,
             coord::LockService* locks, coord::CheckpointStore* checkpoint,
             const cluster::ClusterTopology* topology, NodeId self,
             FuxiMasterOptions options = {});

  /// Joins the election; becomes primary immediately if the lock is
  /// free, otherwise arms a standby watch.
  void Start();

  /// Simulates a crash of this master process: it stops processing
  /// messages, releases nothing (the lease must expire), and loses all
  /// in-memory soft state.
  void Crash();

  /// Restarts a crashed instance (fresh soft state) and rejoins the
  /// election.
  void Restart();

  bool is_primary() const { return primary_; }
  bool is_alive() const { return alive_; }
  NodeId node() const { return self_; }

  /// Primary-only: the live scheduler (nullptr on standby/crashed).
  const resource::Scheduler* scheduler() const { return scheduler_.get(); }

  /// Machines currently disabled by the cluster blacklist.
  std::vector<MachineId> Blacklisted() const;

  /// Number of successful primary elections across the cluster's life.
  uint64_t generation() const { return generation_; }

  /// The lease this master contends for (options.lock_name or the
  /// kMasterLock default).
  const std::string& lock_name() const { return lock_name_; }

  /// Checkpoint records found damaged (torn writes) and skipped during
  /// the last hard-state recovery.
  uint64_t checkpoint_records_skipped() const {
    return checkpoint_records_skipped_;
  }

  /// Scheduling-decision latency samples (real wall-clock microseconds
  /// per request-path invocation) — the Figure 9 measurement.
  const std::vector<double>& decision_micros() const {
    return decision_micros_;
  }
  void EnableDecisionTiming(bool on) { time_decisions_ = on; }

  /// Wires the cluster-wide observability bundle in (null detaches).
  /// Resolves every instrument once so message handlers touch only
  /// plain pointers.
  void set_observability(obs::Observability* obs);

 private:
  struct AppRecord {
    AppId app;
    std::string quota_group;
    Json description;
    NodeId am_node;       ///< where grant messages go
    NodeId client;
    bool am_started = false;
    double last_contact = -1;  ///< AM liveness (any request traffic)
    uint64_t am_incarnation = 0;
    /// Grant-reconcile suspicion: (slot, machine) -> excess units the
    /// AM's last full state did not acknowledge. A discrepancy is only
    /// treated as a lost release when it persists across two
    /// consecutive full syncs — otherwise it is just a grant delta that
    /// was in flight when the AM snapshotted its state.
    std::map<std::pair<uint32_t, int64_t>, int64_t> suspected_lost;
    resource::DeltaSender<resource::GrantMessage> grant_sender;
    resource::DeltaReceiver<resource::RequestMessage> request_receiver;
  };

  struct AgentRecord {
    MachineId machine;
    NodeId node;
    double last_heartbeat = -1;
    double health_ewma = 1.0;
    double unhealthy_since = -1;
    bool online = false;
    /// Sequence stamp for AgentCapacityRpc messages to this machine
    /// (replay/reorder guard; see the message comment).
    uint64_t capacity_seq = 0;
  };

  // --- election / failover ---
  void TryBecomePrimary();
  void BecomePrimary();
  void StepDown();
  void RenewLease();
  /// Rebuilds hard state (apps, blacklist) from the checkpoint; soft
  /// state arrives from agents/app-masters afterwards.
  void RecoverHardState();

  // --- message handlers (primary only) ---
  void OnSubmitApp(const net::Envelope& env, const SubmitAppRpc& rpc);
  void OnStopApp(const net::Envelope& env, const StopAppRpc& rpc);
  void OnRequest(const net::Envelope& env, const RequestRpc& rpc);
  void OnResync(const net::Envelope& env, const ResyncRpc& rpc);
  void OnHeartbeat(const net::Envelope& env, const AgentHeartbeatRpc& rpc);
  void OnBadMachineReport(const net::Envelope& env,
                          const BadMachineReportRpc& rpc);

  /// Applies one (ordered, deduplicated) request message to the
  /// scheduler and emits resulting deltas.
  void ApplyRequestMessage(AppRecord* record,
                           const resource::RequestMessage& msg,
                           bool is_full);
  void ApplyFullState(AppRecord* record,
                      const resource::RequestMessage& msg);

  /// Fans a scheduling result out as grant deltas to application
  /// masters and capacity deltas to agents.
  void Dispatch(const resource::SchedulingResult& result);
  void SendFullGrantState(AppRecord* record);
  /// Pushes the scheduler's authoritative per-app capacity for one
  /// machine as a full snapshot — the repair step of the periodic
  /// agent/master capacity reconcile.
  void SendFullCapacity(MachineId machine);

  // --- periodic work ---
  void MonitorTick();
  void RollupTick();
  void MarkMachineDown(MachineId machine, const std::string& why);
  void DisableMachine(MachineId machine, const std::string& why);
  /// Commits a kMachineEvent decision record (down / blacklist) so the
  /// audit dump explains machine-availability flips alongside the
  /// placement decisions they invalidate.
  void AuditMachineEvent(MachineId machine, const std::string& note);
  void CheckpointBlacklist();
  void SyncStateGauges();
  /// Pushes this shard's load/primary status to the directory replicas
  /// (no-op unless options.directory_replicas is set).
  void SendShardStatus();

  // Checkpoint keys, namespaced by options.checkpoint_prefix.
  std::string AppKeyFor(AppId app) const;
  std::string AppKeyPrefix() const;
  std::string BlacklistKeyFor() const;
  std::string GenerationKeyFor() const;

  AppRecord* FindApp(AppId app);
  resource::ScheduleUnitDef LookupDef(AppId app, uint32_t slot) const;

  net::Network* network_;
  coord::LockService* locks_;
  coord::CheckpointStore* checkpoint_;
  const cluster::ClusterTopology* topology_;
  NodeId self_;
  FuxiMasterOptions options_;
  std::string lock_name_;  ///< resolved lease name (options or default)

  bool alive_ = true;
  bool primary_ = false;
  uint64_t generation_ = 0;
  /// Incarnation counter: timers from a crashed life must not act.
  uint64_t life_ = 0;

  net::Endpoint endpoint_;
  std::unique_ptr<resource::Scheduler> scheduler_;
  std::map<AppId, AppRecord> apps_;
  std::map<MachineId, AgentRecord> agents_;
  std::set<MachineId> blacklist_;
  std::map<MachineId, std::set<AppId>> blacklist_votes_;
  MachineId next_am_machine_{0};

  bool time_decisions_ = false;
  std::vector<double> decision_micros_;
  uint64_t checkpoint_records_skipped_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* grant_units_counter_ = nullptr;
  obs::Counter* revoke_units_counter_ = nullptr;
  obs::Counter* blacklist_adds_counter_ = nullptr;
  obs::Counter* machines_down_counter_ = nullptr;
  obs::Counter* elections_counter_ = nullptr;
  obs::Counter* am_restarts_counter_ = nullptr;
  obs::Counter* checkpoint_skips_counter_ = nullptr;
  obs::Gauge* apps_gauge_ = nullptr;
  obs::Gauge* blacklist_gauge_ = nullptr;
  obs::Gauge* request_backlog_gauge_ = nullptr;
  Histogram* schedule_wall_us_ = nullptr;
};

}  // namespace fuxi::master

#endif  // FUXI_MASTER_FUXI_MASTER_H_
