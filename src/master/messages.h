#ifndef FUXI_MASTER_MESSAGES_H_
#define FUXI_MASTER_MESSAGES_H_

#include <string>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/json.h"
#include "resource/protocol.h"
#include "wire/wire.h"

namespace fuxi::master {

// ---------------------------------------------------------------------
// Application master <-> FuxiMaster (the incremental resource protocol)
// ---------------------------------------------------------------------

/// Application master → FuxiMaster: stamped incremental (or full-state)
/// resource request.
struct RequestRpc {
  AppId app;
  NodeId reply_to;  ///< where grant deltas should be sent
  /// Application-master incarnation: bumps when the AM restarts, so the
  /// master knows to reset both delta channels (the restarted AM's
  /// sequence numbers start over).
  uint64_t incarnation = 1;
  resource::StampedRequest msg;
};

/// FuxiMaster → application master: stamped grant deltas / full state.
struct GrantRpc {
  resource::StampedGrant msg;
};

/// Either side → the other: "my receiver lost sync, send full state".
struct ResyncRpc {
  AppId app;
  NodeId reply_to;  ///< valid when sent by an application master
  uint64_t incarnation = 0;  ///< nonzero when sent by a restarted AM
};

/// Application master → FuxiMaster: report a machine it considers bad
/// (the job-level blacklist bubbling up for cross-job judgement, §4.3.2).
struct BadMachineReportRpc {
  AppId app;
  MachineId machine;
};

// ---------------------------------------------------------------------
// FuxiAgent <-> FuxiMaster
// ---------------------------------------------------------------------

/// One application's allocation on a machine, as the agent sees it.
struct AgentAllocation {
  AppId app;
  uint32_t slot_id = 0;
  resource::ScheduleUnitDef def;
  int64_t count = 0;
};

/// FuxiAgent → FuxiMaster: periodic heartbeat with health plug-in
/// metrics (§4.3.2's disk statistics / machine load / network I/O score)
/// and, on demand, the machine's full allocation state.
struct AgentHeartbeatRpc {
  MachineId machine;
  NodeId agent_node;
  uint64_t seq = 0;
  double health_score = 1.0;  ///< 1.0 healthy .. 0.0 dead
  cluster::ResourceVector capacity;
  bool carries_allocations = false;
  std::vector<AgentAllocation> allocations;
  /// Set by a restarted agent that lost its capacity table; the master
  /// answers with a full AgentCapacityRpc.
  bool need_capacity = false;
};

/// FuxiMaster → FuxiAgent: authoritative per-app capacity on the
/// machine (sent as deltas after scheduling decisions; as absolute
/// counts with `full` set, e.g. after an agent restart).
struct AgentCapacityRpc {
  struct Entry {
    AppId app;
    uint32_t slot_id = 0;
    resource::ScheduleUnitDef def;
    int64_t delta = 0;  ///< delta, or absolute count when `full`
  };
  /// Per-(master generation, machine) sequence number. Deltas commute,
  /// so reordering among them is harmless, but a duplicated delta would
  /// double-apply and a delta reordered behind a later full snapshot
  /// would re-add capacity the snapshot already covers. The agent drops
  /// any message whose seq it has already applied and any message older
  /// than the last full snapshot.
  uint64_t master_generation = 0;
  uint64_t seq = 0;
  bool full = false;
  std::vector<Entry> entries;
};

/// FuxiMaster → FuxiAgent: heartbeat acknowledgement. When the master
/// has no record of the agent (fresh election, or the agent was marked
/// down), it sets `need_allocations` and the agent's next heartbeat
/// carries its full allocation table so the master can restore the
/// soft state (Figure 7).
struct AgentHeartbeatAckRpc {
  uint64_t master_generation = 0;
  bool need_allocations = false;
};

/// FuxiMaster (newly elected primary) → everyone: "re-send your state".
/// Agents answer with a heartbeat carrying allocations; application
/// masters answer with a full-state RequestRpc (paper Figure 7).
struct MasterRecoveryAnnounceRpc {
  NodeId new_master;
  uint64_t master_generation = 0;
};

/// Shard primary → shard-directory replicas (src/shard): periodic load
/// and leadership report. Replicas keep the entry with the highest
/// generation, so a deposed primary's stale reports are fenced out the
/// same way its grants are.
struct ShardStatusRpc {
  int32_t shard = 0;
  NodeId primary;
  uint64_t generation = 0;
  int64_t machines_online = 0;
  cluster::ResourceVector total;    ///< capacity of online machines
  cluster::ResourceVector granted;  ///< currently promised to apps
};

// ---------------------------------------------------------------------
// Client <-> FuxiMaster (application lifecycle)
// ---------------------------------------------------------------------

/// Client → FuxiMaster: launch an application (e.g. a Fuxi job). The
/// description is the hard state checkpointed by the master.
struct SubmitAppRpc {
  AppId app;
  std::string quota_group;
  Json description;
  NodeId client;
};

/// FuxiMaster → client: submission outcome.
struct SubmitAppReplyRpc {
  AppId app;
  bool accepted = false;
  std::string error;
};

/// FuxiMaster → FuxiAgent: start an application master process for a
/// submitted app on this machine.
struct StartAppMasterRpc {
  AppId app;
  Json description;
};

/// Client or master → FuxiMaster: tear an application down.
struct StopAppRpc {
  AppId app;
};

// ---------------------------------------------------------------------
// Application master <-> FuxiAgent (work plans, §2.2)
// ---------------------------------------------------------------------

/// Application master → FuxiAgent: start a worker process under a
/// previously granted unit. `plan` carries package location / start-up
/// parameters (opaque to the agent).
struct StartWorkerRpc {
  AppId app;
  uint32_t slot_id = 0;
  NodeId am_node;
  uint64_t plan_id = 0;  ///< echo token for the reply
  Json plan;
};

/// FuxiAgent → application master: worker launch outcome. On a
/// capacity refusal the agent reports the workers it already runs for
/// that (app, slot): if the AM's original start reply was lost it can
/// adopt the orphan instead of retrying into the same refusal forever.
struct WorkerStartedRpc {
  uint64_t plan_id = 0;
  WorkerId worker;
  MachineId machine;
  bool ok = false;
  std::string error;
  std::vector<WorkerId> running;  ///< set only on refusal
};

/// Application master → FuxiAgent: stop a worker.
struct StopWorkerRpc {
  WorkerId worker;
};

/// FuxiAgent → application master: a worker died; if the agent could
/// restart it in place (paper: "FuxiAgent watches the worker's status
/// and restarts it if it crashes"), `restarted` is set and
/// `replacement` names the new process.
struct WorkerCrashedRpc {
  AppId app;
  uint32_t slot_id = 0;
  WorkerId worker;
  WorkerId replacement;
  MachineId machine;
  bool restarted = false;
};

/// Restarted FuxiAgent → application master: "I adopted these running
/// workers of yours; which should survive?" (agent failover, §4.3.1).
struct AdoptQueryRpc {
  AppId app;
  MachineId machine;
  NodeId agent_node;
  std::vector<WorkerId> workers;
};

/// Application master → restarted FuxiAgent: the workers to keep.
struct AdoptReplyRpc {
  AppId app;
  MachineId machine;
  std::vector<WorkerId> keep;
};

// ---------------------------------------------------------------------
// Wire codecs (fuxi::wire, DESIGN.md §10). Every RPC above is a framed
// top-level message; definitions live in messages_wire.cc. Bump the
// version byte in the matching WireTypeInfo when changing a layout.
// ---------------------------------------------------------------------

#define FUXI_MASTER_DECLARE_WIRE_V(TYPE, VERSION)          \
  void WireEncode(wire::Writer& w, const TYPE& m);         \
  Status WireDecode(wire::Reader& r, TYPE& m);             \
  constexpr wire::TypeInfo WireTypeInfo(const TYPE*) {     \
    return {wire::MsgTag::k##TYPE, VERSION};               \
  }
#define FUXI_MASTER_DECLARE_WIRE(TYPE) FUXI_MASTER_DECLARE_WIRE_V(TYPE, 1)

// v2: the embedded StampedRequest carries PlanningHints (fuxi::planner).
FUXI_MASTER_DECLARE_WIRE_V(RequestRpc, 2)
FUXI_MASTER_DECLARE_WIRE(GrantRpc)
FUXI_MASTER_DECLARE_WIRE(ResyncRpc)
FUXI_MASTER_DECLARE_WIRE(BadMachineReportRpc)
FUXI_MASTER_DECLARE_WIRE(AgentHeartbeatRpc)
FUXI_MASTER_DECLARE_WIRE(AgentCapacityRpc)
FUXI_MASTER_DECLARE_WIRE(AgentHeartbeatAckRpc)
FUXI_MASTER_DECLARE_WIRE(MasterRecoveryAnnounceRpc)
FUXI_MASTER_DECLARE_WIRE(ShardStatusRpc)
FUXI_MASTER_DECLARE_WIRE(SubmitAppRpc)
FUXI_MASTER_DECLARE_WIRE(SubmitAppReplyRpc)
FUXI_MASTER_DECLARE_WIRE(StartAppMasterRpc)
FUXI_MASTER_DECLARE_WIRE(StopAppRpc)
FUXI_MASTER_DECLARE_WIRE(StartWorkerRpc)
FUXI_MASTER_DECLARE_WIRE(WorkerStartedRpc)
FUXI_MASTER_DECLARE_WIRE(StopWorkerRpc)
FUXI_MASTER_DECLARE_WIRE(WorkerCrashedRpc)
FUXI_MASTER_DECLARE_WIRE(AdoptQueryRpc)
FUXI_MASTER_DECLARE_WIRE(AdoptReplyRpc)

#undef FUXI_MASTER_DECLARE_WIRE
#undef FUXI_MASTER_DECLARE_WIRE_V

// AgentAllocation and AgentCapacityRpc::Entry are nested (unframed).
void WireEncode(wire::Writer& w, const AgentAllocation& m);
Status WireDecode(wire::Reader& r, AgentAllocation& m);
void WireEncode(wire::Writer& w, const AgentCapacityRpc::Entry& m);
Status WireDecode(wire::Reader& r, AgentCapacityRpc::Entry& m);

}  // namespace fuxi::master

#endif  // FUXI_MASTER_MESSAGES_H_
