#ifndef FUXI_MASTER_RESOURCE_CLIENT_H_
#define FUXI_MASTER_RESOURCE_CLIENT_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/backoff.h"
#include "common/ids.h"
#include "coord/lock_service.h"
#include "master/messages.h"
#include "net/network.h"
#include "obs/metrics_registry.h"
#include "resource/delta_channel.h"
#include "resource/protocol.h"
#include "sim/simulator.h"

namespace fuxi::master {

/// The application-master side of the incremental resource protocol.
/// An application states *desired* unit counts; the client converts
/// changes into stamped deltas ("publish resource demands in
/// incremental fashion", §3.1), tracks grants as the master streams
/// them, survives FuxiMaster failovers by re-sending full state to the
/// new primary, and runs the periodic full-state safety sync that also
/// doubles as the application-master heartbeat.
struct ResourceClientOptions {
  double full_sync_interval = 8.0;  ///< periodic reconcile/heartbeat
  /// Retry schedule when no primary is electable (and for the recovery
  /// resync loop). The default — fixed 1 s, multiplier 1, zero jitter —
  /// reproduces the legacy fixed-interval loop exactly; the golden
  /// chaos replays pin those retry event times, so do not change it for
  /// single-master clusters. The submission router overrides it with a
  /// genuinely exponential, jittered policy.
  BackoffPolicy retry_backoff{1.0, 1.0, 30.0, 0.0};
  /// Lease whose holder is "the master" for this client. Empty means
  /// FuxiMaster::kMasterLock (single-master clusters); sharded clusters
  /// bind each application to its shard's election lock.
  std::string master_lock;
};

class ResourceClient {
 public:
  using Options = ResourceClientOptions;

  /// Called for every grant change: `delta` > 0 means `count` new units
  /// on `machine`; < 0 means revocation, with `reason` explaining why.
  using GrantCallback = std::function<void(
      uint32_t slot, MachineId machine, int64_t delta,
      resource::RevocationReason reason)>;

  /// `incarnation` identifies this AM process instance; a restarted
  /// application master must pass a larger value so FuxiMaster resets
  /// the delta channels.
  ResourceClient(sim::Simulator* simulator, net::Network* network,
                 coord::LockService* locks, NodeId self, AppId app,
                 Options options = Options(), uint64_t incarnation = 1);

  /// Registers protocol handlers on the owning actor's endpoint and
  /// starts the periodic sync. Call once.
  void Start(net::Endpoint* endpoint);

  /// Failover start (restarted application master, §4.3.1): first
  /// recovers the granted-resource view from FuxiMaster (ResyncRpc →
  /// full grant snapshot), then calls `on_snapshot` so the application
  /// can re-declare its units and desired counts; only then does normal
  /// traffic flow.
  void StartRecovering(net::Endpoint* endpoint,
                       std::function<void()> on_snapshot);

  /// Stops all timers (application master shutting down or crashing).
  void Stop();

  // --- demand API -------------------------------------------------------

  /// Declares (or redefines) a ScheduleUnit. Must precede SetDesired
  /// for that slot.
  void DefineUnit(const resource::ScheduleUnitDef& def);

  /// Sets the absolute desired number of units for `slot`
  /// (granted + outstanding). The client sends only the change.
  void SetDesired(uint32_t slot, int64_t desired_total);
  void AddDesired(uint32_t slot, int64_t delta);

  /// Sets the absolute preferred count on a machine or rack.
  void SetLocalityHint(uint32_t slot, resource::LocalityLevel level,
                       const std::string& value, int64_t count);

  /// Adds a machine to the slot's avoid list (bad node).
  void Avoid(uint32_t slot, const std::string& hostname);

  /// Attaches planner metadata (fuxi::planner) to the slot: lifetime
  /// estimate, advance-reservation window, gang membership. Sent as an
  /// absolute blob with the next delta and re-asserted on full syncs.
  void SetPlan(uint32_t slot, const resource::PlanningHints& plan);

  /// Returns `count` granted units on `machine` (workers finished).
  /// Also lowers the desired total by `count`: a returned unit is work
  /// completed, not work to be rescheduled.
  void Release(uint32_t slot, MachineId machine, int64_t count);

  void set_grant_callback(GrantCallback callback) {
    grant_callback_ = std::move(callback);
  }

  // --- views --------------------------------------------------------------

  int64_t desired(uint32_t slot) const;
  int64_t granted_total(uint32_t slot) const;
  int64_t granted(uint32_t slot, MachineId machine) const;
  /// granted units per machine for a slot.
  const std::map<MachineId, int64_t>& grants_by_machine(uint32_t slot) const;

  AppId app() const { return app_; }
  NodeId master() const { return known_master_; }
  uint64_t full_syncs_sent() const { return full_syncs_sent_; }
  uint64_t deltas_sent() const { return deltas_sent_; }
  uint64_t retries_scheduled() const { return retries_scheduled_; }

  /// Optional: export retry/backoff counters ("client.resync_retries",
  /// "client.no_master_retries") into the cluster registry.
  void set_metrics(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    resync_retry_counter_ = metrics->GetCounter("client.resync_retries");
    no_master_retry_counter_ =
        metrics->GetCounter("client.no_master_retries");
  }

  /// Forces the next flush to carry full state (used by tests and by
  /// restarted application masters recovering their view).
  void ForceFullSync() {
    need_full_sync_ = true;
    Flush();
  }

 private:
  struct SlotState {
    resource::ScheduleUnitDef def;
    int64_t desired = 0;
    std::map<MachineId, int64_t> granted;
    int64_t granted_total = 0;
    /// Absolute locality preferences, keyed by (level, name).
    std::map<std::pair<int, std::string>, int64_t> hints;
    std::set<std::string> avoid;
    resource::PlanningHints plan;
  };

  void Flush();
  void SendRecoveryResync();
  void OnGrant(const GrantRpc& rpc);
  void ApplyGrantMessage(const resource::GrantMessage& msg, bool is_full);
  void PeriodicSync();
  resource::RequestMessage BuildFullState() const;
  NodeId CurrentMaster() const;

  sim::Simulator* sim_;
  net::Network* network_;
  coord::LockService* locks_;
  NodeId self_;
  AppId app_;
  Options options_;
  std::string master_lock_;  ///< resolved lease name (options or default)

  bool running_ = false;
  bool recovering_ = false;
  std::function<void()> on_snapshot_;
  uint64_t incarnation_ = 1;
  uint64_t life_ = 0;
  NodeId known_master_;
  bool need_full_sync_ = true;  ///< first contact is always a full state
  bool retry_scheduled_ = false;

  resource::DeltaSender<resource::RequestMessage> sender_;
  resource::DeltaReceiver<resource::GrantMessage> grant_receiver_;
  resource::RequestMessage pending_;
  bool pending_dirty_ = false;

  std::map<uint32_t, SlotState> slots_;
  GrantCallback grant_callback_;
  uint64_t full_syncs_sent_ = 0;
  uint64_t deltas_sent_ = 0;

  Backoff resync_backoff_;
  Backoff flush_backoff_;
  uint64_t retries_scheduled_ = 0;
  obs::Counter* resync_retry_counter_ = nullptr;
  obs::Counter* no_master_retry_counter_ = nullptr;
};

}  // namespace fuxi::master

#endif  // FUXI_MASTER_RESOURCE_CLIENT_H_
