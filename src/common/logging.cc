#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace fuxi {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// The only mutable process-global in the whole stack (everything else —
// metrics, trace and audit rings, RNGs, node-id counters — is owned by
// a SimCluster or a smaller object). Parallel seed sweeps run one
// cluster per worker thread; serializing emission keeps each log line
// atomic on stderr. Level filtering stays lock-free: the mutex is only
// taken for lines that actually print.
std::mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    std::lock_guard<std::mutex> lock(g_emit_mu);
    std::cerr << stream_.str();
    if (level_ == LogLevel::kFatal) std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace fuxi
