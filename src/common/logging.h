#ifndef FUXI_COMMON_LOGGING_H_
#define FUXI_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fuxi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                      kFatal = 4 };

/// Process-wide minimum level; messages below it are discarded.
/// Benchmarks raise this to kError to keep measurement loops clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink that emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style void-caster: gives the ternary in FUXI_LOG a common void
/// type and avoids dangling-else when the macro is used unbraced.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define FUXI_LOG_ENABLED(level) \
  (::fuxi::LogLevel::level >= ::fuxi::GetLogLevel())

#define FUXI_LOG(level)                                                \
  !FUXI_LOG_ENABLED(level)                                             \
      ? (void)0                                                        \
      : ::fuxi::internal_logging::Voidify() &                          \
            ::fuxi::internal_logging::LogMessage(::fuxi::LogLevel::level, \
                                                 __FILE__, __LINE__)   \
                .stream()

/// Invariant check, active in all build types. Use for conditions whose
/// violation means internal corruption, never for user input.
#define FUXI_CHECK(cond)                                                    \
  (cond)                                                                    \
      ? (void)0                                                             \
      : ::fuxi::internal_logging::Voidify() &                               \
            ::fuxi::internal_logging::LogMessage(::fuxi::LogLevel::kFatal,  \
                                                 __FILE__, __LINE__)        \
                    .stream()                                               \
                << "Check failed: " #cond " "

#define FUXI_CHECK_EQ(a, b) FUXI_CHECK((a) == (b))
#define FUXI_CHECK_NE(a, b) FUXI_CHECK((a) != (b))
#define FUXI_CHECK_GE(a, b) FUXI_CHECK((a) >= (b))
#define FUXI_CHECK_GT(a, b) FUXI_CHECK((a) > (b))
#define FUXI_CHECK_LE(a, b) FUXI_CHECK((a) <= (b))
#define FUXI_CHECK_LT(a, b) FUXI_CHECK((a) < (b))

}  // namespace fuxi

#endif  // FUXI_COMMON_LOGGING_H_
