#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace fuxi {

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    Json value;
    FUXI_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    Status s = ParseValueInner(out);
    --depth_;
    return s;
  }

  Status ParseValueInner(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        FUXI_RETURN_IF_ERROR(ParseString(&s));
        *out = Json(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Json(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Json(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Json();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out) {
    ++pos_;  // consume '{'
    Json::Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      *out = Json(std::move(obj));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      FUXI_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      FUXI_RETURN_IF_ERROR(ParseValue(&value));
      obj[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = Json(std::move(obj));
    return Status::Ok();
  }

  Status ParseArray(Json* out) {
    ++pos_;  // consume '['
    Json::Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      *out = Json(std::move(arr));
      return Status::Ok();
    }
    while (true) {
      Json value;
      FUXI_RETURN_IF_ERROR(ParseValue(&value));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = Json(std::move(arr));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // consume '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are rare in job
            // descriptions and are passed through as replacement chars).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Error("invalid number");
    *out = Json(d);
    return Status::Ok();
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void EscapeString(const std::string& in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

}  // namespace

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v && v->is_string()) ? v->as_string() : fallback;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return (v && v->is_number()) ? v->as_number() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json* v = Find(key);
  return (v && v->is_number()) ? v->as_int() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return (v && v->is_bool()) ? v->as_bool() : fallback;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * (depth + 1)), ' ');
    }
  };
  auto closing_newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        newline();
        v.DumpTo(out, indent, depth + 1);
      }
      closing_newline();
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        newline();
        EscapeString(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      closing_newline();
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

}  // namespace fuxi
