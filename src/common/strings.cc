#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace fuxi {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, kUnits[unit]);
}

std::string FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string Demangle(const char* mangled) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
  std::free(demangled);
#endif
  return mangled;
}

}  // namespace fuxi
