#ifndef FUXI_COMMON_RNG_H_
#define FUXI_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace fuxi {

/// Deterministic pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). All randomness in the simulator flows from instances of
/// this class so that every experiment is replayable from a single seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce identical streams on all
  /// platforms (no use of std:: distribution objects, whose outputs are
  /// implementation-defined).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Standard-normal via Box-Muller (single value; no caching so the
  /// stream stays a pure function of call order).
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Log-normal value: exp(Normal(mu, sigma)). Useful for heavy-tailed
  /// task-duration and job-size distributions when fitting Table 1.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Pareto (power-law) value with scale xm > 0, shape alpha > 0.
  double Pareto(double xm, double alpha) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Samples an index from an (unnormalized) weight vector.
  /// Precondition: at least one weight > 0.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double target = NextDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (target < acc) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Returns a child generator with an independent stream; used to give
  /// each simulated component its own deterministic randomness.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace fuxi

#endif  // FUXI_COMMON_RNG_H_
