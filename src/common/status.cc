#include "common/status.h"

namespace fuxi {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace fuxi
