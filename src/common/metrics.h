#ifndef FUXI_COMMON_METRICS_H_
#define FUXI_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fuxi {

/// Streaming summary statistics (count/mean/min/max/variance) plus a
/// sample buffer for percentile queries. The benchmark harnesses use
/// this to report the same aggregates the paper's tables carry.
///
/// The buffer is exact up to `sample_cap()` samples; beyond that it
/// switches to reservoir sampling (Algorithm R) driven by a fixed-seed
/// generator, so memory stays bounded over arbitrarily long chaos
/// campaigns and identical Add() sequences still yield identical
/// percentiles on replay. Streaming stats always cover every sample.
class Histogram {
 public:
  static constexpr size_t kDefaultSampleCap = 1 << 16;

  void Add(double value) {
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    // Welford's online variance update.
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (samples_.size() < sample_cap_) {
      samples_.push_back(value);
      return;
    }
    // Reservoir: keep with probability cap/count, evicting uniformly.
    uint64_t j = NextRandom() % count_;
    if (j < samples_.size()) {
      samples_[static_cast<size_t>(j)] = value;
      sorted_ = false;
    }
  }

  /// Caps the percentile buffer; takes effect immediately (the buffer
  /// is truncated if already above `cap`). A cap of 0 keeps streaming
  /// stats only — Percentile() then returns 0.
  void SetSampleCap(size_t cap) {
    sample_cap_ = cap;
    if (samples_.size() > cap) {
      samples_.resize(cap);
      sorted_ = false;
    }
  }
  size_t sample_cap() const { return sample_cap_; }
  size_t sample_count() const { return samples_.size(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;

  /// Exact percentile (q in [0,100]) over all added samples.
  double Percentile(double q) const;

  /// Percentiles computed over a *copy* of the sample buffer, leaving
  /// the reservoir's element order untouched. Mid-run observers (the
  /// telemetry sampler) must use this instead of Percentile(): the
  /// in-place sort Percentile() performs changes which elements later
  /// reservoir evictions replace, so an extra mid-run query would
  /// perturb end-of-run percentiles and break sampler-on/off replay
  /// identity. One copy + sort serves all requested quantiles.
  std::vector<double> PercentilesSnapshot(
      const std::vector<double>& quantiles) const;

  /// "count=N mean=X p50=... p99=... max=..." summary line.
  std::string Summary() const;

  void Clear();

 private:
  // splitmix64: deterministic, seedless (fixed initial state) so two
  // histograms fed the same values keep identical reservoirs.
  uint64_t NextRandom() {
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  size_t sample_cap_ = kDefaultSampleCap;
  uint64_t rng_state_ = 0x5a17ab1e5eed0000ull;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// (time, value) series, used to emit the Figure 9 / Figure 10 curves.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void Add(double time, double value) { points_.push_back({time, value}); }
  const std::vector<Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  double MeanValue() const;
  double MaxValue() const;

  /// Downsamples to at most `buckets` points by averaging within equal
  /// time windows; keeps figure output readable.
  TimeSeries Downsample(size_t buckets) const;

 private:
  std::vector<Point> points_;
};

}  // namespace fuxi

#endif  // FUXI_COMMON_METRICS_H_
