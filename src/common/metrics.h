#ifndef FUXI_COMMON_METRICS_H_
#define FUXI_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fuxi {

/// Streaming summary statistics (count/mean/min/max/variance) plus an
/// exact sample buffer for percentile queries. The benchmark harnesses
/// use this to report the same aggregates the paper's tables carry.
class Histogram {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    // Welford's online variance update.
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    samples_.push_back(value);
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;

  /// Exact percentile (q in [0,100]) over all added samples.
  double Percentile(double q) const;

  /// "count=N mean=X p50=... p99=... max=..." summary line.
  std::string Summary() const;

  void Clear();

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// (time, value) series, used to emit the Figure 9 / Figure 10 curves.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void Add(double time, double value) { points_.push_back({time, value}); }
  const std::vector<Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  double MeanValue() const;
  double MaxValue() const;

  /// Downsamples to at most `buckets` points by averaging within equal
  /// time windows; keeps figure output readable.
  TimeSeries Downsample(size_t buckets) const;

 private:
  std::vector<Point> points_;
};

}  // namespace fuxi

#endif  // FUXI_COMMON_METRICS_H_
