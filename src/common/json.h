#ifndef FUXI_COMMON_JSON_H_
#define FUXI_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fuxi {

/// A small self-contained JSON document model. Fuxi job descriptions are
/// JSON files (paper §4.1, Figure 6); this module parses and serializes
/// them without external dependencies.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys ordered so serialization is deterministic.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}             // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}       // NOLINT
  Json(int i) : Json(static_cast<double>(i)) {}              // NOLINT
  Json(int64_t i) : Json(static_cast<double>(i)) {}          // NOLINT
  Json(uint64_t i) : Json(static_cast<double>(i)) {}         // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}              // NOLINT
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}    // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object lookup; returns nullptr when absent or not an object.
  const Json* Find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Object field access, inserting null values as needed.
  /// Precondition: *this is an object (or null, which becomes an object).
  Json& operator[](const std::string& key) {
    if (type_ == Type::kNull) *this = MakeObject();
    return object_[key];
  }

  /// Appends to an array (null becomes an empty array first).
  void Append(Json value) {
    if (type_ == Type::kNull) *this = MakeArray();
    array_.push_back(std::move(value));
  }

  /// Typed getters with defaults, for tolerant config reading.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Serializes to compact JSON text.
  std::string Dump() const;
  /// Serializes with 2-space indentation.
  std::string Pretty() const;

  /// Parses JSON text. Errors report byte offsets.
  static Result<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace fuxi

#endif  // FUXI_COMMON_JSON_H_
