#include "common/metrics.h"

#include <cmath>

#include "common/strings.h"

namespace fuxi {

double Histogram::stddev() const { return std::sqrt(variance()); }

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0) return samples_.front();
  if (q >= 100) return samples_.back();
  double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<double> Histogram::PercentilesSnapshot(
    const std::vector<double>& quantiles) const {
  std::vector<double> out(quantiles.size(), 0.0);
  if (samples_.empty()) return out;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < quantiles.size(); ++i) {
    double q = quantiles[i];
    if (q <= 0) {
      out[i] = sorted.front();
    } else if (q >= 100) {
      out[i] = sorted.back();
    } else {
      double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
      size_t lo = static_cast<size_t>(rank);
      double frac = rank - static_cast<double>(lo);
      out[i] = lo + 1 >= sorted.size()
                   ? sorted.back()
                   : sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
    }
  }
  return out;
}

std::string Histogram::Summary() const {
  return StrFormat(
      "count=%llu mean=%.4f p50=%.4f p95=%.4f p99=%.4f min=%.4f max=%.4f",
      static_cast<unsigned long long>(count_), mean(), Percentile(50),
      Percentile(95), Percentile(99), min(), max());
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  mean_ = 0;
  m2_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  samples_.clear();
  sorted_ = false;
  rng_state_ = 0x5a17ab1e5eed0000ull;
}

double TimeSeries::MeanValue() const {
  if (points_.empty()) return 0.0;
  double sum = 0;
  for (const Point& p : points_) sum += p.value;
  return sum / static_cast<double>(points_.size());
}

double TimeSeries::MaxValue() const {
  double max = 0;
  for (const Point& p : points_) max = std::max(max, p.value);
  return max;
}

TimeSeries TimeSeries::Downsample(size_t buckets) const {
  TimeSeries out;
  if (points_.empty() || buckets == 0) return out;
  if (points_.size() <= buckets) return *this;
  double t0 = points_.front().time;
  double t1 = points_.back().time;
  double width = (t1 - t0) / static_cast<double>(buckets);
  if (width <= 0) {
    out.Add(t0, MeanValue());
    return out;
  }
  size_t i = 0;
  for (size_t b = 0; b < buckets; ++b) {
    double end = t0 + width * static_cast<double>(b + 1);
    double sum = 0;
    size_t n = 0;
    double tsum = 0;
    while (i < points_.size() &&
           (points_[i].time <= end || b == buckets - 1)) {
      sum += points_[i].value;
      tsum += points_[i].time;
      ++n;
      ++i;
    }
    if (n > 0) {
      out.Add(tsum / static_cast<double>(n), sum / static_cast<double>(n));
    }
  }
  return out;
}

}  // namespace fuxi
