#ifndef FUXI_COMMON_BACKOFF_H_
#define FUXI_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace fuxi {

/// Retry-delay policy: jittered exponential backoff. The delay for
/// attempt n (0-based) is
///
///   base(n)  = min(initial * multiplier^n, max_delay)
///   delay(n) = base(n) * (1 +/- jitter)     (uniform in the band)
///
/// With multiplier = 1 and jitter = 0 this degenerates to the legacy
/// fixed-interval retry loop — the default every replay-pinned caller
/// (ResourceClient) uses, so golden campaign hashes stay byte-identical.
/// Routers and other thundering-herd-prone callers override it with a
/// genuinely exponential, jittered policy.
struct BackoffPolicy {
  double initial = 1.0;     ///< first retry delay, virtual seconds
  double multiplier = 1.0;  ///< growth per attempt (>= 1)
  double max_delay = 30.0;  ///< cap on the un-jittered delay
  double jitter = 0.0;      ///< fractional band, 0..1 (0 = deterministic)
};

/// Deterministic backoff sequence generator. All randomness comes from
/// a caller-provided seed through the repo's own Rng, so two runs with
/// the same seed produce byte-identical retry schedules — a hard
/// requirement for replayable chaos campaigns.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 0)
      : policy_(policy), rng_(seed), current_(policy.initial) {}

  /// Delay to wait before the next attempt. Advances the attempt
  /// counter and the exponential schedule.
  double NextDelay() {
    double base = std::min(current_, policy_.max_delay);
    current_ = std::min(current_ * policy_.multiplier, policy_.max_delay);
    ++attempts_;
    if (policy_.jitter > 0) {
      double band = base * policy_.jitter;
      // Uniform in [base - band, base + band]; never below zero.
      base = std::max(0.0, base - band + rng_.NextDouble() * 2.0 * band);
    }
    return base;
  }

  /// Restarts the schedule from the initial delay (call on success).
  void Reset() {
    current_ = policy_.initial;
    attempts_ = 0;
  }

  /// Attempts issued since construction or the last Reset().
  uint64_t attempts() const { return attempts_; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  double current_;
  uint64_t attempts_ = 0;
};

}  // namespace fuxi

#endif  // FUXI_COMMON_BACKOFF_H_
