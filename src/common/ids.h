#ifndef FUXI_COMMON_IDS_H_
#define FUXI_COMMON_IDS_H_

#include <cstdint>
#include <string>

namespace fuxi {

/// Strongly-typed integer identifiers. Each Tag instantiation is a
/// distinct type, so a MachineId cannot be passed where an AppId is
/// expected.
template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() : value_(kInvalid) {}
  constexpr explicit TypedId(int64_t value) : value_(value) {}

  constexpr int64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

  std::string ToString() const { return std::to_string(value_); }

  static constexpr int64_t kInvalid = -1;

 private:
  int64_t value_;
};

struct MachineIdTag {};
struct RackIdTag {};
struct AppIdTag {};
struct JobIdTag {};
struct TaskIdTag {};
struct InstanceIdTag {};
struct WorkerIdTag {};
struct NodeIdTag {};  // simulation actor address

using MachineId = TypedId<MachineIdTag>;
using RackId = TypedId<RackIdTag>;
using AppId = TypedId<AppIdTag>;
using JobId = TypedId<JobIdTag>;
using TaskId = TypedId<TaskIdTag>;
using InstanceId = TypedId<InstanceIdTag>;
using WorkerId = TypedId<WorkerIdTag>;
using NodeId = TypedId<NodeIdTag>;

}  // namespace fuxi

namespace std {
template <typename Tag>
struct hash<fuxi::TypedId<Tag>> {
  size_t operator()(fuxi::TypedId<Tag> id) const {
    return std::hash<int64_t>()(id.value());
  }
};
}  // namespace std

#endif  // FUXI_COMMON_IDS_H_
