#ifndef FUXI_COMMON_STRINGS_H_
#define FUXI_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fuxi {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.5 GB").
std::string FormatBytes(double bytes);

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double value, int precision = 2);

/// Demangles a `typeid(...).name()` string where the ABI supports it
/// (Itanium/cxxabi); returns the mangled input unchanged elsewhere.
std::string Demangle(const char* mangled);

}  // namespace fuxi

#endif  // FUXI_COMMON_STRINGS_H_
