#ifndef FUXI_COMMON_STATUS_H_
#define FUXI_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace fuxi {

/// Error codes used across all Fuxi public APIs. Following the
/// RocksDB/Arrow idiom, no exceptions cross library boundaries; every
/// fallible operation returns a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kCorruption,
  kInternal,
  kNotLeader,
  kCancelled,
};

/// Returns a stable human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotLeader(std::string msg) {
    return Status(StatusCode::kNotLeader, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsNotLeader() const { return code_ == StatusCode::kNotLeader; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error holder. Result<T> either contains a T (status OK)
/// or a non-OK Status explaining why the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    // A Result constructed from a Status must not be OK; normalize a
    // misuse into an internal error instead of silently holding no value.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok(). Accessing the value of an error Result aborts.
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller: `FUXI_RETURN_IF_ERROR(DoIt());`
#define FUXI_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::fuxi::Status _fuxi_status = (expr);         \
    if (!_fuxi_status.ok()) return _fuxi_status;  \
  } while (false)

/// Unwraps a Result into `lhs` or propagates its error status.
#define FUXI_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto FUXI_CONCAT_(_fuxi_result_, __LINE__) = (expr);      \
  if (!FUXI_CONCAT_(_fuxi_result_, __LINE__).ok())          \
    return FUXI_CONCAT_(_fuxi_result_, __LINE__).status();  \
  lhs = std::move(FUXI_CONCAT_(_fuxi_result_, __LINE__)).value()

#define FUXI_CONCAT_(a, b) FUXI_CONCAT_IMPL_(a, b)
#define FUXI_CONCAT_IMPL_(a, b) a##b

}  // namespace fuxi

#endif  // FUXI_COMMON_STATUS_H_
