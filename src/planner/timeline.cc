#include "planner/timeline.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace fuxi::planner {

namespace {

/// Componentwise minimum (ResourceVector exposes no direct one):
/// min(a, b) = a - max(a - b, 0).
cluster::ResourceVector CwiseMin(const cluster::ResourceVector& a,
                                 const cluster::ResourceVector& b) {
  return a - (a - b).ClampNonNegative();
}

}  // namespace

void Timeline::ReserveAt(uint64_t id, double start, double end,
                         const cluster::ResourceVector& amount,
                         uint64_t owner) {
  FUXI_CHECK(claims_.count(id) == 0) << "duplicate claim id " << id;
  FUXI_CHECK(start < end) << "empty claim window";
  claims_.emplace(id, Claim{start, end, amount, owner});
}

bool Timeline::Release(uint64_t id) { return claims_.erase(id) > 0; }

size_t Timeline::point_count() const {
  std::set<double> points;
  for (const auto& [id, claim] : claims_) {
    points.insert(claim.start);
    if (claim.end != kForever) points.insert(claim.end);
  }
  return points.size();
}

cluster::ResourceVector Timeline::LoadAt(double t) const {
  cluster::ResourceVector load;
  for (const auto& [id, claim] : claims_) {
    if (claim.start <= t && t < claim.end) load += claim.amount;
  }
  return load;
}

cluster::ResourceVector Timeline::RunningLoadAt(double t) const {
  // Counts every live grant-backed claim admitted at or before t —
  // INCLUDING overrunners whose estimate elapsed (end <= t) but whose
  // grant the scheduler has not released yet. Their capacity is still
  // held, so they must still fold into the budget identity
  // budget = free_now + running; dropping them at estimate expiry made
  // Reconcile shed healthy reservations whenever a unit ran a moment
  // past its estimate.
  cluster::ResourceVector load;
  for (const auto& [id, claim] : claims_) {
    if (claim.owner == 0 && claim.start <= t) load += claim.amount;
  }
  return load;
}

cluster::ResourceVector Timeline::MinAvailable(
    double start, double end, const cluster::ResourceVector& budget,
    uint64_t skip_owner) const {
  // Evaluation points: the window start plus every claim boundary
  // strictly inside the window. Load is constant between them.
  std::set<double> points{start};
  for (const auto& [id, claim] : claims_) {
    if (skip_owner != 0 && claim.owner == skip_owner) continue;
    if (claim.start > start && claim.start < end) points.insert(claim.start);
    if (claim.end != kForever && claim.end > start && claim.end < end) {
      points.insert(claim.end);
    }
  }
  cluster::ResourceVector min_avail = budget;
  bool first = true;
  for (double p : points) {
    cluster::ResourceVector load;
    for (const auto& [id, claim] : claims_) {
      if (skip_owner != 0 && claim.owner == skip_owner) continue;
      if (claim.start <= p && p < claim.end) load += claim.amount;
    }
    cluster::ResourceVector avail = budget - load;
    min_avail = first ? avail : CwiseMin(min_avail, avail);
    first = false;
  }
  return min_avail;
}

bool Timeline::CanPlaceAt(double start, double end,
                          const cluster::ResourceVector& amount,
                          const cluster::ResourceVector& budget,
                          uint64_t skip_owner) const {
  return amount.FitsIn(MinAvailable(start, end, budget, skip_owner));
}

double Timeline::EarliestFit(double from, double duration,
                             const cluster::ResourceVector& amount,
                             const cluster::ResourceVector& budget,
                             uint64_t skip_owner) const {
  std::set<double> starts{from};
  for (const auto& [id, claim] : claims_) {
    if (skip_owner != 0 && claim.owner == skip_owner) continue;
    if (claim.start > from) starts.insert(claim.start);
    if (claim.end != kForever && claim.end > from) starts.insert(claim.end);
  }
  for (double t : starts) {
    double end = duration == kForever ? kForever : t + duration;
    if (CanPlaceAt(t, end, amount, budget, skip_owner)) return t;
  }
  return kForever;
}

std::vector<uint64_t> Timeline::PruneEndedBefore(double now) {
  std::vector<uint64_t> dropped;
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (it->second.end <= now) {
      dropped.push_back(it->first);
      it = claims_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<double> Timeline::PointsAfter(double t, size_t cap) const {
  std::set<double> points;
  for (const auto& [id, claim] : claims_) {
    if (claim.start > t) points.insert(claim.start);
    if (claim.end != kForever && claim.end > t) points.insert(claim.end);
  }
  std::vector<double> out(points.begin(), points.end());
  if (out.size() > cap) out.resize(cap);
  return out;
}

bool Timeline::CheckNoOvercommit(const cluster::ResourceVector& budget,
                                 double from) const {
  std::set<double> points{from};
  for (const auto& [id, claim] : claims_) {
    if (claim.start > from) points.insert(claim.start);
    if (claim.end != kForever && claim.end > from) points.insert(claim.end);
  }
  for (double p : points) {
    if ((budget - LoadAt(p)).AnyNegative()) return false;
  }
  return true;
}

}  // namespace fuxi::planner
