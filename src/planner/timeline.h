#ifndef FUXI_PLANNER_TIMELINE_H_
#define FUXI_PLANNER_TIMELINE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "cluster/resource_vector.h"

namespace fuxi::planner {

/// "Never ends" sentinel for claim windows (a grant with no lifetime
/// estimate holds its resources forever as far as planning is
/// concerned).
inline constexpr double kForever = std::numeric_limits<double>::infinity();

/// One booked slice of future capacity: `amount` resources held over
/// the half-open window [start, end). Two kinds share the structure:
///   * running claims (owner == 0): resources a live grant holds now
///     and is expected to release at `end` (its lifetime estimate);
///   * reservation claims (owner != 0): resources promised to a future
///     start, owned by the reservation id in `owner`.
struct Claim {
  double start = 0;
  double end = kForever;
  cluster::ResourceVector amount;
  uint64_t owner = 0;  ///< reservation id, 0 for running claims
};

/// A scheduled-point timeline over one capacity pool (one machine, or a
/// rack aggregate): future load as a piecewise-constant function of
/// virtual time, changing only at claim starts/ends (the "scheduled
/// points" of flux-sched-style planners). All queries are O(points ×
/// claims) — planner workloads book tens of claims per machine, so the
/// simple representation beats a segment tree here.
///
/// The planner evaluates availability at time p as
///     A(p) = free_now + R0 - L(p)
/// where free_now is the host's live free vector, R0 = RunningLoadAt(now)
/// (resources held by claims that will release), and L(p) = LoadAt(p)
/// (claims still active at p plus reservations active at p). Callers
/// pass `budget = free_now + R0`; the timeline never sees free pools.
class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(const cluster::ResourceVector& capacity)
      : capacity_(capacity) {}

  const cluster::ResourceVector& capacity() const { return capacity_; }
  void set_capacity(const cluster::ResourceVector& capacity) {
    capacity_ = capacity;
  }

  /// Books a claim under the caller-assigned id (ids are planner-global
  /// so rack mirrors reuse them). Overwrites nothing: the id must be
  /// fresh.
  void ReserveAt(uint64_t id, double start, double end,
                 const cluster::ResourceVector& amount, uint64_t owner = 0);

  /// Releases a claim; returns false when the id is unknown.
  bool Release(uint64_t id);

  bool Has(uint64_t id) const { return claims_.count(id) > 0; }
  const std::map<uint64_t, Claim>& claims() const { return claims_; }
  size_t claim_count() const { return claims_.size(); }

  /// Distinct event times (claim starts and finite ends) — the
  /// scheduled-point count the metrics gauge reports.
  size_t point_count() const;

  /// Total load from claims active at `t` (start <= t < end).
  cluster::ResourceVector LoadAt(double t) const;

  /// Load from running claims (owner == 0) only — the R0 term.
  cluster::ResourceVector RunningLoadAt(double t) const;

  /// Componentwise minimum of (budget - L(p)) over every evaluation
  /// point p in [start, end): `start` itself plus each claim boundary
  /// inside the window. Claims owned by `skip_owner` (when nonzero) are
  /// ignored, so a reservation never blocks its own demand. The result
  /// may be negative.
  cluster::ResourceVector MinAvailable(double start, double end,
                                       const cluster::ResourceVector& budget,
                                       uint64_t skip_owner = 0) const;

  /// True when `amount` fits the window under `budget`.
  bool CanPlaceAt(double start, double end,
                  const cluster::ResourceVector& amount,
                  const cluster::ResourceVector& budget,
                  uint64_t skip_owner = 0) const;

  /// Earliest t >= from with CanPlaceAt(t, t + duration, amount,
  /// budget); kForever when no point (including the steady tail after
  /// the last event) admits it. Candidate starts are `from` and each
  /// scheduled point after it — load is piecewise constant, so nothing
  /// between points can succeed where both neighbours fail.
  double EarliestFit(double from, double duration,
                     const cluster::ResourceVector& amount,
                     const cluster::ResourceVector& budget,
                     uint64_t skip_owner = 0) const;

  /// Drops claims whose window ended at or before `now` (their
  /// resources are free again, or the estimate expired — either way
  /// they no longer constrain the future). Returns ids dropped.
  std::vector<uint64_t> PruneEndedBefore(double now);

  /// Event times strictly greater than `t`, ascending, at most `cap`.
  std::vector<double> PointsAfter(double t, size_t cap) const;

  /// The no-overcommit property: at every scheduled point p >= from,
  /// L(p) <= budget componentwise. With budget = free_now + R0 this is
  /// exactly "the future book never promises resources the machine
  /// cannot deliver".
  bool CheckNoOvercommit(const cluster::ResourceVector& budget,
                         double from) const;

 private:
  cluster::ResourceVector capacity_;
  std::map<uint64_t, Claim> claims_;
};

}  // namespace fuxi::planner

#endif  // FUXI_PLANNER_TIMELINE_H_
