#include "planner/planner.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace fuxi::planner {

namespace {

/// Candidate-start cap per planning query: load books carry tens of
/// claims per machine; beyond a few hundred distinct event times the
/// extra candidates only refine a start that is already years out.
constexpr size_t kMaxCandidateStarts = 256;

std::string KeyStr(const PlanKey& key) {
  std::ostringstream os;
  os << key.app << "/" << key.slot;
  return os.str();
}

}  // namespace

ClusterPlannerImpl::ClusterPlannerImpl(
    std::vector<cluster::ResourceVector> capacities,
    std::vector<int64_t> rack_of, int64_t rack_count, HostHooks hooks)
    : rack_of_(std::move(rack_of)), hooks_(std::move(hooks)) {
  timelines_.reserve(capacities.size());
  for (const auto& cap : capacities) timelines_.emplace_back(cap);
  rack_timelines_.resize(static_cast<size_t>(rack_count));
  rack_members_.resize(static_cast<size_t>(rack_count));
  for (size_t m = 0; m < rack_of_.size(); ++m) {
    int64_t r = rack_of_[m];
    FUXI_CHECK(r >= 0 && r < rack_count) << "bad rack id " << r;
    rack_members_[static_cast<size_t>(r)].push_back(
        static_cast<int64_t>(m));
    cluster::ResourceVector agg =
        rack_timelines_[static_cast<size_t>(r)].capacity();
    agg += capacities[m];
    rack_timelines_[static_cast<size_t>(r)].set_capacity(agg);
  }
}

void ClusterPlannerImpl::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  points_gauge_ = metrics->GetGauge("planner.scheduled_points");
  head_fence_wait_gauge_ =
      metrics->GetGauge("planner.head_fence_wait_seconds");
  backfill_hit_counter_ = metrics->GetCounter("planner.backfill_hits");
  backfill_miss_counter_ = metrics->GetCounter("planner.backfill_misses");
  gang_abort_counter_ = metrics->GetCounter("planner.gang_aborts");
  reservation_wait_hist_ =
      metrics->GetHistogram("planner.reservation_wait_seconds");
}

// --- demand lifecycle ---------------------------------------------------

void ClusterPlannerImpl::NoteDemand(const PlanKey& key,
                                    const DemandInfo& info,
                                    bool already_granted) {
  if (info.reservation) {
    reservation_keys_.insert(key);
    // Restored-after-failover grants mean the reservation converted
    // under the previous primary; holding it again would deadlock.
    if (already_granted) converted_.insert(key);
  }
  if (info.gang_id != 0) {
    Gang& gang = gangs_[info.gang_id];
    gang.declared_size = std::max(gang.declared_size, info.gang_size);
    gang.members.insert(key);
    gang_of_key_[key] = info.gang_id;
    if (already_granted) gang.started = true;
  }
}

void ClusterPlannerImpl::OnGrantRestored(const PlanKey& key) {
  if (reservation_keys_.count(key) > 0) converted_.insert(key);
  auto gang_it = gang_of_key_.find(key);
  if (gang_it != gang_of_key_.end()) {
    auto g = gangs_.find(gang_it->second);
    if (g != gangs_.end() && !g->second.started) {
      g->second.started = true;
      // A reservation booked for the not-yet-started gang is stale:
      // the gang is running, its future-capacity claim must not keep
      // blocking backfill.
      if (g->second.reservation != 0) {
        ReleaseReservation(g->second.reservation);
        g->second.reservation = 0;
      }
    }
  }
}

void ClusterPlannerImpl::OnDemandGone(const PlanKey& key) {
  auto res_it = res_of_key_.find(key);
  if (res_it != res_of_key_.end()) ReleaseReservation(res_it->second);
  converted_.erase(key);
  reservation_keys_.erase(key);
  needs_replan_.erase(key);
  auto gang_it = gang_of_key_.find(key);
  if (gang_it != gang_of_key_.end()) {
    auto g = gangs_.find(gang_it->second);
    if (g != gangs_.end()) {
      g->second.members.erase(key);
      if (!g->second.started && g->second.reservation != 0) {
        ReleaseReservation(g->second.reservation);
      }
      if (g->second.members.empty()) gangs_.erase(g);
    }
    gang_of_key_.erase(gang_it);
  }
  // Defensive: drop any running claims still indexed under the key
  // (normal teardown releases them one by one via OnGrantReleased).
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->first.first == key) {
      for (const RunningClaim& rc : it->second) {
        DropClaim(it->first.second, rc.id);
      }
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ClusterPlannerImpl::Holds(const PlanKey& key) const {
  auto gang_it = gang_of_key_.find(key);
  if (gang_it != gang_of_key_.end()) {
    auto g = gangs_.find(gang_it->second);
    if (g != gangs_.end() && !g->second.started) return true;
  }
  if (reservation_keys_.count(key) > 0 && converted_.count(key) == 0) {
    return true;
  }
  return false;
}

// --- grant mirror -------------------------------------------------------

void ClusterPlannerImpl::OnGrantCommitted(const PlanKey& key,
                                          int64_t machine, int64_t count,
                                          const cluster::ResourceVector& unit,
                                          double estimate) {
  if (estimate <= 0 || count <= 0) return;
  uint64_t id =
      AddClaim(machine, now_, now_ + estimate, unit * count, /*owner=*/0);
  running_[{key, machine}].push_back(
      RunningClaim{id, count, now_, now_ + estimate, unit});
}

void ClusterPlannerImpl::OnGrantReleased(const PlanKey& key, int64_t machine,
                                         int64_t count) {
  auto it = running_.find({key, machine});
  if (it == running_.end()) return;
  std::vector<RunningClaim>& claims = it->second;
  // Earliest-expected-end first: released units most plausibly belong
  // to the oldest grants.
  std::sort(claims.begin(), claims.end(),
            [](const RunningClaim& a, const RunningClaim& b) {
              if (a.end != b.end) return a.end < b.end;
              return a.id < b.id;
            });
  while (count > 0 && !claims.empty()) {
    RunningClaim rc = claims.front();
    claims.erase(claims.begin());
    DropClaim(machine, rc.id);
    if (rc.count > count) {
      // Partial release: re-book the surviving units under a new id,
      // keeping the ORIGINAL window — an overrunning survivor
      // (rc.end <= now_) stays a valid, already-expired claim instead
      // of an empty [now_, rc.end) one.
      int64_t left = rc.count - count;
      uint64_t id = AddClaim(machine, rc.start, rc.end, rc.unit * left, 0);
      claims.push_back(RunningClaim{id, left, rc.start, rc.end, rc.unit});
      count = 0;
    } else {
      count -= rc.count;
    }
  }
  if (claims.empty()) running_.erase(it);
}

// --- machine lifecycle --------------------------------------------------

void ClusterPlannerImpl::OnMachineOffline(int64_t machine) {
  Timeline& tl = timelines_[static_cast<size_t>(machine)];
  std::vector<uint64_t> broken_reservations;
  std::vector<uint64_t> ids;
  for (const auto& [id, claim] : tl.claims()) {
    ids.push_back(id);
    if (claim.owner != 0) broken_reservations.push_back(claim.owner);
  }
  for (uint64_t id : ids) DropClaim(machine, id);
  for (auto it = running_.begin(); it != running_.end();) {
    it = it->first.second == machine ? running_.erase(it) : std::next(it);
  }
  std::sort(broken_reservations.begin(), broken_reservations.end());
  broken_reservations.erase(
      std::unique(broken_reservations.begin(), broken_reservations.end()),
      broken_reservations.end());
  for (uint64_t res : broken_reservations) {
    if (reservations_.count(res) > 0) ReleaseReservation(res);
  }
}

void ClusterPlannerImpl::SetMachineCapacity(
    int64_t machine, const cluster::ResourceVector& capacity) {
  Timeline& tl = timelines_[static_cast<size_t>(machine)];
  int64_t r = rack_of_[static_cast<size_t>(machine)];
  cluster::ResourceVector rack_cap =
      rack_timelines_[static_cast<size_t>(r)].capacity();
  rack_cap += capacity - tl.capacity();
  rack_timelines_[static_cast<size_t>(r)].set_capacity(rack_cap);
  tl.set_capacity(capacity);
  // A shrink shows up as a smaller free pool; drop whatever the book
  // can no longer honour right away so the overcommit invariant holds
  // between ticks, not just at them.
  Reconcile(now_);
}

// --- backfill guard -----------------------------------------------------

int64_t ClusterPlannerImpl::ClampForBackfill(
    int64_t machine, const cluster::ResourceVector& free,
    const cluster::ResourceVector& unit, double estimate, int64_t want,
    const PlanKey& key) {
  if (want <= 0) return want;
  const Timeline& tl = timelines_[static_cast<size_t>(machine)];
  uint64_t skip = 0;
  auto it = res_of_key_.find(key);
  if (it != res_of_key_.end()) skip = it->second;
  cluster::ResourceVector budget = free + tl.RunningLoadAt(now_);
  double end = estimate > 0 ? now_ + estimate : kForever;
  cluster::ResourceVector avail =
      tl.MinAvailable(now_, end, budget, skip).ClampNonNegative();
  int64_t fit = std::min(want, avail.DivideBy(unit));
  if (fit > 0) {
    ++backfill_hits_n_;
    if (backfill_hit_counter_ != nullptr) backfill_hit_counter_->Add();
  } else {
    ++backfill_misses_n_;
    if (backfill_miss_counter_ != nullptr) backfill_miss_counter_->Add();
  }
  return fit;
}

// --- timeline plumbing --------------------------------------------------

uint64_t ClusterPlannerImpl::AddClaim(int64_t machine, double start,
                                      double end,
                                      const cluster::ResourceVector& amount,
                                      uint64_t owner) {
  uint64_t id = next_claim_id_++;
  timelines_[static_cast<size_t>(machine)].ReserveAt(id, start, end, amount,
                                                     owner);
  rack_timelines_[static_cast<size_t>(rack_of_[static_cast<size_t>(machine)])]
      .ReserveAt(id, start, end, amount, owner);
  if (owner != 0) ++reserved_on_[machine];
  return id;
}

void ClusterPlannerImpl::DropClaim(int64_t machine, uint64_t id) {
  Timeline& tl = timelines_[static_cast<size_t>(machine)];
  auto it = tl.claims().find(id);
  if (it == tl.claims().end()) return;
  if (it->second.owner != 0) {
    auto r = reserved_on_.find(machine);
    if (r != reserved_on_.end() && --r->second == 0) reserved_on_.erase(r);
  }
  tl.Release(id);
  rack_timelines_[static_cast<size_t>(rack_of_[static_cast<size_t>(machine)])]
      .Release(id);
}

cluster::ResourceVector ClusterPlannerImpl::BudgetOf(int64_t machine) const {
  MachineView view = hooks_.machine(machine);
  if (!view.online) return cluster::ResourceVector{};
  return view.free +
         timelines_[static_cast<size_t>(machine)].RunningLoadAt(now_);
}

int64_t ClusterPlannerImpl::AvailableUnits(int64_t machine, double t,
                                           double duration,
                                           const cluster::ResourceVector& unit,
                                           uint64_t skip_owner) const {
  MachineView view = hooks_.machine(machine);
  if (!view.online) return 0;
  const Timeline& tl = timelines_[static_cast<size_t>(machine)];
  double end = duration == kForever ? kForever : t + duration;
  cluster::ResourceVector avail =
      tl.MinAvailable(t, end, view.free + tl.RunningLoadAt(now_), skip_owner)
          .ClampNonNegative();
  return avail.DivideBy(unit);
}

std::vector<double> ClusterPlannerImpl::CandidateStarts(double from) const {
  std::set<double> points{from};
  for (const Timeline& tl : timelines_) {
    for (double p : tl.PointsAfter(from, kMaxCandidateStarts)) {
      points.insert(p);
    }
  }
  std::vector<double> out(points.begin(), points.end());
  if (out.size() > kMaxCandidateStarts) out.resize(kMaxCandidateStarts);
  return out;
}

std::optional<ClusterPlannerImpl::PlanSpot> ClusterPlannerImpl::FindEarliest(
    double from, double duration, const cluster::ResourceVector& unit,
    int64_t need, uint64_t skip_owner) {
  for (double t : CandidateStarts(from)) {
    int64_t total = 0;
    std::vector<Reservation::Booking> bookings;
    for (size_t r = 0; r < rack_members_.size() && total < need; ++r) {
      // Rack pre-filter: the aggregate book is an upper bound on what
      // the members can yield, so a zero here skips the whole rack.
      cluster::ResourceVector rack_budget;
      for (int64_t m : rack_members_[r]) rack_budget += BudgetOf(m);
      double end = duration == kForever ? kForever : t + duration;
      cluster::ResourceVector rack_avail =
          rack_timelines_[r]
              .MinAvailable(t, end, rack_budget, skip_owner)
              .ClampNonNegative();
      if (rack_avail.DivideBy(unit) <= 0) continue;
      for (int64_t m : rack_members_[r]) {
        int64_t n = AvailableUnits(m, t, duration, unit, skip_owner);
        if (n <= 0) continue;
        n = std::min(n, need - total);
        bookings.push_back(Reservation::Booking{m, n});
        total += n;
        if (total >= need) break;
      }
    }
    if (total >= need) return PlanSpot{t, std::move(bookings)};
  }
  return std::nullopt;
}

// --- reservations -------------------------------------------------------

uint64_t ClusterPlannerImpl::Book(
    double start, double end, uint64_t gang_id, bool backfill_head,
    double requested_at,
    const std::map<PlanKey, std::vector<Reservation::Booking>>& bookings) {
  Reservation res;
  res.id = next_res_id_++;
  res.start = start;
  res.end = end;
  res.requested_at = requested_at;
  res.gang_id = gang_id;
  res.backfill_head = backfill_head;
  res.bookings = bookings;
  for (const auto& [key, member_bookings] : bookings) {
    DemandInfo info = hooks_.demand(key);
    for (const Reservation::Booking& b : member_bookings) {
      uint64_t claim =
          AddClaim(b.machine, start, end, info.unit * b.count, res.id);
      res.claims.emplace_back(b.machine, claim);
    }
    res_of_key_[key] = res.id;
  }
  if (gang_id != 0) gangs_[gang_id].reservation = res.id;
  reservations_.emplace(res.id, std::move(res));
  return res.id;
}

void ClusterPlannerImpl::ReleaseReservation(uint64_t id) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return;
  Reservation res = std::move(it->second);
  reservations_.erase(it);
  for (const auto& [machine, claim] : res.claims) DropClaim(machine, claim);
  for (const auto& [key, bookings] : res.bookings) {
    auto k = res_of_key_.find(key);
    if (k != res_of_key_.end() && k->second == id) res_of_key_.erase(k);
  }
  if (res.gang_id != 0) {
    auto g = gangs_.find(res.gang_id);
    if (g != gangs_.end() && g->second.reservation == id) {
      g->second.reservation = 0;
    }
  }
}

// --- the planning pass --------------------------------------------------

void ClusterPlannerImpl::Tick(double now) {
  now_ = std::max(now_, now);
  // 1. Expire the past: reservation claims whose whole window passed
  //    unconverted belong to stale reservations. Grant-backed claims
  //    (owner == 0) are NOT dropped at estimate expiry — an overrunning
  //    grant still holds its capacity, and only OnGrantReleased knows
  //    when it actually ends. An expired running claim constrains no
  //    future fit (its window is past) but keeps counting in
  //    RunningLoadAt, preserving the budget identity free + running.
  std::vector<uint64_t> stale_reservations;
  for (size_t m = 0; m < timelines_.size(); ++m) {
    std::vector<uint64_t> ended;
    for (const auto& [id, claim] : timelines_[m].claims()) {
      if (claim.owner != 0 && claim.end <= now_) {
        ended.push_back(id);
        stale_reservations.push_back(claim.owner);
      }
    }
    for (uint64_t id : ended) DropClaim(static_cast<int64_t>(m), id);
  }
  std::sort(stale_reservations.begin(), stale_reservations.end());
  stale_reservations.erase(
      std::unique(stale_reservations.begin(), stale_reservations.end()),
      stale_reservations.end());
  for (uint64_t id : stale_reservations) ReleaseReservation(id);

  // 2. Convert reservations whose start arrived into real grants.
  ConvertDue(now_);
  // 3. Repair any book a fault broke since the last tick.
  Reconcile(now_);
  // 4. Plan new work onto the repaired book.
  PlanReservations(now_);
  PlanGangs(now_);
  MaintainBackfillHead(now_);
  UpdatePointsGauge();
}

void ClusterPlannerImpl::ConvertDue(double now) {
  std::vector<uint64_t> due;
  for (const auto& [id, res] : reservations_) {
    if (res.start <= now) due.push_back(id);
  }
  for (uint64_t id : due) {
    auto it = reservations_.find(id);
    if (it == reservations_.end()) continue;  // released by an earlier convert
    // Copy: commit hooks re-enter the scheduler, which may call back in.
    Reservation res = it->second;

    // Drop members whose demand vanished mid-wait.
    bool any_member = false;
    for (const auto& [key, bookings] : res.bookings) {
      if (hooks_.demand(key).exists) any_member = true;
    }
    if (!any_member) {
      ReleaseReservation(id);
      continue;
    }

    if (res.backfill_head) {
      // The head reservation only exists to fence backfill until this
      // moment; from here the instantaneous pass places the demand
      // itself. Release the fence.
      ReleaseReservation(id);
      continue;
    }

    if (res.gang_id != 0) {
      // All-or-nothing: verify every booking fits the live pools before
      // committing any of them.
      std::map<int64_t, cluster::ResourceVector> scratch;
      bool fits = true;
      for (const auto& [key, bookings] : res.bookings) {
        DemandInfo info = hooks_.demand(key);
        if (!info.exists || info.remaining <= 0) {
          fits = false;
          break;
        }
        for (const Reservation::Booking& b : bookings) {
          MachineView view = hooks_.machine(b.machine);
          cluster::ResourceVector want =
              scratch[b.machine] + info.unit * b.count;
          if (!view.online || !want.FitsIn(view.free)) {
            fits = false;
            break;
          }
          scratch[b.machine] = want;
        }
        if (!fits) break;
      }
      if (!fits) {
        ++gang_aborts_n_;
        if (gang_abort_counter_ != nullptr) gang_abort_counter_->Add();
        Audit(obs::DecisionKind::kReserve, res.bookings.begin()->first,
              obs::RejectReason::kGangPartialFit, 0, -1,
              "gang=" + std::to_string(res.gang_id) +
                  " abort: member booking no longer fits");
        ReleaseReservation(id);
        continue;  // PlanGangs re-plans it this same tick
      }
      // Release the book first so the committed grants' own running
      // claims do not stack on top of the reservation claims.
      uint64_t gang_id = res.gang_id;
      ReleaseReservation(id);
      for (const auto& [key, bookings] : res.bookings) {
        int64_t granted = 0;
        for (const Reservation::Booking& b : bookings) {
          granted += hooks_.commit(key, b.machine, b.count);
        }
        Audit(obs::DecisionKind::kReserve, key, obs::RejectReason::kNone,
              granted, -1,
              "gang=" + std::to_string(gang_id) + " started atomically",
              bookings);
      }
      auto g = gangs_.find(gang_id);
      if (g != gangs_.end()) g->second.started = true;
      if (reservation_wait_hist_ != nullptr) {
        reservation_wait_hist_->Add(now - res.requested_at);
      }
      continue;
    }

    // Single advance reservation.
    const PlanKey key = res.bookings.begin()->first;
    DemandInfo info = hooks_.demand(key);
    if (info.deadline > 0 && now + info.estimate > info.deadline) {
      ReleaseReservation(id);
      ExpireDemand(key, "deadline unreachable at conversion");
      continue;
    }
    std::vector<Reservation::Booking> bookings = res.bookings.begin()->second;
    ReleaseReservation(id);
    int64_t granted = 0;
    for (const Reservation::Booking& b : bookings) {
      granted += hooks_.commit(key, b.machine, b.count);
    }
    converted_.insert(key);  // places normally from here on
    if (reservation_wait_hist_ != nullptr) {
      reservation_wait_hist_->Add(now - res.requested_at);
    }
    Audit(obs::DecisionKind::kReserve, key, obs::RejectReason::kNone, granted,
          bookings.empty() ? -1 : bookings.front().machine,
          "reservation converted (" + std::to_string(granted) + " units)",
          bookings);
  }
}

void ClusterPlannerImpl::PlanReservations(double now) {
  for (const auto& [key, info] : hooks_.all_demands()) {
    if (!info.reservation || info.gang_id != 0) continue;
    if (info.remaining <= 0) continue;
    if (converted_.count(key) > 0) continue;
    if (res_of_key_.count(key) > 0) continue;
    reservation_keys_.insert(key);
    if (info.estimate <= 0) {
      // The scheduler validates this on ingest; defend anyway.
      ExpireDemand(key, "reservation without lifetime estimate");
      continue;
    }
    double from = std::max(now, info.reserve_start);
    auto spot = FindEarliest(from, info.estimate, info.unit, info.remaining,
                             /*skip_owner=*/0);
    bool feasible =
        spot.has_value() &&
        (info.deadline <= 0 || spot->start + info.estimate <= info.deadline);
    if (!feasible) {
      ExpireDemand(key, spot.has_value()
                            ? "earliest start misses deadline"
                            : "no future window fits the demand");
      continue;
    }
    std::map<PlanKey, std::vector<Reservation::Booking>> bookings;
    bookings[key] = std::move(spot->bookings);
    uint64_t id = Book(spot->start, spot->start + info.estimate, 0, false,
                       now, bookings);
    Audit(obs::DecisionKind::kReserve, key, obs::RejectReason::kNone,
          info.remaining, -1,
          "reserve=" + std::to_string(id) +
              " start=" + std::to_string(spot->start) +
              " end=" + std::to_string(spot->start + info.estimate),
          bookings[key], /*provisional=*/true);
  }
}

bool ClusterPlannerImpl::TryPlaceGangAt(
    double t, double d, const std::vector<std::pair<PlanKey, DemandInfo>>& members,
    std::map<PlanKey, std::vector<Reservation::Booking>>* out) const {
  std::map<int64_t, cluster::ResourceVector> taken;
  out->clear();
  for (const auto& [key, info] : members) {
    int64_t need = info.remaining;
    std::vector<Reservation::Booking> bookings;
    double end = t + d;
    for (int64_t m = 0;
         m < static_cast<int64_t>(timelines_.size()) && need > 0; ++m) {
      MachineView view = hooks_.machine(m);
      if (!view.online) continue;
      const Timeline& tl = timelines_[static_cast<size_t>(m)];
      cluster::ResourceVector avail =
          tl.MinAvailable(t, end, view.free + tl.RunningLoadAt(now_), 0)
              .ClampNonNegative();
      auto taken_it = taken.find(m);
      if (taken_it != taken.end()) {
        avail = (avail - taken_it->second).ClampNonNegative();
      }
      int64_t n = std::min(need, avail.DivideBy(info.unit));
      if (n <= 0) continue;
      bookings.push_back(Reservation::Booking{m, n});
      taken[m] += info.unit * n;
      need -= n;
    }
    if (need > 0) return false;  // all-or-nothing: leave *out empty-handed
    (*out)[key] = std::move(bookings);
  }
  return true;
}

void ClusterPlannerImpl::PlanGangs(double now) {
  for (auto& [gang_id, gang] : gangs_) {
    if (gang.started || gang.reservation != 0) continue;
    if (gang.members.size() < gang.declared_size) continue;  // still forming
    std::vector<std::pair<PlanKey, DemandInfo>> members;
    double max_estimate = 0;
    bool ready = true;
    for (const PlanKey& key : gang.members) {
      DemandInfo info = hooks_.demand(key);
      if (!info.exists || info.remaining <= 0) {
        ready = false;
        break;
      }
      max_estimate = std::max(max_estimate, info.estimate);
      members.emplace_back(key, info);
    }
    if (!ready || members.empty()) continue;
    // A member with no estimate holds its slice forever; the gang
    // window must assume the same.
    double duration = max_estimate > 0 ? max_estimate : kForever;

    std::map<PlanKey, std::vector<Reservation::Booking>> bookings;
    if (TryPlaceGangAt(now, duration == kForever ? kForever - now : duration,
                       members, &bookings)) {
      // Fits right now: commit everything, no reservation needed.
      for (const auto& [key, member_bookings] : bookings) {
        int64_t granted = 0;
        for (const Reservation::Booking& b : member_bookings) {
          granted += hooks_.commit(key, b.machine, b.count);
        }
        Audit(obs::DecisionKind::kReserve, key, obs::RejectReason::kNone,
              granted, -1,
              "gang=" + std::to_string(gang_id) + " placed immediately",
              member_bookings);
      }
      gang.started = true;
      if (reservation_wait_hist_ != nullptr) {
        reservation_wait_hist_->Add(0);
      }
      continue;
    }
    // Find the earliest future point the whole gang fits at once.
    bool booked = false;
    for (double t : CandidateStarts(now)) {
      if (t <= now) continue;
      if (!TryPlaceGangAt(t, duration == kForever ? kForever - t : duration,
                          members, &bookings)) {
        continue;
      }
      double end = duration == kForever ? kForever : t + duration;
      uint64_t id = Book(t, end, gang_id, false, now, bookings);
      for (const auto& [member_key, member_bookings] : bookings) {
        Audit(obs::DecisionKind::kReserve, member_key,
              obs::RejectReason::kNone, 0, -1,
              "reserve=" + std::to_string(id) + " gang=" +
                  std::to_string(gang_id) + " start=" + std::to_string(t) +
                  " end=" + std::to_string(end),
              member_bookings, /*provisional=*/true);
      }
      booked = true;
      break;
    }
    if (!booked) {
      Audit(obs::DecisionKind::kReserve, members.front().first,
            obs::RejectReason::kGangPartialFit, 0, -1,
            "gang=" + std::to_string(gang_id) +
                " does not fit at any scheduled point; holding");
    }
  }
}

void ClusterPlannerImpl::MaintainBackfillHead(double now) {
  // The EASY head: the highest-priority, oldest demand that is still
  // waiting, carries a lifetime estimate, and is not itself a
  // reservation or gang member. One head reservation cluster-wide.
  std::optional<PlanKey> head;
  DemandInfo head_info;
  for (const auto& [key, info] : hooks_.all_demands()) {
    if (info.remaining <= 0 || info.estimate <= 0) continue;
    if (info.reservation || info.gang_id != 0) continue;
    if (!head.has_value() || info.priority > head_info.priority ||
        (info.priority == head_info.priority && info.seq < head_info.seq)) {
      head = key;
      head_info = info;
    }
  }
  // Current head reservation, if any.
  uint64_t current = 0;
  for (const auto& [id, res] : reservations_) {
    if (res.backfill_head) {
      current = id;
      break;
    }
  }
  if (current != 0) {
    const Reservation& res = reservations_.at(current);
    const PlanKey& key = res.bookings.begin()->first;
    DemandInfo info = hooks_.demand(key);
    int64_t reserved = 0;
    for (const auto& b : res.bookings.begin()->second) reserved += b.count;
    bool stale = !head.has_value() || !(key == *head) || !info.exists ||
                 info.remaining != reserved;
    if (stale) {
      ReleaseReservation(current);
      current = 0;
    }
  }
  if (head.has_value() && current == 0) {
    auto spot = FindEarliest(now, head_info.estimate, head_info.unit,
                             head_info.remaining, /*skip_owner=*/0);
    // start == now means it fits immediately — the instantaneous pass
    // will grant it; no fence needed.
    if (spot.has_value() && spot->start > now) {
      std::map<PlanKey, std::vector<Reservation::Booking>> bookings;
      bookings[*head] = std::move(spot->bookings);
      uint64_t id = Book(spot->start, spot->start + head_info.estimate, 0,
                         /*backfill_head=*/true, now, bookings);
      Audit(obs::DecisionKind::kReserve, *head, obs::RejectReason::kNone,
            head_info.remaining, -1,
            "reserve=" + std::to_string(id) + " backfill-head start=" +
                std::to_string(spot->start) +
                " end=" + std::to_string(spot->start + head_info.estimate),
            bookings[*head], /*provisional=*/true);
    }
  }
}

void ClusterPlannerImpl::Reconcile(double now) {
  for (size_t m = 0; m < timelines_.size(); ++m) {
    Timeline& tl = timelines_[m];
    if (tl.claim_count() == 0) continue;
    MachineView view = hooks_.machine(static_cast<int64_t>(m));
    if (!view.online) {
      OnMachineOffline(static_cast<int64_t>(m));
      continue;
    }
    cluster::ResourceVector budget = view.free + tl.RunningLoadAt(now);
    while (!tl.CheckNoOvercommit(budget, now)) {
      // Shed newest promises first: the latest reservation claim loses.
      uint64_t victim_owner = 0;
      uint64_t victim_id = 0;
      for (const auto& [id, claim] : tl.claims()) {
        if (claim.owner != 0 && id > victim_id) {
          victim_id = id;
          victim_owner = claim.owner;
        }
      }
      if (victim_owner == 0) break;  // only running claims: fits by def.
      ReleaseReservation(victim_owner);
      budget = view.free + tl.RunningLoadAt(now);
    }
  }
}

void ClusterPlannerImpl::ExpireDemand(const PlanKey& key,
                                      const std::string& why) {
  Audit(obs::DecisionKind::kReserve, key,
        obs::RejectReason::kReservationExpired, 0, -1, why);
  reservation_keys_.erase(key);
  converted_.erase(key);
  hooks_.expire(key);
}

// --- invariants ---------------------------------------------------------

bool ClusterPlannerImpl::CheckNoOvercommit() const {
  for (size_t m = 0; m < timelines_.size(); ++m) {
    const Timeline& tl = timelines_[m];
    MachineView view = hooks_.machine(static_cast<int64_t>(m));
    if (!view.online) {
      if (tl.claim_count() != 0) return false;
      continue;
    }
    cluster::ResourceVector budget = view.free + tl.RunningLoadAt(now_);
    if (!tl.CheckNoOvercommit(budget, now_)) return false;
  }
  for (size_t r = 0; r < rack_timelines_.size(); ++r) {
    cluster::ResourceVector budget;
    for (int64_t m : rack_members_[r]) budget += BudgetOf(m);
    if (!rack_timelines_[r].CheckNoOvercommit(budget, now_)) return false;
  }
  return true;
}

bool ClusterPlannerImpl::CheckGangAtomicity(
    const std::function<int64_t(const PlanKey&)>& granted_units) const {
  for (const auto& [gang_id, gang] : gangs_) {
    if (gang.started) continue;
    for (const PlanKey& key : gang.members) {
      if (granted_units(key) != 0) return false;
    }
  }
  return true;
}

// --- introspection ------------------------------------------------------

size_t ClusterPlannerImpl::scheduled_points() const {
  size_t total = 0;
  for (const Timeline& tl : timelines_) total += tl.point_count();
  for (const Timeline& tl : rack_timelines_) total += tl.point_count();
  return total;
}

bool ClusterPlannerImpl::GangStarted(uint64_t gang_id) const {
  auto it = gangs_.find(gang_id);
  return it != gangs_.end() && it->second.started;
}

void ClusterPlannerImpl::UpdatePointsGauge() {
  if (points_gauge_ != nullptr) {
    points_gauge_->Set(static_cast<double>(scheduled_points()));
  }
  if (head_fence_wait_gauge_ != nullptr) {
    // How long the current EASY head has been fenced off waiting for
    // its reservation to start — the telemetry series the watchdog's
    // backfill-head-blocking rule watches. 0 when no head is booked.
    double wait = 0;
    for (const auto& [id, res] : reservations_) {
      if (res.backfill_head) {
        wait = now_ - res.requested_at;
        break;
      }
    }
    head_fence_wait_gauge_->Set(wait);
  }
}

void ClusterPlannerImpl::Audit(
    obs::DecisionKind kind, const PlanKey& key, obs::RejectReason reason,
    int64_t units, int64_t machine, std::string note,
    const std::vector<Reservation::Booking>& bookings, bool provisional) {
  if (audit_ == nullptr || !obs::AuditLog::enabled()) return;
  obs::DecisionRecord record;
  record.kind = kind;
  record.app = key.app;
  record.slot = key.slot;
  record.machine = machine;
  record.reason = reason;
  record.units = units;
  record.note = "planner " + KeyStr(key) + ": " + std::move(note);
  for (const Reservation::Booking& b : bookings) {
    obs::CandidateOutcome c;
    c.app = key.app;
    c.slot = key.slot;
    c.machine = b.machine;
    // A future booking is not a grant: carry the count in `remaining`
    // so grant-flow extraction (granted > 0) ignores it.
    if (provisional) {
      c.remaining = b.count;
    } else {
      c.granted = b.count;
    }
    record.AddCandidate(c);
  }
  audit_->Commit(std::move(record));
}

}  // namespace fuxi::planner
