#ifndef FUXI_PLANNER_PLANNER_H_
#define FUXI_PLANNER_PLANNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/resource_vector.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "planner/timeline.h"

// Compile-time planner switch, mirroring FUXI_OBS_AUDIT: the build
// defines FUXI_PLANNER=0/1 (CMake option FUXI_PLANNER, default ON);
// when OFF, ClusterPlanner aliases NoopClusterPlanner, the scheduler
// never constructs one (guarded by the constexpr-false enabled()), and
// every planning call site folds away. Planning request fields still
// travel on the wire either way — the format does not fork on a build
// option — they are simply ignored, like locality hints under the
// flat-queue ablation.
#ifndef FUXI_PLANNER
#define FUXI_PLANNER 1
#endif

namespace fuxi::planner {

inline constexpr bool kPlannerEnabled = FUXI_PLANNER != 0;

/// (app, slot) pair — the planner's own key type so src/planner does
/// not depend on resource/ headers (the scheduler embeds the planner,
/// which would otherwise be a header cycle).
struct PlanKey {
  int64_t app = -1;
  uint32_t slot = 0;

  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.app == b.app && a.slot == b.slot;
  }
  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    if (a.app != b.app) return a.app < b.app;
    return a.slot < b.slot;
  }
};

/// Snapshot of one demand, pulled from the host scheduler on use.
struct DemandInfo {
  bool exists = false;
  cluster::ResourceVector unit;
  int64_t remaining = 0;
  int32_t priority = 0;
  uint64_t seq = 0;  ///< FIFO tiebreak (smaller = older)
  double estimate = 0;       ///< expected grant lifetime, 0 = unknown
  double reserve_start = 0;  ///< advance reservations: earliest start
  double deadline = 0;       ///< advance reservations: must finish by
  uint64_t gang_id = 0;      ///< nonzero: all-or-nothing member
  uint32_t gang_size = 0;    ///< declared member count of the gang
  bool reservation = false;  ///< wants an advance reservation
};

struct MachineView {
  bool online = false;
  cluster::ResourceVector free;
};

/// The planner never touches scheduler structures directly: the host
/// wires these closures in, and every grant the planner decides goes
/// back through `commit` — the scheduler stays the single writer of
/// grant state.
struct HostHooks {
  /// Live view of one machine (online flag + free pool).
  std::function<MachineView(int64_t)> machine;
  /// Commit up to `count` units of `key` on `machine` through the
  /// normal CommitGrant path; returns units actually granted.
  std::function<int64_t(const PlanKey&, int64_t, int64_t)> commit;
  /// Cancel every remaining unit of `key` (deadline expiry).
  std::function<void(const PlanKey&)> expire;
  /// Demand snapshot; exists == false when the demand is gone.
  std::function<DemandInfo(const PlanKey&)> demand;
  /// Every demand carrying planning metadata, in key order.
  std::function<std::vector<std::pair<PlanKey, DemandInfo>>()> all_demands;
};

/// One booked reservation: a future start promised to one demand (EASY
/// head / advance reservation) or to every member of a gang.
struct Reservation {
  uint64_t id = 0;
  double start = 0;
  double end = 0;
  double requested_at = 0;
  uint64_t gang_id = 0;     ///< 0 for single-demand reservations
  bool backfill_head = false;  ///< the EASY head-of-queue reservation
  /// Booked units per member demand per machine, in key order.
  struct Booking {
    int64_t machine = -1;
    int64_t count = 0;
  };
  std::map<PlanKey, std::vector<Booking>> bookings;
  /// Claim ids placed for this reservation: (machine, claim id).
  std::vector<std::pair<int64_t, uint64_t>> claims;
};

/// Time-aware placement over the scheduled-point timelines (DESIGN.md
/// §12): per-machine and per-rack-aggregate future-capacity books, and
/// on top of them EASY backfill, advance reservations with deadlines,
/// and all-or-nothing gang transactions. Deterministic by construction:
/// every container is ordered, ids come from a monotonic counter, and
/// all times are virtual.
class ClusterPlannerImpl {
 public:
  ClusterPlannerImpl(std::vector<cluster::ResourceVector> capacities,
                     std::vector<int64_t> rack_of, int64_t rack_count,
                     HostHooks hooks);

  static constexpr bool enabled() { return true; }

  void set_metrics(obs::MetricsRegistry* metrics);
  void set_audit(obs::AuditLog* audit) { audit_ = audit; }

  // --- demand lifecycle (driven by the scheduler) ---------------------

  /// Registers/updates a demand's planning metadata (gang membership,
  /// reservation intent). Idempotent. `already_granted` covers the
  /// failover path: when the scheduler restored grants for this key
  /// before the plan arrived (the AM resends its full state AFTER the
  /// Figure 7 grant restore), the gang demonstrably launched under the
  /// previous primary and its reservation already converted — neither
  /// may be re-held.
  void NoteDemand(const PlanKey& key, const DemandInfo& info,
                  bool already_granted = false);

  /// Demand disappeared (app teardown): its reservations and gang
  /// membership dissolve.
  void OnDemandGone(const PlanKey& key);

  /// Failover restore (Figure 7): an agent re-reported a grant for this
  /// key after the plan was already registered. The grant is proof the
  /// gang started / the reservation converted under the previous
  /// primary — same resolution as NoteDemand's `already_granted`, for
  /// the opposite arrival order.
  void OnGrantRestored(const PlanKey& key);

  /// True while the demand must NOT be placed by the instantaneous
  /// pass: unstarted gang members (atomicity) and unconverted
  /// advance-reservation demands (they start at their reserved time).
  bool Holds(const PlanKey& key) const;

  // --- grant mirror ---------------------------------------------------

  /// A grant with a lifetime estimate started: book its expected
  /// release as a running claim [now, now + estimate).
  void OnGrantCommitted(const PlanKey& key, int64_t machine, int64_t count,
                        const cluster::ResourceVector& unit, double estimate);

  /// Units of an estimated grant ended (release or revoke): drop their
  /// running claims, earliest-ending first.
  void OnGrantReleased(const PlanKey& key, int64_t machine, int64_t count);

  // --- machine lifecycle ----------------------------------------------

  void OnMachineOffline(int64_t machine);
  void SetMachineCapacity(int64_t machine,
                          const cluster::ResourceVector& capacity);

  // --- the backfill guard (called from Scheduler::FitCount) -----------

  /// True when `machine` carries reservation claims — the only case the
  /// backfill clamp can bind, so FitCount skips the math otherwise.
  bool HasReservationWindow(int64_t machine) const {
    return reserved_on_.count(machine) > 0;
  }

  /// EASY backfill rule: at most `want` units of `unit` may start now
  /// without delaying any reservation on `machine`. A demand with an
  /// estimate occupies [now, now + estimate); one without holds
  /// forever. Demand `key`'s own reservation never blocks it.
  int64_t ClampForBackfill(int64_t machine,
                           const cluster::ResourceVector& free,
                           const cluster::ResourceVector& unit,
                           double estimate, int64_t want,
                           const PlanKey& key);

  // --- the planning pass ----------------------------------------------

  /// One planning pass at virtual time `now`: prunes expired claims,
  /// converts due reservations into grants (via hooks.commit), expires
  /// deadline-missed reservations (via hooks.expire), re-plans
  /// reservations broken by machine loss, plans advance reservations
  /// and gang transactions for new demands, and maintains the single
  /// EASY head-of-queue reservation.
  void Tick(double now);

  // --- invariants (chaos monitor) -------------------------------------

  /// No timeline overcommit: on every online machine, at every
  /// scheduled point, booked load fits free-now + expected releases;
  /// offline machines hold no claims.
  bool CheckNoOvercommit() const;

  /// Gang atomicity: a gang that has not started holds zero grants on
  /// any member (granted_units resolves live grant counts).
  bool CheckGangAtomicity(
      const std::function<int64_t(const PlanKey&)>& granted_units) const;

  // --- introspection ----------------------------------------------------

  const std::map<uint64_t, Reservation>& reservations() const {
    return reservations_;
  }
  const Timeline& machine_timeline(int64_t machine) const {
    return timelines_[static_cast<size_t>(machine)];
  }
  const Timeline& rack_timeline(int64_t rack) const {
    return rack_timelines_[static_cast<size_t>(rack)];
  }
  size_t scheduled_points() const;
  bool GangStarted(uint64_t gang_id) const;
  uint64_t backfill_hits() const { return backfill_hits_n_; }
  uint64_t backfill_misses() const { return backfill_misses_n_; }
  uint64_t gang_aborts() const { return gang_aborts_n_; }
  double now() const { return now_; }

 private:
  struct Gang {
    uint32_t declared_size = 0;
    std::set<PlanKey> members;
    bool started = false;
    uint64_t reservation = 0;  ///< 0 = none booked yet
  };

  struct RunningClaim {
    uint64_t id = 0;
    int64_t count = 0;
    double start = 0;  ///< grant time; partial releases re-book with it
    double end = 0;
    cluster::ResourceVector unit;
  };

  /// Places a claim on a machine timeline and mirrors it into the
  /// machine's rack aggregate under the same id.
  uint64_t AddClaim(int64_t machine, double start, double end,
                    const cluster::ResourceVector& amount, uint64_t owner);
  void DropClaim(int64_t machine, uint64_t id);

  /// budget = free_now + running load: the pool future windows draw on.
  cluster::ResourceVector BudgetOf(int64_t machine) const;

  /// Units of `unit` available on `machine` over [t, t + duration).
  int64_t AvailableUnits(int64_t machine, double t, double duration,
                         const cluster::ResourceVector& unit,
                         uint64_t skip_owner) const;

  /// Earliest common start for `need` units of `unit` across the
  /// cluster; nullopt when no future point admits it. Uses the rack
  /// aggregates as a pre-filter: racks whose aggregate book shows no
  /// window at t are skipped wholesale.
  struct PlanSpot {
    double start = 0;
    std::vector<Reservation::Booking> bookings;
  };
  std::optional<PlanSpot> FindEarliest(double from, double duration,
                                       const cluster::ResourceVector& unit,
                                       int64_t need, uint64_t skip_owner);

  /// Candidate start times across all machine timelines (capped).
  std::vector<double> CandidateStarts(double from) const;

  void ReleaseReservation(uint64_t id);
  /// Books one reservation: claims on every booked machine (+ rack
  /// mirrors), indexes in res_of_key_ / gangs_. Member units are pulled
  /// from hooks_.demand at booking time.
  uint64_t Book(double start, double end, uint64_t gang_id,
                bool backfill_head, double requested_at,
                const std::map<PlanKey, std::vector<Reservation::Booking>>&
                    bookings);
  /// All-or-nothing allocation of every gang member over [t, t + d):
  /// fills `out` and returns true only when every member fully fits.
  bool TryPlaceGangAt(
      double t, double d,
      const std::vector<std::pair<PlanKey, DemandInfo>>& members,
      std::map<PlanKey, std::vector<Reservation::Booking>>* out) const;
  void ConvertDue(double now);
  void PlanReservations(double now);
  void PlanGangs(double now);
  void MaintainBackfillHead(double now);
  /// Drops newest-first reservation claims from any machine whose book
  /// no longer fits its budget (machine loss, capacity shrink, grant
  /// races); broken reservations are released and re-planned on the
  /// next section of the tick.
  void Reconcile(double now);
  bool TryStartGangNow(uint64_t gang_id, Gang& gang, double now);
  void ExpireDemand(const PlanKey& key, const std::string& why);
  void UpdatePointsGauge();
  /// Commits a kReserve decision record; `bookings` become candidates.
  /// Committed bookings (provisional=false) carry `granted` so
  /// fuxi_explain's grant-flow extraction sees planner-committed grants
  /// like any placement; provisional bookings (a reservation in the
  /// future) carry `remaining` instead, so they name their machines for
  /// the --timeline view without counting as grants.
  void Audit(obs::DecisionKind kind, const PlanKey& key,
             obs::RejectReason reason, int64_t units, int64_t machine,
             std::string note,
             const std::vector<Reservation::Booking>& bookings = {},
             bool provisional = false);

  std::vector<Timeline> timelines_;       ///< per machine
  std::vector<Timeline> rack_timelines_;  ///< per rack aggregate
  std::vector<int64_t> rack_of_;
  std::vector<std::vector<int64_t>> rack_members_;
  HostHooks hooks_;

  uint64_t next_claim_id_ = 1;
  uint64_t next_res_id_ = 1;
  double now_ = 0;

  std::map<uint64_t, Reservation> reservations_;
  std::map<PlanKey, uint64_t> res_of_key_;  ///< live reservation per demand
  std::map<uint64_t, Gang> gangs_;
  std::map<PlanKey, uint64_t> gang_of_key_;
  /// Advance-reservation demands whose reserved start has been reached
  /// (grants committed); they place normally from then on.
  std::set<PlanKey> converted_;
  /// Demands that asked for an advance reservation (Holds() until
  /// converted — they must not start before their reserved time).
  std::set<PlanKey> reservation_keys_;
  /// Reservation-claim count per machine (backfill-guard fast path).
  std::map<int64_t, size_t> reserved_on_;
  /// Running claims per (demand, machine), for release accounting.
  std::map<std::pair<PlanKey, int64_t>, std::vector<RunningClaim>> running_;
  /// Reservations broken by Reconcile, re-planned next tick section.
  std::set<PlanKey> needs_replan_;

  uint64_t backfill_hits_n_ = 0;
  uint64_t backfill_misses_n_ = 0;
  uint64_t gang_aborts_n_ = 0;

  obs::Gauge* points_gauge_ = nullptr;
  obs::Gauge* head_fence_wait_gauge_ = nullptr;
  obs::Counter* backfill_hit_counter_ = nullptr;
  obs::Counter* backfill_miss_counter_ = nullptr;
  obs::Counter* gang_abort_counter_ = nullptr;
  Histogram* reservation_wait_hist_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
};

/// Compiled-out stand-in: identical surface, every member an empty
/// inline returning the neutral value, and enabled() a constexpr false
/// so the scheduler never constructs one and every guarded call site
/// folds away.
class NoopClusterPlanner {
 public:
  NoopClusterPlanner(std::vector<cluster::ResourceVector>,
                     std::vector<int64_t>, int64_t, HostHooks) {}

  static constexpr bool enabled() { return false; }
  void set_metrics(obs::MetricsRegistry*) {}
  void set_audit(obs::AuditLog*) {}
  void NoteDemand(const PlanKey&, const DemandInfo&, bool = false) {}
  void OnDemandGone(const PlanKey&) {}
  void OnGrantRestored(const PlanKey&) {}
  bool Holds(const PlanKey&) const { return false; }
  void OnGrantCommitted(const PlanKey&, int64_t, int64_t,
                        const cluster::ResourceVector&, double) {}
  void OnGrantReleased(const PlanKey&, int64_t, int64_t) {}
  void OnMachineOffline(int64_t) {}
  void SetMachineCapacity(int64_t, const cluster::ResourceVector&) {}
  bool HasReservationWindow(int64_t) const { return false; }
  int64_t ClampForBackfill(int64_t, const cluster::ResourceVector&,
                           const cluster::ResourceVector&, double,
                           int64_t want, const PlanKey&) {
    return want;
  }
  void Tick(double) {}
  bool CheckNoOvercommit() const { return true; }
  bool CheckGangAtomicity(
      const std::function<int64_t(const PlanKey&)>&) const {
    return true;
  }
  const std::map<uint64_t, Reservation>& reservations() const {
    static const std::map<uint64_t, Reservation> kEmpty;
    return kEmpty;
  }
  size_t scheduled_points() const { return 0; }
  bool GangStarted(uint64_t) const { return false; }
  uint64_t backfill_hits() const { return 0; }
  uint64_t backfill_misses() const { return 0; }
  uint64_t gang_aborts() const { return 0; }
  double now() const { return 0; }
};

#if FUXI_PLANNER
using ClusterPlanner = ClusterPlannerImpl;
#else
using ClusterPlanner = NoopClusterPlanner;
#endif

}  // namespace fuxi::planner

#endif  // FUXI_PLANNER_PLANNER_H_
