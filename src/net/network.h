#ifndef FUXI_NET_NETWORK_H_
#define FUXI_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics_registry.h"

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "wire/wire.h"

namespace fuxi::net {

/// A delivered message with its routing metadata.
struct Envelope {
  NodeId from;
  NodeId to;
  uint64_t wire_seq = 0;   ///< global send order, for debugging
  double sent_at = 0;      ///< virtual send time
  size_t wire_bytes = 0;   ///< exact encoded frame size (measured at Send)
  uint64_t span = 0;       ///< causal trace span of this copy (0 = untraced)
  std::any payload;
};

/// A network attachment point for one simulated process. Handlers are
/// registered per payload type; unhandled payload types are counted
/// (in aggregate and per type), logged once per type, and dropped
/// (like an unknown RPC method).
class Endpoint {
 public:
  /// Registers a handler for messages whose payload holds a T. Checks
  /// that no handler is already registered for T: silently shadowing a
  /// live handler is a wiring bug. A component that deliberately takes
  /// over a payload type on a reused endpoint (e.g. a restarted
  /// application master's fresh ResourceClient) uses ReplaceHandle.
  template <typename T>
  void Handle(std::function<void(const Envelope&, const T&)> fn) {
    bool inserted =
        handlers_.emplace(std::type_index(typeid(T)), Wrap(std::move(fn)))
            .second;
    FUXI_CHECK(inserted)
        << "duplicate handler registration for payload type "
        << Demangle(typeid(T).name())
        << " (use ReplaceHandle for deliberate takeover)";
  }

  /// Registers or replaces the handler for T (deliberate takeover).
  template <typename T>
  void ReplaceHandle(std::function<void(const Envelope&, const T&)> fn) {
    handlers_[std::type_index(typeid(T))] = Wrap(std::move(fn));
  }

  /// Dispatches one envelope. Returns false when no handler matched.
  bool Dispatch(const Envelope& env) {
    auto it = handlers_.find(std::type_index(env.payload.type()));
    if (it == handlers_.end()) {
      ++unhandled_;
      uint64_t& per_type =
          unhandled_by_type_[std::type_index(env.payload.type())];
      if (++per_type == 1) {
        FUXI_LOG(kWarning)
            << "endpoint at node " << env.to.value()
            << " has no handler for payload type "
            << Demangle(env.payload.type().name())
            << " (further drops of this type counted silently)";
      }
      return false;
    }
    it->second(env);
    return true;
  }

  uint64_t unhandled() const { return unhandled_; }

  /// Per-payload-type unhandled counts, keyed by demangled type name.
  std::map<std::string, uint64_t> UnhandledByType() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [type, count] : unhandled_by_type_) {
      out[Demangle(type.name())] += count;
    }
    return out;
  }

 private:
  template <typename T>
  static std::function<void(const Envelope&)> Wrap(
      std::function<void(const Envelope&, const T&)> fn) {
    return [fn = std::move(fn)](const Envelope& env) {
      fn(env, std::any_cast<const T&>(env.payload));
    };
  }

  std::unordered_map<std::type_index, std::function<void(const Envelope&)>>
      handlers_;
  uint64_t unhandled_ = 0;
  std::unordered_map<std::type_index, uint64_t> unhandled_by_type_;
};

/// Aggregate transport counters, used by the incremental-communication
/// ablation benchmark to compare message/byte volumes. `bytes_sent` is
/// the sum of exact encoded frame sizes (sizeof(T) for the rare payload
/// without a wire codec — test-only types).
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;
  /// Messages whose encoded bytes failed to decode under serialize-on-
  /// send (only possible with byte-level fault injection). Also counted
  /// in messages_dropped.
  uint64_t decode_drops = 0;
};

/// Cancellation token for a Flap() schedule. Cancelling stops future
/// flap transitions and heals the node if the flap left it partitioned.
class FlapHandle {
 public:
  FlapHandle() = default;

  void Cancel() {
    if (auto p = active_.lock()) *p = false;
  }
  bool active() const {
    auto p = active_.lock();
    return p && *p;
  }

 private:
  friend class Network;
  explicit FlapHandle(std::weak_ptr<bool> active)
      : active_(std::move(active)) {}

  std::weak_ptr<bool> active_;
};

/// Simulated datacenter network. Delivers payloads between registered
/// endpoints with configurable latency, and can inject the failure modes
/// the incremental protocol must survive: message loss, duplication, and
/// (via random jitter) reordering. Fault surfaces, from coarse to fine:
///   * Partition(node)     — symmetric: the node is cut off entirely
///   * CutLink(from, to)   — asymmetric: one direction of one link dies
///   * Flap(node, ...)     — periodic partition/heal cycle
/// In-flight messages crossing a partition or cut link at delivery time
/// vanish, modelling queue drops in a dying switch.
class Network {
 public:
  struct Config {
    double latency_mean = 0.0005;    ///< 0.5 ms one-way
    double latency_jitter = 0.0002;  ///< uniform +/- jitter; causes reordering
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    /// Round-trip every payload through its encoded bytes before
    /// delivery: receivers see exactly what survives serialization, so
    /// pointer smuggling and non-encodable state are caught by
    /// construction. Payload types without a wire codec are a fatal
    /// error in this mode. With the fault probabilities below at zero
    /// this is an identity transform — same RNG draws, same delivery
    /// order, same state hashes as the fast path.
    bool serialize_on_send = false;
    /// Byte-level fault injection, applied to the encoded frame (needs
    /// serialize_on_send). A corrupted or truncated frame fails its
    /// checksum/bounds checks on decode and surfaces as a counted drop
    /// (stats().decode_drops) — never a crash, never a wrong message.
    double corrupt_probability = 0.0;
    double truncate_probability = 0.0;
  };

  Network(sim::Simulator* simulator, Config config, uint64_t seed = 42)
      : sim_(simulator), config_(config), rng_(seed) {
    FUXI_CHECK(simulator != nullptr);
  }

  /// Attaches `endpoint` as `node`. The endpoint must outlive the
  /// network or be detached first.
  void Register(NodeId node, Endpoint* endpoint) {
    FUXI_CHECK(endpoint != nullptr);
    endpoints_[node] = endpoint;
  }

  void Unregister(NodeId node) { endpoints_.erase(node); }
  bool IsRegistered(NodeId node) const { return endpoints_.count(node) > 0; }

  /// Cuts a node off: in-flight and future messages to/from it vanish,
  /// modelling a machine halt or full network disconnection. This is
  /// the symmetric special case of per-link cuts.
  void Partition(NodeId node) { partitioned_.insert(node); }
  void Heal(NodeId node) { partitioned_.erase(node); }
  bool IsPartitioned(NodeId node) const {
    return partitioned_.count(node) > 0;
  }

  /// Cuts one direction of one link: messages from `from` to `to` are
  /// dropped (including in-flight ones) while traffic the other way
  /// still flows — the asymmetric failure mode that breaks protocols
  /// which assume "I can hear you" implies "you can hear me".
  void CutLink(NodeId from, NodeId to) { cut_links_.insert({from, to}); }
  void HealLink(NodeId from, NodeId to) { cut_links_.erase({from, to}); }
  bool IsLinkCut(NodeId from, NodeId to) const {
    return cut_links_.count({from, to}) > 0;
  }
  size_t cut_link_count() const { return cut_links_.size(); }

  /// Starts a network flap on `node`: each `period`, the node is
  /// partitioned for `duty * period` seconds then healed for the rest.
  /// Runs until the returned handle is cancelled (cancel also heals).
  /// Deterministic: transitions are scheduled on the shared simulator.
  FlapHandle Flap(NodeId node, double period, double duty) {
    FUXI_CHECK(period > 0);
    if (duty < 0) duty = 0;
    if (duty > 1) duty = 1;
    auto active = std::make_shared<bool>(true);
    ScheduleFlapCycle(node, period, duty, active);
    return FlapHandle(active);
  }

  /// Sends `payload` from `from` to `to`. The wire size is measured from
  /// the payload's canonical encoding (wire.h) — exact bytes, not an
  /// estimate. Under Config::serialize_on_send the payload additionally
  /// round-trips encode→decode before delivery; a frame broken by byte-
  /// level fault injection becomes a counted drop.
  template <typename T>
  void Send(NodeId from, NodeId to, T payload) {
    size_t wire_bytes;
    if constexpr (wire::WireMessage<T>) {
      constexpr wire::MsgTag tag = wire::TypeInfoOf<T>().tag;
      if (config_.serialize_on_send) {
        std::string bytes;
        wire::EncodeFramed(payload, &bytes);
        // Fault injection operates on the encoded form — the only place
        // byte-level faults exist. Guarded draws keep the RNG stream
        // identical to the fast path when both probabilities are zero.
        if (config_.corrupt_probability > 0 &&
            rng_.Bernoulli(config_.corrupt_probability)) {
          size_t index = rng_.Uniform(bytes.size());
          bytes[index] = static_cast<char>(
              static_cast<uint8_t>(bytes[index]) ^
              static_cast<uint8_t>(1 + rng_.Uniform(255)));
        }
        if (config_.truncate_probability > 0 &&
            rng_.Bernoulli(config_.truncate_probability)) {
          bytes.resize(rng_.Uniform(bytes.size()));
        }
        wire_bytes = bytes.size();
        NoteSend(tag, wire_bytes);
        T decoded;
        Status status = wire::DecodeFramed(bytes, &decoded);
        if (!status.ok()) {
          NoteDecodeDrop();
          return;
        }
        payload = std::move(decoded);
      } else {
        wire_bytes = wire::FramedSize(payload);
        NoteSend(tag, wire_bytes);
      }
    } else {
      // No codec: tolerated for ad-hoc test payloads, but such a value
      // could never cross a real wire — serialize-on-send exists to
      // catch exactly this, so it refuses loudly.
      FUXI_CHECK(!config_.serialize_on_send)
          << "serialize-on-send: payload type "
          << Demangle(typeid(T).name()) << " has no wire codec";
      wire_bytes = sizeof(T);
      NoteSend(wire::MsgTag::kInvalid, wire_bytes);
    }
    if (Blocked(from, to)) {
      NoteDrop();
      return;
    }
    if (config_.drop_probability > 0 &&
        rng_.Bernoulli(config_.drop_probability)) {
      NoteDrop();
      return;
    }
    int copies = 1;
    if (config_.duplicate_probability > 0 &&
        rng_.Bernoulli(config_.duplicate_probability)) {
      ++copies;
      stats_.messages_duplicated++;
    }
    for (int i = 0; i < copies; ++i) {
      Envelope env;
      env.from = from;
      env.to = to;
      env.wire_seq = next_wire_seq_++;
      env.sent_at = sim_->Now();
      env.wire_bytes = wire_bytes;
      if (tracer_ != nullptr) {
        // One span per copy: it opens here (parented to whatever span
        // the sender is running under) and closes when the receiving
        // handler returns, so the span covers wire latency + handling.
        env.span = tracer_->BeginMessageSpan(typeid(T), from.value(),
                                             to.value(), wire_bytes);
      }
      if (i + 1 < copies) {
        env.payload = payload;  // an injected duplicate needs its own copy
      } else {
        env.payload = std::move(payload);
      }
      double latency = SampleLatency();
      sim_->Schedule(latency, [this, env = std::move(env)]() {
        Deliver(env);
      });
    }
  }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  Config* mutable_config() { return &config_; }

  /// Wires tracing and metrics in. Either may be null; hot paths guard
  /// with one pointer test (and with tracing compiled out the recorder
  /// calls are no-ops the optimizer removes entirely).
  void SetObservability(obs::TraceRecorder* tracer,
                        obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
    per_type_counters_.clear();
    if (metrics != nullptr) {
      sent_counter_ = metrics->GetCounter("net.messages_sent");
      delivered_counter_ = metrics->GetCounter("net.messages_delivered");
      dropped_counter_ = metrics->GetCounter("net.messages_dropped");
      bytes_counter_ = metrics->GetCounter("net.bytes_sent");
      decode_drop_counter_ = metrics->GetCounter("net.decode_drops");
    } else {
      sent_counter_ = delivered_counter_ = dropped_counter_ =
          bytes_counter_ = decode_drop_counter_ = nullptr;
    }
  }

 private:
  struct PerTypeCounters {
    obs::Counter* msgs = nullptr;
    obs::Counter* bytes = nullptr;
  };

  /// Per-message-type counters ("net.msgs.master.GrantRpc",
  /// "net.bytes.master.GrantRpc"), resolved once per tag and cached so
  /// the hot path never builds a metric-name string.
  const PerTypeCounters& PerType(wire::MsgTag tag) {
    auto [it, inserted] =
        per_type_counters_.try_emplace(static_cast<uint16_t>(tag));
    if (inserted) {
      std::string name(wire::MsgTagName(tag));
      it->second.msgs = metrics_->GetCounter("net.msgs." + name);
      it->second.bytes = metrics_->GetCounter("net.bytes." + name);
    }
    return it->second;
  }

  void NoteSend(wire::MsgTag tag, size_t wire_bytes) {
    stats_.messages_sent++;
    stats_.bytes_sent += wire_bytes;
    if (sent_counter_ != nullptr) {
      sent_counter_->Add();
      bytes_counter_->Add(wire_bytes);
      const PerTypeCounters& per_type = PerType(tag);
      per_type.msgs->Add();
      per_type.bytes->Add(wire_bytes);
    }
  }

  void NoteDecodeDrop() {
    stats_.decode_drops++;
    stats_.messages_dropped++;
    if (dropped_counter_ != nullptr) dropped_counter_->Add();
    if (decode_drop_counter_ != nullptr) decode_drop_counter_->Add();
  }

  bool Blocked(NodeId from, NodeId to) const {
    return IsPartitioned(from) || IsPartitioned(to) || IsLinkCut(from, to);
  }

  double SampleLatency() {
    double jitter =
        config_.latency_jitter * (2.0 * rng_.NextDouble() - 1.0);
    double latency = config_.latency_mean + jitter;
    return latency > 0 ? latency : 0.0;
  }

  void NoteDrop() {
    stats_.messages_dropped++;
    if (dropped_counter_ != nullptr) dropped_counter_->Add();
  }

  void Deliver(const Envelope& env) {
    if (Blocked(env.from, env.to)) {
      NoteDrop();
      if (tracer_ != nullptr) tracer_->DropSpan(env.span);
      return;
    }
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end()) {
      NoteDrop();
      if (tracer_ != nullptr) tracer_->DropSpan(env.span);
      return;
    }
    stats_.messages_delivered++;
    if (delivered_counter_ != nullptr) delivered_counter_->Add();
    bool handled;
    if (tracer_ != nullptr && env.span != 0) {
      // While the handler runs, this message is the ambient parent —
      // anything it sends in turn chains off it.
      obs::TraceRecorder::Scope scope(tracer_, env.span);
      handled = it->second->Dispatch(env);
      tracer_->EndSpan(env.span);
    } else {
      handled = it->second->Dispatch(env);
    }
    if (!handled && metrics_ != nullptr) {
      metrics_->GetCounter("net.unhandled." +
                           Demangle(env.payload.type().name()))
          ->Add();
    }
  }

  void ScheduleFlapCycle(NodeId node, double period, double duty,
                         std::shared_ptr<bool> active) {
    if (!*active) return;
    if (duty > 0) Partition(node);
    sim_->Schedule(duty * period, [this, node, period, duty, active] {
      // Heal even when the flap was cancelled mid-outage: a cancelled
      // flap must never leave the node dark forever.
      Heal(node);
      if (!*active) return;
      sim_->Schedule((1.0 - duty) * period,
                     [this, node, period, duty, active] {
                       ScheduleFlapCycle(node, period, duty, active);
                     });
    });
  }

  sim::Simulator* sim_;
  Config config_;
  Rng rng_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* decode_drop_counter_ = nullptr;
  std::unordered_map<uint16_t, PerTypeCounters> per_type_counters_;
  uint64_t next_wire_seq_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_set<NodeId> partitioned_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  NetworkStats stats_;
};

}  // namespace fuxi::net

#endif  // FUXI_NET_NETWORK_H_
