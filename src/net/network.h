#ifndef FUXI_NET_NETWORK_H_
#define FUXI_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace fuxi::net {

/// A delivered message with its routing metadata.
struct Envelope {
  NodeId from;
  NodeId to;
  uint64_t wire_seq = 0;   ///< global send order, for debugging
  double sent_at = 0;      ///< virtual send time
  size_t size_hint = 0;    ///< approximate wire bytes (caller supplied)
  std::any payload;
};

/// A network attachment point for one simulated process. Handlers are
/// registered per payload type; unhandled payload types are counted and
/// dropped (like an unknown RPC method).
class Endpoint {
 public:
  /// Registers a handler for messages whose payload holds a T.
  template <typename T>
  void Handle(std::function<void(const Envelope&, const T&)> fn) {
    handlers_[std::type_index(typeid(T))] =
        [fn = std::move(fn)](const Envelope& env) {
          fn(env, std::any_cast<const T&>(env.payload));
        };
  }

  /// Dispatches one envelope. Returns false when no handler matched.
  bool Dispatch(const Envelope& env) {
    auto it = handlers_.find(std::type_index(env.payload.type()));
    if (it == handlers_.end()) {
      ++unhandled_;
      return false;
    }
    it->second(env);
    return true;
  }

  uint64_t unhandled() const { return unhandled_; }

 private:
  std::unordered_map<std::type_index, std::function<void(const Envelope&)>>
      handlers_;
  uint64_t unhandled_ = 0;
};

/// Aggregate transport counters, used by the incremental-communication
/// ablation benchmark to compare message/byte volumes.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;
};

/// Cancellation token for a Flap() schedule. Cancelling stops future
/// flap transitions and heals the node if the flap left it partitioned.
class FlapHandle {
 public:
  FlapHandle() = default;

  void Cancel() {
    if (auto p = active_.lock()) *p = false;
  }
  bool active() const {
    auto p = active_.lock();
    return p && *p;
  }

 private:
  friend class Network;
  explicit FlapHandle(std::weak_ptr<bool> active)
      : active_(std::move(active)) {}

  std::weak_ptr<bool> active_;
};

/// Simulated datacenter network. Delivers payloads between registered
/// endpoints with configurable latency, and can inject the failure modes
/// the incremental protocol must survive: message loss, duplication, and
/// (via random jitter) reordering. Fault surfaces, from coarse to fine:
///   * Partition(node)     — symmetric: the node is cut off entirely
///   * CutLink(from, to)   — asymmetric: one direction of one link dies
///   * Flap(node, ...)     — periodic partition/heal cycle
/// In-flight messages crossing a partition or cut link at delivery time
/// vanish, modelling queue drops in a dying switch.
class Network {
 public:
  struct Config {
    double latency_mean = 0.0005;    ///< 0.5 ms one-way
    double latency_jitter = 0.0002;  ///< uniform +/- jitter; causes reordering
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
  };

  Network(sim::Simulator* simulator, Config config, uint64_t seed = 42)
      : sim_(simulator), config_(config), rng_(seed) {
    FUXI_CHECK(simulator != nullptr);
  }

  /// Attaches `endpoint` as `node`. The endpoint must outlive the
  /// network or be detached first.
  void Register(NodeId node, Endpoint* endpoint) {
    FUXI_CHECK(endpoint != nullptr);
    endpoints_[node] = endpoint;
  }

  void Unregister(NodeId node) { endpoints_.erase(node); }
  bool IsRegistered(NodeId node) const { return endpoints_.count(node) > 0; }

  /// Cuts a node off: in-flight and future messages to/from it vanish,
  /// modelling a machine halt or full network disconnection. This is
  /// the symmetric special case of per-link cuts.
  void Partition(NodeId node) { partitioned_.insert(node); }
  void Heal(NodeId node) { partitioned_.erase(node); }
  bool IsPartitioned(NodeId node) const {
    return partitioned_.count(node) > 0;
  }

  /// Cuts one direction of one link: messages from `from` to `to` are
  /// dropped (including in-flight ones) while traffic the other way
  /// still flows — the asymmetric failure mode that breaks protocols
  /// which assume "I can hear you" implies "you can hear me".
  void CutLink(NodeId from, NodeId to) { cut_links_.insert({from, to}); }
  void HealLink(NodeId from, NodeId to) { cut_links_.erase({from, to}); }
  bool IsLinkCut(NodeId from, NodeId to) const {
    return cut_links_.count({from, to}) > 0;
  }
  size_t cut_link_count() const { return cut_links_.size(); }

  /// Starts a network flap on `node`: each `period`, the node is
  /// partitioned for `duty * period` seconds then healed for the rest.
  /// Runs until the returned handle is cancelled (cancel also heals).
  /// Deterministic: transitions are scheduled on the shared simulator.
  FlapHandle Flap(NodeId node, double period, double duty) {
    FUXI_CHECK(period > 0);
    if (duty < 0) duty = 0;
    if (duty > 1) duty = 1;
    auto active = std::make_shared<bool>(true);
    ScheduleFlapCycle(node, period, duty, active);
    return FlapHandle(active);
  }

  /// Sends `payload` from `from` to `to`. `size_hint` approximates wire
  /// bytes for the communication-volume metrics.
  template <typename T>
  void Send(NodeId from, NodeId to, T payload, size_t size_hint = 64) {
    stats_.messages_sent++;
    stats_.bytes_sent += size_hint;
    if (Blocked(from, to)) {
      stats_.messages_dropped++;
      return;
    }
    if (config_.drop_probability > 0 &&
        rng_.Bernoulli(config_.drop_probability)) {
      stats_.messages_dropped++;
      return;
    }
    int copies = 1;
    if (config_.duplicate_probability > 0 &&
        rng_.Bernoulli(config_.duplicate_probability)) {
      ++copies;
      stats_.messages_duplicated++;
    }
    for (int i = 0; i < copies; ++i) {
      Envelope env;
      env.from = from;
      env.to = to;
      env.wire_seq = next_wire_seq_++;
      env.sent_at = sim_->Now();
      env.size_hint = size_hint;
      if (i + 1 < copies) {
        env.payload = payload;  // an injected duplicate needs its own copy
      } else {
        env.payload = std::move(payload);
      }
      double latency = SampleLatency();
      sim_->Schedule(latency, [this, env = std::move(env)]() {
        Deliver(env);
      });
    }
  }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  Config* mutable_config() { return &config_; }

 private:
  bool Blocked(NodeId from, NodeId to) const {
    return IsPartitioned(from) || IsPartitioned(to) || IsLinkCut(from, to);
  }

  double SampleLatency() {
    double jitter =
        config_.latency_jitter * (2.0 * rng_.NextDouble() - 1.0);
    double latency = config_.latency_mean + jitter;
    return latency > 0 ? latency : 0.0;
  }

  void Deliver(const Envelope& env) {
    if (Blocked(env.from, env.to)) {
      stats_.messages_dropped++;
      return;
    }
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end()) {
      stats_.messages_dropped++;
      return;
    }
    stats_.messages_delivered++;
    it->second->Dispatch(env);
  }

  void ScheduleFlapCycle(NodeId node, double period, double duty,
                         std::shared_ptr<bool> active) {
    if (!*active) return;
    if (duty > 0) Partition(node);
    sim_->Schedule(duty * period, [this, node, period, duty, active] {
      // Heal even when the flap was cancelled mid-outage: a cancelled
      // flap must never leave the node dark forever.
      Heal(node);
      if (!*active) return;
      sim_->Schedule((1.0 - duty) * period,
                     [this, node, period, duty, active] {
                       ScheduleFlapCycle(node, period, duty, active);
                     });
    });
  }

  sim::Simulator* sim_;
  Config config_;
  Rng rng_;
  uint64_t next_wire_seq_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_set<NodeId> partitioned_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  NetworkStats stats_;
};

}  // namespace fuxi::net

#endif  // FUXI_NET_NETWORK_H_
