#ifndef FUXI_NET_NETWORK_H_
#define FUXI_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace fuxi::net {

/// A delivered message with its routing metadata.
struct Envelope {
  NodeId from;
  NodeId to;
  uint64_t wire_seq = 0;   ///< global send order, for debugging
  double sent_at = 0;      ///< virtual send time
  size_t size_hint = 0;    ///< approximate wire bytes (caller supplied)
  std::any payload;
};

/// A network attachment point for one simulated process. Handlers are
/// registered per payload type; unhandled payload types are counted and
/// dropped (like an unknown RPC method).
class Endpoint {
 public:
  /// Registers a handler for messages whose payload holds a T.
  template <typename T>
  void Handle(std::function<void(const Envelope&, const T&)> fn) {
    handlers_[std::type_index(typeid(T))] =
        [fn = std::move(fn)](const Envelope& env) {
          fn(env, std::any_cast<const T&>(env.payload));
        };
  }

  /// Dispatches one envelope. Returns false when no handler matched.
  bool Dispatch(const Envelope& env) {
    auto it = handlers_.find(std::type_index(env.payload.type()));
    if (it == handlers_.end()) {
      ++unhandled_;
      return false;
    }
    it->second(env);
    return true;
  }

  uint64_t unhandled() const { return unhandled_; }

 private:
  std::unordered_map<std::type_index, std::function<void(const Envelope&)>>
      handlers_;
  uint64_t unhandled_ = 0;
};

/// Aggregate transport counters, used by the incremental-communication
/// ablation benchmark to compare message/byte volumes.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;
};

/// Simulated datacenter network. Delivers payloads between registered
/// endpoints with configurable latency, and can inject the failure modes
/// the incremental protocol must survive: message loss, duplication, and
/// (via random jitter) reordering. Nodes can be partitioned to model
/// machine death or network disconnection.
class Network {
 public:
  struct Config {
    double latency_mean = 0.0005;    ///< 0.5 ms one-way
    double latency_jitter = 0.0002;  ///< uniform +/- jitter; causes reordering
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
  };

  Network(sim::Simulator* simulator, Config config, uint64_t seed = 42)
      : sim_(simulator), config_(config), rng_(seed) {
    FUXI_CHECK(simulator != nullptr);
  }

  /// Attaches `endpoint` as `node`. The endpoint must outlive the
  /// network or be detached first.
  void Register(NodeId node, Endpoint* endpoint) {
    FUXI_CHECK(endpoint != nullptr);
    endpoints_[node] = endpoint;
  }

  void Unregister(NodeId node) { endpoints_.erase(node); }
  bool IsRegistered(NodeId node) const { return endpoints_.count(node) > 0; }

  /// Cuts a node off: in-flight and future messages to/from it vanish,
  /// modelling a machine halt or link failure.
  void Partition(NodeId node) { partitioned_.insert(node); }
  void Heal(NodeId node) { partitioned_.erase(node); }
  bool IsPartitioned(NodeId node) const {
    return partitioned_.count(node) > 0;
  }

  /// Sends `payload` from `from` to `to`. `size_hint` approximates wire
  /// bytes for the communication-volume metrics.
  template <typename T>
  void Send(NodeId from, NodeId to, T payload, size_t size_hint = 64) {
    stats_.messages_sent++;
    stats_.bytes_sent += size_hint;
    if (IsPartitioned(from) || IsPartitioned(to)) {
      stats_.messages_dropped++;
      return;
    }
    if (config_.drop_probability > 0 &&
        rng_.Bernoulli(config_.drop_probability)) {
      stats_.messages_dropped++;
      return;
    }
    int copies = 1;
    if (config_.duplicate_probability > 0 &&
        rng_.Bernoulli(config_.duplicate_probability)) {
      ++copies;
      stats_.messages_duplicated++;
    }
    for (int i = 0; i < copies; ++i) {
      Envelope env;
      env.from = from;
      env.to = to;
      env.wire_seq = next_wire_seq_++;
      env.sent_at = sim_->Now();
      env.size_hint = size_hint;
      env.payload = payload;  // copy: duplicates need their own payload
      double latency = SampleLatency();
      sim_->Schedule(latency, [this, env = std::move(env)]() {
        Deliver(env);
      });
    }
  }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  Config* mutable_config() { return &config_; }

 private:
  double SampleLatency() {
    double jitter =
        config_.latency_jitter * (2.0 * rng_.NextDouble() - 1.0);
    double latency = config_.latency_mean + jitter;
    return latency > 0 ? latency : 0.0;
  }

  void Deliver(const Envelope& env) {
    if (IsPartitioned(env.from) || IsPartitioned(env.to)) {
      stats_.messages_dropped++;
      return;
    }
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end()) {
      stats_.messages_dropped++;
      return;
    }
    stats_.messages_delivered++;
    it->second->Dispatch(env);
  }

  sim::Simulator* sim_;
  Config config_;
  Rng rng_;
  uint64_t next_wire_seq_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_set<NodeId> partitioned_;
  NetworkStats stats_;
};

}  // namespace fuxi::net

#endif  // FUXI_NET_NETWORK_H_
