#ifndef FUXI_NET_NETWORK_H_
#define FUXI_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics_registry.h"

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace fuxi::net {

/// A delivered message with its routing metadata.
struct Envelope {
  NodeId from;
  NodeId to;
  uint64_t wire_seq = 0;   ///< global send order, for debugging
  double sent_at = 0;      ///< virtual send time
  size_t size_hint = 0;    ///< approximate wire bytes (caller supplied)
  uint64_t span = 0;       ///< causal trace span of this copy (0 = untraced)
  std::any payload;
};

/// A network attachment point for one simulated process. Handlers are
/// registered per payload type; unhandled payload types are counted
/// (in aggregate and per type), logged once per type, and dropped
/// (like an unknown RPC method).
class Endpoint {
 public:
  /// Registers a handler for messages whose payload holds a T.
  template <typename T>
  void Handle(std::function<void(const Envelope&, const T&)> fn) {
    handlers_[std::type_index(typeid(T))] =
        [fn = std::move(fn)](const Envelope& env) {
          fn(env, std::any_cast<const T&>(env.payload));
        };
  }

  /// Dispatches one envelope. Returns false when no handler matched.
  bool Dispatch(const Envelope& env) {
    auto it = handlers_.find(std::type_index(env.payload.type()));
    if (it == handlers_.end()) {
      ++unhandled_;
      uint64_t& per_type =
          unhandled_by_type_[std::type_index(env.payload.type())];
      if (++per_type == 1) {
        FUXI_LOG(kWarning)
            << "endpoint at node " << env.to.value()
            << " has no handler for payload type "
            << Demangle(env.payload.type().name())
            << " (further drops of this type counted silently)";
      }
      return false;
    }
    it->second(env);
    return true;
  }

  uint64_t unhandled() const { return unhandled_; }

  /// Per-payload-type unhandled counts, keyed by demangled type name.
  std::map<std::string, uint64_t> UnhandledByType() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [type, count] : unhandled_by_type_) {
      out[Demangle(type.name())] += count;
    }
    return out;
  }

 private:
  std::unordered_map<std::type_index, std::function<void(const Envelope&)>>
      handlers_;
  uint64_t unhandled_ = 0;
  std::unordered_map<std::type_index, uint64_t> unhandled_by_type_;
};

/// Aggregate transport counters, used by the incremental-communication
/// ablation benchmark to compare message/byte volumes.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;
};

/// Cancellation token for a Flap() schedule. Cancelling stops future
/// flap transitions and heals the node if the flap left it partitioned.
class FlapHandle {
 public:
  FlapHandle() = default;

  void Cancel() {
    if (auto p = active_.lock()) *p = false;
  }
  bool active() const {
    auto p = active_.lock();
    return p && *p;
  }

 private:
  friend class Network;
  explicit FlapHandle(std::weak_ptr<bool> active)
      : active_(std::move(active)) {}

  std::weak_ptr<bool> active_;
};

/// Simulated datacenter network. Delivers payloads between registered
/// endpoints with configurable latency, and can inject the failure modes
/// the incremental protocol must survive: message loss, duplication, and
/// (via random jitter) reordering. Fault surfaces, from coarse to fine:
///   * Partition(node)     — symmetric: the node is cut off entirely
///   * CutLink(from, to)   — asymmetric: one direction of one link dies
///   * Flap(node, ...)     — periodic partition/heal cycle
/// In-flight messages crossing a partition or cut link at delivery time
/// vanish, modelling queue drops in a dying switch.
class Network {
 public:
  struct Config {
    double latency_mean = 0.0005;    ///< 0.5 ms one-way
    double latency_jitter = 0.0002;  ///< uniform +/- jitter; causes reordering
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
  };

  Network(sim::Simulator* simulator, Config config, uint64_t seed = 42)
      : sim_(simulator), config_(config), rng_(seed) {
    FUXI_CHECK(simulator != nullptr);
  }

  /// Attaches `endpoint` as `node`. The endpoint must outlive the
  /// network or be detached first.
  void Register(NodeId node, Endpoint* endpoint) {
    FUXI_CHECK(endpoint != nullptr);
    endpoints_[node] = endpoint;
  }

  void Unregister(NodeId node) { endpoints_.erase(node); }
  bool IsRegistered(NodeId node) const { return endpoints_.count(node) > 0; }

  /// Cuts a node off: in-flight and future messages to/from it vanish,
  /// modelling a machine halt or full network disconnection. This is
  /// the symmetric special case of per-link cuts.
  void Partition(NodeId node) { partitioned_.insert(node); }
  void Heal(NodeId node) { partitioned_.erase(node); }
  bool IsPartitioned(NodeId node) const {
    return partitioned_.count(node) > 0;
  }

  /// Cuts one direction of one link: messages from `from` to `to` are
  /// dropped (including in-flight ones) while traffic the other way
  /// still flows — the asymmetric failure mode that breaks protocols
  /// which assume "I can hear you" implies "you can hear me".
  void CutLink(NodeId from, NodeId to) { cut_links_.insert({from, to}); }
  void HealLink(NodeId from, NodeId to) { cut_links_.erase({from, to}); }
  bool IsLinkCut(NodeId from, NodeId to) const {
    return cut_links_.count({from, to}) > 0;
  }
  size_t cut_link_count() const { return cut_links_.size(); }

  /// Starts a network flap on `node`: each `period`, the node is
  /// partitioned for `duty * period` seconds then healed for the rest.
  /// Runs until the returned handle is cancelled (cancel also heals).
  /// Deterministic: transitions are scheduled on the shared simulator.
  FlapHandle Flap(NodeId node, double period, double duty) {
    FUXI_CHECK(period > 0);
    if (duty < 0) duty = 0;
    if (duty > 1) duty = 1;
    auto active = std::make_shared<bool>(true);
    ScheduleFlapCycle(node, period, duty, active);
    return FlapHandle(active);
  }

  /// Sends `payload` from `from` to `to`. `size_hint` approximates wire
  /// bytes for the communication-volume metrics.
  template <typename T>
  void Send(NodeId from, NodeId to, T payload, size_t size_hint = 64) {
    stats_.messages_sent++;
    stats_.bytes_sent += size_hint;
    if (sent_counter_ != nullptr) {
      sent_counter_->Add();
      bytes_counter_->Add(size_hint);
    }
    if (Blocked(from, to)) {
      NoteDrop();
      return;
    }
    if (config_.drop_probability > 0 &&
        rng_.Bernoulli(config_.drop_probability)) {
      NoteDrop();
      return;
    }
    int copies = 1;
    if (config_.duplicate_probability > 0 &&
        rng_.Bernoulli(config_.duplicate_probability)) {
      ++copies;
      stats_.messages_duplicated++;
    }
    for (int i = 0; i < copies; ++i) {
      Envelope env;
      env.from = from;
      env.to = to;
      env.wire_seq = next_wire_seq_++;
      env.sent_at = sim_->Now();
      env.size_hint = size_hint;
      if (tracer_ != nullptr) {
        // One span per copy: it opens here (parented to whatever span
        // the sender is running under) and closes when the receiving
        // handler returns, so the span covers wire latency + handling.
        env.span = tracer_->BeginMessageSpan(typeid(T), from.value(),
                                             to.value(), size_hint);
      }
      if (i + 1 < copies) {
        env.payload = payload;  // an injected duplicate needs its own copy
      } else {
        env.payload = std::move(payload);
      }
      double latency = SampleLatency();
      sim_->Schedule(latency, [this, env = std::move(env)]() {
        Deliver(env);
      });
    }
  }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  Config* mutable_config() { return &config_; }

  /// Wires tracing and metrics in. Either may be null; hot paths guard
  /// with one pointer test (and with tracing compiled out the recorder
  /// calls are no-ops the optimizer removes entirely).
  void SetObservability(obs::TraceRecorder* tracer,
                        obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
    if (metrics != nullptr) {
      sent_counter_ = metrics->GetCounter("net.messages_sent");
      delivered_counter_ = metrics->GetCounter("net.messages_delivered");
      dropped_counter_ = metrics->GetCounter("net.messages_dropped");
      bytes_counter_ = metrics->GetCounter("net.bytes_sent");
    } else {
      sent_counter_ = delivered_counter_ = dropped_counter_ =
          bytes_counter_ = nullptr;
    }
  }

 private:
  bool Blocked(NodeId from, NodeId to) const {
    return IsPartitioned(from) || IsPartitioned(to) || IsLinkCut(from, to);
  }

  double SampleLatency() {
    double jitter =
        config_.latency_jitter * (2.0 * rng_.NextDouble() - 1.0);
    double latency = config_.latency_mean + jitter;
    return latency > 0 ? latency : 0.0;
  }

  void NoteDrop() {
    stats_.messages_dropped++;
    if (dropped_counter_ != nullptr) dropped_counter_->Add();
  }

  void Deliver(const Envelope& env) {
    if (Blocked(env.from, env.to)) {
      NoteDrop();
      if (tracer_ != nullptr) tracer_->DropSpan(env.span);
      return;
    }
    auto it = endpoints_.find(env.to);
    if (it == endpoints_.end()) {
      NoteDrop();
      if (tracer_ != nullptr) tracer_->DropSpan(env.span);
      return;
    }
    stats_.messages_delivered++;
    if (delivered_counter_ != nullptr) delivered_counter_->Add();
    bool handled;
    if (tracer_ != nullptr && env.span != 0) {
      // While the handler runs, this message is the ambient parent —
      // anything it sends in turn chains off it.
      obs::TraceRecorder::Scope scope(tracer_, env.span);
      handled = it->second->Dispatch(env);
      tracer_->EndSpan(env.span);
    } else {
      handled = it->second->Dispatch(env);
    }
    if (!handled && metrics_ != nullptr) {
      metrics_->GetCounter("net.unhandled." +
                           Demangle(env.payload.type().name()))
          ->Add();
    }
  }

  void ScheduleFlapCycle(NodeId node, double period, double duty,
                         std::shared_ptr<bool> active) {
    if (!*active) return;
    if (duty > 0) Partition(node);
    sim_->Schedule(duty * period, [this, node, period, duty, active] {
      // Heal even when the flap was cancelled mid-outage: a cancelled
      // flap must never leave the node dark forever.
      Heal(node);
      if (!*active) return;
      sim_->Schedule((1.0 - duty) * period,
                     [this, node, period, duty, active] {
                       ScheduleFlapCycle(node, period, duty, active);
                     });
    });
  }

  sim::Simulator* sim_;
  Config config_;
  Rng rng_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  uint64_t next_wire_seq_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_set<NodeId> partitioned_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  NetworkStats stats_;
};

}  // namespace fuxi::net

#endif  // FUXI_NET_NETWORK_H_
