#ifndef FUXI_SIM_SIMULATOR_H_
#define FUXI_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace fuxi::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// Handle for a scheduled event; lets callers cancel pending timers
/// (e.g. heartbeat timeouts that were answered in time).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void Cancel() {
    if (auto p = cancelled_.lock()) *p = true;
  }

  bool active() const {
    auto p = cancelled_.lock();
    return p && !*p;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::weak_ptr<bool> cancelled_;
};

/// Deterministic discrete-event simulator. Events fire in (time,
/// insertion sequence) order, so identical inputs replay identically.
/// Single-threaded by design: the production Fuxi protocol logic runs
/// inside event callbacks against virtual time, while benchmarks measure
/// the scheduler's real wall-clock cost from outside.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (clamped to >= 0).
  /// The returned handle can cancel the event before it fires.
  EventHandle Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (clamped to >= Now()).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  /// Runs events until the queue empties or `until` is passed.
  /// Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  /// Runs until the event queue is exhausted.
  uint64_t RunToCompletion();

  /// Executes exactly one event if any is pending. Returns false when
  /// the queue is empty.
  bool Step();

  /// True when no events are pending.
  bool Idle() const { return queue_.empty(); }

  size_t PendingEvents() const { return queue_.size(); }
  uint64_t ExecutedEvents() const { return executed_; }

  /// Installs the primary observer invoked after every executed event,
  /// with the event's virtual time. Observers see the state every
  /// transition leaves behind — this is what lets an invariant monitor
  /// check the cluster *continuously* instead of only at test end. The
  /// observer must not schedule unbounded new work from inside itself
  /// (it runs on the hot path) but may call Schedule(). Pass nullptr to
  /// remove.
  void SetPostEventHook(std::function<void(SimTime)> hook) {
    post_event_hook_ = std::move(hook);
  }

  /// Registers an additional post-event observer and returns a token
  /// for RemovePostEventObserver. Unlike the single primary hook,
  /// observers are keyed, so independent owners (telemetry samplers,
  /// monitors) attach and detach without coordinating. They run after
  /// the primary hook, in registration order — deterministic, since
  /// registration order is itself part of the replayed construction
  /// sequence. Observing an event does not count as executing one:
  /// ExecutedEvents() (folded into replay digests) is untouched.
  uint64_t AddPostEventObserver(std::function<void(SimTime)> observer) {
    uint64_t token = next_observer_token_++;
    post_event_observers_.emplace_back(token, std::move(observer));
    return token;
  }

  /// Removes a keyed observer; unknown tokens are ignored (idempotent).
  void RemovePostEventObserver(uint64_t token) {
    for (auto it = post_event_observers_.begin();
         it != post_event_observers_.end(); ++it) {
      if (it->first == token) {
        post_event_observers_.erase(it);
        return;
      }
    }
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::function<void(SimTime)> post_event_hook_;
  uint64_t next_observer_token_ = 1;
  std::vector<std::pair<uint64_t, std::function<void(SimTime)>>>
      post_event_observers_;
};

/// Base class for simulated components (FuxiMaster, FuxiAgent, masters,
/// workers). An actor owns a pointer to the shared simulator and uses it
/// for all timing; subclasses add message handlers.
class Actor {
 public:
  explicit Actor(Simulator* sim) : sim_(sim) { FUXI_CHECK(sim != nullptr); }
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  Simulator* sim() const { return sim_; }
  SimTime Now() const { return sim_->Now(); }

 protected:
  /// Schedules a member callback; the callback must not outlive the
  /// actor (owners tear down actors only between events or via alive
  /// flags, mirroring process kill semantics).
  EventHandle After(SimTime delay, std::function<void()> fn) {
    return sim_->Schedule(delay, std::move(fn));
  }

 private:
  Simulator* sim_;
};

}  // namespace fuxi::sim

#endif  // FUXI_SIM_SIMULATOR_H_
