#include "sim/simulator.h"

#include <utility>

namespace fuxi::sim {

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  queue_.push(Event{when, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    FUXI_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    if (*ev.cancelled) continue;
    ++executed_;
    ev.fn();
    if (post_event_hook_) post_event_hook_(now_);
    for (const auto& [token, observer] : post_event_observers_) {
      observer(now_);
    }
    return true;
  }
  return false;
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    if (Step()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t ran = 0;
  while (Step()) ++ran;
  return ran;
}

}  // namespace fuxi::sim
