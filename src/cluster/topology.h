#ifndef FUXI_CLUSTER_TOPOLOGY_H_
#define FUXI_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/status.h"

namespace fuxi::cluster {

/// Static description of one server. Mutable runtime state (free
/// resources, health) lives in the scheduler / agent layers.
struct Machine {
  MachineId id;
  RackId rack;
  std::string hostname;
  ResourceVector capacity;
  /// Hardware performance model for the data plane (GraySort etc.).
  double disk_bandwidth_mbps = 12 * 100.0;  ///< 12 disks x ~100 MB/s
  double nic_bandwidth_mbps = 2 * 125.0;    ///< 2 x GbE
  int disk_count = 12;
};

struct Rack {
  RackId id;
  std::string name;
  std::vector<MachineId> machines;
};

/// Machine/rack/cluster three-level hierarchy (paper §3.2.2). Machines
/// get Alibaba-style hostnames ("r42g04021") so locality hints in job
/// descriptions look like the paper's Figure 4.
class ClusterTopology {
 public:
  struct Options {
    int racks = 5;
    int machines_per_rack = 4;
    /// Default per-machine capacity: paper testbed is 2x 6-core Xeon
    /// (=12 cores = 1200 centicores) with 96 GB.
    ResourceVector machine_capacity{1200, 96 * 1024};
  };

  /// Builds a uniform topology.
  static ClusterTopology Build(const Options& options);

  /// Adds one machine to `rack` (created on demand). Returns its id.
  MachineId AddMachine(const std::string& rack_name,
                       const ResourceVector& capacity);

  const Machine& machine(MachineId id) const;
  Machine& mutable_machine(MachineId id);
  const Rack& rack(RackId id) const;

  Result<MachineId> FindByHostname(const std::string& hostname) const;
  Result<RackId> FindRackByName(const std::string& name) const;

  size_t machine_count() const { return machines_.size(); }
  size_t rack_count() const { return racks_.size(); }
  const std::vector<Machine>& machines() const { return machines_; }
  const std::vector<Rack>& racks() const { return racks_; }

  /// Sum of all machine capacities.
  ResourceVector TotalCapacity() const;

  /// True when both machines are in the same rack.
  bool SameRack(MachineId a, MachineId b) const;

 private:
  std::vector<Machine> machines_;
  std::vector<Rack> racks_;
  std::unordered_map<std::string, MachineId> by_hostname_;
  std::unordered_map<std::string, RackId> rack_by_name_;
};

}  // namespace fuxi::cluster

#endif  // FUXI_CLUSTER_TOPOLOGY_H_
