#include "cluster/topology.h"

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::cluster {

ClusterTopology ClusterTopology::Build(const Options& options) {
  ClusterTopology topo;
  for (int r = 0; r < options.racks; ++r) {
    std::string rack_name = StrFormat("r%02d", r);
    for (int m = 0; m < options.machines_per_rack; ++m) {
      topo.AddMachine(rack_name, options.machine_capacity);
    }
  }
  return topo;
}

MachineId ClusterTopology::AddMachine(const std::string& rack_name,
                                      const ResourceVector& capacity) {
  RackId rack_id;
  auto it = rack_by_name_.find(rack_name);
  if (it == rack_by_name_.end()) {
    rack_id = RackId(static_cast<int64_t>(racks_.size()));
    racks_.push_back(Rack{rack_id, rack_name, {}});
    rack_by_name_[rack_name] = rack_id;
  } else {
    rack_id = it->second;
  }
  Rack& rack = racks_[static_cast<size_t>(rack_id.value())];

  MachineId id(static_cast<int64_t>(machines_.size()));
  Machine machine;
  machine.id = id;
  machine.rack = rack_id;
  machine.hostname =
      StrFormat("%sg%05d", rack.name.c_str(),
                static_cast<int>(rack.machines.size()));
  machine.capacity = capacity;
  by_hostname_[machine.hostname] = id;
  rack.machines.push_back(id);
  machines_.push_back(std::move(machine));
  return id;
}

const Machine& ClusterTopology::machine(MachineId id) const {
  FUXI_CHECK(id.valid());
  FUXI_CHECK_LT(static_cast<size_t>(id.value()), machines_.size());
  return machines_[static_cast<size_t>(id.value())];
}

Machine& ClusterTopology::mutable_machine(MachineId id) {
  FUXI_CHECK(id.valid());
  FUXI_CHECK_LT(static_cast<size_t>(id.value()), machines_.size());
  return machines_[static_cast<size_t>(id.value())];
}

const Rack& ClusterTopology::rack(RackId id) const {
  FUXI_CHECK(id.valid());
  FUXI_CHECK_LT(static_cast<size_t>(id.value()), racks_.size());
  return racks_[static_cast<size_t>(id.value())];
}

Result<MachineId> ClusterTopology::FindByHostname(
    const std::string& hostname) const {
  auto it = by_hostname_.find(hostname);
  if (it == by_hostname_.end()) {
    return Status::NotFound("no machine named " + hostname);
  }
  return it->second;
}

Result<RackId> ClusterTopology::FindRackByName(const std::string& name) const {
  auto it = rack_by_name_.find(name);
  if (it == rack_by_name_.end()) {
    return Status::NotFound("no rack named " + name);
  }
  return it->second;
}

ResourceVector ClusterTopology::TotalCapacity() const {
  ResourceVector total;
  for (const Machine& m : machines_) total += m.capacity;
  return total;
}

bool ClusterTopology::SameRack(MachineId a, MachineId b) const {
  return machine(a).rack == machine(b).rack;
}

}  // namespace fuxi::cluster
