#include "cluster/resource_vector.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace fuxi::cluster {

DimensionRegistry::DimensionRegistry() : names_{"cpu", "memory"} {}

DimensionRegistry& DimensionRegistry::Global() {
  static DimensionRegistry* registry = new DimensionRegistry();
  return *registry;
}

Result<DimensionId> DimensionRegistry::Register(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<DimensionId>(i);
  }
  if (names_.size() >= kMaxDimensions) {
    return Status::ResourceExhausted("dimension registry full (" +
                                     std::to_string(kMaxDimensions) + ")");
  }
  names_.push_back(name);
  return static_cast<DimensionId>(names_.size() - 1);
}

Result<DimensionId> DimensionRegistry::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<DimensionId>(i);
  }
  return Status::NotFound("unknown resource dimension: " + name);
}

const std::string& DimensionRegistry::Name(DimensionId id) const {
  static const std::string kUnknown = "?";
  if (id >= names_.size()) return kUnknown;
  return names_[id];
}

void DimensionRegistry::ResetForTest() {
  names_ = {"cpu", "memory"};
}

int64_t ResourceVector::DivideBy(const ResourceVector& unit) const {
  int64_t copies = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < kMaxDimensions; ++i) {
    int64_t demand = unit.values_[i];
    if (demand <= 0) continue;
    int64_t have = values_[i];
    if (have <= 0) return 0;
    copies = std::min(copies, have / demand);
  }
  return copies;
}

double ResourceVector::DominantShare(const ResourceVector& capacity) const {
  double share = 0;
  for (size_t i = 0; i < kMaxDimensions; ++i) {
    if (capacity.values_[i] <= 0) continue;
    share = std::max(share, static_cast<double>(values_[i]) /
                                static_cast<double>(capacity.values_[i]));
  }
  return share;
}

std::string ResourceVector::ToString() const {
  std::string out;
  const DimensionRegistry& registry = DimensionRegistry::Global();
  for (size_t i = 0; i < kMaxDimensions; ++i) {
    if (values_[i] == 0) continue;
    if (!out.empty()) out += " ";
    std::string name =
        i < registry.size() ? registry.Name(static_cast<DimensionId>(i))
                            : "dim" + std::to_string(i);
    out += StrFormat("%s=%lld", name.c_str(),
                     static_cast<long long>(values_[i]));
  }
  return out.empty() ? "0" : out;
}

void WireEncode(wire::Writer& w, const ResourceVector& v) {
  size_t used = kMaxDimensions;
  while (used > 0 && v.Get(static_cast<DimensionId>(used - 1)) == 0) --used;
  w.U64(used);
  for (size_t i = 0; i < used; ++i) {
    w.I64(v.Get(static_cast<DimensionId>(i)));
  }
}

Status WireDecode(wire::Reader& r, ResourceVector& v) {
  uint64_t used;
  FUXI_RETURN_IF_ERROR(r.U64(&used));
  if (used > kMaxDimensions) {
    return Status::Corruption("wire: resource vector has too many dimensions");
  }
  v = ResourceVector();
  for (uint64_t i = 0; i < used; ++i) {
    int64_t value;
    FUXI_RETURN_IF_ERROR(r.I64(&value));
    v.Set(static_cast<DimensionId>(i), value);
  }
  return Status::Ok();
}

}  // namespace fuxi::cluster
