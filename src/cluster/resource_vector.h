#ifndef FUXI_CLUSTER_RESOURCE_VECTOR_H_
#define FUXI_CLUSTER_RESOURCE_VECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "wire/wire.h"

namespace fuxi::cluster {

/// Dimension index into a ResourceVector. Dimensions 0 (CPU, in
/// centi-cores so 0.5 core = 50) and 1 (memory, in MB) are always
/// present; further dimensions are named *virtual resources* (paper
/// §3.2.1), e.g. an "ASortResource" that caps per-node concurrency of a
/// particular application. Production Fuxi ran with 7 dimensions; we
/// allow up to 8.
using DimensionId = uint32_t;

inline constexpr DimensionId kCpu = 0;
inline constexpr DimensionId kMemory = 1;
inline constexpr size_t kMaxDimensions = 8;

/// Process-wide registry of dimension names. CPU and memory are
/// pre-registered; virtual resources are added by name and resolve to a
/// stable DimensionId.
class DimensionRegistry {
 public:
  static DimensionRegistry& Global();

  /// Returns the id for `name`, registering it if new. Fails with
  /// ResourceExhausted once kMaxDimensions names exist.
  Result<DimensionId> Register(const std::string& name);

  /// Looks up an existing dimension by name.
  Result<DimensionId> Find(const std::string& name) const;

  const std::string& Name(DimensionId id) const;
  size_t size() const { return names_.size(); }

  /// Drops all virtual dimensions (test isolation); CPU and memory stay.
  void ResetForTest();

 private:
  DimensionRegistry();
  std::vector<std::string> names_;
};

/// A point in multi-dimensional resource space. All scheduling
/// decisions require every dimension to fit simultaneously (§3.2.1).
/// Values are signed so the same type expresses *deltas* (the
/// incremental protocol sends positive and negative quantities).
class ResourceVector {
 public:
  /// Zero on every dimension.
  ResourceVector() : values_{} {}

  /// Convenience constructor for the two physical dimensions.
  /// `cpu_centicores`: 100 == 1 core. `memory_mb`: mebibytes.
  ResourceVector(int64_t cpu_centicores, int64_t memory_mb) : values_{} {
    values_[kCpu] = cpu_centicores;
    values_[kMemory] = memory_mb;
  }

  int64_t Get(DimensionId dim) const { return values_[dim]; }
  void Set(DimensionId dim, int64_t amount) { values_[dim] = amount; }

  int64_t cpu() const { return values_[kCpu]; }
  int64_t memory() const { return values_[kMemory]; }

  ResourceVector& operator+=(const ResourceVector& other) {
    for (size_t i = 0; i < kMaxDimensions; ++i) values_[i] += other.values_[i];
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& other) {
    for (size_t i = 0; i < kMaxDimensions; ++i) values_[i] -= other.values_[i];
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    a -= b;
    return a;
  }
  /// Per-dimension scaling; expresses "n ScheduleUnits".
  friend ResourceVector operator*(ResourceVector a, int64_t count) {
    for (auto& v : a.values_) v *= count;
    return a;
  }

  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.values_ == b.values_;
  }

  /// True when every dimension of *this fits inside `capacity`.
  bool FitsIn(const ResourceVector& capacity) const {
    for (size_t i = 0; i < kMaxDimensions; ++i) {
      if (values_[i] > capacity.values_[i]) return false;
    }
    return true;
  }

  /// True when any dimension is negative (an invalid absolute amount).
  bool AnyNegative() const {
    for (int64_t v : values_) {
      if (v < 0) return true;
    }
    return false;
  }

  /// True when every dimension is zero.
  bool IsZero() const {
    for (int64_t v : values_) {
      if (v != 0) return false;
    }
    return true;
  }

  /// How many copies of `unit` fit into *this (min over dimensions with
  /// unit demand > 0). Returns a large number when `unit` is zero.
  int64_t DivideBy(const ResourceVector& unit) const;

  /// Per-dimension max(0, value): clamps a delta into a valid amount.
  ResourceVector ClampNonNegative() const {
    ResourceVector out = *this;
    for (auto& v : out.values_) {
      if (v < 0) v = 0;
    }
    return out;
  }

  /// Dominant utilization share of *this against `capacity` in [0,1]
  /// (DRF-style; used for load-balance scoring and overload detection).
  double DominantShare(const ResourceVector& capacity) const;

  /// "cpu=50 mem=2048 asort=1" — only non-zero dimensions are printed.
  std::string ToString() const;

 private:
  std::array<int64_t, kMaxDimensions> values_;
};

/// Wire codec: varint dimension count with trailing zeros trimmed (most
/// vectors only use cpu+memory), then one zigzag varint per dimension.
void WireEncode(wire::Writer& w, const ResourceVector& v);
Status WireDecode(wire::Reader& r, ResourceVector& v);

}  // namespace fuxi::cluster

#endif  // FUXI_CLUSTER_RESOURCE_VECTOR_H_
