#ifndef FUXI_CHAOS_FAULT_SCHEDULE_H_
#define FUXI_CHAOS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "net/network.h"
#include "runtime/sim_cluster.h"
#include "sim/simulator.h"

namespace fuxi::chaos {

/// One schedulable fault: a description (for the campaign trace) and
/// the action that applies it to the cluster. Composite faults (crash
/// loops, bursts) schedule their own follow-up steps through the
/// engine, so every sub-action still lands in the injection log.
struct Fault {
  std::string description;
  std::function<void()> apply;
};

/// Parameters of a seeded random campaign: `episodes` paired
/// onset/recovery fault episodes drawn over the window
/// [start, start + duration] (absolute virtual time). Every episode
/// schedules its own recovery, so the cluster is nominally whole again
/// shortly after the window closes; HealEverything() is the belt and
/// braces for anything a cancelled or overlapping episode left broken.
struct CampaignPlanOptions {
  double start = 6.0;
  double duration = 40.0;
  int episodes = 6;
  double min_outage = 2.0;
  double max_outage = 10.0;
  /// Machines excluded from machine-scoped faults, so the cluster keeps
  /// enough capacity to make progress through the worst of the window.
  int protected_machines = 2;
  bool machine_faults = true;   ///< halt/revive and agent bounce
  bool rack_faults = true;      ///< correlated rack power loss
  bool master_faults = true;    ///< primary kill + crash loops
  bool link_faults = true;      ///< asymmetric agent-uplink cuts
  bool flap_faults = true;      ///< periodic partition/heal cycles
  bool burst_faults = true;     ///< drop / duplicate probability bursts
  /// fuxi::planner faults (reservation churn, gang-member machine
  /// loss). Default OFF: the legacy kind pool — and with it every rng
  /// draw of the seeded schedule — stays exactly the golden-pinned
  /// stream. Enable together with a planner workload.
  bool planner_faults = false;
};

/// Drives scripted and seeded-random fault campaigns over a SimCluster.
/// Faults are scheduled at absolute virtual times and are cancellable
/// via the returned simulator handle; every applied fault is logged
/// with its fire time so a failing campaign replays byte-identically
/// from its seed.
class ChaosEngine {
 public:
  struct InjectedFault {
    double time = 0;
    std::string description;
  };

  explicit ChaosEngine(runtime::SimCluster* cluster);

  /// Schedules `fault` at absolute virtual time `when` (clamped to now).
  /// The handle cancels the injection if it has not fired yet.
  sim::EventHandle At(double when, Fault fault);

  /// Applies a fault immediately and logs it.
  void Inject(const Fault& fault);

  // --- fault constructors ----------------------------------------------

  Fault KillPrimaryMaster();
  Fault RestartDeadMasters();
  /// Kills the primary `kills` times, `gap` seconds apart, restarting
  /// dead replicas between kills so each takeover is freshly murdered —
  /// timed against lease expiry when gap > lock_lease.
  Fault MasterCrashLoop(int kills, double gap);
  Fault HaltMachine(MachineId machine);
  Fault ReviveMachine(MachineId machine);
  Fault CrashAgent(MachineId machine);
  Fault RestartAgent(MachineId machine);
  /// Correlated failure: every machine in the rack halts at once.
  Fault RackPowerLoss(RackId rack);
  Fault RackRevive(RackId rack);
  /// Cuts the agent→master direction of the machine's uplink (for every
  /// master replica): the master goes deaf to the machine while the
  /// machine still hears revocations — the asymmetric case.
  Fault CutAgentUplink(MachineId machine);
  Fault HealAgentUplink(MachineId machine);
  /// Starts a partition/heal flap of the machine's agent node.
  Fault FlapAgent(MachineId machine, double period, double duty);
  Fault StopFlap(MachineId machine);
  /// Raises the network drop (or duplicate) probability to `p` for
  /// `duration` seconds, then restores the campaign baseline.
  Fault DropBurst(double probability, double duration);
  Fault DuplicateBurst(double probability, double duration);
  /// Byte-level wire faults: flips one random byte of (or truncates)
  /// each affected frame before it is decoded on the receive path.
  /// Requires Config::serialize_on_send — damaged frames surface as
  /// counted decode drops, never as crashes. Not part of the default
  /// random-campaign mix; script them explicitly.
  Fault CorruptionBurst(double probability, double duration);
  Fault TruncationBurst(double probability, double duration);
  /// Sharded clusters: kills one shard's elected primary (its fault
  /// domain fails over; every other shard keeps scheduling).
  Fault KillShardPrimary(int shard);
  /// Crash-loops one shard: `kills` primary murders `gap` seconds
  /// apart, restarting dead replicas between kills, then a final
  /// restart — the isolation scenario of the federation campaign.
  Fault ShardCrashLoop(int shard, int kills, double gap);
  /// Partitions (heals) one shard-directory replica, forcing the
  /// submission router to fail over between replicas.
  Fault CutDirectoryReplica(int replica);
  Fault HealDirectoryReplica(int replica);
  /// fuxi::planner: halts the machine carrying the lowest-id
  /// reservation's first booking for `outage` seconds, forcing the
  /// planner to drop the claims and re-book the reservation elsewhere.
  /// No-op (logged) when no reservation is booked at fire time.
  Fault ReservationChurn(double outage);
  /// fuxi::planner: like ReservationChurn but targets a gang
  /// reservation's booking — the all-or-nothing transaction must
  /// dissolve and re-plan without ever leaking a partial placement.
  Fault GangMemberLoss(double outage);
  /// Torn checkpoint write: corrupts the record most recently Put into
  /// the checkpoint store, as if the process died mid-write. The next
  /// recovering master must skip-and-count it, not crash. Not part of
  /// the random mix; script it right after a kill.
  Fault TornCheckpointWrite();

  /// Expands `seed` into a deterministic schedule of paired
  /// onset/recovery episodes. Call before running the window.
  void ScheduleRandomCampaign(uint64_t seed, const CampaignPlanOptions& plan);

  /// Reverts every fault surface this engine touched: cancels flaps,
  /// heals its link cuts, restores the baseline network config,
  /// restarts dead masters and agents, and revives halted machines.
  void HealEverything();

  const std::vector<InjectedFault>& log() const { return log_; }
  std::string LogDump() const;

 private:
  void Note(const std::string& what);

  runtime::SimCluster* cluster_;
  std::vector<InjectedFault> log_;
  std::map<MachineId, net::FlapHandle> flaps_;
  std::set<std::pair<NodeId, NodeId>> cuts_;
  std::set<NodeId> partitions_;  ///< directory replicas this engine cut
  net::Network::Config baseline_config_;
};

}  // namespace fuxi::chaos

#endif  // FUXI_CHAOS_FAULT_SCHEDULE_H_
