#ifndef FUXI_CHAOS_CAMPAIGN_H_
#define FUXI_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "chaos/invariant_monitor.h"
#include "obs/telemetry.h"
#include "runtime/sim_cluster.h"

namespace fuxi::chaos {

/// Everything one chaos campaign needs: the cluster shape, the
/// synthetic workload, the fault plan and the invariant tolerances.
/// A campaign is fully determined by (seed, config): rerunning the same
/// pair reproduces the identical fault log, event trace and state hash.
struct CampaignConfig {
  CampaignConfig();

  runtime::SimClusterOptions cluster;
  int apps = 2;
  /// Sharded clusters only: extra apps submitted through the router in
  /// the MIDDLE of the fault window, so routing happens while shards
  /// crash-loop and the directory is partitioned — the spillover-churn
  /// scenario. Ignored when cluster.shards == 1.
  int spillover_apps = 0;
  int64_t workers_per_app = 4;
  int64_t instances_per_app = 48;
  double instance_duration = 1.0;
  /// fuxi::planner workload: this many EXTRA apps whose single stage is
  /// a gang (all-or-nothing worker set with a lifetime estimate).
  /// Default 0 — the legacy campaigns and their golden digests never
  /// see a planner. Pair with plan.planner_faults for the planner
  /// chaos scenario. Under FUXI_PLANNER=0 builds the hints are dropped
  /// at the scheduler boundary and these apps run as legacy apps.
  int planner_apps = 0;
  /// Election + first heartbeats settle before submission.
  double warmup = 3.0;
  CampaignPlanOptions plan;
  /// Eventual-completion deadline after HealEverything(); missing it is
  /// itself an invariant violation (liveness once faults cease).
  double settle_timeout = 300.0;
  /// Quiesced tail after completion so sustained-condition trackers and
  /// the final reconcile sweep get a chance to fire or clear.
  double cooldown = 25.0;
  /// Virtual seconds between digest lines in the replay trace.
  double digest_interval = 5.0;
  /// Chaos knob: skip the Figure 7 grant restore on failover, seeding
  /// the double-grant bug the monitor must catch.
  bool seed_restore_bug = false;
  InvariantMonitorOptions monitor;
};

struct CampaignResult {
  uint64_t seed = 0;
  bool completed = false;      ///< every app finished before the deadline
  double completed_at = -1;
  double ended_at = 0;
  uint64_t events = 0;         ///< simulator events executed
  uint64_t heavy_checks = 0;
  uint64_t state_hash = 0;     ///< monitor digest over all heavy sweeps
  int64_t instances_done = 0;
  std::vector<Violation> violations;
  std::string fault_log;       ///< injected faults with virtual times
  std::string trace;           ///< periodic state digests (replay witness)
  /// Captured only when the campaign failed: per-machine live
  /// processes and agent capacity tables at the end of the run.
  std::string residual_state;
  /// Chrome trace_event JSON from the flight recorder, snapshotted at
  /// the first violation (see InvariantMonitor::trace_dump). Not part
  /// of the determinism-compared replay artifacts: it carries wall-
  /// clock annotations on scheduler spans.
  std::string chrome_trace;
  /// Decision-audit JSON from the audit ring, snapshotted at the first
  /// violation (see InvariantMonitor::audit_dump) — the input for
  /// tools/fuxi_explain. Fully virtual-time stamped, so unlike
  /// chrome_trace it replays byte-identically from the seed.
  std::string audit_json;
  /// End-of-run metrics registry dump (obs::MetricsToCsv), always
  /// captured. Carries the exact per-message-type wire accounting
  /// (net.msgs.<type> / net.bytes.<type>) — feed it to
  /// `trace_stats --metrics` for the byte-volume table.
  std::string metrics_csv;
  /// Virtual-time telemetry dump (obs::ExportTelemetryJson): every
  /// sampled series delta-encoded plus the watchdog event log — the
  /// input for tools/fuxi_dash. Captured whenever the sampler ran;
  /// empty when telemetry is compiled out or runtime-disabled. Like
  /// metrics_csv it is NOT folded into replay_digest: deterministic
  /// series are compared separately by the telemetry battery, and the
  /// dump also carries realtime-tagged (wall-clock) series.
  std::string telemetry_json;
  /// SLO watchdog firings, in virtual-time order — degradation signals
  /// raised while the campaign ran (demand starvation, overcommit,
  /// decode-drop spikes, ...), available even when every invariant held.
  std::vector<obs::HealthEvent> health_events;
  /// FNV-1a fold of the campaign's replay artifacts: the fault log, the
  /// digest trace (every line of which embeds the monitor's rolling
  /// grant-log/state digest), every violation, and the scalar outcomes
  /// (completion, events, instances, state hash). This is the
  /// fingerprint the parallel sweep engine compares between --jobs 1
  /// and --jobs N: any divergence means a campaign observed state it
  /// does not own. metrics_csv is deliberately NOT folded in — it is
  /// compared separately by the determinism battery, so the digest
  /// stays invariant across wire-mode ablations whose CI legs diff
  /// sweep output line-for-line.
  uint64_t replay_digest = 0;

  bool ok() const { return completed && violations.empty(); }
};

/// Runs one campaign: builds a SimCluster, submits synthetic apps,
/// expands the seeded fault schedule, monitors invariants continuously,
/// heals, and demands eventual completion. Sharded configs
/// (cluster.shards > 1) submit through the federation router and bind
/// each app to the shard that accepted it.
CampaignResult RunCampaign(uint64_t seed, const CampaignConfig& config);

/// A federation campaign shape: `shards` fault domains over a 4x4
/// topology, one app per shard plus a mid-window spillover wave, and a
/// fault mix including shard crash-loops and directory outages.
CampaignConfig ShardedCampaignConfig(int shards);

/// Human-readable failure dump: violations, fault schedule and trace —
/// everything needed to replay the failure from its seed.
std::string FormatCampaignFailure(const CampaignResult& result);

struct SweepResult {
  int passed = 0;
  int failed = 0;
  std::vector<uint64_t> failing_seeds;
  std::vector<CampaignResult> failures;
  /// Seed-ordered replay digests, one per swept seed (digests[i] is
  /// seed first_seed + i). The --jobs 1 and --jobs N vectors must be
  /// identical element for element.
  std::vector<uint64_t> digests;
  /// Workers the sweep actually fanned out over (1 = serial).
  int jobs = 1;
  /// Wall-clock of the whole sweep, for the CI regression record.
  double wall_seconds = 0;
  /// The runner's accounting exported through a MetricsRegistry
  /// (sweep::ExportStats) as obs::MetricsToCsv — sweep.tasks is
  /// deterministic, the steal/worker/wall rows carry realtime=1. Feed
  /// it to `trace_stats --metrics` for the parallel-sweep health table.
  std::string sweep_metrics_csv;
};

/// Runs `count` campaigns with seeds first_seed .. first_seed+count-1.
/// `jobs` fans the seeds out across a work-stealing worker pool (see
/// fuxi::sweep::SweepRunner): 1 runs serially on the calling thread,
/// 0 uses one worker per hardware core. Each seed gets its own
/// SimCluster on whichever worker picks it up; the reduction into
/// SweepResult is always performed in seed order after every campaign
/// finished, so the result — including the order of `failures` — is
/// byte-identical for every jobs value.
SweepResult RunSeedSweep(uint64_t first_seed, int count,
                         const CampaignConfig& config, int jobs = 1);

}  // namespace fuxi::chaos

#endif  // FUXI_CHAOS_CAMPAIGN_H_
