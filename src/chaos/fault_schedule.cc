#include "chaos/fault_schedule.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace fuxi::chaos {

ChaosEngine::ChaosEngine(runtime::SimCluster* cluster)
    : cluster_(cluster), baseline_config_(*cluster->network().mutable_config()) {
  FUXI_CHECK(cluster != nullptr);
}

void ChaosEngine::Note(const std::string& what) {
  log_.push_back(InjectedFault{cluster_->sim().Now(), what});
}

void ChaosEngine::Inject(const Fault& fault) {
  Note(fault.description);
  fault.apply();
}

sim::EventHandle ChaosEngine::At(double when, Fault fault) {
  return cluster_->sim().ScheduleAt(
      when, [this, fault = std::move(fault)] { Inject(fault); });
}

Fault ChaosEngine::KillPrimaryMaster() {
  return {"KillPrimaryMaster", [this] { cluster_->KillPrimaryMaster(); }};
}

Fault ChaosEngine::RestartDeadMasters() {
  return {"RestartDeadMasters", [this] { cluster_->RestartDeadMasters(); }};
}

Fault ChaosEngine::MasterCrashLoop(int kills, double gap) {
  std::ostringstream name;
  name << "MasterCrashLoop(kills=" << kills << ", gap=" << gap << ")";
  return {name.str(), [this, kills, gap] {
            cluster_->KillPrimaryMaster();
            double now = cluster_->sim().Now();
            for (int i = 1; i < kills; ++i) {
              At(now + i * gap, {"MasterCrashLoop:kill-next-primary", [this] {
                                   cluster_->RestartDeadMasters();
                                   cluster_->KillPrimaryMaster();
                                 }});
            }
            At(now + kills * gap, RestartDeadMasters());
          }};
}

Fault ChaosEngine::HaltMachine(MachineId machine) {
  return {"HaltMachine(m" + std::to_string(machine.value()) + ")",
          [this, machine] { cluster_->HaltMachine(machine); }};
}

Fault ChaosEngine::ReviveMachine(MachineId machine) {
  return {"ReviveMachine(m" + std::to_string(machine.value()) + ")",
          [this, machine] { cluster_->ReviveMachine(machine); }};
}

Fault ChaosEngine::CrashAgent(MachineId machine) {
  return {"CrashAgent(m" + std::to_string(machine.value()) + ")",
          [this, machine] { cluster_->agent(machine)->Crash(); }};
}

Fault ChaosEngine::RestartAgent(MachineId machine) {
  return {"RestartAgent(m" + std::to_string(machine.value()) + ")",
          [this, machine] {
            agent::FuxiAgent* agent = cluster_->agent(machine);
            if (!agent->is_alive() && !cluster_->machine_halted(machine)) {
              agent->Restart();
            }
          }};
}

Fault ChaosEngine::RackPowerLoss(RackId rack) {
  return {"RackPowerLoss(r" + std::to_string(rack.value()) + ")",
          [this, rack] {
            const cluster::Rack& r =
                cluster_->topology().racks()[static_cast<size_t>(rack.value())];
            for (MachineId machine : r.machines) {
              cluster_->HaltMachine(machine);
            }
          }};
}

Fault ChaosEngine::RackRevive(RackId rack) {
  return {"RackRevive(r" + std::to_string(rack.value()) + ")",
          [this, rack] {
            const cluster::Rack& r =
                cluster_->topology().racks()[static_cast<size_t>(rack.value())];
            for (MachineId machine : r.machines) {
              if (cluster_->machine_halted(machine)) {
                cluster_->ReviveMachine(machine);
              }
            }
          }};
}

Fault ChaosEngine::CutAgentUplink(MachineId machine) {
  return {"CutAgentUplink(m" + std::to_string(machine.value()) + ")",
          [this, machine] {
            NodeId agent_node(100 + machine.value());
            for (int i = 0; i < cluster_->master_count(); ++i) {
              NodeId master_node = cluster_->master(i)->node();
              cluster_->network().CutLink(agent_node, master_node);
              cuts_.insert({agent_node, master_node});
            }
          }};
}

Fault ChaosEngine::HealAgentUplink(MachineId machine) {
  return {"HealAgentUplink(m" + std::to_string(machine.value()) + ")",
          [this, machine] {
            NodeId agent_node(100 + machine.value());
            for (int i = 0; i < cluster_->master_count(); ++i) {
              NodeId master_node = cluster_->master(i)->node();
              cluster_->network().HealLink(agent_node, master_node);
              cuts_.erase({agent_node, master_node});
            }
          }};
}

Fault ChaosEngine::FlapAgent(MachineId machine, double period, double duty) {
  std::ostringstream name;
  name << "FlapAgent(m" << machine.value() << ", period=" << period
       << ", duty=" << duty << ")";
  return {name.str(), [this, machine, period, duty] {
            NodeId agent_node(100 + machine.value());
            auto it = flaps_.find(machine);
            if (it != flaps_.end()) it->second.Cancel();
            flaps_[machine] =
                cluster_->network().Flap(agent_node, period, duty);
          }};
}

Fault ChaosEngine::StopFlap(MachineId machine) {
  return {"StopFlap(m" + std::to_string(machine.value()) + ")",
          [this, machine] {
            auto it = flaps_.find(machine);
            if (it != flaps_.end()) {
              it->second.Cancel();
              flaps_.erase(it);
            }
          }};
}

Fault ChaosEngine::DropBurst(double probability, double duration) {
  std::ostringstream name;
  name << "DropBurst(p=" << probability << ", d=" << duration << ")";
  return {name.str(), [this, probability, duration] {
            cluster_->network().mutable_config()->drop_probability =
                probability;
            At(cluster_->sim().Now() + duration,
               {"DropBurst:restore", [this] {
                  cluster_->network().mutable_config()->drop_probability =
                      baseline_config_.drop_probability;
                }});
          }};
}

Fault ChaosEngine::DuplicateBurst(double probability, double duration) {
  std::ostringstream name;
  name << "DuplicateBurst(p=" << probability << ", d=" << duration << ")";
  return {name.str(), [this, probability, duration] {
            cluster_->network().mutable_config()->duplicate_probability =
                probability;
            At(cluster_->sim().Now() + duration,
               {"DuplicateBurst:restore", [this] {
                  cluster_->network().mutable_config()->duplicate_probability =
                      baseline_config_.duplicate_probability;
                }});
          }};
}

Fault ChaosEngine::CorruptionBurst(double probability, double duration) {
  std::ostringstream name;
  name << "CorruptionBurst(p=" << probability << ", d=" << duration << ")";
  return {name.str(), [this, probability, duration] {
            cluster_->network().mutable_config()->corrupt_probability =
                probability;
            At(cluster_->sim().Now() + duration,
               {"CorruptionBurst:restore", [this] {
                  cluster_->network().mutable_config()->corrupt_probability =
                      baseline_config_.corrupt_probability;
                }});
          }};
}

Fault ChaosEngine::TruncationBurst(double probability, double duration) {
  std::ostringstream name;
  name << "TruncationBurst(p=" << probability << ", d=" << duration << ")";
  return {name.str(), [this, probability, duration] {
            cluster_->network().mutable_config()->truncate_probability =
                probability;
            At(cluster_->sim().Now() + duration,
               {"TruncationBurst:restore", [this] {
                  cluster_->network().mutable_config()->truncate_probability =
                      baseline_config_.truncate_probability;
                }});
          }};
}

Fault ChaosEngine::KillShardPrimary(int shard) {
  return {"KillShardPrimary(shard" + std::to_string(shard) + ")",
          [this, shard] { cluster_->KillShardPrimary(shard); }};
}

Fault ChaosEngine::ShardCrashLoop(int shard, int kills, double gap) {
  std::ostringstream name;
  name << "ShardCrashLoop(shard" << shard << ", kills=" << kills
       << ", gap=" << gap << ")";
  return {name.str(), [this, shard, kills, gap] {
            cluster_->KillShardPrimary(shard);
            double now = cluster_->sim().Now();
            for (int i = 1; i < kills; ++i) {
              At(now + i * gap,
                 {"ShardCrashLoop:kill-next-primary", [this, shard] {
                    cluster_->RestartDeadMasters();
                    cluster_->KillShardPrimary(shard);
                  }});
            }
            At(now + kills * gap, RestartDeadMasters());
          }};
}

Fault ChaosEngine::CutDirectoryReplica(int replica) {
  return {"CutDirectoryReplica(d" + std::to_string(replica) + ")",
          [this, replica] {
            NodeId node = cluster_->directory(replica)->node();
            cluster_->network().Partition(node);
            partitions_.insert(node);
          }};
}

Fault ChaosEngine::HealDirectoryReplica(int replica) {
  return {"HealDirectoryReplica(d" + std::to_string(replica) + ")",
          [this, replica] {
            NodeId node = cluster_->directory(replica)->node();
            cluster_->network().Heal(node);
            partitions_.erase(node);
          }};
}

namespace {

/// First booked machine of the lowest-id reservation matching `pred`
/// across every live primary's planner, or -1. Deterministic: masters
/// in index order, reservations in id order, bookings in key order.
template <typename Pred>
int64_t FindReservedMachine(runtime::SimCluster* cluster, Pred pred) {
  for (int i = 0; i < cluster->master_count(); ++i) {
    master::FuxiMaster* m = cluster->master(i);
    if (!m->is_alive() || !m->is_primary() || m->scheduler() == nullptr) {
      continue;
    }
    const planner::ClusterPlanner* planner = m->scheduler()->planner();
    if (planner == nullptr) continue;
    for (const auto& [id, res] : planner->reservations()) {
      (void)id;
      if (!pred(res)) continue;
      for (const auto& [key, bookings] : res.bookings) {
        (void)key;
        for (const planner::Reservation::Booking& booking : bookings) {
          if (booking.machine >= 0) return booking.machine;
        }
      }
    }
  }
  return -1;
}

}  // namespace

Fault ChaosEngine::ReservationChurn(double outage) {
  std::ostringstream name;
  name << "ReservationChurn(outage=" << outage << ")";
  return {name.str(), [this, outage] {
            int64_t target = FindReservedMachine(
                cluster_, [](const planner::Reservation&) { return true; });
            if (target < 0) {
              Note("ReservationChurn: no booked reservation to target");
              return;
            }
            MachineId machine(target);
            Inject(HaltMachine(machine));
            At(cluster_->sim().Now() + outage, ReviveMachine(machine));
          }};
}

Fault ChaosEngine::GangMemberLoss(double outage) {
  std::ostringstream name;
  name << "GangMemberLoss(outage=" << outage << ")";
  return {name.str(), [this, outage] {
            int64_t target =
                FindReservedMachine(cluster_, [](const planner::Reservation& r) {
                  return r.gang_id != 0;
                });
            if (target < 0) {
              Note("GangMemberLoss: no gang reservation to target");
              return;
            }
            MachineId machine(target);
            Inject(HaltMachine(machine));
            At(cluster_->sim().Now() + outage, ReviveMachine(machine));
          }};
}

Fault ChaosEngine::TornCheckpointWrite() {
  return {"TornCheckpointWrite", [this] {
            coord::CheckpointStore& store = cluster_->checkpoint();
            store.CorruptKey(store.last_put_key());
          }};
}

void ChaosEngine::ScheduleRandomCampaign(uint64_t seed,
                                         const CampaignPlanOptions& plan) {
  Rng rng(seed ^ 0xC4A05C4A05ull);

  // Deterministic machine pool for machine-scoped faults, with the tail
  // of the shuffle protected so the cluster stays schedulable.
  std::vector<MachineId> pool;
  for (const cluster::Machine& machine : cluster_->topology().machines()) {
    pool.push_back(machine.id);
  }
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.Uniform(i)]);
  }
  size_t protect = std::min<size_t>(
      pool.size() > 1 ? pool.size() - 1 : 0,
      static_cast<size_t>(std::max(plan.protected_machines, 0)));
  size_t usable = pool.size() - protect;
  size_t next_machine = 0;
  auto take_machine = [&](MachineId* out) {
    if (next_machine >= usable) return false;
    *out = pool[next_machine++];
    return true;
  };

  enum Kind {
    kMachineBounce,
    kAgentBounce,
    kRackOutage,
    kMasterFailover,
    kMasterCrashLoop,
    kLinkCut,
    kFlap,
    kDropBurst,
    kDuplicateBurst,
    kShardCrashLoop,
    kDirectoryOutage,
    kReservationChurn,
    kGangMemberLoss,
  };
  std::vector<Kind> kinds;
  if (plan.machine_faults) {
    kinds.insert(kinds.end(), {kMachineBounce, kMachineBounce, kAgentBounce,
                               kAgentBounce});
  }
  if (plan.rack_faults) kinds.push_back(kRackOutage);
  if (plan.master_faults) {
    kinds.insert(kinds.end(), {kMasterFailover, kMasterCrashLoop});
  }
  if (plan.link_faults) kinds.push_back(kLinkCut);
  if (plan.flap_faults) kinds.push_back(kFlap);
  if (plan.burst_faults) {
    kinds.insert(kinds.end(), {kDropBurst, kDuplicateBurst});
  }
  // Federation faults only exist in sharded clusters, so the unsharded
  // kind pool — and with it every rng draw below — is exactly the
  // legacy stream (golden replays pin this).
  if (cluster_->shard_count() > 1 && plan.master_faults) {
    kinds.insert(kinds.end(), {kShardCrashLoop, kShardCrashLoop});
  }
  if (cluster_->shard_count() > 1 && cluster_->directory_count() > 0 &&
      plan.link_faults) {
    kinds.push_back(kDirectoryOutage);
  }
  // Planner faults are opt-in, so the legacy kind pool — and every rng
  // draw of the legacy schedule — is untouched by default.
  if (plan.planner_faults) {
    kinds.insert(kinds.end(), {kReservationChurn, kGangMemberLoss});
  }
  if (kinds.empty()) return;

  bool rack_done = false;
  double lease = cluster_->options().master.lock_lease;
  for (int episode = 0; episode < plan.episodes; ++episode) {
    Kind kind = kinds[rng.Uniform(kinds.size())];
    double outage = plan.min_outage +
                    rng.NextDouble() * (plan.max_outage - plan.min_outage);
    double latest = plan.start + std::max(plan.duration - outage, 0.0);
    double t0 = plan.start + rng.NextDouble() * (latest - plan.start);
    MachineId machine;
    switch (kind) {
      case kMachineBounce:
        if (!take_machine(&machine)) break;
        At(t0, HaltMachine(machine));
        At(t0 + outage, ReviveMachine(machine));
        break;
      case kAgentBounce:
        if (!take_machine(&machine)) break;
        // Daemon-only bounce: processes survive and must be re-adopted.
        At(t0, CrashAgent(machine));
        At(t0 + std::min(outage, 4.0), RestartAgent(machine));
        break;
      case kRackOutage: {
        if (rack_done || cluster_->topology().racks().size() < 2) break;
        rack_done = true;
        RackId rack(static_cast<int64_t>(
            rng.Uniform(cluster_->topology().racks().size())));
        At(t0, RackPowerLoss(rack));
        At(t0 + outage, RackRevive(rack));
        break;
      }
      case kMasterFailover:
        At(t0, KillPrimaryMaster());
        At(t0 + std::max(outage, lease), RestartDeadMasters());
        break;
      case kMasterCrashLoop: {
        // The loop's kills must land inside the fault window, or the
        // campaign would keep injecting after HealEverything().
        int kills = 1 + static_cast<int>(rng.Uniform(2));
        double gap = lease * 1.2;
        double span = kills * gap;
        if (span > plan.duration) {
          kills = 1;
          span = gap;
        }
        double last_start = plan.start + std::max(plan.duration - span, 0.0);
        double loop_t0 =
            plan.start + rng.NextDouble() * (last_start - plan.start);
        At(loop_t0, MasterCrashLoop(kills, gap));
        break;
      }
      case kLinkCut:
        if (!take_machine(&machine)) break;
        At(t0, CutAgentUplink(machine));
        At(t0 + outage, HealAgentUplink(machine));
        break;
      case kFlap:
        if (!take_machine(&machine)) break;
        At(t0, FlapAgent(machine, 1.0 + rng.NextDouble() * 2.0,
                         0.3 + rng.NextDouble() * 0.3));
        At(t0 + outage, StopFlap(machine));
        break;
      case kDropBurst:
        At(t0, DropBurst(0.05 + rng.NextDouble() * 0.2, outage));
        break;
      case kDuplicateBurst:
        At(t0, DuplicateBurst(0.05 + rng.NextDouble() * 0.3, outage));
        break;
      case kShardCrashLoop: {
        int shard = static_cast<int>(
            rng.Uniform(static_cast<size_t>(cluster_->shard_count())));
        int kills = 1 + static_cast<int>(rng.Uniform(2));
        double gap = lease * 1.2;
        double span = kills * gap;
        if (span > plan.duration) {
          kills = 1;
          span = gap;
        }
        double last_start = plan.start + std::max(plan.duration - span, 0.0);
        double loop_t0 =
            plan.start + rng.NextDouble() * (last_start - plan.start);
        At(loop_t0, ShardCrashLoop(shard, kills, gap));
        break;
      }
      case kDirectoryOutage: {
        int replica = static_cast<int>(
            rng.Uniform(static_cast<size_t>(cluster_->directory_count())));
        At(t0, CutDirectoryReplica(replica));
        At(t0 + outage, HealDirectoryReplica(replica));
        break;
      }
      case kReservationChurn:
        At(t0, ReservationChurn(std::min(outage, 5.0)));
        break;
      case kGangMemberLoss:
        At(t0, GangMemberLoss(std::min(outage, 5.0)));
        break;
    }
  }
}

void ChaosEngine::HealEverything() {
  Note("HealEverything");
  for (auto& [machine, handle] : flaps_) handle.Cancel();
  flaps_.clear();
  for (const auto& [from, to] : cuts_) {
    cluster_->network().HealLink(from, to);
  }
  cuts_.clear();
  for (NodeId node : partitions_) cluster_->network().Heal(node);
  partitions_.clear();
  net::Network::Config* config = cluster_->network().mutable_config();
  config->drop_probability = baseline_config_.drop_probability;
  config->duplicate_probability = baseline_config_.duplicate_probability;
  config->corrupt_probability = baseline_config_.corrupt_probability;
  config->truncate_probability = baseline_config_.truncate_probability;
  cluster_->RestartDeadMasters();
  std::set<MachineId> halted = cluster_->halted_machines();
  for (MachineId machine : halted) cluster_->ReviveMachine(machine);
  for (const cluster::Machine& machine : cluster_->topology().machines()) {
    agent::FuxiAgent* agent = cluster_->agent(machine.id);
    if (!agent->is_alive()) agent->Restart();
  }
}

std::string ChaosEngine::LogDump() const {
  std::ostringstream out;
  for (const InjectedFault& fault : log_) {
    out << "t=" << fault.time << " " << fault.description << "\n";
  }
  return out.str();
}

}  // namespace fuxi::chaos
