#ifndef FUXI_CHAOS_INVARIANT_MONITOR_H_
#define FUXI_CHAOS_INVARIANT_MONITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "runtime/sim_cluster.h"

namespace fuxi::chaos {

/// One observed safety violation: what broke, when, and enough detail
/// to start debugging from the campaign dump alone.
struct Violation {
  double time = 0;
  std::string invariant;
  std::string detail;
};

struct InvariantMonitorOptions {
  /// Minimum virtual time between heavy sweeps (full scheduler audit,
  /// per-machine capacity/process scans). Cheap checks (primary count,
  /// generation monotonicity) run after *every* simulator event.
  double heavy_check_interval = 0.25;
  /// Cross-component views are eventually consistent: a condition that
  /// involves more than one component (two masters both believing they
  /// are primary for an instant between lease expiry and renewal, an
  /// agent capacity table that a corrective delta has not reached yet)
  /// only counts as a violation when it persists beyond these windows.
  double split_brain_grace = 5.0;
  /// Must stay below the agent's periodic allocation-report repair
  /// interval, or real double-grant bugs get silently repaired before
  /// they count as sustained.
  double overcommit_grace = 6.0;
  /// Must exceed the agent/master reconcile period (allocation report
  /// every ~10 heartbeats): a process whose stop request was lost is
  /// legitimately reaped only on the next reconcile.
  double orphan_grace = 15.0;
  bool check_single_primary = true;
  bool check_generation_monotonic = true;
  bool check_scheduler_conservation = true;
  bool check_blacklist_cap = true;
  bool check_agent_overcommit = true;
  bool check_halted_machines = true;
  bool check_orphan_processes = true;
  /// Sharded clusters only: a machine must never be online in a shard
  /// scheduler other than its owner's (fault-domain isolation — a
  /// foreign shard granting on the machine double-books it globally
  /// even when every per-shard conservation audit passes).
  bool check_shard_isolation = true;
  /// fuxi::planner invariants (trivially true when no planner is live,
  /// so legacy campaigns and their golden digests are untouched):
  /// the scheduled-point timelines never admit overcommit at any future
  /// point, and an unstarted gang holds zero grants on any member.
  bool check_planner_overcommit = true;
  bool check_gang_atomicity = true;
  /// Stop recording after this many violations (one bad invariant can
  /// otherwise flood the report every heavy sweep).
  size_t max_violations = 64;
};

/// Hooks the cluster's simulator and checks cross-component safety
/// invariants continuously — after every event transition, not just at
/// test checkpoints — so a campaign failure points at the exact virtual
/// time the cluster first left its safe envelope:
///   * at most one elected primary per lease epoch, and the lock
///     holder's generation never regresses
///   * grant conservation inside the scheduler (free + granted ==
///     capacity, per-machine granted <= capacity, quota consistency)
///   * no agent capacity table exceeding its machine's physical
///     capacity (the observable symptom of a double-grant after a
///     failover that skipped the Figure 7 soft-state rebuild)
///   * the blacklist never exceeds blacklist_cap_fraction
///   * a halted machine hosts no live processes, and no process
///     outlives its application past the reconcile grace (orphans)
/// External liveness conditions (eventual job completion once faults
/// cease) are reported through Report() so everything lands in one
/// violation list.
class InvariantMonitor {
 public:
  /// Returns true while `app` is a live application (submitted, not
  /// finished). Installed by the campaign; without it the orphan check
  /// is skipped.
  using AppLiveness = std::function<bool(AppId)>;

  explicit InvariantMonitor(runtime::SimCluster* cluster,
                            InvariantMonitorOptions options = {});
  ~InvariantMonitor();

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Installs the post-event hook. The monitor owns the simulator's
  /// single observer slot until Stop().
  void Start();
  void Stop();

  void set_app_liveness(AppLiveness fn) { app_live_ = std::move(fn); }

  /// Runs a full sweep immediately (tests use this at checkpoints).
  void CheckNow();

  /// Records an externally detected violation (e.g. the campaign's
  /// eventual-completion deadline).
  void Report(const std::string& invariant, const std::string& detail);

  const std::vector<Violation>& violations() const { return violations_; }

  /// Chrome trace_event JSON dumped from the cluster's flight recorder
  /// the instant the FIRST violation fired — the causal message history
  /// leading up to the failure, before later traffic overwrites the
  /// ring. Empty while no violation has been recorded (or when tracing
  /// is compiled out).
  const std::string& trace_dump() const { return trace_dump_; }

  /// Decision-audit JSON (obs::ExportAuditJson) dumped at the same
  /// instant as trace_dump: the scheduling decisions leading up to the
  /// first violation, ready for tools/fuxi_explain. Empty while no
  /// violation has been recorded (or when audit is compiled out).
  const std::string& audit_dump() const { return audit_dump_; }

  uint64_t heavy_checks_run() const { return checks_; }
  /// FNV-1a digest folded over every heavy sweep's observed state.
  /// Identical seeds must replay to identical digests.
  uint64_t state_hash() const { return hash_; }
  std::string Summary() const;

 private:
  struct PendingCondition {
    double since = 0;
    bool fired = false;
    std::string detail;
  };

  void OnEvent(double now);
  void CheapChecks(double now);
  void HeavyChecks(double now);
  /// Sustained-condition tracker: `bad` must hold continuously for
  /// `grace` before a violation fires; it re-arms once the condition
  /// clears.
  void Sustained(const std::string& key, bool bad, double grace, double now,
                 const std::string& detail);
  void Record(double now, const std::string& invariant,
              const std::string& detail);
  void Fold(uint64_t value);
  void FoldTime(double value);

  runtime::SimCluster* cluster_;
  InvariantMonitorOptions options_;
  AppLiveness app_live_;
  bool installed_ = false;
  double last_heavy_ = -1e18;
  /// Last observed election generation, per shard (one entry in the
  /// unsharded cluster).
  std::vector<uint64_t> last_shard_generation_;
  /// Machines owned by each shard (cached from the topology).
  std::vector<int64_t> shard_machine_count_;
  uint64_t checks_ = 0;
  uint64_t hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::map<std::string, PendingCondition> pending_;
  std::vector<Violation> violations_;
  std::string trace_dump_;
  std::string audit_dump_;
};

}  // namespace fuxi::chaos

#endif  // FUXI_CHAOS_INVARIANT_MONITOR_H_
