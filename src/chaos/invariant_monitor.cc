#include "chaos/invariant_monitor.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "obs/exporters.h"

namespace fuxi::chaos {

InvariantMonitor::InvariantMonitor(runtime::SimCluster* cluster,
                                   InvariantMonitorOptions options)
    : cluster_(cluster), options_(options) {
  FUXI_CHECK(cluster != nullptr);
  size_t shards = static_cast<size_t>(cluster->shard_count());
  last_shard_generation_.assign(shards, 0);
  shard_machine_count_.assign(shards, 0);
  for (const cluster::Machine& machine : cluster->topology().machines()) {
    ++shard_machine_count_[static_cast<size_t>(
        cluster->shard_of_machine(machine.id))];
  }
}

InvariantMonitor::~InvariantMonitor() { Stop(); }

void InvariantMonitor::Start() {
  if (installed_) return;
  installed_ = true;
  cluster_->sim().SetPostEventHook([this](double now) { OnEvent(now); });
}

void InvariantMonitor::Stop() {
  if (!installed_) return;
  installed_ = false;
  cluster_->sim().SetPostEventHook(nullptr);
}

void InvariantMonitor::OnEvent(double now) {
  CheapChecks(now);
  if (now - last_heavy_ >= options_.heavy_check_interval) {
    last_heavy_ = now;
    HeavyChecks(now);
  }
}

void InvariantMonitor::CheckNow() {
  double now = cluster_->sim().Now();
  CheapChecks(now);
  last_heavy_ = now;
  HeavyChecks(now);
}

void InvariantMonitor::Report(const std::string& invariant,
                              const std::string& detail) {
  Record(cluster_->sim().Now(), invariant, detail);
}

void InvariantMonitor::Record(double now, const std::string& invariant,
                              const std::string& detail) {
  if (violations_.size() >= options_.max_violations) return;
  FUXI_LOG(kWarning) << "invariant violated at t=" << now << ": "
                     << invariant << " (" << detail << ")";
  if (violations_.empty() && obs::kTracingEnabled) {
    // Dump the flight recorder NOW, before the traffic that follows the
    // first failure overwrites the causal history that produced it.
    trace_dump_ = obs::ExportChromeTrace(cluster_->obs().trace.Snapshot());
  }
  if (violations_.empty() && obs::kAuditEnabled) {
    // Same urgency for the decision audit: the ring must be frozen
    // before post-failure scheduling overwrites the decisions at fault.
    audit_dump_ = obs::ExportAuditJson(cluster_->obs().audit.Snapshot());
  }
  violations_.push_back(Violation{now, invariant, detail});
}

void InvariantMonitor::Sustained(const std::string& key, bool bad,
                                 double grace, double now,
                                 const std::string& detail) {
  auto it = pending_.find(key);
  if (!bad) {
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  if (it == pending_.end()) {
    pending_.emplace(key, PendingCondition{now, false, detail});
    return;
  }
  it->second.detail = detail;
  if (!it->second.fired && now - it->second.since >= grace) {
    it->second.fired = true;
    Record(now, key,
           detail + " (sustained since t=" + std::to_string(it->second.since) +
               ")");
  }
}

void InvariantMonitor::Fold(uint64_t value) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (value >> (i * 8)) & 0xFF;
    hash_ *= 1099511628211ull;
  }
}

void InvariantMonitor::FoldTime(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  Fold(bits);
}

void InvariantMonitor::CheapChecks(double now) {
  // One pass per shard (the unsharded cluster is the one-shard case and
  // produces exactly the legacy condition keys). Masters are matched to
  // their shard by election lease so the loop never depends on
  // construction order.
  int shards = cluster_->shard_count();
  for (int k = 0; k < shards; ++k) {
    const std::string lock = cluster_->shard_lock(k);
    const std::string suffix =
        shards > 1 ? ":shard" + std::to_string(k) : "";
    NodeId holder = cluster_->locks().Holder(lock);
    int primaries = 0;
    master::FuxiMaster* holder_primary = nullptr;
    for (int i = 0; i < cluster_->master_count(); ++i) {
      master::FuxiMaster* m = cluster_->master(i);
      if (m->lock_name() != lock) continue;
      bool acting_primary = m->is_alive() && m->is_primary();
      if (acting_primary) {
        ++primaries;
        if (m->node() == holder) holder_primary = m;
      }
      if (options_.check_single_primary) {
        // A primary that no longer holds the lock must notice at its next
        // renewal and step down; staying in charge past the grace window
        // means two masters could be dispatching grants concurrently.
        Sustained(
            "primary-without-lock:node" + std::to_string(m->node().value()),
            acting_primary && m->node() != holder,
            options_.split_brain_grace, now,
            "master node " + std::to_string(m->node().value()) +
                " acts as primary but the lock is held by node " +
                std::to_string(holder.value()));
      }
    }
    if (options_.check_single_primary) {
      Sustained("single-primary" + suffix, primaries > 1,
                options_.split_brain_grace, now,
                std::to_string(primaries) +
                    " masters act as primary at once");
    }
    if (options_.check_generation_monotonic && holder_primary != nullptr) {
      uint64_t generation = holder_primary->generation();
      uint64_t& last_generation =
          last_shard_generation_[static_cast<size_t>(k)];
      if (generation < last_generation) {
        Record(now, "generation-monotonic" + suffix,
               "lock holder node " +
                   std::to_string(holder_primary->node().value()) +
                   " acts with generation " + std::to_string(generation) +
                   " after generation " + std::to_string(last_generation) +
                   " was seen");
      } else {
        last_generation = generation;
      }
    }
  }
}

void InvariantMonitor::HeavyChecks(double now) {
  ++checks_;
  FoldTime(now);

  // Per-shard sweep. With one shard the fold sequence and condition
  // keys below are byte-identical to the pre-federation monitor — the
  // golden replay digests pin this.
  int shards = cluster_->shard_count();
  std::vector<master::FuxiMaster*> primaries(
      static_cast<size_t>(shards), nullptr);
  for (int k = 0; k < shards; ++k) {
    const std::string lock = cluster_->shard_lock(k);
    const std::string suffix =
        shards > 1 ? ":shard" + std::to_string(k) : "";
    NodeId holder = cluster_->locks().Holder(lock);
    master::FuxiMaster* primary = nullptr;
    for (int i = 0; i < cluster_->master_count(); ++i) {
      master::FuxiMaster* m = cluster_->master(i);
      if (m->lock_name() != lock) continue;
      if (m->is_alive() && m->is_primary() && m->node() == holder) primary = m;
    }
    primaries[static_cast<size_t>(k)] = primary;
    Fold(primary != nullptr ? primary->generation() : 0);

    if (primary != nullptr && primary->scheduler() != nullptr) {
      if (options_.check_scheduler_conservation &&
          !primary->scheduler()->CheckInvariants()) {
        Record(now, "scheduler-conservation" + suffix,
               "scheduler cross-structure audit failed (free+granted vs "
               "capacity, quota accounting, or locality-tree totals)");
      }
      // fuxi::planner invariants. No Fold: the planner is absent in
      // legacy runs and the golden replays pin the fold stream.
      if (options_.check_planner_overcommit &&
          !primary->scheduler()->PlannerOvercommitOk()) {
        Record(now, "planner-overcommit" + suffix,
               "a machine or rack timeline admits booked load above "
               "free-now + expected releases at some scheduled point");
      }
      if (options_.check_gang_atomicity &&
          !primary->scheduler()->PlannerGangAtomicityOk()) {
        Record(now, "gang-atomicity" + suffix,
               "an unstarted gang holds grants on at least one member "
               "(all-or-nothing transaction leaked a partial placement)");
      }
      if (options_.check_blacklist_cap) {
        size_t cap = static_cast<size_t>(
            cluster_->options().master.blacklist_cap_fraction *
            static_cast<double>(
                shard_machine_count_[static_cast<size_t>(k)]));
        if (cap < 1) cap = 1;
        size_t blacklisted = primary->Blacklisted().size();
        Fold(blacklisted);
        if (blacklisted > cap) {
          Record(now, "blacklist-cap" + suffix,
                 std::to_string(blacklisted) +
                     " machines blacklisted, cap is " + std::to_string(cap));
        }
      }
    }
  }

  // Cross-shard accounting (sharded clusters only, so the unsharded
  // fold stream is untouched): the federation as a whole must never
  // promise more than the online machines physically have, even while
  // spillover moves load between shards.
  if (shards > 1 && options_.check_scheduler_conservation) {
    cluster::ResourceVector global_granted;
    cluster::ResourceVector global_capacity;
    for (master::FuxiMaster* primary : primaries) {
      if (primary == nullptr || primary->scheduler() == nullptr) continue;
      global_granted += primary->scheduler()->TotalGranted();
      global_capacity += primary->scheduler()->TotalCapacity();
    }
    Fold(static_cast<uint64_t>(global_granted.cpu()));
    Fold(static_cast<uint64_t>(global_granted.memory()));
    if (!global_granted.FitsIn(global_capacity)) {
      Record(now, "global-conservation",
             "federation grants " + global_granted.ToString() +
                 " exceed online capacity " + global_capacity.ToString());
    }
  }

  for (const cluster::Machine& machine : cluster_->topology().machines()) {
    master::FuxiMaster* primary = primaries[static_cast<size_t>(
        cluster_->shard_of_machine(machine.id))];
    std::string mtag = "m";
    mtag += std::to_string(machine.id.value());
    agent::FuxiAgent* agent = cluster_->agent(machine.id);
    agent::ProcessHost* host = cluster_->host(machine.id);

    if (options_.check_agent_overcommit) {
      // A dead agent has no table; the sustained window restarts from
      // scratch once it revives (a stale `since` would fire spuriously).
      bool over = false;
      cluster::ResourceVector promised;
      if (agent->is_alive()) {
        promised = agent->TotalGrantedCapacity();
        Fold(static_cast<uint64_t>(promised.cpu()));
        Fold(static_cast<uint64_t>(promised.memory()));
        over = !promised.FitsIn(machine.capacity);
      }
      Sustained("agent-overcommit:" + mtag, over, options_.overcommit_grace,
                now,
                "agent on machine " + std::to_string(machine.id.value()) +
                    " holds capacity " + promised.ToString() +
                    " above physical " + machine.capacity.ToString());
    }

    if (shards > 1 && options_.check_shard_isolation) {
      // Fault-domain isolation: only the owning shard's scheduler may
      // have this machine online. A foreign shard granting here would
      // double-book the machine globally while every per-shard
      // conservation audit still passes.
      int owner = cluster_->shard_of_machine(machine.id);
      int foreign = -1;
      for (int k = 0; k < shards; ++k) {
        if (k == owner) continue;
        master::FuxiMaster* other = primaries[static_cast<size_t>(k)];
        if (other != nullptr && other->scheduler() != nullptr &&
            other->scheduler()->machine_state(machine.id).online) {
          foreign = k;
          break;
        }
      }
      Sustained("shard-isolation:" + mtag, foreign >= 0,
                options_.split_brain_grace, now,
                "machine " + std::to_string(machine.id.value()) +
                    " owned by shard " + std::to_string(owner) +
                    " is online in shard " + std::to_string(foreign) +
                    "'s scheduler");
    }

    size_t alive = host->alive_count();
    Fold(alive);
    if (options_.check_halted_machines &&
        cluster_->machine_halted(machine.id) && alive > 0) {
      // Instantaneous: HaltMachine kills every process synchronously,
      // so any survivor was resurrected on a dead machine.
      Record(now, "halted-machine-processes",
             "halted machine " + std::to_string(machine.id.value()) +
                 " hosts " + std::to_string(alive) + " live processes");
    }

    if (options_.check_orphan_processes && app_live_) {
      std::map<AppId, std::string> dead_app_processes;
      for (const agent::Process* process : host->Alive()) {
        if (!app_live_(process->app)) {
          std::ostringstream entry;
          entry << " w" << process->id.value() << "@am"
                << process->owner_am.value() << " since t="
                << process->started_at;
          dead_app_processes[process->app] += entry.str();
        }
      }
      for (const auto& [app, workers] : dead_app_processes) {
        // Cleanup of strays the application master does not know about
        // travels master -> agent (capacity revocation), so the clock
        // only runs while a primary is elected; the window restarts
        // when the control plane recovers from an outage.
        std::ostringstream detail;
        detail << "processes of finished app " << app.value()
               << " still run on machine " << machine.id.value() << ":"
               << workers;
        Sustained(
            "orphan-processes:" + mtag + ":app" + std::to_string(app.value()),
            primary != nullptr, options_.orphan_grace, now, detail.str());
      }
      // Clear sustained trackers for apps that no longer have strays.
      for (auto it = pending_.begin(); it != pending_.end();) {
        const std::string prefix = "orphan-processes:" + mtag + ":app";
        if (it->first.rfind(prefix, 0) == 0) {
          AppId app(std::stoll(it->first.substr(prefix.size())));
          if (dead_app_processes.count(app) == 0) {
            it = pending_.erase(it);
            continue;
          }
        }
        ++it;
      }
    }
  }
}

std::string InvariantMonitor::Summary() const {
  std::ostringstream out;
  out << "heavy_checks=" << checks_ << " state_hash=" << std::hex << hash_
      << std::dec << " violations=" << violations_.size();
  for (const Violation& v : violations_) {
    out << "\n  t=" << v.time << " [" << v.invariant << "] " << v.detail;
  }
  return out.str();
}

}  // namespace fuxi::chaos
