#include "chaos/campaign.h"

#include <memory>
#include <sstream>

#include "common/logging.h"
#include "obs/exporters.h"
#include "runtime/synthetic_app.h"

namespace fuxi::chaos {

CampaignConfig::CampaignConfig() {
  cluster.topology.racks = 2;
  cluster.topology.machines_per_rack = 4;
  cluster.topology.machine_capacity = cluster::ResourceVector(400, 8192);
}

CampaignResult RunCampaign(uint64_t seed, const CampaignConfig& config) {
  CampaignResult result;
  result.seed = seed;

  runtime::SimClusterOptions options = config.cluster;
  options.seed = seed ^ 0x9E3779B97F4A7C15ull;
  if (config.seed_restore_bug) {
    options.master.failover_restore_grants = false;
  }
  runtime::SimCluster cluster(options);
  InvariantMonitor monitor(&cluster, config.monitor);
  ChaosEngine engine(&cluster);

  cluster.Start();
  monitor.Start();
  cluster.RunFor(config.warmup);

  // Submit the synthetic workload (one single-stage app per slot).
  std::vector<std::unique_ptr<runtime::SyntheticApp>> apps;
  for (int i = 0; i < config.apps; ++i) {
    AppId app_id(1 + i);
    runtime::SyntheticStage stage;
    stage.slot_id = 0;
    stage.workers = config.workers_per_app;
    stage.instances = config.instances_per_app;
    stage.instance_duration = config.instance_duration;
    apps.push_back(std::make_unique<runtime::SyntheticApp>(
        &cluster, app_id, std::vector<runtime::SyntheticStage>{stage},
        seed * 1315423911ull + static_cast<uint64_t>(i)));
    master::SubmitAppRpc submit;
    submit.app = app_id;
    submit.client = cluster.AllocateNodeId();
    master::FuxiMaster* primary = cluster.primary();
    FUXI_CHECK(primary != nullptr);
    cluster.network().Send(submit.client, primary->node(), submit);
    cluster.RunFor(0.2);
    apps.back()->MarkSubmitted(cluster.sim().Now());
    apps.back()->StartMaster();
  }
  monitor.set_app_liveness([&apps](AppId app) {
    for (const auto& synthetic : apps) {
      if (synthetic->app() == app) return !synthetic->finished();
    }
    return false;
  });

  auto all_finished = [&apps] {
    for (const auto& synthetic : apps) {
      if (!synthetic->finished()) return false;
    }
    return true;
  };
  auto instances_done = [&apps] {
    int64_t total = 0;
    for (const auto& synthetic : apps) {
      total += synthetic->stats().instances_done;
    }
    return total;
  };

  // Periodic replay-witness digest lines.
  std::ostringstream trace;
  trace << "campaign seed=" << seed << " apps=" << config.apps
        << " machines=" << cluster.topology().machine_count() << "\n";
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) return;
    trace << "t=" << cluster.sim().Now() << " events="
          << cluster.sim().ExecutedEvents() << " done=" << instances_done()
          << " violations=" << monitor.violations().size() << " digest="
          << std::hex << monitor.state_hash() << std::dec << "\n";
    cluster.sim().Schedule(config.digest_interval, sample);
  };
  cluster.sim().Schedule(config.digest_interval, sample);

  engine.ScheduleRandomCampaign(seed, config.plan);
  cluster.RunUntil(config.plan.start + config.plan.duration);
  engine.HealEverything();

  // Liveness: once faults cease, every app must finish.
  double deadline = cluster.sim().Now() + config.settle_timeout;
  while (cluster.sim().Now() < deadline && !all_finished()) {
    cluster.RunFor(1.0);
  }
  if (all_finished()) {
    result.completed = true;
    result.completed_at = cluster.sim().Now();
  } else {
    std::ostringstream detail;
    detail << "jobs incomplete " << config.settle_timeout
           << "s after faults ceased:";
    for (const auto& synthetic : apps) {
      if (!synthetic->finished()) {
        detail << " app" << synthetic->app().value() << "="
               << synthetic->stats().instances_done << "/"
               << config.instances_per_app;
      }
    }
    monitor.Report("eventual-completion", detail.str());
  }

  // Quiesce: let sustained trackers and the final reconcile fire/clear.
  cluster.RunFor(config.cooldown);
  monitor.CheckNow();
  sampling = false;

  result.ended_at = cluster.sim().Now();
  result.events = cluster.sim().ExecutedEvents();
  result.heavy_checks = monitor.heavy_checks_run();
  result.state_hash = monitor.state_hash();
  result.instances_done = instances_done();
  result.violations = monitor.violations();
  result.fault_log = engine.LogDump();
  result.trace = trace.str();
  result.metrics_csv = obs::MetricsToCsv(cluster.obs().metrics);
  if (!result.ok()) {
    std::ostringstream residual;
    for (size_t m = 0; m < cluster.topology().machine_count(); ++m) {
      MachineId machine(static_cast<int64_t>(m));
      const agent::FuxiAgent* machine_agent = cluster.agent(machine);
      residual << "m" << m << (cluster.machine_halted(machine) ? " HALTED" : "")
               << (machine_agent->is_alive() ? "" : " agent-dead")
               << " granted=" << machine_agent->TotalGrantedCapacity().ToString();
      for (const agent::Process* process : cluster.host(machine)->Alive()) {
        residual << " [w" << process->id.value() << " app"
                 << process->app.value() << "/s" << process->slot_id
                 << " am=" << process->owner_am.value()
                 << " since=" << process->started_at << "]";
      }
      residual << "\n";
    }
    result.residual_state = residual.str();
    result.chrome_trace = monitor.trace_dump();
    result.audit_json = monitor.audit_dump();
  }
  monitor.Stop();
  return result;
}

std::string FormatCampaignFailure(const CampaignResult& result) {
  std::ostringstream out;
  out << "chaos campaign " << (result.ok() ? "replay" : "FAILED")
      << " (seed=" << result.seed
      << ", completed=" << (result.completed ? "yes" : "no")
      << ", events=" << result.events << ", state_hash=" << std::hex
      << result.state_hash << std::dec << ")\n";
  out << "-- violations (" << result.violations.size() << ") --\n";
  for (const Violation& v : result.violations) {
    out << "t=" << v.time << " [" << v.invariant << "] " << v.detail << "\n";
  }
  out << "-- fault schedule (replays byte-identically from seed "
      << result.seed << ") --\n"
      << result.fault_log;
  out << "-- event trace --\n" << result.trace;
  if (!result.residual_state.empty()) {
    out << "-- residual state --\n" << result.residual_state;
  }
  if (!result.chrome_trace.empty()) {
    // Report the span count, not the byte size: wall-clock annotations
    // inside the JSON vary in width across runs, and this dump must
    // stay byte-identical on same-seed replay.
    size_t spans = 0;
    for (size_t pos = result.chrome_trace.find("\"ph\":");
         pos != std::string::npos;
         pos = result.chrome_trace.find("\"ph\":", pos + 1)) {
      ++spans;
    }
    out << "-- flight recorder --\n"
        << "chrome_trace: " << spans
        << " spans of trace_event JSON captured at the first violation "
           "(write to a .json file, open in Perfetto, or feed to "
           "trace_stats)\n";
  }
  if (!result.audit_json.empty()) {
    size_t records = 0;
    for (size_t pos = result.audit_json.find("\"kind\":");
         pos != std::string::npos;
         pos = result.audit_json.find("\"kind\":", pos + 1)) {
      ++records;
    }
    out << "-- decision audit --\n"
        << "audit_json: " << records
        << " decision records captured at the first violation (write to "
           "a .json file and feed to fuxi_explain)\n";
  }
  return out.str();
}

SweepResult RunSeedSweep(uint64_t first_seed, int count,
                         const CampaignConfig& config) {
  SweepResult sweep;
  for (int i = 0; i < count; ++i) {
    uint64_t seed = first_seed + static_cast<uint64_t>(i);
    CampaignResult result = RunCampaign(seed, config);
    if (result.ok()) {
      ++sweep.passed;
    } else {
      ++sweep.failed;
      sweep.failing_seeds.push_back(seed);
      sweep.failures.push_back(std::move(result));
    }
  }
  return sweep;
}

}  // namespace fuxi::chaos
