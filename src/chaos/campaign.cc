#include "chaos/campaign.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string_view>

#include "common/logging.h"
#include "obs/exporters.h"
#include "runtime/synthetic_app.h"
#include "shard/messages.h"
#include "sweep/sweep_runner.h"

namespace fuxi::chaos {

namespace {

uint64_t Fnv1a(uint64_t digest, std::string_view bytes) {
  for (char c : bytes) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ull;
  }
  return digest;
}

/// Folds the campaign's replay artifacts into the determinism
/// fingerprint compared across --jobs values. Everything folded here is
/// virtual-time-stamped and seed-determined; wall-clock-bearing
/// artifacts (chrome_trace) and the separately-compared metrics CSV
/// stay out.
uint64_t ReplayDigest(const CampaignResult& result) {
  uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  digest = Fnv1a(digest, result.fault_log);
  digest = Fnv1a(digest, result.trace);
  for (const Violation& v : result.violations) {
    std::ostringstream line;
    line << v.time << '|' << v.invariant << '|' << v.detail << '\n';
    digest = Fnv1a(digest, line.str());
  }
  std::ostringstream scalars;
  scalars << result.completed << '|' << result.completed_at << '|'
          << result.ended_at << '|' << result.events << '|'
          << result.instances_done << '|' << std::hex << result.state_hash;
  return Fnv1a(digest, scalars.str());
}

/// The standard SLO rule set every campaign runs under: one rule per
/// degradation mode the paper's operators watched for. Declarative
/// policy over the telemetry series the cluster publishes; with
/// telemetry compiled out AddRule is a no-op and the whole set folds
/// away. Thresholds are deliberately conservative — a firing is a
/// degradation signal, not a failure — and every series watched is
/// virtual-time deterministic, so the event log replays byte-identically
/// from a seed.
template <typename Watchdog>
void InstallStandardSloRules(Watchdog& watchdog) {
  obs::SloRule starvation;
  starvation.name = "demand-starvation";
  starvation.series = "master.request_backlog";
  starvation.kind = obs::SloRuleKind::kSustained;
  starvation.threshold = 1;
  starvation.window = 20;
  starvation.cooldown = 60;
  starvation.detail = "unsatisfied demand backlog sustained at the master";
  watchdog.AddRule(starvation);

  obs::SloRule growth;
  growth.name = "pending-queue-growth";
  growth.series = "master.request_backlog";
  growth.kind = obs::SloRuleKind::kRate;
  growth.threshold = 5;  // units per second, over the window
  growth.window = 10;
  growth.cooldown = 60;
  growth.detail = "demand backlog growing faster than placements drain it";
  watchdog.AddRule(growth);

  obs::SloRule overcommit;
  overcommit.name = "agent-overcommit";
  overcommit.series = "derived.agent.overcommit_units";
  overcommit.kind = obs::SloRuleKind::kThreshold;
  overcommit.threshold = 1;
  overcommit.cooldown = 30;
  overcommit.detail =
      "granted capacity above physical on some machine (double-grant "
      "symptom; the invariant monitor fails the run only after its "
      "sustained grace)";
  watchdog.AddRule(overcommit);

  obs::SloRule skew;
  skew.name = "shard-skew";
  skew.series = "derived.shard.imbalance";
  skew.kind = obs::SloRuleKind::kSustained;
  skew.threshold = 0.9;
  skew.window = 30;
  skew.cooldown = 60;
  skew.detail = "one shard nearly idle while another is loaded";
  watchdog.AddRule(skew);

  obs::SloRule head_block;
  head_block.name = "backfill-head-blocking";
  head_block.series = "planner.head_fence_wait_seconds";
  head_block.kind = obs::SloRuleKind::kThreshold;
  head_block.threshold = 120;
  head_block.cooldown = 120;
  head_block.detail =
      "the EASY head reservation has been fenced off for minutes";
  watchdog.AddRule(head_block);

  obs::SloRule decode_spike;
  decode_spike.name = "decode-drop-spike";
  decode_spike.series = "net.decode_drops";
  decode_spike.kind = obs::SloRuleKind::kRate;
  decode_spike.threshold = 10;  // drops per second, over the window
  decode_spike.window = 5;
  decode_spike.cooldown = 30;
  decode_spike.detail = "wire frames failing to decode in a burst";
  watchdog.AddRule(decode_spike);

  // The Figure 7 restore-bug symptom: a worker of a finished app still
  // holding a machine because failover dropped its grant record. The
  // campaign feeds the probe (it owns app liveness); a clean run kills
  // workers within a heartbeat of stage completion, so ten sustained
  // seconds of strays is a leak, not cleanup lag. Fires well inside the
  // invariant monitor's primary-gated orphan grace — the watchdog's
  // whole point is pre-violation warning.
  obs::SloRule strays;
  strays.name = "stray-process-leak";
  strays.series = "derived.cluster.stray_processes";
  strays.kind = obs::SloRuleKind::kSustained;
  strays.threshold = 1;
  strays.window = 10;
  strays.cooldown = 60;
  strays.detail = "workers of finished apps still running (grant leak)";
  watchdog.AddRule(strays);
}

}  // namespace

CampaignConfig::CampaignConfig() {
  cluster.topology.racks = 2;
  cluster.topology.machines_per_rack = 4;
  cluster.topology.machine_capacity = cluster::ResourceVector(400, 8192);
}

CampaignResult RunCampaign(uint64_t seed, const CampaignConfig& config) {
  CampaignResult result;
  result.seed = seed;

  runtime::SimClusterOptions options = config.cluster;
  options.seed = seed ^ 0x9E3779B97F4A7C15ull;
  if (config.seed_restore_bug) {
    options.master.failover_restore_grants = false;
  }
  runtime::SimCluster cluster(options);
  InstallStandardSloRules(cluster.obs().watchdog);
  InvariantMonitor monitor(&cluster, config.monitor);
  ChaosEngine engine(&cluster);

  cluster.Start();
  monitor.Start();
  cluster.RunFor(config.warmup);

  // Sharded campaigns submit through the federation router; the reply
  // names the shard that accepted the app, and the app's master follows
  // that shard's election lease from then on.
  const bool sharded = cluster.shard_count() > 1;
  net::Endpoint route_client;
  std::map<AppId, int32_t> assigned_shard;
  NodeId route_client_node;
  if (sharded) {
    route_client_node = cluster.AllocateNodeId();
    route_client.Handle<shard::RouteReplyRpc>(
        [&assigned_shard](const net::Envelope&,
                          const shard::RouteReplyRpc& rpc) {
          if (rpc.accepted) assigned_shard.emplace(rpc.app, rpc.shard);
        });
    cluster.network().Register(route_client_node, &route_client);
  }
  auto submit_via_router = [&cluster, &route_client_node](AppId app_id) {
    shard::RouteSubmitRpc submit;
    submit.app = app_id;
    submit.client = route_client_node;
    cluster.network().Send(route_client_node, cluster.router()->node(),
                           submit);
  };
  auto await_and_start = [&](runtime::SyntheticApp* app,
                             InvariantMonitor* mon) {
    double wait_deadline = cluster.sim().Now() + 60.0;
    double next_resubmit = cluster.sim().Now() + 10.0;
    while (cluster.sim().Now() < wait_deadline &&
           assigned_shard.count(app->app()) == 0) {
      cluster.RunFor(0.2);
      // The submit and the route reply are one-shot RPCs; a drop burst
      // can eat either. Resubmitting is safe: the router dedups
      // in-flight routing, and a duplicate acceptance on another shard
      // is benign (the app binds to whichever reply reaches us first).
      if (cluster.sim().Now() >= next_resubmit &&
          assigned_shard.count(app->app()) == 0) {
        submit_via_router(app->app());
        next_resubmit = cluster.sim().Now() + 10.0;
      }
    }
    auto it = assigned_shard.find(app->app());
    if (it == assigned_shard.end()) {
      mon->Report("router-assignment",
                  "router never bound app " +
                      std::to_string(app->app().value()) + " to a shard");
      return;
    }
    app->set_master_lock(cluster.shard_lock(it->second));
    app->MarkSubmitted(cluster.sim().Now());
    app->StartMaster();
  };

  // Submit the synthetic workload (one single-stage app per slot).
  std::vector<std::unique_ptr<runtime::SyntheticApp>> apps;
  for (int i = 0; i < config.apps; ++i) {
    AppId app_id(1 + i);
    runtime::SyntheticStage stage;
    stage.slot_id = 0;
    stage.workers = config.workers_per_app;
    stage.instances = config.instances_per_app;
    stage.instance_duration = config.instance_duration;
    apps.push_back(std::make_unique<runtime::SyntheticApp>(
        &cluster, app_id, std::vector<runtime::SyntheticStage>{stage},
        seed * 1315423911ull + static_cast<uint64_t>(i)));
    if (sharded) {
      submit_via_router(app_id);
      await_and_start(apps.back().get(), &monitor);
      continue;
    }
    master::SubmitAppRpc submit;
    submit.app = app_id;
    submit.client = cluster.AllocateNodeId();
    master::FuxiMaster* primary = cluster.primary();
    FUXI_CHECK(primary != nullptr);
    cluster.network().Send(submit.client, primary->node(), submit);
    cluster.RunFor(0.2);
    apps.back()->MarkSubmitted(cluster.sim().Now());
    apps.back()->StartMaster();
  }
  // fuxi::planner workload: gang apps whose single stage is an
  // all-or-nothing worker set with a lifetime estimate. Under
  // FUXI_PLANNER=0 builds the hints are dropped at the scheduler
  // boundary and these run as ordinary apps.
  for (int i = 0; i < config.planner_apps; ++i) {
    AppId app_id(2000 + i);
    runtime::SyntheticStage stage;
    stage.slot_id = 0;
    stage.workers = config.workers_per_app;
    stage.instances = config.instances_per_app;
    stage.instance_duration = config.instance_duration;
    int64_t waves =
        (config.instances_per_app + config.workers_per_app - 1) /
        std::max<int64_t>(config.workers_per_app, 1);
    stage.plan.estimated_seconds =
        config.instance_duration * static_cast<double>(waves);
    stage.plan.gang_id = 9000 + static_cast<uint64_t>(i);
    stage.plan.gang_size = 1;
    apps.push_back(std::make_unique<runtime::SyntheticApp>(
        &cluster, app_id, std::vector<runtime::SyntheticStage>{stage},
        seed * 2246822519ull + static_cast<uint64_t>(i)));
    if (sharded) {
      submit_via_router(app_id);
      await_and_start(apps.back().get(), &monitor);
      continue;
    }
    master::SubmitAppRpc submit;
    submit.app = app_id;
    submit.client = cluster.AllocateNodeId();
    master::FuxiMaster* primary = cluster.primary();
    FUXI_CHECK(primary != nullptr);
    cluster.network().Send(submit.client, primary->node(), submit);
    cluster.RunFor(0.2);
    apps.back()->MarkSubmitted(cluster.sim().Now());
    apps.back()->StartMaster();
  }
  // The spillover wave: apps whose submissions fire in the middle of
  // the fault window, while shards crash-loop and directory replicas
  // are cut — their routing must spill around the broken fault domains.
  size_t first_wave = apps.size();
  if (sharded && config.spillover_apps > 0) {
    for (int j = 0; j < config.spillover_apps; ++j) {
      AppId app_id(1000 + j);
      runtime::SyntheticStage stage;
      stage.slot_id = 0;
      stage.workers = config.workers_per_app;
      stage.instances = config.instances_per_app;
      stage.instance_duration = config.instance_duration;
      apps.push_back(std::make_unique<runtime::SyntheticApp>(
          &cluster, app_id, std::vector<runtime::SyntheticStage>{stage},
          seed * 2654435761ull + static_cast<uint64_t>(j)));
      cluster.sim().ScheduleAt(
          config.plan.start + config.plan.duration * 0.5,
          [&submit_via_router, app_id] { submit_via_router(app_id); });
    }
  }
  monitor.set_app_liveness([&apps](AppId app) {
    for (const auto& synthetic : apps) {
      if (synthetic->app() == app) return !synthetic->finished();
    }
    return false;
  });
  // Campaign-scoped telemetry probe: only the campaign knows which apps
  // are finished, so the stray-process series (workers of finished apps
  // still alive — the restore-bug symptom) is fed from here rather than
  // from SimCluster's built-in probes. Purely virtual-time state, so
  // the series replays byte-identically from the seed.
  cluster.obs().telemetry.AddProbe(
      "derived.cluster.stray_processes", [&cluster, &apps] {
        std::set<AppId> finished;
        for (const auto& synthetic : apps) {
          if (synthetic->finished()) finished.insert(synthetic->app());
        }
        double strays = 0;
        if (finished.empty()) return strays;
        for (const cluster::Machine& machine :
             cluster.topology().machines()) {
          for (const agent::Process* process :
               cluster.host(machine.id)->Alive()) {
            if (finished.count(process->app)) strays += 1;
          }
        }
        return strays;
      });

  auto all_finished = [&apps] {
    for (const auto& synthetic : apps) {
      if (!synthetic->finished()) return false;
    }
    return true;
  };
  auto instances_done = [&apps] {
    int64_t total = 0;
    for (const auto& synthetic : apps) {
      total += synthetic->stats().instances_done;
    }
    return total;
  };

  // Periodic replay-witness digest lines.
  std::ostringstream trace;
  trace << "campaign seed=" << seed << " apps=" << config.apps
        << " machines=" << cluster.topology().machine_count() << "\n";
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) return;
    trace << "t=" << cluster.sim().Now() << " events="
          << cluster.sim().ExecutedEvents() << " done=" << instances_done()
          << " violations=" << monitor.violations().size() << " digest="
          << std::hex << monitor.state_hash() << std::dec << "\n";
    cluster.sim().Schedule(config.digest_interval, sample);
  };
  cluster.sim().Schedule(config.digest_interval, sample);

  engine.ScheduleRandomCampaign(seed, config.plan);
  cluster.RunUntil(config.plan.start + config.plan.duration);
  engine.HealEverything();

  // Bind the spillover wave: their submissions fired mid-window, so by
  // now the router has (or soon will have) spilled them onto whichever
  // shards stayed healthy; start their app masters on those shards.
  for (size_t i = first_wave; i < apps.size(); ++i) {
    await_and_start(apps[i].get(), &monitor);
  }

  // Liveness: once faults cease, every app must finish.
  double deadline = cluster.sim().Now() + config.settle_timeout;
  while (cluster.sim().Now() < deadline && !all_finished()) {
    cluster.RunFor(1.0);
  }
  if (all_finished()) {
    result.completed = true;
    result.completed_at = cluster.sim().Now();
  } else {
    std::ostringstream detail;
    detail << "jobs incomplete " << config.settle_timeout
           << "s after faults ceased:";
    for (const auto& synthetic : apps) {
      if (!synthetic->finished()) {
        detail << " app" << synthetic->app().value() << "="
               << synthetic->stats().instances_done << "/"
               << config.instances_per_app;
      }
    }
    monitor.Report("eventual-completion", detail.str());
  }

  // Quiesce: let sustained trackers and the final reconcile fire/clear.
  cluster.RunFor(config.cooldown);
  monitor.CheckNow();
  sampling = false;

  result.ended_at = cluster.sim().Now();
  result.events = cluster.sim().ExecutedEvents();
  result.heavy_checks = monitor.heavy_checks_run();
  result.state_hash = monitor.state_hash();
  result.instances_done = instances_done();
  result.violations = monitor.violations();
  result.fault_log = engine.LogDump();
  result.trace = trace.str();
  result.metrics_csv = obs::MetricsToCsv(cluster.obs().metrics);
  if (cluster.obs().telemetry.active() &&
      cluster.obs().telemetry.samples_taken() > 0) {
    result.telemetry_json = obs::ExportTelemetryJson(
        cluster.obs().telemetry, cluster.obs().watchdog);
    result.health_events = cluster.obs().watchdog.events();
  }
  if (!result.ok()) {
    std::ostringstream residual;
    for (size_t m = 0; m < cluster.topology().machine_count(); ++m) {
      MachineId machine(static_cast<int64_t>(m));
      const agent::FuxiAgent* machine_agent = cluster.agent(machine);
      residual << "m" << m << (cluster.machine_halted(machine) ? " HALTED" : "")
               << (machine_agent->is_alive() ? "" : " agent-dead")
               << " granted=" << machine_agent->TotalGrantedCapacity().ToString();
      for (const agent::Process* process : cluster.host(machine)->Alive()) {
        residual << " [w" << process->id.value() << " app"
                 << process->app.value() << "/s" << process->slot_id
                 << " am=" << process->owner_am.value()
                 << " since=" << process->started_at << "]";
      }
      residual << "\n";
    }
    result.residual_state = residual.str();
    result.chrome_trace = monitor.trace_dump();
    result.audit_json = monitor.audit_dump();
  }
  monitor.Stop();
  result.replay_digest = ReplayDigest(result);
  return result;
}

CampaignConfig ShardedCampaignConfig(int shards) {
  CampaignConfig config;
  config.cluster.shards = shards;
  config.cluster.topology.racks = 4;
  config.cluster.topology.machines_per_rack = 4;
  config.apps = std::max(2, shards);
  config.spillover_apps = 2;
  config.plan.episodes = 8;
  // A shard crash-loop can swallow an app's FinishApp: the recovering
  // primary resurrects the app from its checkpoint and only repairs it
  // via the silent-AM restart (app_master_timeout, 20s) — the restarted
  // AM re-finishes and releases the stray workers. The orphan grace
  // must cover that whole repair path, not just the master→agent
  // revocation hop the unsharded default assumes.
  config.monitor.orphan_grace =
      config.cluster.master.app_master_timeout + 10.0;
  return config;
}

std::string FormatCampaignFailure(const CampaignResult& result) {
  std::ostringstream out;
  out << "chaos campaign " << (result.ok() ? "replay" : "FAILED")
      << " (seed=" << result.seed
      << ", completed=" << (result.completed ? "yes" : "no")
      << ", events=" << result.events << ", state_hash=" << std::hex
      << result.state_hash << std::dec << ")\n";
  out << "-- violations (" << result.violations.size() << ") --\n";
  for (const Violation& v : result.violations) {
    out << "t=" << v.time << " [" << v.invariant << "] " << v.detail << "\n";
  }
  out << "-- fault schedule (replays byte-identically from seed "
      << result.seed << ") --\n"
      << result.fault_log;
  out << "-- event trace --\n" << result.trace;
  if (!result.health_events.empty()) {
    // Virtual-time stamped and rule-deterministic, so this section
    // replays byte-identically from the seed — the watchdog saw the
    // degradation before the invariant monitor declared failure.
    out << "-- watchdog health events (" << result.health_events.size()
        << ") --\n";
    for (const obs::HealthEvent& ev : result.health_events) {
      out << "t=" << ev.time << " [" << ev.rule << "] " << ev.series << "="
          << ev.value << " threshold=" << ev.threshold << "\n";
    }
  }
  if (!result.residual_state.empty()) {
    out << "-- residual state --\n" << result.residual_state;
  }
  if (!result.chrome_trace.empty()) {
    // Report the span count, not the byte size: wall-clock annotations
    // inside the JSON vary in width across runs, and this dump must
    // stay byte-identical on same-seed replay.
    size_t spans = 0;
    for (size_t pos = result.chrome_trace.find("\"ph\":");
         pos != std::string::npos;
         pos = result.chrome_trace.find("\"ph\":", pos + 1)) {
      ++spans;
    }
    out << "-- flight recorder --\n"
        << "chrome_trace: " << spans
        << " spans of trace_event JSON captured at the first violation "
           "(write to a .json file, open in Perfetto, or feed to "
           "trace_stats)\n";
  }
  if (!result.audit_json.empty()) {
    size_t records = 0;
    for (size_t pos = result.audit_json.find("\"kind\":");
         pos != std::string::npos;
         pos = result.audit_json.find("\"kind\":", pos + 1)) {
      ++records;
    }
    out << "-- decision audit --\n"
        << "audit_json: " << records
        << " decision records captured at the first violation (write to "
           "a .json file and feed to fuxi_explain)\n";
  }
  return out.str();
}

SweepResult RunSeedSweep(uint64_t first_seed, int count,
                         const CampaignConfig& config, int jobs) {
  SweepResult sweep;
  if (count <= 0) return sweep;
  // Fan the seeds out; every campaign owns its own SimCluster, so the
  // only cross-worker state is the index-addressed results vector each
  // worker writes exactly one slot of.
  ::fuxi::sweep::SweepRunner runner({jobs});
  std::vector<CampaignResult> results(static_cast<size_t>(count));
  runner.Run(static_cast<size_t>(count),
             [&results, first_seed, &config](size_t i) {
               results[i] =
                   RunCampaign(first_seed + static_cast<uint64_t>(i), config);
             });
  sweep.jobs = runner.jobs();
  sweep.wall_seconds = runner.stats().wall_seconds;
  obs::MetricsRegistry sweep_metrics;
  ::fuxi::sweep::ExportStats(runner.stats(), &sweep_metrics);
  sweep.sweep_metrics_csv = obs::MetricsToCsv(sweep_metrics);
  // Deterministic seed-ordered reduction: identical for every jobs
  // value, including the order of failing seeds and retained failures.
  for (CampaignResult& result : results) {
    sweep.digests.push_back(result.replay_digest);
    if (result.ok()) {
      ++sweep.passed;
    } else {
      ++sweep.failed;
      sweep.failing_seeds.push_back(result.seed);
      sweep.failures.push_back(std::move(result));
    }
  }
  return sweep;
}

}  // namespace fuxi::chaos
