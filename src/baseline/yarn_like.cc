#include "baseline/yarn_like.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::baseline {

YarnLikeScheduler::YarnLikeScheduler(
    const cluster::ClusterTopology* topology)
    : topology_(topology) {
  machines_.resize(topology->machine_count());
  for (const cluster::Machine& machine : topology->machines()) {
    machines_[static_cast<size_t>(machine.id.value())].free =
        machine.capacity;
  }
  for (size_t m = 0; m < machines_.size(); ++m) SyncFreeIndex(m);
}

void YarnLikeScheduler::SyncFreeIndex(size_t m) {
  if (machines_[m].free.IsZero()) {
    free_index_.erase(m);
  } else {
    free_index_.insert(m);
  }
}

Status YarnLikeScheduler::RegisterApp(
    AppId app, const cluster::ResourceVector& container) {
  if (apps_.count(app) > 0) {
    return Status::AlreadyExists("app exists: " + app.ToString());
  }
  AppState state;
  state.app = app;
  state.container = container;
  state.enqueue_seq = next_seq_++;
  apps_.emplace(app, state);
  fifo_.push_back(app);
  return Status::Ok();
}

Status YarnLikeScheduler::UnregisterApp(AppId app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("no app");
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineState& machine = machines_[m];
    auto mit = machine.containers.find(app);
    if (mit != machine.containers.end()) {
      machine.free += it->second.container * mit->second;
      machine.containers.erase(mit);
      SyncFreeIndex(m);
    }
  }
  apps_.erase(it);
  fifo_.erase(std::remove(fifo_.begin(), fifo_.end(), app), fifo_.end());
  return Status::Ok();
}

Status YarnLikeScheduler::Heartbeat(AppId app, int64_t outstanding) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("no app");
  // The whole ask is re-asserted every heartbeat — this is exactly the
  // repetitive full-demand messaging Fuxi's incremental protocol avoids.
  ++stats_.ask_messages;
  stats_.ask_entries += static_cast<uint64_t>(outstanding);
  it->second.outstanding = outstanding;
  return Status::Ok();
}

void YarnLikeScheduler::Tick(resource::SchedulingResult* result) {
  // Node-heartbeat-driven assignment: hand free space to applications
  // in FIFO order. Only machines in the free index are examined; free
  // pools can only shrink inside a tick, so machines packed full here
  // drop out of the index after the walk.
  std::vector<size_t> filled;
  for (size_t m : free_index_) {
    MachineState& machine = machines_[m];
    ++stats_.tick_machines_visited;
    for (AppId app : fifo_) {
      AppState& state = apps_[app];
      while (state.outstanding > 0 &&
             state.container.FitsIn(machine.free)) {
        machine.free -= state.container;
        machine.containers[app] += 1;
        --state.outstanding;
        ++state.granted;
        ++stats_.containers_granted;
        result->assignments.push_back(resource::Assignment{
            app, 0, MachineId(static_cast<int64_t>(m)), 1});
      }
    }
    if (machine.free.IsZero()) filled.push_back(m);
  }
  for (size_t m : filled) free_index_.erase(m);
}

Status YarnLikeScheduler::CompleteContainer(
    AppId app, MachineId machine, resource::SchedulingResult* result) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("no app");
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto mit = state.containers.find(app);
  if (mit == state.containers.end() || mit->second == 0) {
    return Status::NotFound("no container on machine");
  }
  // Node manager reclaims the container immediately; the application
  // master must go through another scheduling round for its next task.
  mit->second -= 1;
  if (mit->second == 0) state.containers.erase(mit);
  state.free += it->second.container;
  SyncFreeIndex(static_cast<size_t>(machine.value()));
  it->second.granted -= 1;
  ++stats_.containers_reclaimed;
  result->revocations.push_back(resource::Revocation{
      app, 0, machine, 1, resource::RevocationReason::kAppRelease});
  return Status::Ok();
}

void YarnLikeScheduler::FailoverLosesEverything(
    resource::SchedulingResult* result) {
  for (auto& [app, state] : apps_) {
    if (state.granted > 0) {
      ++stats_.restarts_on_failover;
    }
    state.granted = 0;
    state.outstanding = 0;
  }
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineState& machine = machines_[m];
    for (const auto& [app, count] : machine.containers) {
      result->revocations.push_back(resource::Revocation{
          app, 0, MachineId(static_cast<int64_t>(m)), count,
          resource::RevocationReason::kMachineDown});
    }
    machine.containers.clear();
    machine.free =
        topology_->machine(MachineId(static_cast<int64_t>(m))).capacity;
    SyncFreeIndex(m);
  }
}

cluster::ResourceVector YarnLikeScheduler::TotalGranted() const {
  cluster::ResourceVector total;
  for (size_t m = 0; m < machines_.size(); ++m) {
    total += topology_->machine(MachineId(static_cast<int64_t>(m)))
                 .capacity -
             machines_[m].free;
  }
  return total;
}

int64_t YarnLikeScheduler::GrantedCount(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.granted;
}

MesosLikeScheduler::MesosLikeScheduler(
    const cluster::ClusterTopology* topology)
    : topology_(topology) {
  machines_.resize(topology->machine_count());
  for (const cluster::Machine& machine : topology->machines()) {
    machines_[static_cast<size_t>(machine.id.value())].free =
        machine.capacity;
  }
}

Status MesosLikeScheduler::RegisterFramework(
    AppId app, const cluster::ResourceVector& container) {
  if (frameworks_.count(app) > 0) {
    return Status::AlreadyExists("framework exists");
  }
  FrameworkState state;
  state.app = app;
  state.container = container;
  frameworks_.emplace(app, state);
  round_robin_.push_back(app);
  return Status::Ok();
}

Status MesosLikeScheduler::SetDemand(AppId app, int64_t outstanding) {
  auto it = frameworks_.find(app);
  if (it == frameworks_.end()) return Status::NotFound("no framework");
  it->second.outstanding = outstanding;
  return Status::Ok();
}

void MesosLikeScheduler::OfferRound(resource::SchedulingResult* result) {
  if (round_robin_.empty()) return;
  // Everything free is offered to ONE framework; the others wait their
  // turn even if this one needs nothing (the §1 criticism).
  AppId app = round_robin_[cursor_ % round_robin_.size()];
  ++cursor_;
  FrameworkState& framework = frameworks_[app];
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineState& machine = machines_[m];
    if (machine.free.IsZero()) continue;
    ++stats_.offers_made;
    bool used = false;
    while (framework.outstanding > 0 &&
           framework.container.FitsIn(machine.free)) {
      machine.free -= framework.container;
      machine.containers[app] += 1;
      --framework.outstanding;
      ++framework.granted;
      ++stats_.containers_granted;
      used = true;
      result->assignments.push_back(resource::Assignment{
          app, 0, MachineId(static_cast<int64_t>(m)), 1});
    }
    if (!used) ++stats_.offers_declined;
  }
}

Status MesosLikeScheduler::Release(AppId app, MachineId machine,
                                   int64_t count) {
  auto it = frameworks_.find(app);
  if (it == frameworks_.end()) return Status::NotFound("no framework");
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto mit = state.containers.find(app);
  if (mit == state.containers.end() || mit->second < count) {
    return Status::InvalidArgument("release exceeds held containers");
  }
  mit->second -= count;
  if (mit->second == 0) state.containers.erase(mit);
  state.free += it->second.container * count;
  it->second.granted -= count;
  return Status::Ok();
}

int64_t MesosLikeScheduler::GrantedCount(AppId app) const {
  auto it = frameworks_.find(app);
  return it == frameworks_.end() ? 0 : it->second.granted;
}

}  // namespace fuxi::baseline
