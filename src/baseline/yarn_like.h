#ifndef FUXI_BASELINE_YARN_LIKE_H_
#define FUXI_BASELINE_YARN_LIKE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "common/status.h"
#include "resource/request.h"

namespace fuxi::baseline {

/// A deliberately faithful model of the Hadoop/YARN-1.x resource
/// manager behaviours the paper contrasts Fuxi against (§1, §3.2.3,
/// §6):
///   * applications re-assert their full outstanding ask on every
///     heartbeat instead of sending deltas (message volume!);
///   * assignment happens on periodic node-heartbeat ticks, not
///     event-driven on resource free-up;
///   * a container is tied to one task: when the task completes the node
///     manager reclaims it and the application must request a fresh one
///     (no container reuse);
///   * resource-manager failover forgets the cluster state and restarts
///     every application.
/// Used by the comparison/ablation benchmarks.
class YarnLikeScheduler {
 public:
  struct Stats {
    uint64_t ask_messages = 0;   ///< full-ask heartbeats processed
    uint64_t ask_entries = 0;    ///< total (re-)asserted ask entries
    uint64_t containers_granted = 0;
    uint64_t containers_reclaimed = 0;
    uint64_t restarts_on_failover = 0;
    /// Machines actually examined by Tick. The free-machine index lets
    /// a tick skip fully-packed machines, mirroring (in miniature) the
    /// incremental indexes of resource::Scheduler — the comparison
    /// benchmarks measure protocol overhead, not a strawman walk.
    uint64_t tick_machines_visited = 0;
  };

  explicit YarnLikeScheduler(const cluster::ClusterTopology* topology);

  Status RegisterApp(AppId app, const cluster::ResourceVector& container);
  Status UnregisterApp(AppId app);

  /// The application's heartbeat: re-asserts its absolute outstanding
  /// container count (YARN AMs resend the full ask each round).
  Status Heartbeat(AppId app, int64_t outstanding);

  /// One scheduling round (node heartbeats): walks machines and hands
  /// free space to applications FIFO. Appends grants to `result`.
  void Tick(resource::SchedulingResult* result);

  /// Task completed: the container is reclaimed by the node manager —
  /// the application cannot keep it (§3.2.3's contrast).
  Status CompleteContainer(AppId app, MachineId machine,
                           resource::SchedulingResult* result);

  /// Resource-manager crash: all state is forgotten and every running
  /// application restarts from zero (§1's YARN fault-tolerance gap).
  void FailoverLosesEverything(resource::SchedulingResult* result);

  cluster::ResourceVector TotalGranted() const;
  int64_t GrantedCount(AppId app) const;
  const Stats& stats() const { return stats_; }

 private:
  struct AppState {
    AppId app;
    cluster::ResourceVector container;
    int64_t outstanding = 0;
    int64_t granted = 0;
    uint64_t enqueue_seq = 0;
  };
  struct MachineState {
    cluster::ResourceVector free;
    std::map<AppId, int64_t> containers;
  };

  /// Keeps `free_index_` consistent with machines_[m].free after any
  /// change to that machine's free pool.
  void SyncFreeIndex(size_t m);

  const cluster::ClusterTopology* topology_;
  std::map<AppId, AppState> apps_;
  std::vector<MachineState> machines_;
  /// Machines with a non-empty free pool, ascending — Tick walks only
  /// these instead of every machine in the cluster.
  std::set<size_t> free_index_;
  std::deque<AppId> fifo_;
  uint64_t next_seq_ = 0;
  Stats stats_;
};

/// The Mesos-style offer model (§6): the master offers ALL free
/// resources to one framework at a time; the framework accepts what it
/// can use and declines the rest, and the next framework must wait for
/// the next offer round. Captures the paper's criticism that waiting
/// time depends on the offer order and on other frameworks' behaviour.
class MesosLikeScheduler {
 public:
  struct Stats {
    uint64_t offers_made = 0;
    uint64_t offers_declined = 0;  ///< offered machines left unused
    uint64_t containers_granted = 0;
  };

  explicit MesosLikeScheduler(const cluster::ClusterTopology* topology);

  Status RegisterFramework(AppId app,
                           const cluster::ResourceVector& container);
  /// Sets the framework's current unmet demand (containers).
  Status SetDemand(AppId app, int64_t outstanding);

  /// One offer round: the next framework in turn sees every free
  /// machine and takes what fits its demand.
  void OfferRound(resource::SchedulingResult* result);

  Status Release(AppId app, MachineId machine, int64_t count);

  int64_t GrantedCount(AppId app) const;
  const Stats& stats() const { return stats_; }

 private:
  struct FrameworkState {
    AppId app;
    cluster::ResourceVector container;
    int64_t outstanding = 0;
    int64_t granted = 0;
  };
  struct MachineState {
    cluster::ResourceVector free;
    std::map<AppId, int64_t> containers;
  };

  const cluster::ClusterTopology* topology_;
  std::vector<AppId> round_robin_;
  size_t cursor_ = 0;
  std::map<AppId, FrameworkState> frameworks_;
  std::vector<MachineState> machines_;
  Stats stats_;
};

}  // namespace fuxi::baseline

#endif  // FUXI_BASELINE_YARN_LIKE_H_
