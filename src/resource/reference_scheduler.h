#ifndef FUXI_RESOURCE_REFERENCE_SCHEDULER_H_
#define FUXI_RESOURCE_REFERENCE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "common/status.h"
#include "resource/locality_tree.h"
#include "resource/quota.h"
#include "resource/request.h"
#include "resource/scheduler.h"

namespace fuxi::resource {

/// The scheduling oracle: a deliberately simple O(machines × demands)
/// reimplementation of the Scheduler contract with no incremental
/// indexes — every decision recomputes eligibility, fit and ordering
/// from first principles over flat state. It exists so the fast path
/// can be trusted: tests/scheduler_differential_test.cc replays
/// randomized request/release/failover streams through both
/// implementations and requires identical SchedulingResult sequences
/// (same assignments, same revocations, same order) at every step.
///
/// The tie-breaking contract both implementations satisfy:
///   * A scheduling pass on machine M repeatedly picks, among live
///     demands that do not avoid M and were not already skipped this
///     pass, the one maximizing (effective_priority desc, wait level
///     asc [machine < rack < cluster, via WaitLevelFor semantics],
///     enqueue_seq asc, key asc); the grant is capped by the count
///     remaining at that level. A demand that cannot be granted is
///     skipped for the rest of the pass.
///   * PlaceDemand tries machine hints in ascending machine-id order,
///     then rack hints in ascending rack-id order (machines inside a
///     rack in topology order), then rotates round-robin over free
///     machines starting after the shared cursor, capping each grant at
///     max(1, remaining / free_machine_count) per rotation.
///   * Preemption collects victims over all grants and processes them
///     sorted by (level [priority < quota], victim priority asc,
///     machine asc, key asc), revoking one unit at a time.
///   * Batch revocation paths (app teardown, machine offline, capacity
///     shrink) emit revocations in (machine, key) order and re-offer
///     freed machines in ascending machine order.
///
/// Options have the same meaning as SchedulerOptions (quota, preemption
/// and flat-queue ablations must flip identically on both sides).
class ReferenceScheduler {
 public:
  using Options = SchedulerOptions;

  explicit ReferenceScheduler(const cluster::ClusterTopology* topology,
                              Options options = {});

  Status CreateQuotaGroup(const std::string& name,
                          const cluster::ResourceVector& quota);
  Status RegisterApp(AppId app, const std::string& quota_group = "");
  Status UnregisterApp(AppId app, SchedulingResult* result);
  bool HasApp(AppId app) const { return apps_.count(app) > 0; }

  Status ApplyRequest(const ResourceRequest& request,
                      SchedulingResult* result);
  Status Release(AppId app, uint32_t slot_id, MachineId machine,
                 int64_t count, SchedulingResult* result,
                 RevocationReason reason = RevocationReason::kAppRelease);
  Status RestoreGrant(AppId app, const ScheduleUnitDef& def,
                      MachineId machine, int64_t count);

  void SetMachineOffline(MachineId machine, SchedulingResult* result);
  void SetMachineOnline(MachineId machine, SchedulingResult* result,
                        bool run_pass = true);
  void RunSchedulePass(MachineId machine, SchedulingResult* result);
  void SetMachineCapacity(MachineId machine,
                          const cluster::ResourceVector& capacity,
                          SchedulingResult* result);

  cluster::ResourceVector TotalCapacity() const;
  cluster::ResourceVector TotalGranted() const;
  cluster::ResourceVector GrantedTo(AppId app) const;
  int64_t GrantCount(AppId app, uint32_t slot_id, MachineId machine) const;
  std::vector<Scheduler::GrantEntry> GrantsOf(AppId app) const;
  int64_t TotalWaitingUnits() const;

  size_t AgeWaitingDemands(double now);
  std::vector<SchedulingResult> TakeAgedResults();

  bool CheckInvariants() const;

 private:
  /// Flat per-machine state; recomputed aggregates, no caches.
  struct Machine {
    bool online = true;
    cluster::ResourceVector capacity;
    cluster::ResourceVector free;
    std::map<SlotKey, int64_t> grants;
  };

  /// Flat demand record; plain ordered maps, no queues.
  struct Demand {
    SlotKey key;
    ScheduleUnitDef def;
    uint64_t enqueue_seq = 0;
    Priority effective_priority = 0;
    double waiting_since = 0;
    int64_t total_remaining = 0;
    std::map<MachineId, int64_t> machine_remaining;
    std::map<RackId, int64_t> rack_remaining;
    std::set<MachineId> avoid;

    bool Avoids(MachineId machine) const {
      return avoid.count(machine) > 0;
    }
  };

  Status ApplyUnitDelta(AppId app, const UnitRequestDelta& delta,
                        std::vector<SlotKey>* touched);
  void PlaceDemand(Demand* demand, SchedulingResult* result);
  void SchedulePass(MachineId machine, SchedulingResult* result);
  void CommitGrant(Demand* demand, MachineId machine, int64_t count,
                   SchedulingResult* result);
  int64_t RevokeGrant(const SlotKey& key, MachineId machine, int64_t count,
                      RevocationReason reason, SchedulingResult* result);
  void TryPreempt(Demand* demand, SchedulingResult* result);
  int64_t FitCount(const Demand& demand, const Machine& machine,
                   int64_t limit) const;
  /// Decrements the demand's machine/rack/total counts for a grant from
  /// `machine`, erasing zeroed entries.
  void ConsumeGrant(Demand* demand, MachineId machine, int64_t count);
  /// The level `demand` waits at for `machine` (machine hint beats rack
  /// hint beats cluster-wide), recomputed from the count maps.
  LocalityLevel WaitLevelFor(const Demand& demand, MachineId machine) const;
  /// All machines that are online with a non-empty free pool, ascending
  /// (recomputed by full scan — this is the oracle).
  std::vector<MachineId> FreeMachines() const;

  Demand* FindDemand(const SlotKey& key);
  const Demand* FindDemand(const SlotKey& key) const;

  const cluster::ClusterTopology* topology_;
  Options options_;
  QuotaManager quota_;
  std::vector<Machine> machines_;
  std::map<SlotKey, Demand> demands_;
  uint64_t next_seq_ = 0;
  MachineId rr_cursor_;
  std::unordered_map<AppId, std::set<uint32_t>> apps_;
  double now_hint_ = 0;
  std::vector<SchedulingResult> aged_results_;
};

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_REFERENCE_SCHEDULER_H_
