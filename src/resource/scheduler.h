#ifndef FUXI_RESOURCE_SCHEDULER_H_
#define FUXI_RESOURCE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "common/status.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "planner/planner.h"
#include "resource/locality_tree.h"
#include "resource/quota.h"
#include "resource/request.h"

namespace fuxi::resource {

/// Runtime state of one machine inside the scheduler: its current free
/// pool and the grants charged against it.
struct MachineState {
  bool online = true;
  cluster::ResourceVector capacity;
  cluster::ResourceVector free;
  /// Units granted on this machine per (app, slot).
  std::map<SlotKey, int64_t> grants;

  // --- incremental-index state, maintained by the Scheduler ----------

  /// Bumped on every change to `free` (grant, revoke, capacity change,
  /// online/offline flip). Versions the cached fit result below.
  uint64_t free_epoch = 1;
  /// Negative-fit cache: while `no_fit_epoch == free_epoch`, any unit
  /// needing componentwise >= `no_fit_unit` cannot fit the free pool
  /// (dominance: if some dimension of the cached unit exceeded the free
  /// vector, a larger unit exceeds it too). 0 = nothing cached.
  uint64_t no_fit_epoch = 0;
  cluster::ResourceVector no_fit_unit;
  /// Scheduler world epoch recorded when the last queue walk over this
  /// machine completed; a pass re-run at an unchanged epoch is skipped.
  uint64_t last_pass_epoch = 0;
};

/// FuxiMaster's incremental resource scheduler (paper §3). This class
/// is the pure decision engine: it owns the free-resource pool, the
/// locality tree of waiting requests, quota accounting and preemption.
/// It is deliberately independent of any messaging so that
///   * the protocol layer (master/) can drive it from simulated RPCs, and
///   * benchmarks can measure a single scheduling decision's real cost
///     (Figure 9) without simulation overhead.
///
/// Incremental principle: every entry point touches only the machines
/// implicated by the change (the machine a grant freed up on, the
/// machines a new hint names, ...) — never the full cluster. The
/// supporting indexes, all updated on grant/revoke/delta instead of
/// being rebuilt per decision:
///   * sorted per-demand hint maps (see PendingDemand) — no per-call
///     snapshot-and-sort;
///   * `free_machines_` / `rack_free_` — machines with a non-empty free
///     pool, cluster-wide and per rack, so placement walks only
///     machines that could possibly grant;
///   * `grant_sites_` — every machine holding units of a (app, slot),
///     so preemption victim scans, app teardown and grant introspection
///     are proportional to actual grants, not cluster size;
///   * per-machine free epochs + a scheduler world epoch — versioning
///     for the negative-FitCount cache and for skipping scheduling
///     passes that provably cannot grant;
///   * `dirty_machines_` — machines whose free pool grew without an
///     immediate pass, flushed by the batch teardown paths.
///
/// The semantics (which demand wins which machine, in which order
/// results are emitted) are specified by the reference oracle in
/// reference_scheduler.h; tests/scheduler_differential_test.cc replays
/// randomized operation streams through both and demands identical
/// output at every step.
struct SchedulerOptions {
  bool enable_quota = true;
  /// Two-level preemption (priority within group, then quota across
  /// groups, §3.4).
  bool enable_preemption = true;
  /// Ablation switch: when false, machine/rack hints are flattened to
  /// cluster level (a single global queue, YARN-1.0 style).
  bool locality_tree = true;
  /// Cap on candidates examined per scheduling pass on one machine;
  /// 0 = unlimited. Guards worst-case latency under adversarial queues.
  size_t max_candidates_per_pass = 0;
  /// Starvation guard (paper §7 future work): a demand waiting longer
  /// than this gets its effective priority bumped by one on every
  /// AgeWaitingDemands sweep. 0 disables aging.
  double starvation_age_after = 0;
  /// Cap on the aging boost above the declared priority.
  Priority starvation_max_boost = 3;
};

class Scheduler {
 public:
  using Options = SchedulerOptions;

  explicit Scheduler(const cluster::ClusterTopology* topology,
                     Options options = {});

  // --- quota administration -------------------------------------------

  Status CreateQuotaGroup(const std::string& name,
                          const cluster::ResourceVector& quota);

  // --- application lifecycle ------------------------------------------

  /// Registers an application; `quota_group` may be empty when quota is
  /// disabled or unmanaged.
  Status RegisterApp(AppId app, const std::string& quota_group = "");

  /// Removes the application: all waiting demand disappears and all its
  /// grants are revoked (reported via `result`), then the freed machines
  /// are rescheduled.
  Status UnregisterApp(AppId app, SchedulingResult* result);

  bool HasApp(AppId app) const { return apps_.count(app) > 0; }

  // --- the incremental request path (§3.1, §3.2) -----------------------

  /// Applies an incremental resource request and immediately attempts
  /// placement. Assignments (and any preemption revocations) are
  /// appended to `result`.
  Status ApplyRequest(const ResourceRequest& request,
                      SchedulingResult* result);

  /// Application returns `count` granted units of `slot` on `machine`
  /// (workers finished). The freed resources are immediately offered to
  /// waiting applications (the Figure 3 return→assign cycle).
  Status Release(AppId app, uint32_t slot_id, MachineId machine,
                 int64_t count, SchedulingResult* result,
                 RevocationReason reason = RevocationReason::kAppRelease);

  // --- failover support (§4.3.1) ----------------------------------------

  /// Re-installs a grant reported by a FuxiAgent during FuxiMaster
  /// failover, without going through the waiting queues. The new master
  /// collects these *soft states* from agents instead of checkpointing
  /// them; existing processes keep running untouched. Fails when the
  /// reported grant does not fit the machine's free pool (conflicting
  /// reports).
  Status RestoreGrant(AppId app, const ScheduleUnitDef& def,
                      MachineId machine, int64_t count);

  // --- machine lifecycle (node up/down, capacity changes) --------------

  /// Marks a machine offline: every grant on it is revoked with
  /// kMachineDown. Its capacity leaves the free pool.
  void SetMachineOffline(MachineId machine, SchedulingResult* result);

  /// Brings a machine back online with its full capacity and (unless
  /// `run_pass` is false — e.g. during failover, before restored grants
  /// are re-installed) runs a scheduling pass over it.
  void SetMachineOnline(MachineId machine, SchedulingResult* result,
                        bool run_pass = true);

  /// Explicitly offers a machine's free resources to the waiting queues
  /// (used after failover grant restoration completes).
  void RunSchedulePass(MachineId machine, SchedulingResult* result);

  /// Changes total capacity (e.g. virtual-resource reconfiguration,
  /// §3.2.1). Shrinking below current usage revokes grants (picking the
  /// newest first) until usage fits.
  void SetMachineCapacity(MachineId machine,
                          const cluster::ResourceVector& capacity,
                          SchedulingResult* result);

  // --- introspection ----------------------------------------------------

  const MachineState& machine_state(MachineId machine) const;
  const LocalityTree& locality_tree() const { return tree_; }
  const QuotaManager& quota() const { return quota_; }

  /// Total capacity over online machines (FM_total in Figure 10).
  cluster::ResourceVector TotalCapacity() const;
  /// Total currently granted (FM_planned in Figure 10). Maintained
  /// incrementally; O(1).
  cluster::ResourceVector TotalGranted() const { return total_granted_; }
  /// Granted to one application (AM_obtained component).
  cluster::ResourceVector GrantedTo(AppId app) const;

  /// Units of (app, slot) currently granted on `machine`.
  int64_t GrantCount(AppId app, uint32_t slot_id, MachineId machine) const;

  /// Every grant held by `app`, in (slot, machine) order.
  struct GrantEntry {
    uint32_t slot_id;
    MachineId machine;
    int64_t count;
  };
  std::vector<GrantEntry> GrantsOf(AppId app) const;

  uint64_t scheduling_passes() const { return scheduling_passes_; }
  /// Passes answered from the epoch check without walking the queues.
  uint64_t passes_skipped() const { return passes_skipped_; }

  /// Starvation-aging sweep (invoked from FuxiMaster's roll-up tick,
  /// §3.4's batched non-urgent work): demands waiting longer than
  /// `starvation_age_after` get an effective-priority bump so they stop
  /// losing every tie. Returns how many demands were boosted.
  size_t AgeWaitingDemands(double now);

  /// Grants produced by the last aging sweep, to be dispatched by the
  /// caller.
  std::vector<SchedulingResult> TakeAgedResults();

  /// Validates cross-structure consistency (free+granted == capacity,
  /// quota usage matches grants, tree invariants, and that every
  /// incremental index agrees with a from-scratch recomputation). For
  /// tests.
  bool CheckInvariants() const;

  /// Wires the metrics registry in (null detaches). Grants are counted
  /// by the locality tier that satisfied them — the Figure 5 hit-rate
  /// breakdown — plus preemption takebacks as their own bucket.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Wires the decision-audit log in (null detaches). The audit layer
  /// is strictly observational: with the log attached or detached (or
  /// compiled out via FUXI_OBS_AUDIT=0) the scheduler emits byte-for-
  /// byte identical SchedulingResult sequences — the decision-
  /// neutrality contract, enforced by the differential suite.
  void set_audit(obs::AuditLog* audit) {
    audit_ = audit;
    if (planner_ != nullptr) planner_->set_audit(audit);
  }

  // --- time-aware placement (fuxi::planner, DESIGN.md §12) --------------

  /// Runs one planning pass at virtual time `now`: converts due
  /// reservations into grants (appended to `result`), expires missed
  /// deadlines, plans new reservations/gangs, maintains the EASY
  /// backfill-head reservation. No-op until some demand has carried
  /// planning hints — legacy traffic never constructs the planner, so
  /// default-build behaviour is bit-for-bit the pre-planner scheduler.
  void PlannerTick(double now, SchedulingResult* result);

  /// True once the planner has been (lazily) constructed.
  bool planner_active() const { return planner_ != nullptr; }
  const planner::ClusterPlanner* planner() const { return planner_.get(); }

  /// Chaos invariants (InvariantMonitor): the future-capacity book
  /// never promises what a machine cannot deliver, and an unstarted
  /// gang holds zero grants. Both trivially true without a planner.
  bool PlannerOvercommitOk() const;
  bool PlannerGangAtomicityOk() const;

 private:
  struct AppState {
    AppId app;
    /// Slots this app has defined, for full teardown.
    std::set<uint32_t> slots;
  };

  /// Applies one unit delta (demand bookkeeping only, no placement).
  Status ApplyUnitDelta(AppId app, const UnitRequestDelta& delta,
                        std::vector<PendingDemand*>* touched);

  /// Attempts to place outstanding units of `demand`, preferring its
  /// machine hints, then rack hints, then any machine (round-robin for
  /// load balance). Appends grants to `result`. When auditing, commits
  /// one kPlace DecisionRecord covering every candidate examined.
  void PlaceDemand(PendingDemand* demand, SchedulingResult* result);

  /// The walk body of PlaceDemand. `rec` is the decision record under
  /// assembly, or null when auditing is off/detached — every recording
  /// site is guarded so the null path is the exact pre-audit code.
  void PlaceDemandWalk(PendingDemand* demand, SchedulingResult* result,
                       obs::DecisionRecord* rec);

  /// Offers the free resources of `machine` to the waiting queues
  /// (locality-tree pass). Appends grants to `result`.
  void SchedulePass(MachineId machine, SchedulingResult* result);

  /// Runs SchedulePass over every machine in `dirty_machines_` (in
  /// ascending id order) — machines whose free pool grew without an
  /// immediate re-offer, batched by the teardown paths.
  void FlushDirtyPasses(SchedulingResult* result);

  /// Grants `count` units of `demand` on `machine`: updates free pool,
  /// grant table, quota usage, waiting totals, and the locality tree.
  void CommitGrant(PendingDemand* demand, MachineId machine, int64_t count,
                   SchedulingResult* result);

  /// Revokes up to `count` units of (key) on `machine`; returns revoked.
  int64_t RevokeGrant(const SlotKey& key, MachineId machine, int64_t count,
                      RevocationReason reason, SchedulingResult* result);

  /// Two-level preemption for a still-unsatisfied demand (§3.4).
  void TryPreempt(PendingDemand* demand, SchedulingResult* result);

  /// How many units of `demand` machine `m` could host right now
  /// (respecting quota admission and fit), capped by `limit`. Updates
  /// the machine's negative-fit cache. When `why` is non-null it is set
  /// to the rejection reason on a zero return (kNone on a grant).
  int64_t FitCount(const PendingDemand& demand, MachineState& state,
                   int64_t limit, obs::RejectReason* why = nullptr);

  /// True when decision records should be assembled. Constant false in
  /// FUXI_OBS_AUDIT=0 builds, so guarded assembly folds away.
  bool auditing() const {
    return obs::AuditLog::enabled() && audit_ != nullptr;
  }

  // --- planner plumbing (all dead code when FUXI_PLANNER=0:
  // ClusterPlanner::enabled() is constexpr false, so the planner is
  // never constructed and every planner_ != nullptr guard folds) ------

  static planner::PlanKey PlanKeyOf(const SlotKey& key) {
    return planner::PlanKey{key.app.value(), key.slot_id};
  }

  /// Constructs the planner on first planning-hinted demand.
  void EnsurePlanner();

  /// True while the planner forbids instantaneous placement of this
  /// demand (unstarted gang member / unconverted reservation).
  bool PlannerHolds(const PendingDemand& demand) const {
    return planner_ != nullptr && demand.plan.Any() &&
           planner_->Holds(PlanKeyOf(demand.key));
  }

  /// HostHooks bodies: the planner's only write path into grant state.
  int64_t PlannerCommit(const planner::PlanKey& key, int64_t machine,
                        int64_t count);
  void PlannerExpire(const planner::PlanKey& key);
  planner::DemandInfo PlannerDemandInfo(const SlotKey& key) const;

  /// Re-derives `machine`'s membership in the free indexes from its
  /// state and bumps the fit/pass epochs. Must be called after every
  /// mutation of a machine's free pool or online flag.
  void SyncFreeIndex(MachineId machine, MachineState& state);

  /// Records a world-state mutation (demand, quota, machine or grant
  /// change): invalidates the per-machine pass-skip epoch.
  void NoteMutation() { ++world_epoch_; }

  void NoteGrantTier(LocalityLevel level, int64_t count) {
    if (tier_machine_counter_ == nullptr) return;
    switch (level) {
      case LocalityLevel::kMachine:
        tier_machine_counter_->Add(static_cast<uint64_t>(count));
        break;
      case LocalityLevel::kRack:
        tier_rack_counter_->Add(static_cast<uint64_t>(count));
        break;
      case LocalityLevel::kCluster:
        tier_cluster_counter_->Add(static_cast<uint64_t>(count));
        break;
    }
  }

  MachineState& mutable_machine_state(MachineId machine);

  const cluster::ClusterTopology* topology_;
  Options options_;
  LocalityTree tree_;
  QuotaManager quota_;
  std::vector<MachineState> machines_;
  /// Machines with any free resources, for cluster-level placement.
  std::set<MachineId> free_machines_;
  /// The same machines partitioned by rack, for rack-hint placement.
  std::vector<std::set<MachineId>> rack_free_;
  /// Machines holding units of each (app, slot): the preemption victim
  /// index and the per-app grant iterator.
  std::map<SlotKey, std::set<MachineId>> grant_sites_;
  /// Machines whose free pool grew without an immediate pass.
  std::set<MachineId> dirty_machines_;
  /// Running total of granted resources (== FM_planned).
  cluster::ResourceVector total_granted_;
  /// Bumped on every state mutation; per-machine pass-skip versioning.
  uint64_t world_epoch_ = 1;
  /// Round-robin cursor over free_machines_ for load balancing.
  MachineId rr_cursor_;
  std::unordered_map<AppId, AppState> apps_;
  uint64_t scheduling_passes_ = 0;
  uint64_t passes_skipped_ = 0;
  /// Virtual "now" for waiting_since stamps, fed by AgeWaitingDemands.
  double now_hint_ = 0;
  std::vector<SchedulingResult> aged_results_;

  obs::Counter* tier_machine_counter_ = nullptr;
  obs::Counter* tier_rack_counter_ = nullptr;
  obs::Counter* tier_cluster_counter_ = nullptr;
  obs::Counter* preempt_units_counter_ = nullptr;
  obs::Counter* passes_counter_ = nullptr;
  obs::Counter* passes_skipped_counter_ = nullptr;
  obs::Counter* negfit_hit_counter_ = nullptr;
  obs::Counter* negfit_miss_counter_ = nullptr;
  Histogram* dirty_drain_hist_ = nullptr;
  obs::Gauge* grant_sites_gauge_ = nullptr;

  obs::AuditLog* audit_ = nullptr;

  /// The time-aware placement layer; null until a demand carries
  /// planning hints (and always null under FUXI_PLANNER=0).
  std::unique_ptr<planner::ClusterPlanner> planner_;
  /// Where planner-committed grants land while a Tick is running.
  SchedulingResult* planner_result_ = nullptr;
  /// Retained so a lazily-built planner can wire its instruments.
  obs::MetricsRegistry* metrics_registry_ = nullptr;
};

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_SCHEDULER_H_
