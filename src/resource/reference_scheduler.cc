#include "resource/reference_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::resource {

ReferenceScheduler::ReferenceScheduler(
    const cluster::ClusterTopology* topology, Options options)
    : topology_(topology), options_(options) {
  FUXI_CHECK(topology != nullptr);
  machines_.resize(topology->machine_count());
  for (const cluster::Machine& machine : topology->machines()) {
    Machine& state = machines_[static_cast<size_t>(machine.id.value())];
    state.online = true;
    state.capacity = machine.capacity;
    state.free = machine.capacity;
  }
  rr_cursor_ = MachineId(0);
}

Status ReferenceScheduler::CreateQuotaGroup(
    const std::string& name, const cluster::ResourceVector& quota) {
  return quota_.CreateGroup(name, quota);
}

Status ReferenceScheduler::RegisterApp(AppId app,
                                       const std::string& quota_group) {
  if (apps_.count(app) > 0) {
    return Status::AlreadyExists("app already registered: " +
                                 app.ToString());
  }
  if (!quota_group.empty()) {
    FUXI_RETURN_IF_ERROR(quota_.AssignApp(app, quota_group));
  }
  apps_.emplace(app, std::set<uint32_t>{});
  return Status::Ok();
}

Status ReferenceScheduler::UnregisterApp(AppId app,
                                         SchedulingResult* result) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  // Sweep every machine in ascending order, revoking this app's grants
  // in key order, then re-offer the touched machines.
  std::vector<MachineId> touched;
  for (size_t m = 0; m < machines_.size(); ++m) {
    Machine& state = machines_[m];
    std::vector<std::pair<SlotKey, int64_t>> to_revoke;
    for (const auto& [key, count] : state.grants) {
      if (key.app == app) to_revoke.emplace_back(key, count);
    }
    for (const auto& [key, count] : to_revoke) {
      RevokeGrant(key, MachineId(static_cast<int64_t>(m)), count,
                  RevocationReason::kAppRelease, result);
    }
    if (!to_revoke.empty()) {
      touched.push_back(MachineId(static_cast<int64_t>(m)));
    }
  }
  for (uint32_t slot : it->second) {
    if (Demand* demand = FindDemand(SlotKey{app, slot})) {
      if (demand->total_remaining > 0) {
        quota_.OnWaitingChange(
            app, demand->def.resources * (-demand->total_remaining));
      }
    }
  }
  for (auto dit = demands_.begin(); dit != demands_.end();) {
    if (dit->first.app == app) {
      dit = demands_.erase(dit);
    } else {
      ++dit;
    }
  }
  if (quota_.HasApp(app)) {
    Status s = quota_.RemoveApp(app);
    FUXI_CHECK(s.ok()) << s.ToString();
  }
  apps_.erase(it);
  for (MachineId machine : touched) SchedulePass(machine, result);
  return Status::Ok();
}

Status ReferenceScheduler::ApplyRequest(const ResourceRequest& request,
                                        SchedulingResult* result) {
  auto it = apps_.find(request.app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + request.app.ToString());
  }
  std::vector<SlotKey> touched;
  for (const UnitRequestDelta& delta : request.units) {
    FUXI_RETURN_IF_ERROR(ApplyUnitDelta(request.app, delta, &touched));
    it->second.insert(delta.slot_id);
  }
  for (const SlotKey& key : touched) {
    Demand* demand = FindDemand(key);
    if (demand != nullptr && demand->total_remaining > 0) {
      PlaceDemand(demand, result);
    }
  }
  if (options_.enable_preemption) {
    for (const SlotKey& key : touched) {
      Demand* demand = FindDemand(key);
      if (demand != nullptr && demand->total_remaining > 0) {
        TryPreempt(demand, result);
      }
    }
  }
  return Status::Ok();
}

Status ReferenceScheduler::ApplyUnitDelta(AppId app,
                                          const UnitRequestDelta& delta,
                                          std::vector<SlotKey>* touched) {
  SlotKey key{app, delta.slot_id};
  Demand* demand = FindDemand(key);
  if (demand == nullptr) {
    if (!delta.has_def) {
      return Status::InvalidArgument(
          "first request for slot " + std::to_string(delta.slot_id) +
          " of app " + app.ToString() + " must carry the unit definition");
    }
    if (delta.def.resources.AnyNegative() ||
        delta.def.resources.IsZero()) {
      return Status::InvalidArgument("schedule unit size must be positive");
    }
    Demand fresh;
    fresh.key = key;
    fresh.def = delta.def;
    fresh.effective_priority = delta.def.priority;
    fresh.enqueue_seq = next_seq_++;
    demand = &demands_.emplace(key, std::move(fresh)).first->second;
  }

  for (const std::string& hostname : delta.avoid_add) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.insert(machine);
  }
  for (const std::string& hostname : delta.avoid_remove) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.erase(machine);
  }

  if (options_.locality_tree) {
    for (const LocalityHint& hint : delta.hints) {
      switch (hint.level) {
        case LocalityLevel::kMachine: {
          FUXI_ASSIGN_OR_RETURN(MachineId machine,
                                topology_->FindByHostname(hint.value));
          int64_t& slot = demand->machine_remaining[machine];
          slot = std::max<int64_t>(0, slot + hint.count);
          if (slot == 0) demand->machine_remaining.erase(machine);
          break;
        }
        case LocalityLevel::kRack: {
          FUXI_ASSIGN_OR_RETURN(RackId rack,
                                topology_->FindRackByName(hint.value));
          int64_t& slot = demand->rack_remaining[rack];
          slot = std::max<int64_t>(0, slot + hint.count);
          if (slot == 0) demand->rack_remaining.erase(rack);
          break;
        }
        case LocalityLevel::kCluster:
          break;
      }
    }
  }

  if (delta.total_count_delta != 0) {
    int64_t before = demand->total_remaining;
    demand->total_remaining =
        std::max<int64_t>(0, before + delta.total_count_delta);
    int64_t applied = demand->total_remaining - before;
    if (applied != 0) {
      quota_.OnWaitingChange(app, demand->def.resources * applied);
    }
    if (before == 0 && demand->total_remaining > 0) {
      demand->waiting_since = now_hint_;
    }
  }
  touched->push_back(key);
  return Status::Ok();
}

int64_t ReferenceScheduler::FitCount(const Demand& demand,
                                     const Machine& machine,
                                     int64_t limit) const {
  if (!machine.online || limit <= 0) return 0;
  int64_t fit = machine.free.DivideBy(demand.def.resources);
  int64_t count = std::min(fit, limit);
  if (count <= 0) return 0;
  if (options_.enable_quota &&
      quota_.AnyOtherGroupHasDeficit(demand.key.app)) {
    const QuotaManager::Group* group = quota_.GroupOf(demand.key.app);
    if (group != nullptr) {
      cluster::ResourceVector headroom =
          (group->quota - group->usage).ClampNonNegative();
      count = std::min(count, headroom.DivideBy(demand.def.resources));
    }
  }
  return std::max<int64_t>(count, 0);
}

void ReferenceScheduler::ConsumeGrant(Demand* demand, MachineId machine,
                                      int64_t count) {
  FUXI_CHECK_GT(count, 0);
  FUXI_CHECK_LE(count, demand->total_remaining);
  auto mit = demand->machine_remaining.find(machine);
  if (mit != demand->machine_remaining.end()) {
    mit->second = std::max<int64_t>(0, mit->second - count);
    if (mit->second == 0) demand->machine_remaining.erase(mit);
  }
  RackId rack = topology_->machine(machine).rack;
  auto rit = demand->rack_remaining.find(rack);
  if (rit != demand->rack_remaining.end()) {
    rit->second = std::max<int64_t>(0, rit->second - count);
    if (rit->second == 0) demand->rack_remaining.erase(rit);
  }
  demand->total_remaining -= count;
}

LocalityLevel ReferenceScheduler::WaitLevelFor(const Demand& demand,
                                               MachineId machine) const {
  auto mit = demand.machine_remaining.find(machine);
  if (mit != demand.machine_remaining.end() && mit->second > 0) {
    return LocalityLevel::kMachine;
  }
  RackId rack = topology_->machine(machine).rack;
  auto rit = demand.rack_remaining.find(rack);
  if (rit != demand.rack_remaining.end() && rit->second > 0) {
    return LocalityLevel::kRack;
  }
  return LocalityLevel::kCluster;
}

std::vector<MachineId> ReferenceScheduler::FreeMachines() const {
  std::vector<MachineId> out;
  for (size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].online && !machines_[m].free.IsZero()) {
      out.push_back(MachineId(static_cast<int64_t>(m)));
    }
  }
  return out;
}

void ReferenceScheduler::PlaceDemand(Demand* demand,
                                     SchedulingResult* result) {
  // 1. Machine hints in ascending id order.
  if (options_.locality_tree && !demand->machine_remaining.empty()) {
    std::vector<MachineId> hinted;
    for (const auto& [machine, count] : demand->machine_remaining) {
      hinted.push_back(machine);
    }
    for (MachineId machine : hinted) {
      if (demand->total_remaining == 0) return;
      if (demand->Avoids(machine)) continue;
      auto hint_it = demand->machine_remaining.find(machine);
      if (hint_it == demand->machine_remaining.end()) continue;
      int64_t limit = std::min(hint_it->second, demand->total_remaining);
      int64_t count = FitCount(
          *demand, machines_[static_cast<size_t>(machine.value())], limit);
      if (count > 0) {
        CommitGrant(demand, machine, count, result);
        ConsumeGrant(demand, machine, count);
      }
    }
  }
  // 2. Rack hints in ascending id order; machines inside a rack in
  // topology order.
  if (options_.locality_tree && !demand->rack_remaining.empty()) {
    std::vector<RackId> racks;
    for (const auto& [rack, count] : demand->rack_remaining) {
      racks.push_back(rack);
    }
    for (RackId rack : racks) {
      for (MachineId machine : topology_->rack(rack).machines) {
        if (demand->total_remaining == 0) return;
        auto rack_it = demand->rack_remaining.find(rack);
        if (rack_it == demand->rack_remaining.end()) break;
        if (demand->Avoids(machine)) continue;
        int64_t limit = std::min(rack_it->second, demand->total_remaining);
        int64_t count = FitCount(
            *demand, machines_[static_cast<size_t>(machine.value())],
            limit);
        if (count > 0) {
          CommitGrant(demand, machine, count, result);
          ConsumeGrant(demand, machine, count);
        }
      }
    }
  }
  // 3. Cluster-wide round robin with the per-rotation spread cap.
  while (demand->total_remaining > 0) {
    std::vector<MachineId> free = FreeMachines();
    if (free.empty()) break;
    int64_t spread_cap = std::max<int64_t>(
        1,
        demand->total_remaining / static_cast<int64_t>(free.size()));
    std::vector<MachineId> rotation;
    rotation.reserve(free.size());
    auto start =
        std::upper_bound(free.begin(), free.end(), rr_cursor_);
    rotation.insert(rotation.end(), start, free.end());
    rotation.insert(rotation.end(), free.begin(), start);
    bool progressed = false;
    MachineId last_granted = rr_cursor_;
    for (MachineId machine : rotation) {
      if (demand->total_remaining == 0) break;
      if (demand->Avoids(machine)) continue;
      int64_t limit = std::min(demand->total_remaining, spread_cap);
      int64_t count = FitCount(
          *demand, machines_[static_cast<size_t>(machine.value())], limit);
      if (count > 0) {
        CommitGrant(demand, machine, count, result);
        ConsumeGrant(demand, machine, count);
        last_granted = machine;
        progressed = true;
      }
    }
    rr_cursor_ = last_granted;
    if (!progressed) break;
  }
}

void ReferenceScheduler::SchedulePass(MachineId machine,
                                      SchedulingResult* result) {
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online || state.free.IsZero()) return;
  std::set<SlotKey> skipped;
  size_t examined = 0;
  while (true) {
    // Recompute the winner from scratch: among live demands that do not
    // avoid this machine and were not skipped this pass, maximize
    // (effective_priority desc, wait level asc, enqueue_seq asc,
    // key asc).
    Demand* best = nullptr;
    LocalityLevel best_level = LocalityLevel::kCluster;
    for (auto& [key, demand] : demands_) {
      if (demand.total_remaining <= 0) continue;
      if (skipped.count(key) > 0) continue;
      if (demand.Avoids(machine)) continue;
      LocalityLevel level = WaitLevelFor(demand, machine);
      if (best == nullptr) {
        best = &demand;
        best_level = level;
        continue;
      }
      bool wins;
      if (demand.effective_priority != best->effective_priority) {
        wins = demand.effective_priority > best->effective_priority;
      } else if (level != best_level) {
        wins = static_cast<int>(level) < static_cast<int>(best_level);
      } else if (demand.enqueue_seq != best->enqueue_seq) {
        wins = demand.enqueue_seq < best->enqueue_seq;
      } else {
        wins = key < best->key;
      }
      if (wins) {
        best = &demand;
        best_level = level;
      }
    }
    if (best == nullptr) return;
    if (options_.max_candidates_per_pass > 0 &&
        ++examined > options_.max_candidates_per_pass) {
      return;
    }
    int64_t limit = best->total_remaining;
    if (best_level == LocalityLevel::kMachine) {
      auto it = best->machine_remaining.find(machine);
      limit = std::min(
          limit, it == best->machine_remaining.end() ? 0 : it->second);
    } else if (best_level == LocalityLevel::kRack) {
      RackId rack = topology_->machine(machine).rack;
      auto it = best->rack_remaining.find(rack);
      limit = std::min(limit,
                       it == best->rack_remaining.end() ? 0 : it->second);
    }
    int64_t count = FitCount(*best, state, limit);
    if (count <= 0) {
      skipped.insert(best->key);
      continue;
    }
    CommitGrant(best, machine, count, result);
    ConsumeGrant(best, machine, count);
  }
}

void ReferenceScheduler::CommitGrant(Demand* demand, MachineId machine,
                                     int64_t count,
                                     SchedulingResult* result) {
  FUXI_CHECK_GT(count, 0);
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector amount = demand->def.resources * count;
  FUXI_CHECK(amount.FitsIn(state.free))
      << "reference grant exceeds free pool on machine "
      << machine.value();
  state.free -= amount;
  state.grants[demand->key] += count;
  quota_.OnGrant(demand->key.app, amount);
  quota_.OnWaitingChange(demand->key.app,
                         demand->def.resources * (-count));
  result->assignments.push_back(
      Assignment{demand->key.app, demand->key.slot_id, machine, count});
}

int64_t ReferenceScheduler::RevokeGrant(const SlotKey& key, MachineId machine,
                                        int64_t count,
                                        RevocationReason reason,
                                        SchedulingResult* result) {
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end() || count <= 0) return 0;
  int64_t revoked = std::min(count, it->second);
  it->second -= revoked;
  if (it->second == 0) state.grants.erase(it);

  Demand* demand = FindDemand(key);
  FUXI_CHECK(demand != nullptr) << "grant without demand record";
  cluster::ResourceVector amount = demand->def.resources * revoked;
  state.free += amount;
  quota_.OnRevoke(key.app, amount);
  if (reason != RevocationReason::kAppRelease &&
      reason != RevocationReason::kReconcile) {
    demand->total_remaining += revoked;
    quota_.OnWaitingChange(key.app, amount);
  }
  result->revocations.push_back(
      Revocation{key.app, key.slot_id, machine, revoked, reason});
  return revoked;
}

Status ReferenceScheduler::RestoreGrant(AppId app,
                                        const ScheduleUnitDef& def,
                                        MachineId machine, int64_t count) {
  if (apps_.count(app) == 0) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  if (count <= 0) return Status::InvalidArgument("count must be positive");
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) {
    return Status::FailedPrecondition("machine offline: " +
                                      machine.ToString());
  }
  cluster::ResourceVector amount = def.resources * count;
  if (!amount.FitsIn(state.free)) {
    return Status::ResourceExhausted(
        "restored grant exceeds free capacity on machine " +
        machine.ToString());
  }
  SlotKey key{app, def.slot_id};
  if (FindDemand(key) == nullptr) {
    Demand fresh;
    fresh.key = key;
    fresh.def = def;
    fresh.effective_priority = def.priority;
    fresh.enqueue_seq = next_seq_++;
    demands_.emplace(key, std::move(fresh));
  }
  apps_[app].insert(def.slot_id);
  state.free -= amount;
  state.grants[key] += count;
  quota_.OnGrant(app, amount);
  return Status::Ok();
}

Status ReferenceScheduler::Release(AppId app, uint32_t slot_id,
                                   MachineId machine, int64_t count,
                                   SchedulingResult* result,
                                   RevocationReason reason) {
  SlotKey key{app, slot_id};
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end()) {
    return Status::NotFound("no grant for app " + app.ToString() +
                            " slot " + std::to_string(slot_id) +
                            " on machine " + machine.ToString());
  }
  if (count > it->second) {
    return Status::InvalidArgument("release exceeds granted count");
  }
  RevokeGrant(key, machine, count, reason, result);
  SchedulePass(machine, result);
  return Status::Ok();
}

void ReferenceScheduler::SetMachineOffline(MachineId machine,
                                           SchedulingResult* result) {
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) return;
  std::vector<std::pair<SlotKey, int64_t>> to_revoke(state.grants.begin(),
                                                     state.grants.end());
  for (const auto& [key, count] : to_revoke) {
    RevokeGrant(key, machine, count, RevocationReason::kMachineDown, result);
  }
  state.online = false;
  state.free = cluster::ResourceVector();
  for (const auto& [key, count] : to_revoke) {
    if (Demand* demand = FindDemand(key)) {
      if (demand->total_remaining > 0) PlaceDemand(demand, result);
    }
  }
}

void ReferenceScheduler::SetMachineOnline(MachineId machine,
                                          SchedulingResult* result,
                                          bool run_pass) {
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  if (state.online) return;
  state.online = true;
  state.free = state.capacity;
  FUXI_CHECK(state.grants.empty());
  if (run_pass) SchedulePass(machine, result);
}

void ReferenceScheduler::RunSchedulePass(MachineId machine,
                                         SchedulingResult* result) {
  SchedulePass(machine, result);
}

void ReferenceScheduler::SetMachineCapacity(
    MachineId machine, const cluster::ResourceVector& capacity,
    SchedulingResult* result) {
  Machine& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector granted = state.capacity - state.free;
  state.capacity = capacity;
  cluster::ResourceVector new_free = capacity - granted;
  while (new_free.AnyNegative() && !state.grants.empty()) {
    SlotKey key = state.grants.begin()->first;
    RevokeGrant(key, machine, 1, RevocationReason::kCapacityShrink, result);
    granted = cluster::ResourceVector();
    for (const auto& [grant_key, count] : state.grants) {
      const Demand* demand = FindDemand(grant_key);
      FUXI_CHECK(demand != nullptr);
      granted += demand->def.resources * count;
    }
    new_free = capacity - granted;
  }
  state.free = new_free.ClampNonNegative();
  if (state.online) SchedulePass(machine, result);
}

void ReferenceScheduler::TryPreempt(Demand* demand,
                                    SchedulingResult* result) {
  if (demand->total_remaining <= 0) return;
  const QuotaManager::Group* my_group = quota_.GroupOf(demand->key.app);
  struct Victim {
    int level;
    Priority priority;
    MachineId machine;
    SlotKey key;
  };
  std::vector<Victim> victims;
  bool my_group_deficit = options_.enable_quota && my_group != nullptr &&
                          quota_.HasDeficit(*my_group);
  // The oracle scans every grant on every machine, every time.
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineId machine(static_cast<int64_t>(m));
    const Machine& state = machines_[m];
    if (!state.online || demand->Avoids(machine)) continue;
    for (const auto& [key, count] : state.grants) {
      if (key.app == demand->key.app) continue;
      const Demand* victim_demand = FindDemand(key);
      FUXI_CHECK(victim_demand != nullptr);
      const QuotaManager::Group* victim_group = quota_.GroupOf(key.app);
      bool same_group = my_group != nullptr && victim_group == my_group;
      if (same_group &&
          victim_demand->def.priority < demand->def.priority) {
        victims.push_back({0, victim_demand->def.priority, machine, key});
      } else if (my_group_deficit && victim_group != nullptr &&
                 !same_group && quota_.OverQuota(*victim_group)) {
        victims.push_back({1, victim_demand->def.priority, machine, key});
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.machine != b.machine) return a.machine < b.machine;
              return a.key < b.key;
            });
  for (const Victim& victim : victims) {
    if (demand->total_remaining <= 0) return;
    Machine& state =
        machines_[static_cast<size_t>(victim.machine.value())];
    while (demand->total_remaining > 0) {
      auto it = state.grants.find(victim.key);
      if (it == state.grants.end()) break;
      RevocationReason reason = victim.level == 0
                                    ? RevocationReason::kPreemptPriority
                                    : RevocationReason::kPreemptQuota;
      if (RevokeGrant(victim.key, victim.machine, 1, reason, result) == 0) {
        break;
      }
      int64_t count = FitCount(*demand, state, demand->total_remaining);
      if (count > 0) {
        CommitGrant(demand, victim.machine, count, result);
        ConsumeGrant(demand, victim.machine, count);
      }
    }
  }
}

size_t ReferenceScheduler::AgeWaitingDemands(double now) {
  now_hint_ = now;
  if (options_.starvation_age_after <= 0) return 0;
  size_t boosted = 0;
  std::vector<SlotKey> to_boost;
  for (const auto& [key, demand] : demands_) {
    if (demand.total_remaining <= 0) continue;
    if (now - demand.waiting_since < options_.starvation_age_after) {
      continue;
    }
    if (demand.effective_priority - demand.def.priority >=
        options_.starvation_max_boost) {
      continue;
    }
    to_boost.push_back(key);
  }
  for (const SlotKey& key : to_boost) {
    Demand* demand = FindDemand(key);
    if (demand == nullptr) continue;
    demand->effective_priority += 1;
    demand->waiting_since = now;
    ++boosted;
    SchedulingResult result;
    PlaceDemand(demand, &result);
    aged_results_.push_back(std::move(result));
  }
  return boosted;
}

std::vector<SchedulingResult> ReferenceScheduler::TakeAgedResults() {
  return std::move(aged_results_);
}

cluster::ResourceVector ReferenceScheduler::TotalCapacity() const {
  cluster::ResourceVector total;
  for (const Machine& state : machines_) {
    if (state.online) total += state.capacity;
  }
  return total;
}

cluster::ResourceVector ReferenceScheduler::TotalGranted() const {
  cluster::ResourceVector total;
  for (const Machine& state : machines_) {
    if (!state.online) continue;
    total += state.capacity - state.free;
  }
  return total;
}

cluster::ResourceVector ReferenceScheduler::GrantedTo(AppId app) const {
  cluster::ResourceVector total;
  for (const Machine& state : machines_) {
    for (const auto& [key, count] : state.grants) {
      if (key.app != app) continue;
      const Demand* demand = FindDemand(key);
      FUXI_CHECK(demand != nullptr);
      total += demand->def.resources * count;
    }
  }
  return total;
}

int64_t ReferenceScheduler::GrantCount(AppId app, uint32_t slot_id,
                                       MachineId machine) const {
  const Machine& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(SlotKey{app, slot_id});
  return it == state.grants.end() ? 0 : it->second;
}

std::vector<Scheduler::GrantEntry> ReferenceScheduler::GrantsOf(
    AppId app) const {
  std::vector<Scheduler::GrantEntry> out;
  for (size_t m = 0; m < machines_.size(); ++m) {
    for (const auto& [key, count] : machines_[m].grants) {
      if (key.app == app) {
        out.push_back(
            {key.slot_id, MachineId(static_cast<int64_t>(m)), count});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Scheduler::GrantEntry& a,
               const Scheduler::GrantEntry& b) {
              if (a.slot_id != b.slot_id) return a.slot_id < b.slot_id;
              return a.machine < b.machine;
            });
  return out;
}

int64_t ReferenceScheduler::TotalWaitingUnits() const {
  int64_t total = 0;
  for (const auto& [key, demand] : demands_) {
    total += demand.total_remaining;
  }
  return total;
}

bool ReferenceScheduler::CheckInvariants() const {
  for (const Machine& state : machines_) {
    cluster::ResourceVector granted;
    for (const auto& [key, count] : state.grants) {
      if (count <= 0) return false;
      const Demand* demand = FindDemand(key);
      if (demand == nullptr) return false;
      granted += demand->def.resources * count;
    }
    if (state.online) {
      if (!(granted + state.free == state.capacity)) return false;
      if (state.free.AnyNegative()) return false;
    } else {
      if (!state.grants.empty()) return false;
    }
  }
  for (const auto& [key, demand] : demands_) {
    if (demand.total_remaining < 0) return false;
  }
  return true;
}

ReferenceScheduler::Demand* ReferenceScheduler::FindDemand(
    const SlotKey& key) {
  auto it = demands_.find(key);
  return it == demands_.end() ? nullptr : &it->second;
}

const ReferenceScheduler::Demand* ReferenceScheduler::FindDemand(
    const SlotKey& key) const {
  auto it = demands_.find(key);
  return it == demands_.end() ? nullptr : &it->second;
}

}  // namespace fuxi::resource
