#include "resource/locality_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::resource {

LocalityTree::LocalityTree(const cluster::ClusterTopology* topology)
    : topology_(topology) {
  FUXI_CHECK(topology != nullptr);
}

PendingDemand* LocalityTree::GetOrCreate(const SlotKey& key,
                                         const ScheduleUnitDef& def) {
  auto it = demands_.find(key);
  if (it != demands_.end()) return it->second.get();
  auto demand = std::make_unique<PendingDemand>();
  demand->key = key;
  demand->def = def;
  demand->effective_priority = def.priority;
  demand->enqueue_seq = next_seq_++;
  PendingDemand* ptr = demand.get();
  demands_.emplace(key, std::move(demand));
  return ptr;
}

PendingDemand* LocalityTree::Find(const SlotKey& key) {
  auto it = demands_.find(key);
  return it == demands_.end() ? nullptr : it->second.get();
}

const PendingDemand* LocalityTree::Find(const SlotKey& key) const {
  auto it = demands_.find(key);
  return it == demands_.end() ? nullptr : it->second.get();
}

void LocalityTree::AddTotal(PendingDemand* demand, int64_t delta) {
  int64_t old_total = demand->total_remaining;
  int64_t new_total = std::max<int64_t>(0, old_total + delta);
  demand->total_remaining = new_total;
  if (old_total == 0 && new_total > 0) {
    // Demand becomes live: enter the cluster queue plus every node it
    // has a positive preference for.
    cluster_queue_.insert(EntryFor(*demand));
    for (const auto& [machine, count] : demand->machine_remaining) {
      if (count > 0) machine_queues_[machine].insert(EntryFor(*demand));
    }
    for (const auto& [rack, count] : demand->rack_remaining) {
      if (count > 0) rack_queues_[rack].insert(EntryFor(*demand));
    }
  } else if (old_total > 0 && new_total == 0) {
    EraseFromAllQueues(*demand);
  }
}

void LocalityTree::AddMachine(PendingDemand* demand, MachineId machine,
                              int64_t delta) {
  int64_t& slot = demand->machine_remaining[machine];
  int64_t old_count = slot;
  slot = std::max<int64_t>(0, old_count + delta);
  bool live = demand->total_remaining > 0;
  if (live && old_count == 0 && slot > 0) {
    machine_queues_[machine].insert(EntryFor(*demand));
  } else if (old_count > 0 && slot == 0) {
    auto it = machine_queues_.find(machine);
    if (it != machine_queues_.end()) it->second.erase(EntryFor(*demand));
  }
  if (slot == 0) demand->machine_remaining.erase(machine);
}

void LocalityTree::AddRack(PendingDemand* demand, RackId rack,
                           int64_t delta) {
  int64_t& slot = demand->rack_remaining[rack];
  int64_t old_count = slot;
  slot = std::max<int64_t>(0, old_count + delta);
  bool live = demand->total_remaining > 0;
  if (live && old_count == 0 && slot > 0) {
    rack_queues_[rack].insert(EntryFor(*demand));
  } else if (old_count > 0 && slot == 0) {
    auto it = rack_queues_.find(rack);
    if (it != rack_queues_.end()) it->second.erase(EntryFor(*demand));
  }
  if (slot == 0) demand->rack_remaining.erase(rack);
}

void LocalityTree::ConsumeGrant(PendingDemand* demand, MachineId machine,
                                int64_t count) {
  FUXI_CHECK_GT(count, 0);
  FUXI_CHECK_LE(count, demand->total_remaining);
  // Consume the machine- and rack-level preferences along the path
  // before the total, so queue membership updates see consistent state.
  AddMachine(demand, machine, -count);
  AddRack(demand, topology_->machine(machine).rack, -count);
  AddTotal(demand, -count);
}

void LocalityTree::SetEffectivePriority(PendingDemand* demand,
                                        Priority priority) {
  if (demand->effective_priority == priority) return;
  bool live = demand->total_remaining > 0;
  if (live) EraseFromAllQueues(*demand);
  demand->effective_priority = priority;
  if (live) SyncQueues(demand);
}

void LocalityTree::Remove(const SlotKey& key) {
  auto it = demands_.find(key);
  if (it == demands_.end()) return;
  if (it->second->total_remaining > 0) EraseFromAllQueues(*it->second);
  demands_.erase(it);
}

size_t LocalityTree::RemoveApp(AppId app) {
  std::vector<SlotKey> keys;
  for (const auto& [key, demand] : demands_) {
    if (key.app == app) keys.push_back(key);
  }
  for (const SlotKey& key : keys) Remove(key);
  return keys.size();
}

LocalityLevel LocalityTree::WaitLevelFor(const PendingDemand& demand,
                                         MachineId machine) const {
  auto mit = demand.machine_remaining.find(machine);
  if (mit != demand.machine_remaining.end() && mit->second > 0) {
    return LocalityLevel::kMachine;
  }
  RackId rack = topology_->machine(machine).rack;
  auto rit = demand.rack_remaining.find(rack);
  if (rit != demand.rack_remaining.end() && rit->second > 0) {
    return LocalityLevel::kRack;
  }
  return LocalityLevel::kCluster;
}

void LocalityTree::ForEachCandidate(
    MachineId machine,
    const std::function<int64_t(PendingDemand*, LocalityLevel)>& fn,
    const std::function<void(const PendingDemand&, LocalityLevel)>&
        on_avoided) {
  RackId rack = topology_->machine(machine).rack;
  std::unordered_set<SlotKey, SlotKeyHash> skipped;

  // The queue objects are stable for the duration of the pass: consuming
  // grants only erases entries, it never creates a machine/rack queue,
  // so the lookups can be hoisted out of the candidate loop.
  const Queue* machine_queue = nullptr;
  auto mq = machine_queues_.find(machine);
  if (mq != machine_queues_.end()) machine_queue = &mq->second;
  const Queue* rack_queue = nullptr;
  auto rq = rack_queues_.find(rack);
  if (rq != rack_queues_.end()) rack_queue = &rq->second;

  // Per-queue resume markers. Once an entry is found ineligible —
  // skipped by `fn` (and a skip is final for the whole pass) or on the
  // demand's avoid list (static during the pass) — every later scan of
  // that queue restarts after it instead of re-walking the prefix. This
  // keeps a deep-queue pass linear in the queue length instead of
  // quadratic in the number of unplaceable demands.
  struct Cursor {
    bool active = false;
    QueueEntry resume{};
  };
  Cursor cursors[3];

  auto first_eligible = [&](const Queue& queue, Cursor* cursor,
                            LocalityLevel level) -> const QueueEntry* {
    auto it = cursor->active ? queue.upper_bound(cursor->resume)
                             : queue.begin();
    for (; it != queue.end(); ++it) {
      const QueueEntry& entry = *it;
      if (skipped.count(entry.key) > 0) {
        cursor->resume = entry;
        cursor->active = true;
        continue;
      }
      const PendingDemand* demand = Find(entry.key);
      FUXI_CHECK(demand != nullptr);
      if (demand->Avoids(machine)) {
        // The cursor makes this skip final for the pass, so the
        // observer fires at most once per queue for this demand.
        if (on_avoided) on_avoided(*demand, level);
        cursor->resume = entry;
        cursor->active = true;
        continue;
      }
      return &entry;
    }
    return nullptr;
  };

  while (true) {
    // Heads of the three queues, in level-precedence order so that
    // machine-level waiters win priority ties (paper §3.3).
    struct Candidate {
      const QueueEntry* entry;
      LocalityLevel level;
    };
    Candidate candidates[3] = {
        {machine_queue ? first_eligible(*machine_queue, &cursors[0],
                                        LocalityLevel::kMachine)
                       : nullptr,
         LocalityLevel::kMachine},
        {rack_queue ? first_eligible(*rack_queue, &cursors[1],
                                     LocalityLevel::kRack)
                    : nullptr,
         LocalityLevel::kRack},
        {first_eligible(cluster_queue_, &cursors[2],
                        LocalityLevel::kCluster),
         LocalityLevel::kCluster},
    };

    const Candidate* best = nullptr;
    for (const Candidate& c : candidates) {
      if (c.entry == nullptr) continue;
      if (best == nullptr) {
        best = &c;
        continue;
      }
      // Higher priority wins; at equal priority the earlier (lower)
      // level in the candidates array already holds `best`, so only a
      // strictly higher priority displaces it. Among same-priority
      // entries of the same level the set order (seq) already applies.
      if (c.entry->priority > best->entry->priority) best = &c;
    }
    if (best == nullptr) return;

    PendingDemand* demand = Find(best->entry->key);
    FUXI_CHECK(demand != nullptr);
    int64_t granted = fn(demand, best->level);
    if (granted < 0) return;
    if (granted == 0) {
      skipped.insert(best->entry->key);
      continue;
    }
    ConsumeGrant(demand, machine, granted);
  }
}

int64_t LocalityTree::TotalWaitingUnits() const {
  int64_t total = 0;
  for (const auto& [key, demand] : demands_) {
    total += demand->total_remaining;
  }
  return total;
}

std::vector<const PendingDemand*> LocalityTree::AllDemands() const {
  std::vector<const PendingDemand*> out;
  out.reserve(demands_.size());
  for (const auto& [key, demand] : demands_) out.push_back(demand.get());
  std::sort(out.begin(), out.end(),
            [](const PendingDemand* a, const PendingDemand* b) {
              return a->key < b->key;
            });
  return out;
}

bool LocalityTree::CheckInvariants() const {
  for (const auto& [key, demand] : demands_) {
    if (demand->total_remaining < 0) return false;
    bool live = demand->total_remaining > 0;
    if (live != (cluster_queue_.count(EntryFor(*demand)) > 0)) return false;
    for (const auto& [machine, count] : demand->machine_remaining) {
      if (count <= 0) return false;  // zero entries must be erased
      auto it = machine_queues_.find(machine);
      bool queued = it != machine_queues_.end() &&
                    it->second.count(EntryFor(*demand)) > 0;
      if (queued != live) return false;
    }
    for (const auto& [rack, count] : demand->rack_remaining) {
      if (count <= 0) return false;
      auto it = rack_queues_.find(rack);
      bool queued =
          it != rack_queues_.end() && it->second.count(EntryFor(*demand)) > 0;
      if (queued != live) return false;
    }
  }
  // Every queue entry must reference a live demand with matching counts.
  auto check_queue = [&](const Queue& queue) {
    for (const QueueEntry& entry : queue) {
      const PendingDemand* demand = Find(entry.key);
      if (demand == nullptr) return false;
      if (demand->total_remaining <= 0) return false;
      if (demand->effective_priority != entry.priority) return false;
    }
    return true;
  };
  if (!check_queue(cluster_queue_)) return false;
  for (const auto& [machine, queue] : machine_queues_) {
    if (!check_queue(queue)) return false;
  }
  for (const auto& [rack, queue] : rack_queues_) {
    if (!check_queue(queue)) return false;
  }
  return true;
}

void LocalityTree::SyncQueues(PendingDemand* demand) {
  // Re-derives queue membership from counts; only used after bulk edits.
  EraseFromAllQueues(*demand);
  if (demand->total_remaining <= 0) return;
  cluster_queue_.insert(EntryFor(*demand));
  for (const auto& [machine, count] : demand->machine_remaining) {
    if (count > 0) machine_queues_[machine].insert(EntryFor(*demand));
  }
  for (const auto& [rack, count] : demand->rack_remaining) {
    if (count > 0) rack_queues_[rack].insert(EntryFor(*demand));
  }
}

void LocalityTree::EraseFromAllQueues(const PendingDemand& demand) {
  QueueEntry entry = EntryFor(demand);
  cluster_queue_.erase(entry);
  for (const auto& [machine, count] : demand.machine_remaining) {
    auto it = machine_queues_.find(machine);
    if (it != machine_queues_.end()) it->second.erase(entry);
  }
  for (const auto& [rack, count] : demand.rack_remaining) {
    auto it = rack_queues_.find(rack);
    if (it != rack_queues_.end()) it->second.erase(entry);
  }
}

}  // namespace fuxi::resource
