#ifndef FUXI_RESOURCE_PROTOCOL_H_
#define FUXI_RESOURCE_PROTOCOL_H_

#include <string>
#include <vector>

#include "resource/delta_channel.h"
#include "resource/request.h"

namespace fuxi::resource {

/// Absolute desired state for one ScheduleUnit, carried by the periodic
/// full-state sync (paper §3.1's "safety measurement": peers exchange
/// full state to repair any inconsistency the deltas left behind).
struct SlotAbsoluteState {
  ScheduleUnitDef def;
  int64_t total_count = 0;                ///< absolute outstanding ask
  std::vector<LocalityHint> hints;        ///< absolute preferred counts
  std::vector<std::string> avoid;         ///< absolute avoid list
};

/// Application master returns `count` granted units (paper: "only the
/// unit number needs to be sent").
struct ReleaseDelta {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
};

/// Absolute granted count for one (slot, machine), used in full syncs.
struct GrantAbsolute {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
};

/// Application-master → FuxiMaster request message. When stamped
/// `is_full`, `full_slots` + `held_grants` hold the authoritative
/// absolute state (outstanding asks and the grants the application
/// believes it holds) and the delta fields are ignored; otherwise
/// `delta`/`releases` carry incremental changes.
struct RequestMessage {
  ResourceRequest delta;
  std::vector<ReleaseDelta> releases;
  std::vector<SlotAbsoluteState> full_slots;
  std::vector<GrantAbsolute> held_grants;
};

/// One incremental grant change from FuxiMaster to an application
/// master: positive = newly granted units, negative = revoked.
struct GrantDelta {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t delta = 0;
  RevocationReason reason = RevocationReason::kAppRelease;
};

/// FuxiMaster → application-master grant message (delta or full).
struct GrantMessage {
  std::vector<GrantDelta> deltas;
  std::vector<GrantAbsolute> full_grants;
};

using StampedRequest = Stamped<RequestMessage>;
using StampedGrant = Stamped<GrantMessage>;

/// Request for the peer to re-send its full state (emitted when a
/// DeltaReceiver reports kNeedResync).
struct ResyncRequest {
  AppId app;
};

/// Approximate wire size of a message, for the communication-volume
/// accounting used by the incremental-vs-full ablation.
size_t ApproxWireSize(const RequestMessage& msg);
size_t ApproxWireSize(const GrantMessage& msg);

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_PROTOCOL_H_
