#ifndef FUXI_RESOURCE_PROTOCOL_H_
#define FUXI_RESOURCE_PROTOCOL_H_

#include <string>
#include <vector>

#include "resource/delta_channel.h"
#include "resource/request.h"

namespace fuxi::resource {

/// Absolute desired state for one ScheduleUnit, carried by the periodic
/// full-state sync (paper §3.1's "safety measurement": peers exchange
/// full state to repair any inconsistency the deltas left behind).
struct SlotAbsoluteState {
  ScheduleUnitDef def;
  int64_t total_count = 0;                ///< absolute outstanding ask
  std::vector<LocalityHint> hints;        ///< absolute preferred counts
  std::vector<std::string> avoid;         ///< absolute avoid list
  PlanningHints plan;                     ///< absolute planner metadata
};

/// Application master returns `count` granted units (paper: "only the
/// unit number needs to be sent").
struct ReleaseDelta {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
};

/// Absolute granted count for one (slot, machine), used in full syncs.
struct GrantAbsolute {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
};

/// Application-master → FuxiMaster request message. When stamped
/// `is_full`, `full_slots` + `held_grants` hold the authoritative
/// absolute state (outstanding asks and the grants the application
/// believes it holds) and the delta fields are ignored; otherwise
/// `delta`/`releases` carry incremental changes.
struct RequestMessage {
  ResourceRequest delta;
  std::vector<ReleaseDelta> releases;
  std::vector<SlotAbsoluteState> full_slots;
  std::vector<GrantAbsolute> held_grants;
};

/// One incremental grant change from FuxiMaster to an application
/// master: positive = newly granted units, negative = revoked.
struct GrantDelta {
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t delta = 0;
  RevocationReason reason = RevocationReason::kAppRelease;
};

/// FuxiMaster → application-master grant message (delta or full).
struct GrantMessage {
  std::vector<GrantDelta> deltas;
  std::vector<GrantAbsolute> full_grants;
};

using StampedRequest = Stamped<RequestMessage>;
using StampedGrant = Stamped<GrantMessage>;

/// Request for the peer to re-send its full state (emitted when a
/// DeltaReceiver reports kNeedResync).
struct ResyncRequest {
  AppId app;
};

// ---------------------------------------------------------------------
// Wire codecs (fuxi::wire, DESIGN.md §10). The stamped wrappers are the
// protocol's unit of transmission, so they carry registry tags; exact
// measured sizes replace the old ApproxWireSize estimates everywhere
// (net::Network::Send, the incremental-vs-full ablation).
// ---------------------------------------------------------------------

void WireEncode(wire::Writer& w, const SlotAbsoluteState& m);
Status WireDecode(wire::Reader& r, SlotAbsoluteState& m);
void WireEncode(wire::Writer& w, const ReleaseDelta& m);
Status WireDecode(wire::Reader& r, ReleaseDelta& m);
void WireEncode(wire::Writer& w, const GrantAbsolute& m);
Status WireDecode(wire::Reader& r, GrantAbsolute& m);
void WireEncode(wire::Writer& w, const RequestMessage& m);
Status WireDecode(wire::Reader& r, RequestMessage& m);
void WireEncode(wire::Writer& w, const GrantDelta& m);
Status WireDecode(wire::Reader& r, GrantDelta& m);
void WireEncode(wire::Writer& w, const GrantMessage& m);
Status WireDecode(wire::Reader& r, GrantMessage& m);

void WireEncode(wire::Writer& w, const StampedRequest& m);
Status WireDecode(wire::Reader& r, StampedRequest& m);
// v2: UnitRequestDelta grew has_plan + PlanningHints and
// SlotAbsoluteState grew a trailing PlanningHints (fuxi::planner).
constexpr wire::TypeInfo WireTypeInfo(const StampedRequest*) {
  return {wire::MsgTag::kStampedRequest, 2};
}
void WireEncode(wire::Writer& w, const StampedGrant& m);
Status WireDecode(wire::Reader& r, StampedGrant& m);
constexpr wire::TypeInfo WireTypeInfo(const StampedGrant*) {
  return {wire::MsgTag::kStampedGrant, 1};
}

void WireEncode(wire::Writer& w, const ResyncRequest& m);
Status WireDecode(wire::Reader& r, ResyncRequest& m);
constexpr wire::TypeInfo WireTypeInfo(const ResyncRequest*) {
  return {wire::MsgTag::kResyncRequest, 1};
}

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_PROTOCOL_H_
