#include "resource/quota.h"

#include <algorithm>

namespace fuxi::resource {

Status QuotaManager::CreateGroup(const std::string& name,
                                 const cluster::ResourceVector& quota) {
  if (groups_.count(name) > 0) {
    return Status::AlreadyExists("quota group exists: " + name);
  }
  Group group;
  group.name = name;
  group.quota = quota;
  groups_.emplace(name, std::move(group));
  return Status::Ok();
}

Status QuotaManager::AssignApp(AppId app, const std::string& group) {
  if (groups_.count(group) == 0) {
    return Status::NotFound("no quota group: " + group);
  }
  if (app_group_.count(app) > 0) {
    return Status::AlreadyExists("app " + app.ToString() +
                                 " already in a quota group");
  }
  app_group_[app] = group;
  return Status::Ok();
}

Status QuotaManager::RemoveApp(AppId app) {
  if (app_group_.erase(app) == 0) {
    return Status::NotFound("app " + app.ToString() + " not in any group");
  }
  return Status::Ok();
}

const QuotaManager::Group* QuotaManager::GroupOf(AppId app) const {
  auto it = app_group_.find(app);
  if (it == app_group_.end()) return nullptr;
  auto git = groups_.find(it->second);
  return git == groups_.end() ? nullptr : &git->second;
}

QuotaManager::Group* QuotaManager::MutableGroupOf(AppId app) {
  auto it = app_group_.find(app);
  if (it == app_group_.end()) return nullptr;
  auto git = groups_.find(it->second);
  return git == groups_.end() ? nullptr : &git->second;
}

void QuotaManager::OnGrant(AppId app, const cluster::ResourceVector& amount) {
  if (Group* group = MutableGroupOf(app)) group->usage += amount;
}

void QuotaManager::OnRevoke(AppId app,
                            const cluster::ResourceVector& amount) {
  if (Group* group = MutableGroupOf(app)) {
    group->usage -= amount;
    group->usage = group->usage.ClampNonNegative();
  }
}

void QuotaManager::OnWaitingChange(AppId app,
                                   const cluster::ResourceVector& delta) {
  if (Group* group = MutableGroupOf(app)) {
    group->waiting += delta;
    group->waiting = group->waiting.ClampNonNegative();
  }
}

bool QuotaManager::OverQuota(const Group& group) const {
  return !group.usage.FitsIn(group.quota);
}

bool QuotaManager::HasDeficit(const Group& group) const {
  return !group.waiting.IsZero() && group.usage.FitsIn(group.quota) &&
         !(group.usage == group.quota);
}

bool QuotaManager::AnyOtherGroupHasDeficit(AppId app) const {
  const Group* own = GroupOf(app);
  for (const auto& [name, group] : groups_) {
    if (own != nullptr && &group == own) continue;
    if (HasDeficit(group)) return true;
  }
  return false;
}

bool QuotaManager::AdmitGrant(AppId app,
                              const cluster::ResourceVector& amount) const {
  const Group* group = GroupOf(app);
  if (group == nullptr) return true;  // quota not configured for this app
  cluster::ResourceVector after = group->usage + amount;
  if (after.FitsIn(group->quota)) return true;
  // Borrowing beyond the guarantee is allowed only while every other
  // group's demand is satisfied (paper: idle groups' resources can be
  // exploited; busy groups get their minimum back).
  return !AnyOtherGroupHasDeficit(app);
}

const QuotaManager::Group* QuotaManager::FindGroup(
    const std::string& name) const {
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<const QuotaManager::Group*> QuotaManager::groups() const {
  std::vector<const Group*> out;
  out.reserve(groups_.size());
  for (const auto& [name, group] : groups_) out.push_back(&group);
  std::sort(out.begin(), out.end(), [](const Group* a, const Group* b) {
    return a->name < b->name;
  });
  return out;
}

}  // namespace fuxi::resource
