#include "resource/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::resource {

namespace {

/// Applies `fn` to each machine id in `free_machines` starting after
/// `cursor`, wrapping around once. `fn` returns false to stop early.
void ForEachFreeMachineRoundRobin(
    const std::set<MachineId>& free_machines, MachineId cursor,
    const std::function<bool(MachineId)>& fn) {
  // Snapshot the rotation first: grants made inside `fn` mutate the set.
  std::vector<MachineId> rotation;
  rotation.reserve(free_machines.size());
  auto start = free_machines.upper_bound(cursor);
  for (auto it = start; it != free_machines.end(); ++it) {
    rotation.push_back(*it);
  }
  for (auto it = free_machines.begin(); it != start; ++it) {
    rotation.push_back(*it);
  }
  for (MachineId machine : rotation) {
    if (!fn(machine)) return;
  }
}

}  // namespace

Scheduler::Scheduler(const cluster::ClusterTopology* topology,
                     Options options)
    : topology_(topology), options_(options), tree_(topology) {
  FUXI_CHECK(topology != nullptr);
  machines_.resize(topology->machine_count());
  for (const cluster::Machine& machine : topology->machines()) {
    MachineState& state = machines_[static_cast<size_t>(machine.id.value())];
    state.online = true;
    state.capacity = machine.capacity;
    state.free = machine.capacity;
    if (!state.free.IsZero()) free_machines_.insert(machine.id);
  }
  rr_cursor_ = MachineId(0);
}

Status Scheduler::CreateQuotaGroup(const std::string& name,
                                   const cluster::ResourceVector& quota) {
  return quota_.CreateGroup(name, quota);
}

Status Scheduler::RegisterApp(AppId app, const std::string& quota_group) {
  if (apps_.count(app) > 0) {
    return Status::AlreadyExists("app already registered: " +
                                 app.ToString());
  }
  if (!quota_group.empty()) {
    FUXI_RETURN_IF_ERROR(quota_.AssignApp(app, quota_group));
  }
  apps_.emplace(app, AppState{app, {}});
  return Status::Ok();
}

Status Scheduler::UnregisterApp(AppId app, SchedulingResult* result) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  // Revoke every grant (as releases: the app is gone, nothing to
  // restore) and reschedule the freed machines.
  std::vector<MachineId> touched;
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineState& state = machines_[m];
    std::vector<std::pair<SlotKey, int64_t>> to_revoke;
    for (const auto& [key, count] : state.grants) {
      if (key.app == app) to_revoke.emplace_back(key, count);
    }
    for (const auto& [key, count] : to_revoke) {
      RevokeGrant(key, MachineId(static_cast<int64_t>(m)), count,
                  RevocationReason::kAppRelease, result);
    }
    if (!to_revoke.empty()) {
      touched.push_back(MachineId(static_cast<int64_t>(m)));
    }
  }
  // Clear waiting demand accounting before dropping the demands.
  for (uint32_t slot : it->second.slots) {
    if (PendingDemand* demand = tree_.Find(SlotKey{app, slot})) {
      if (demand->total_remaining > 0) {
        quota_.OnWaitingChange(
            app, demand->def.resources * (-demand->total_remaining));
      }
    }
  }
  tree_.RemoveApp(app);
  if (quota_.HasApp(app)) {
    Status s = quota_.RemoveApp(app);
    FUXI_CHECK(s.ok()) << s.ToString();
  }
  apps_.erase(it);
  for (MachineId machine : touched) SchedulePass(machine, result);
  return Status::Ok();
}

Status Scheduler::ApplyRequest(const ResourceRequest& request,
                               SchedulingResult* result) {
  auto it = apps_.find(request.app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + request.app.ToString());
  }
  std::vector<PendingDemand*> touched;
  for (const UnitRequestDelta& delta : request.units) {
    FUXI_RETURN_IF_ERROR(ApplyUnitDelta(request.app, delta, &touched));
    it->second.slots.insert(delta.slot_id);
  }
  for (PendingDemand* demand : touched) {
    if (demand->total_remaining > 0) PlaceDemand(demand, result);
  }
  if (options_.enable_preemption) {
    for (PendingDemand* demand : touched) {
      if (demand->total_remaining > 0) TryPreempt(demand, result);
    }
  }
  return Status::Ok();
}

Status Scheduler::ApplyUnitDelta(AppId app, const UnitRequestDelta& delta,
                                 std::vector<PendingDemand*>* touched) {
  SlotKey key{app, delta.slot_id};
  PendingDemand* demand = tree_.Find(key);
  if (demand == nullptr) {
    if (!delta.has_def) {
      return Status::InvalidArgument(
          "first request for slot " + std::to_string(delta.slot_id) +
          " of app " + app.ToString() + " must carry the unit definition");
    }
    if (delta.def.resources.AnyNegative() ||
        delta.def.resources.IsZero()) {
      return Status::InvalidArgument("schedule unit size must be positive");
    }
    demand = tree_.GetOrCreate(key, delta.def);
  }

  // Avoid-list edits first: they affect subsequent placement.
  for (const std::string& hostname : delta.avoid_add) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.insert(machine);
  }
  for (const std::string& hostname : delta.avoid_remove) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.erase(machine);
  }

  // Locality hints. Under the flat-queue ablation they are ignored and
  // everything competes in the single cluster queue.
  if (options_.locality_tree) {
    for (const LocalityHint& hint : delta.hints) {
      switch (hint.level) {
        case LocalityLevel::kMachine: {
          FUXI_ASSIGN_OR_RETURN(MachineId machine,
                                topology_->FindByHostname(hint.value));
          tree_.AddMachine(demand, machine, hint.count);
          break;
        }
        case LocalityLevel::kRack: {
          FUXI_ASSIGN_OR_RETURN(RackId rack,
                                topology_->FindRackByName(hint.value));
          tree_.AddRack(demand, rack, hint.count);
          break;
        }
        case LocalityLevel::kCluster:
          // Cluster-level hints fold into the total below.
          break;
      }
    }
  }

  if (delta.total_count_delta != 0) {
    int64_t before = demand->total_remaining;
    tree_.AddTotal(demand, delta.total_count_delta);
    int64_t applied = demand->total_remaining - before;
    if (applied != 0) {
      quota_.OnWaitingChange(app, demand->def.resources * applied);
    }
    if (before == 0 && demand->total_remaining > 0) {
      demand->waiting_since = now_hint_;
    }
  }
  touched->push_back(demand);
  return Status::Ok();
}

int64_t Scheduler::FitCount(const PendingDemand& demand,
                            const MachineState& state, int64_t limit) const {
  if (!state.online || limit <= 0) return 0;
  int64_t fit = state.free.DivideBy(demand.def.resources);
  int64_t count = std::min(fit, limit);
  if (count <= 0) return 0;
  if (options_.enable_quota &&
      quota_.AnyOtherGroupHasDeficit(demand.key.app)) {
    // The app may only grow up to its group's guarantee while another
    // group is starved below its own guarantee.
    const QuotaManager::Group* group = quota_.GroupOf(demand.key.app);
    if (group != nullptr) {
      cluster::ResourceVector headroom =
          (group->quota - group->usage).ClampNonNegative();
      count = std::min(count, headroom.DivideBy(demand.def.resources));
    }
  }
  return std::max<int64_t>(count, 0);
}

void Scheduler::PlaceDemand(PendingDemand* demand, SchedulingResult* result) {
  // 1. Machine-level preferences (data locality first).
  if (options_.locality_tree && !demand->machine_remaining.empty()) {
    std::vector<MachineId> hinted;
    hinted.reserve(demand->machine_remaining.size());
    for (const auto& [machine, count] : demand->machine_remaining) {
      hinted.push_back(machine);
    }
    std::sort(hinted.begin(), hinted.end());
    for (MachineId machine : hinted) {
      if (demand->total_remaining == 0) return;
      if (demand->Avoids(machine)) continue;
      auto hint_it = demand->machine_remaining.find(machine);
      if (hint_it == demand->machine_remaining.end()) continue;
      int64_t limit = std::min(hint_it->second, demand->total_remaining);
      int64_t count = FitCount(
          *demand, machines_[static_cast<size_t>(machine.value())], limit);
      if (count > 0) {
        CommitGrant(demand, machine, count, result);
        tree_.ConsumeGrant(demand, machine, count);
        NoteGrantTier(LocalityLevel::kMachine, count);
      }
    }
  }
  // 2. Rack-level preferences.
  if (options_.locality_tree && !demand->rack_remaining.empty()) {
    std::vector<RackId> racks;
    racks.reserve(demand->rack_remaining.size());
    for (const auto& [rack, count] : demand->rack_remaining) {
      racks.push_back(rack);
    }
    std::sort(racks.begin(), racks.end());
    for (RackId rack : racks) {
      for (MachineId machine : topology_->rack(rack).machines) {
        if (demand->total_remaining == 0) return;
        auto rack_it = demand->rack_remaining.find(rack);
        if (rack_it == demand->rack_remaining.end()) break;
        if (demand->Avoids(machine)) continue;
        int64_t limit = std::min(rack_it->second, demand->total_remaining);
        int64_t count = FitCount(
            *demand, machines_[static_cast<size_t>(machine.value())], limit);
        if (count > 0) {
          CommitGrant(demand, machine, count, result);
          tree_.ConsumeGrant(demand, machine, count);
          NoteGrantTier(LocalityLevel::kRack, count);
        }
      }
    }
  }
  // 3. Anywhere in the cluster, round-robin over machines with free
  // resources. Each rotation caps the per-machine grant near the fair
  // share so units spread uniformly (load balance, §3.3); further
  // rotations mop up the remainder on machines with headroom.
  while (demand->total_remaining > 0 && !free_machines_.empty()) {
    int64_t spread_cap = std::max<int64_t>(
        1, demand->total_remaining /
               static_cast<int64_t>(free_machines_.size()));
    bool progressed = false;
    MachineId last_granted = rr_cursor_;
    ForEachFreeMachineRoundRobin(
        free_machines_, rr_cursor_, [&](MachineId machine) {
          if (demand->total_remaining == 0) return false;
          if (demand->Avoids(machine)) return true;
          int64_t limit = std::min(demand->total_remaining, spread_cap);
          int64_t count = FitCount(
              *demand, machines_[static_cast<size_t>(machine.value())],
              limit);
          if (count > 0) {
            CommitGrant(demand, machine, count, result);
            tree_.ConsumeGrant(demand, machine, count);
            NoteGrantTier(LocalityLevel::kCluster, count);
            last_granted = machine;
            progressed = true;
          }
          return true;
        });
    rr_cursor_ = last_granted;
    if (!progressed) break;
  }
}

void Scheduler::SchedulePass(MachineId machine, SchedulingResult* result) {
  ++scheduling_passes_;
  if (passes_counter_ != nullptr) passes_counter_->Add();
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online || state.free.IsZero()) return;
  size_t examined = 0;
  tree_.ForEachCandidate(
      machine, [&](PendingDemand* demand, LocalityLevel level) -> int64_t {
        if (options_.max_candidates_per_pass > 0 &&
            ++examined > options_.max_candidates_per_pass) {
          return -1;
        }
        int64_t limit = demand->total_remaining;
        if (level == LocalityLevel::kMachine) {
          auto it = demand->machine_remaining.find(machine);
          limit = std::min(
              limit, it == demand->machine_remaining.end() ? 0 : it->second);
        } else if (level == LocalityLevel::kRack) {
          RackId rack = topology_->machine(machine).rack;
          auto it = demand->rack_remaining.find(rack);
          limit = std::min(
              limit, it == demand->rack_remaining.end() ? 0 : it->second);
        }
        int64_t count = FitCount(*demand, state, limit);
        if (count > 0) {
          CommitGrant(demand, machine, count, result);
          NoteGrantTier(level, count);
          // The tree consumes the grant after we return.
        }
        return count;
      });
}

void Scheduler::CommitGrant(PendingDemand* demand, MachineId machine,
                            int64_t count, SchedulingResult* result) {
  FUXI_CHECK_GT(count, 0);
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector amount = demand->def.resources * count;
  FUXI_CHECK(amount.FitsIn(state.free))
      << "grant exceeds free pool on machine " << machine.value();
  state.free -= amount;
  if (state.free.IsZero()) free_machines_.erase(machine);
  state.grants[demand->key] += count;
  quota_.OnGrant(demand->key.app, amount);
  quota_.OnWaitingChange(demand->key.app,
                         demand->def.resources * (-count));
  result->assignments.push_back(
      Assignment{demand->key.app, demand->key.slot_id, machine, count});
}

int64_t Scheduler::RevokeGrant(const SlotKey& key, MachineId machine,
                               int64_t count, RevocationReason reason,
                               SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end() || count <= 0) return 0;
  int64_t revoked = std::min(count, it->second);
  it->second -= revoked;
  if (it->second == 0) state.grants.erase(it);

  PendingDemand* demand = tree_.Find(key);
  FUXI_CHECK(demand != nullptr) << "grant without demand record";
  cluster::ResourceVector amount = demand->def.resources * revoked;
  bool was_zero_free = state.free.IsZero();
  state.free += amount;
  if (state.online && was_zero_free && !state.free.IsZero()) {
    free_machines_.insert(machine);
  }
  quota_.OnRevoke(key.app, amount);

  // Involuntary revocations put the demand back in the waiting queues so
  // the application automatically receives replacement resources.
  // Reconcile corrections are voluntary-equivalent: the totals were
  // already reconciled by the caller.
  if (reason != RevocationReason::kAppRelease &&
      reason != RevocationReason::kReconcile) {
    tree_.AddTotal(demand, revoked);
    quota_.OnWaitingChange(key.app, amount);
  }
  result->revocations.push_back(
      Revocation{key.app, key.slot_id, machine, revoked, reason});
  return revoked;
}

Status Scheduler::RestoreGrant(AppId app, const ScheduleUnitDef& def,
                               MachineId machine, int64_t count) {
  if (apps_.count(app) == 0) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  if (count <= 0) return Status::InvalidArgument("count must be positive");
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) {
    return Status::FailedPrecondition("machine offline: " +
                                      machine.ToString());
  }
  cluster::ResourceVector amount = def.resources * count;
  if (!amount.FitsIn(state.free)) {
    return Status::ResourceExhausted(
        "restored grant exceeds free capacity on machine " +
        machine.ToString());
  }
  SlotKey key{app, def.slot_id};
  // Ensure the demand record exists (with zero outstanding count) so
  // grant accounting can resolve the unit definition.
  tree_.GetOrCreate(key, def);
  apps_[app].slots.insert(def.slot_id);
  state.free -= amount;
  if (state.free.IsZero()) free_machines_.erase(machine);
  state.grants[key] += count;
  quota_.OnGrant(app, amount);
  return Status::Ok();
}

Status Scheduler::Release(AppId app, uint32_t slot_id, MachineId machine,
                          int64_t count, SchedulingResult* result,
                          RevocationReason reason) {
  SlotKey key{app, slot_id};
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end()) {
    return Status::NotFound("no grant for app " + app.ToString() +
                            " slot " + std::to_string(slot_id) +
                            " on machine " + machine.ToString());
  }
  if (count > it->second) {
    return Status::InvalidArgument("release exceeds granted count");
  }
  RevokeGrant(key, machine, count, reason, result);
  // The Figure 3 cycle: freed resources are immediately offered to the
  // waiting queues of this machine / its rack / the cluster.
  SchedulePass(machine, result);
  return Status::Ok();
}

void Scheduler::SetMachineOffline(MachineId machine,
                                  SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) return;
  std::vector<std::pair<SlotKey, int64_t>> to_revoke(state.grants.begin(),
                                                     state.grants.end());
  for (const auto& [key, count] : to_revoke) {
    RevokeGrant(key, machine, count, RevocationReason::kMachineDown, result);
  }
  state.online = false;
  state.free = cluster::ResourceVector();
  free_machines_.erase(machine);
  // Demands displaced from this machine re-entered the waiting queues;
  // try to place them elsewhere right away.
  std::vector<SlotKey> displaced;
  displaced.reserve(to_revoke.size());
  for (const auto& [key, count] : to_revoke) displaced.push_back(key);
  for (const SlotKey& key : displaced) {
    if (PendingDemand* demand = tree_.Find(key)) {
      if (demand->total_remaining > 0) PlaceDemand(demand, result);
    }
  }
}

void Scheduler::SetMachineOnline(MachineId machine, SchedulingResult* result,
                                 bool run_pass) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (state.online) return;
  state.online = true;
  state.free = state.capacity;
  FUXI_CHECK(state.grants.empty());
  if (!state.free.IsZero()) free_machines_.insert(machine);
  if (run_pass) SchedulePass(machine, result);
}

/// Runs a deferred scheduling pass (used after failover grant
/// restoration completes on a machine).
void Scheduler::RunSchedulePass(MachineId machine, SchedulingResult* result) {
  SchedulePass(machine, result);
}

void Scheduler::SetMachineCapacity(MachineId machine,
                                   const cluster::ResourceVector& capacity,
                                   SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector granted = state.capacity - state.free;
  state.capacity = capacity;
  cluster::ResourceVector new_free = capacity - granted;
  // Shrink below current usage: kill grants (deterministically by key
  // order; the paper lets FuxiAgent pick) until usage fits again.
  while (new_free.AnyNegative() && !state.grants.empty()) {
    SlotKey key = state.grants.begin()->first;
    RevokeGrant(key, machine, 1, RevocationReason::kCapacityShrink, result);
    granted = cluster::ResourceVector();
    for (const auto& [grant_key, count] : state.grants) {
      const PendingDemand* demand = tree_.Find(grant_key);
      FUXI_CHECK(demand != nullptr);
      granted += demand->def.resources * count;
    }
    new_free = capacity - granted;
    // RevokeGrant already adjusted state.free; recompute cleanly below.
  }
  state.free = new_free.ClampNonNegative();
  if (state.online && !state.free.IsZero()) {
    free_machines_.insert(machine);
  } else {
    free_machines_.erase(machine);
  }
  if (state.online) SchedulePass(machine, result);
}

void Scheduler::TryPreempt(PendingDemand* demand, SchedulingResult* result) {
  if (demand->total_remaining <= 0) return;
  const QuotaManager::Group* my_group = quota_.GroupOf(demand->key.app);

  // Collect victim grants: (level, victim priority, machine, key).
  // Level 0 = priority preemption within the same group; level 1 =
  // quota preemption against over-quota groups (paper §3.4 order).
  struct Victim {
    int level;
    Priority priority;
    MachineId machine;
    SlotKey key;
  };
  std::vector<Victim> victims;
  bool my_group_deficit =
      options_.enable_quota && my_group != nullptr &&
      quota_.HasDeficit(*my_group);
  for (size_t m = 0; m < machines_.size(); ++m) {
    MachineId machine(static_cast<int64_t>(m));
    const MachineState& state = machines_[m];
    if (!state.online || demand->Avoids(machine)) continue;
    for (const auto& [key, count] : state.grants) {
      if (key.app == demand->key.app) continue;
      const PendingDemand* victim_demand = tree_.Find(key);
      FUXI_CHECK(victim_demand != nullptr);
      const QuotaManager::Group* victim_group = quota_.GroupOf(key.app);
      bool same_group = my_group != nullptr && victim_group == my_group;
      if (same_group &&
          victim_demand->def.priority < demand->def.priority) {
        victims.push_back(
            {0, victim_demand->def.priority, machine, key});
      } else if (my_group_deficit && victim_group != nullptr &&
                 !same_group && quota_.OverQuota(*victim_group)) {
        victims.push_back(
            {1, victim_demand->def.priority, machine, key});
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.machine != b.machine) return a.machine < b.machine;
              return a.key < b.key;
            });

  for (const Victim& victim : victims) {
    if (demand->total_remaining <= 0) return;
    MachineState& state =
        machines_[static_cast<size_t>(victim.machine.value())];
    // Revoke victim units one at a time until one of ours fits (or the
    // victim runs out on this machine).
    while (demand->total_remaining > 0) {
      auto it = state.grants.find(victim.key);
      if (it == state.grants.end()) break;
      RevocationReason reason = victim.level == 0
                                    ? RevocationReason::kPreemptPriority
                                    : RevocationReason::kPreemptQuota;
      if (RevokeGrant(victim.key, victim.machine, 1, reason, result) == 0) {
        break;
      }
      int64_t count = FitCount(*demand, state, demand->total_remaining);
      if (count > 0) {
        CommitGrant(demand, victim.machine, count, result);
        tree_.ConsumeGrant(demand, victim.machine, count);
        if (preempt_units_counter_ != nullptr) {
          preempt_units_counter_->Add(static_cast<uint64_t>(count));
        }
      }
    }
  }
}

size_t Scheduler::AgeWaitingDemands(double now) {
  now_hint_ = now;
  if (options_.starvation_age_after <= 0) return 0;
  size_t boosted = 0;
  // Collect first: re-keying mutates the queues the demands sit in.
  std::vector<SlotKey> to_boost;
  for (const PendingDemand* demand : tree_.AllDemands()) {
    if (demand->total_remaining <= 0) continue;
    if (now - demand->waiting_since < options_.starvation_age_after) {
      continue;
    }
    if (demand->effective_priority - demand->def.priority >=
        options_.starvation_max_boost) {
      continue;
    }
    to_boost.push_back(demand->key);
  }
  for (const SlotKey& key : to_boost) {
    PendingDemand* demand = tree_.Find(key);
    if (demand == nullptr) continue;
    tree_.SetEffectivePriority(demand, demand->effective_priority + 1);
    demand->waiting_since = now;  // one boost per aging period
    ++boosted;
    // The boosted demand may now beat previous winners; try to place it.
    SchedulingResult result;
    PlaceDemand(demand, &result);
    aged_results_.push_back(std::move(result));
  }
  return boosted;
}

/// Drains scheduling results produced by the last aging sweep (grants
/// made when boosted demands found space).
std::vector<SchedulingResult> Scheduler::TakeAgedResults() {
  return std::move(aged_results_);
}

const MachineState& Scheduler::machine_state(MachineId machine) const {
  FUXI_CHECK(machine.valid());
  return machines_[static_cast<size_t>(machine.value())];
}

MachineState& Scheduler::mutable_machine_state(MachineId machine) {
  FUXI_CHECK(machine.valid());
  return machines_[static_cast<size_t>(machine.value())];
}

cluster::ResourceVector Scheduler::TotalCapacity() const {
  cluster::ResourceVector total;
  for (const MachineState& state : machines_) {
    if (state.online) total += state.capacity;
  }
  return total;
}

cluster::ResourceVector Scheduler::TotalGranted() const {
  cluster::ResourceVector total;
  for (const MachineState& state : machines_) {
    if (!state.online) continue;
    total += state.capacity - state.free;
  }
  return total;
}

cluster::ResourceVector Scheduler::GrantedTo(AppId app) const {
  cluster::ResourceVector total;
  for (const MachineState& state : machines_) {
    for (const auto& [key, count] : state.grants) {
      if (key.app != app) continue;
      const PendingDemand* demand = tree_.Find(key);
      FUXI_CHECK(demand != nullptr);
      total += demand->def.resources * count;
    }
  }
  return total;
}

std::vector<Scheduler::GrantEntry> Scheduler::GrantsOf(AppId app) const {
  std::vector<GrantEntry> out;
  for (size_t m = 0; m < machines_.size(); ++m) {
    for (const auto& [key, count] : machines_[m].grants) {
      if (key.app == app) {
        out.push_back(
            {key.slot_id, MachineId(static_cast<int64_t>(m)), count});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const GrantEntry& a, const GrantEntry& b) {
              if (a.slot_id != b.slot_id) return a.slot_id < b.slot_id;
              return a.machine < b.machine;
            });
  return out;
}

int64_t Scheduler::GrantCount(AppId app, uint32_t slot_id,
                              MachineId machine) const {
  const MachineState& state =
      machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(SlotKey{app, slot_id});
  return it == state.grants.end() ? 0 : it->second;
}

bool Scheduler::CheckInvariants() const {
  if (!tree_.CheckInvariants()) return false;
  for (size_t m = 0; m < machines_.size(); ++m) {
    const MachineState& state = machines_[m];
    cluster::ResourceVector granted;
    for (const auto& [key, count] : state.grants) {
      if (count <= 0) return false;
      const PendingDemand* demand = tree_.Find(key);
      if (demand == nullptr) return false;
      granted += demand->def.resources * count;
    }
    if (state.online) {
      if (!(granted + state.free == state.capacity)) return false;
      if (state.free.AnyNegative()) return false;
      bool in_set = free_machines_.count(MachineId(
                        static_cast<int64_t>(m))) > 0;
      if (in_set != !state.free.IsZero()) return false;
    } else {
      if (!state.grants.empty()) return false;
      if (free_machines_.count(MachineId(static_cast<int64_t>(m))) > 0) {
        return false;
      }
    }
  }
  return true;
}

void Scheduler::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    tier_machine_counter_ = tier_rack_counter_ = tier_cluster_counter_ =
        preempt_units_counter_ = passes_counter_ = nullptr;
    return;
  }
  tier_machine_counter_ = metrics->GetCounter("sched.grant_units.machine");
  tier_rack_counter_ = metrics->GetCounter("sched.grant_units.rack");
  tier_cluster_counter_ = metrics->GetCounter("sched.grant_units.cluster");
  preempt_units_counter_ = metrics->GetCounter("sched.preempt_units");
  passes_counter_ = metrics->GetCounter("sched.schedule_passes");
}

}  // namespace fuxi::resource
