#include "resource/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace fuxi::resource {

namespace {

/// Applies `fn` to each machine in `free_machines` starting after
/// `cursor` and wrapping around once. The walk is live, advancing by
/// key: `fn` (a placement attempt) may erase the machine it was just
/// handed when a grant exhausts its free pool, and never inserts — so
/// upper_bound on the previous id always resumes correctly and the
/// rotation needs no snapshot of the set. `fn` returns false to stop.
void ForEachFreeMachineRoundRobin(
    const std::set<MachineId>& free_machines, MachineId cursor,
    const std::function<bool(MachineId)>& fn) {
  auto it = free_machines.upper_bound(cursor);
  while (it != free_machines.end()) {
    MachineId machine = *it;
    if (!fn(machine)) return;
    it = free_machines.upper_bound(machine);
  }
  it = free_machines.begin();
  while (it != free_machines.end() && !(cursor < *it)) {
    MachineId machine = *it;
    if (!fn(machine)) return;
    it = free_machines.upper_bound(machine);
  }
}

}  // namespace

Scheduler::Scheduler(const cluster::ClusterTopology* topology,
                     Options options)
    : topology_(topology), options_(options), tree_(topology) {
  FUXI_CHECK(topology != nullptr);
  machines_.resize(topology->machine_count());
  rack_free_.resize(topology->rack_count());
  for (const cluster::Machine& machine : topology->machines()) {
    MachineState& state = machines_[static_cast<size_t>(machine.id.value())];
    state.online = true;
    state.capacity = machine.capacity;
    state.free = machine.capacity;
    if (!state.free.IsZero()) {
      free_machines_.insert(machine.id);
      rack_free_[static_cast<size_t>(machine.rack.value())].insert(
          machine.id);
    }
  }
  rr_cursor_ = MachineId(0);
}

Status Scheduler::CreateQuotaGroup(const std::string& name,
                                   const cluster::ResourceVector& quota) {
  NoteMutation();
  return quota_.CreateGroup(name, quota);
}

Status Scheduler::RegisterApp(AppId app, const std::string& quota_group) {
  if (apps_.count(app) > 0) {
    return Status::AlreadyExists("app already registered: " +
                                 app.ToString());
  }
  if (!quota_group.empty()) {
    FUXI_RETURN_IF_ERROR(quota_.AssignApp(app, quota_group));
  }
  NoteMutation();
  apps_.emplace(app, AppState{app, {}});
  return Status::Ok();
}

Status Scheduler::UnregisterApp(AppId app, SchedulingResult* result) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  NoteMutation();
  // Revoke every grant (as releases: the app is gone, nothing to
  // restore). The site index yields them in (slot, machine) order; sort
  // to (machine, slot) — the order a per-machine sweep produces, which
  // the replay goldens pin down.
  std::vector<std::pair<MachineId, SlotKey>> to_revoke;
  for (auto site = grant_sites_.lower_bound(SlotKey{app, 0});
       site != grant_sites_.end() && site->first.app == app; ++site) {
    for (MachineId machine : site->second) {
      to_revoke.emplace_back(machine, site->first);
    }
  }
  std::sort(to_revoke.begin(), to_revoke.end());
  for (const auto& [machine, key] : to_revoke) {
    MachineState& state = machines_[static_cast<size_t>(machine.value())];
    auto grant = state.grants.find(key);
    FUXI_CHECK(grant != state.grants.end());
    RevokeGrant(key, machine, grant->second, RevocationReason::kAppRelease,
                result);
  }
  // Clear waiting demand accounting before dropping the demands.
  for (uint32_t slot : it->second.slots) {
    if (PendingDemand* demand = tree_.Find(SlotKey{app, slot})) {
      if (demand->total_remaining > 0) {
        quota_.OnWaitingChange(
            app, demand->def.resources * (-demand->total_remaining));
      }
    }
  }
  if (planner_ != nullptr) {
    for (uint32_t slot : it->second.slots) {
      planner_->OnDemandGone(PlanKeyOf(SlotKey{app, slot}));
    }
  }
  tree_.RemoveApp(app);
  if (quota_.HasApp(app)) {
    Status s = quota_.RemoveApp(app);
    FUXI_CHECK(s.ok()) << s.ToString();
  }
  apps_.erase(it);
  // The revokes marked the freed machines dirty; reschedule them now.
  FlushDirtyPasses(result);
  return Status::Ok();
}

Status Scheduler::ApplyRequest(const ResourceRequest& request,
                               SchedulingResult* result) {
  auto it = apps_.find(request.app);
  if (it == apps_.end()) {
    return Status::NotFound("app not registered: " + request.app.ToString());
  }
  std::vector<PendingDemand*> touched;
  for (const UnitRequestDelta& delta : request.units) {
    FUXI_RETURN_IF_ERROR(ApplyUnitDelta(request.app, delta, &touched));
    it->second.slots.insert(delta.slot_id);
  }
  for (PendingDemand* demand : touched) {
    if (demand->total_remaining > 0) PlaceDemand(demand, result);
  }
  if (options_.enable_preemption) {
    for (PendingDemand* demand : touched) {
      if (demand->total_remaining > 0) TryPreempt(demand, result);
    }
  }
  // A request that carried planning hints gets an immediate planning
  // pass: gangs that fit start now, reservations are booked without
  // waiting for the next roll-up tick.
  if (planner_ != nullptr) {
    bool any_plan = false;
    for (PendingDemand* demand : touched) {
      if (demand->plan.Any()) {
        any_plan = true;
        break;
      }
    }
    if (any_plan) PlannerTick(now_hint_, result);
  }
  return Status::Ok();
}

Status Scheduler::ApplyUnitDelta(AppId app, const UnitRequestDelta& delta,
                                 std::vector<PendingDemand*>* touched) {
  NoteMutation();
  SlotKey key{app, delta.slot_id};
  PendingDemand* demand = tree_.Find(key);
  if (demand == nullptr) {
    if (!delta.has_def) {
      return Status::InvalidArgument(
          "first request for slot " + std::to_string(delta.slot_id) +
          " of app " + app.ToString() + " must carry the unit definition");
    }
    if (delta.def.resources.AnyNegative() ||
        delta.def.resources.IsZero()) {
      return Status::InvalidArgument("schedule unit size must be positive");
    }
    demand = tree_.GetOrCreate(key, delta.def);
  }

  // Avoid-list edits first: they affect subsequent placement.
  for (const std::string& hostname : delta.avoid_add) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.insert(machine);
  }
  for (const std::string& hostname : delta.avoid_remove) {
    FUXI_ASSIGN_OR_RETURN(MachineId machine,
                          topology_->FindByHostname(hostname));
    demand->avoid.erase(machine);
  }

  // Locality hints. Under the flat-queue ablation they are ignored and
  // everything competes in the single cluster queue.
  if (options_.locality_tree) {
    for (const LocalityHint& hint : delta.hints) {
      switch (hint.level) {
        case LocalityLevel::kMachine: {
          FUXI_ASSIGN_OR_RETURN(MachineId machine,
                                topology_->FindByHostname(hint.value));
          tree_.AddMachine(demand, machine, hint.count);
          break;
        }
        case LocalityLevel::kRack: {
          FUXI_ASSIGN_OR_RETURN(RackId rack,
                                topology_->FindRackByName(hint.value));
          tree_.AddRack(demand, rack, hint.count);
          break;
        }
        case LocalityLevel::kCluster:
          // Cluster-level hints fold into the total below.
          break;
      }
    }
  }

  // Planning hints (fuxi::planner). Under FUXI_PLANNER=0 they are
  // ignored exactly like locality hints under the flat-queue ablation:
  // the demand schedules greedily and the wire format is unchanged.
  if (delta.has_plan && planner::ClusterPlanner::enabled()) {
    if (delta.plan.reservation && delta.plan.estimated_seconds <= 0) {
      return Status::InvalidArgument(
          "advance reservation requires a lifetime estimate");
    }
    if (delta.plan.gang_id != 0 && delta.plan.gang_size == 0) {
      return Status::InvalidArgument(
          "gang member must declare the gang size");
    }
    demand->plan = delta.plan;
    EnsurePlanner();
    auto sites = grant_sites_.find(demand->key);
    bool already_granted =
        sites != grant_sites_.end() && !sites->second.empty();
    planner_->NoteDemand(PlanKeyOf(demand->key),
                         PlannerDemandInfo(demand->key), already_granted);
  }

  if (delta.total_count_delta != 0) {
    int64_t before = demand->total_remaining;
    tree_.AddTotal(demand, delta.total_count_delta);
    int64_t applied = demand->total_remaining - before;
    if (applied != 0) {
      quota_.OnWaitingChange(app, demand->def.resources * applied);
    }
    if (before == 0 && demand->total_remaining > 0) {
      demand->waiting_since = now_hint_;
    }
  }
  touched->push_back(demand);
  return Status::Ok();
}

int64_t Scheduler::FitCount(const PendingDemand& demand, MachineState& state,
                            int64_t limit, obs::RejectReason* why) {
  if (!state.online) {
    if (why != nullptr) *why = obs::RejectReason::kOffline;
    return 0;
  }
  if (limit <= 0) {
    if (why != nullptr) *why = obs::RejectReason::kNoFreeCapacity;
    return 0;
  }
  const cluster::ResourceVector& unit = demand.def.resources;
  if (state.no_fit_epoch == state.free_epoch &&
      state.no_fit_unit.FitsIn(unit)) {
    // A unit no larger than this one already failed against the same
    // free vector; by dominance this one fails too.
    if (negfit_hit_counter_ != nullptr) negfit_hit_counter_->Add();
    if (why != nullptr) *why = obs::RejectReason::kNegativeFitCache;
    return 0;
  }
  if (negfit_miss_counter_ != nullptr) negfit_miss_counter_->Add();
  int64_t fit = state.free.DivideBy(unit);
  if (fit <= 0) {
    // Cache the raw no-fit verdict. Only the quota-independent result
    // may be cached: the clamp below moves with quota state, which
    // changes without touching free_epoch.
    state.no_fit_epoch = state.free_epoch;
    state.no_fit_unit = unit;
    if (why != nullptr) *why = obs::RejectReason::kNoFreeCapacity;
    return 0;
  }
  int64_t count = std::min(fit, limit);
  if (options_.enable_quota &&
      quota_.AnyOtherGroupHasDeficit(demand.key.app)) {
    // The app may only grow up to its group's guarantee while another
    // group is starved below its own guarantee.
    const QuotaManager::Group* group = quota_.GroupOf(demand.key.app);
    if (group != nullptr) {
      cluster::ResourceVector headroom =
          (group->quota - group->usage).ClampNonNegative();
      count = std::min(count, headroom.DivideBy(unit));
    }
  }
  count = std::max<int64_t>(count, 0);
  // EASY backfill guard: on a machine carrying reservation claims, a
  // grant may only start now if it provably finishes (its lifetime
  // estimate; forever when unknown) before the booked windows need
  // their resources. Never binds on unreserved machines.
  if (planner_ != nullptr && count > 0) {
    int64_t mid = &state - machines_.data();
    if (planner_->HasReservationWindow(mid)) {
      count = planner_->ClampForBackfill(
          mid, state.free, unit, demand.plan.estimated_seconds, count,
          PlanKeyOf(demand.key));
      if (count == 0) {
        if (why != nullptr) {
          *why = obs::RejectReason::kBackfillWouldDelayReservation;
        }
        return 0;
      }
    }
  }
  if (why != nullptr) {
    *why = count > 0 ? obs::RejectReason::kNone
                     : obs::RejectReason::kQuotaHeadroom;
  }
  return count;
}

void Scheduler::PlaceDemand(PendingDemand* demand, SchedulingResult* result) {
  // Planner-held demands never place instantaneously: gang members
  // wait for the all-or-nothing transaction, reservation demands for
  // their booked window.
  if (PlannerHolds(*demand)) {
    if (auditing()) {
      obs::DecisionRecord rec;
      rec.kind = obs::DecisionKind::kPlace;
      rec.app = demand->key.app.value();
      rec.slot = demand->key.slot_id;
      rec.remaining_before = demand->total_remaining;
      rec.remaining_after = demand->total_remaining;
      rec.reason = demand->plan.gang_id != 0
                       ? obs::RejectReason::kGangPartialFit
                       : obs::RejectReason::kBackfillWouldDelayReservation;
      rec.note = demand->plan.gang_id != 0
                     ? "held: gang not started"
                     : "held: waiting for reservation window";
      audit_->Commit(std::move(rec));
    }
    return;
  }
  if (!auditing()) {
    PlaceDemandWalk(demand, result, nullptr);
    return;
  }
  obs::DecisionRecord rec;
  rec.kind = obs::DecisionKind::kPlace;
  rec.app = demand->key.app.value();
  rec.slot = demand->key.slot_id;
  rec.remaining_before = demand->total_remaining;
  PlaceDemandWalk(demand, result, &rec);
  rec.remaining_after = demand->total_remaining;
  if (rec.remaining_after > 0) {
    // If no examined candidate carries a rejection — the walk found
    // nothing to examine, or every candidate granted partially and the
    // free set ran dry — stamp a record-level reason so the rejection
    // chain for an unplaced demand is never empty.
    bool any_rejection = false;
    for (const obs::CandidateOutcome& c : rec.candidates) {
      if (c.granted == 0 && c.reason != obs::RejectReason::kNone) {
        any_rejection = true;
        break;
      }
    }
    if (!any_rejection) rec.reason = obs::RejectReason::kNoFreeMachines;
  }
  audit_->Commit(std::move(rec));
}

void Scheduler::PlaceDemandWalk(PendingDemand* demand,
                                SchedulingResult* result,
                                obs::DecisionRecord* rec) {
  obs::RejectReason why = obs::RejectReason::kNone;
  obs::RejectReason* whyp = rec != nullptr ? &why : nullptr;
  auto note = [&](MachineId machine, uint8_t tier, int64_t count) {
    if (rec == nullptr) return;
    rec->AddCandidate({rec->app, rec->slot, machine.value(), tier,
                       count > 0 ? obs::RejectReason::kNone : why, count,
                       demand->total_remaining});
  };
  // 1. Machine-level preferences (data locality first). The hint index
  // is a sorted map, so this walks it in id order with no per-call
  // snapshot-and-sort. ConsumeGrant may erase the entry just granted
  // from; the successor is captured first (map erase only invalidates
  // the erased node).
  if (options_.locality_tree && !demand->machine_remaining.empty()) {
    auto it = demand->machine_remaining.begin();
    while (it != demand->machine_remaining.end()) {
      if (demand->total_remaining == 0) return;
      MachineId machine = it->first;
      auto next = std::next(it);
      if (!demand->Avoids(machine)) {
        int64_t limit = std::min(it->second, demand->total_remaining);
        int64_t count = FitCount(
            *demand, machines_[static_cast<size_t>(machine.value())], limit,
            whyp);
        if (count > 0) {
          CommitGrant(demand, machine, count, result);
          tree_.ConsumeGrant(demand, machine, count);
          NoteGrantTier(LocalityLevel::kMachine, count);
        }
        note(machine, 0, count);
      } else if (rec != nullptr) {
        why = obs::RejectReason::kAvoided;
        note(machine, 0, 0);
      }
      it = next;
    }
  }
  // 2. Rack-level preferences. Only machines with free capacity are
  // visited (the per-rack free index; zero-free and offline machines
  // could not grant anyway). Grants erase the granted machine from the
  // index, so the walk advances by key.
  if (options_.locality_tree && !demand->rack_remaining.empty()) {
    auto rack_it = demand->rack_remaining.begin();
    while (rack_it != demand->rack_remaining.end()) {
      RackId rack = rack_it->first;
      auto next_rack = std::next(rack_it);
      const std::set<MachineId>& in_rack =
          rack_free_[static_cast<size_t>(rack.value())];
      auto mit = in_rack.begin();
      while (mit != in_rack.end()) {
        if (demand->total_remaining == 0) return;
        auto entry = demand->rack_remaining.find(rack);
        if (entry == demand->rack_remaining.end()) break;
        MachineId machine = *mit;
        if (!demand->Avoids(machine)) {
          int64_t limit = std::min(entry->second, demand->total_remaining);
          int64_t count = FitCount(
              *demand, machines_[static_cast<size_t>(machine.value())],
              limit, whyp);
          if (count > 0) {
            CommitGrant(demand, machine, count, result);
            tree_.ConsumeGrant(demand, machine, count);
            NoteGrantTier(LocalityLevel::kRack, count);
          }
          note(machine, 1, count);
        } else if (rec != nullptr) {
          why = obs::RejectReason::kAvoided;
          note(machine, 1, 0);
        }
        mit = in_rack.upper_bound(machine);
      }
      rack_it = next_rack;
    }
  }
  // 3. Anywhere in the cluster, round-robin over machines with free
  // resources. Each rotation caps the per-machine grant near the fair
  // share so units spread uniformly (load balance, §3.3); further
  // rotations mop up the remainder on machines with headroom.
  while (demand->total_remaining > 0 && !free_machines_.empty()) {
    int64_t spread_cap = std::max<int64_t>(
        1, demand->total_remaining /
               static_cast<int64_t>(free_machines_.size()));
    bool progressed = false;
    MachineId last_granted = rr_cursor_;
    ForEachFreeMachineRoundRobin(
        free_machines_, rr_cursor_, [&](MachineId machine) {
          if (demand->total_remaining == 0) return false;
          if (demand->Avoids(machine)) {
            if (rec != nullptr) {
              why = obs::RejectReason::kAvoided;
              note(machine, 2, 0);
            }
            return true;
          }
          int64_t limit = std::min(demand->total_remaining, spread_cap);
          int64_t count = FitCount(
              *demand, machines_[static_cast<size_t>(machine.value())],
              limit, whyp);
          if (count > 0) {
            CommitGrant(demand, machine, count, result);
            tree_.ConsumeGrant(demand, machine, count);
            NoteGrantTier(LocalityLevel::kCluster, count);
            last_granted = machine;
            progressed = true;
          }
          note(machine, 2, count);
          return true;
        });
    rr_cursor_ = last_granted;
    if (!progressed) break;
  }
}

void Scheduler::SchedulePass(MachineId machine, SchedulingResult* result) {
  ++scheduling_passes_;
  if (passes_counter_ != nullptr) passes_counter_->Add();
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  dirty_machines_.erase(machine);
  // A pass over an offline or full machine examines nothing and is not
  // worth a ring slot; skipped and walked passes are recorded.
  if (!state.online || state.free.IsZero()) return;
  obs::DecisionRecord rec;
  const bool record = auditing();
  if (record) {
    rec.kind = obs::DecisionKind::kPass;
    rec.machine = machine.value();
  }
  if (!tree_.HasLiveDemands() || state.last_pass_epoch == world_epoch_) {
    // Nothing is waiting anywhere, or nothing at all changed since this
    // machine's last walk ran to fixpoint — the walk cannot grant.
    ++passes_skipped_;
    if (passes_skipped_counter_ != nullptr) passes_skipped_counter_->Add();
    if (record) {
      rec.reason = !tree_.HasLiveDemands()
                       ? obs::RejectReason::kNoLiveDemands
                       : obs::RejectReason::kPassEpochSkip;
      audit_->Commit(std::move(rec));
    }
    return;
  }
  size_t examined = 0;
  bool truncated = false;
  size_t grants_before = result->assignments.size();
  obs::RejectReason why = obs::RejectReason::kNone;
  std::function<void(const PendingDemand&, LocalityLevel)> on_avoided;
  if (record) {
    on_avoided = [&rec](const PendingDemand& demand, LocalityLevel level) {
      rec.AddCandidate({demand.key.app.value(), demand.key.slot_id, -1,
                        static_cast<uint8_t>(level),
                        obs::RejectReason::kAvoided, 0,
                        demand.total_remaining});
    };
  }
  tree_.ForEachCandidate(
      machine,
      [&](PendingDemand* demand, LocalityLevel level) -> int64_t {
        if (options_.max_candidates_per_pass > 0 &&
            ++examined > options_.max_candidates_per_pass) {
          truncated = true;
          if (record) {
            rec.AddCandidate({demand->key.app.value(), demand->key.slot_id,
                              -1, static_cast<uint8_t>(level),
                              obs::RejectReason::kCandidateCap, 0,
                              demand->total_remaining});
          }
          return -1;
        }
        if (PlannerHolds(*demand)) {
          if (record) {
            rec.AddCandidate({demand->key.app.value(), demand->key.slot_id,
                              -1, static_cast<uint8_t>(level),
                              obs::RejectReason::kGangPartialFit, 0,
                              demand->total_remaining});
          }
          return 0;
        }
        int64_t limit = demand->total_remaining;
        if (level == LocalityLevel::kMachine) {
          auto it = demand->machine_remaining.find(machine);
          limit = std::min(
              limit, it == demand->machine_remaining.end() ? 0 : it->second);
        } else if (level == LocalityLevel::kRack) {
          RackId rack = topology_->machine(machine).rack;
          auto it = demand->rack_remaining.find(rack);
          limit = std::min(
              limit, it == demand->rack_remaining.end() ? 0 : it->second);
        }
        int64_t count =
            FitCount(*demand, state, limit, record ? &why : nullptr);
        if (count > 0) {
          CommitGrant(demand, machine, count, result);
          NoteGrantTier(level, count);
          // The tree consumes the grant after we return.
        }
        if (record) {
          // The tree decrements total_remaining after we return, so the
          // post-grant remaining is computed here.
          rec.AddCandidate({demand->key.app.value(), demand->key.slot_id,
                            -1, static_cast<uint8_t>(level),
                            count > 0 ? obs::RejectReason::kNone : why,
                            count, demand->total_remaining - count});
        }
        return count;
      },
      on_avoided);
  if (record && truncated) rec.reason = obs::RejectReason::kCandidateCap;
  // Only a pass that ran to fixpoint granting nothing is provably
  // idempotent (it mutated no state, so a literal re-run reproduces
  // it); a granting or truncated pass leaves the stale epoch so the
  // next pass re-walks.
  if (!truncated && result->assignments.size() == grants_before) {
    state.last_pass_epoch = world_epoch_;
  }
  if (record) audit_->Commit(std::move(rec));
}

void Scheduler::FlushDirtyPasses(SchedulingResult* result) {
  if (dirty_drain_hist_ != nullptr && !dirty_machines_.empty()) {
    dirty_drain_hist_->Add(static_cast<double>(dirty_machines_.size()));
  }
  while (!dirty_machines_.empty()) {
    // SchedulePass removes the machine from the set.
    SchedulePass(*dirty_machines_.begin(), result);
  }
}

void Scheduler::CommitGrant(PendingDemand* demand, MachineId machine,
                            int64_t count, SchedulingResult* result) {
  FUXI_CHECK_GT(count, 0);
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector amount = demand->def.resources * count;
  FUXI_CHECK(amount.FitsIn(state.free))
      << "grant exceeds free pool on machine " << machine.value();
  state.free -= amount;
  SyncFreeIndex(machine, state);
  state.grants[demand->key] += count;
  grant_sites_[demand->key].insert(machine);
  if (grant_sites_gauge_ != nullptr) {
    grant_sites_gauge_->Set(static_cast<double>(grant_sites_.size()));
  }
  total_granted_ += amount;
  quota_.OnGrant(demand->key.app, amount);
  quota_.OnWaitingChange(demand->key.app,
                         demand->def.resources * (-count));
  result->assignments.push_back(
      Assignment{demand->key.app, demand->key.slot_id, machine, count});
  // Estimated grants become running claims on the machine's timeline:
  // the planner can then promise their release point to backfill math.
  if (planner_ != nullptr && demand->plan.estimated_seconds > 0) {
    planner_->OnGrantCommitted(PlanKeyOf(demand->key), machine.value(),
                               count, demand->def.resources,
                               demand->plan.estimated_seconds);
  }
}

int64_t Scheduler::RevokeGrant(const SlotKey& key, MachineId machine,
                               int64_t count, RevocationReason reason,
                               SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end() || count <= 0) return 0;
  int64_t revoked = std::min(count, it->second);
  it->second -= revoked;
  if (it->second == 0) {
    state.grants.erase(it);
    auto site = grant_sites_.find(key);
    FUXI_CHECK(site != grant_sites_.end());
    site->second.erase(machine);
    if (site->second.empty()) grant_sites_.erase(site);
  }
  if (grant_sites_gauge_ != nullptr) {
    grant_sites_gauge_->Set(static_cast<double>(grant_sites_.size()));
  }

  PendingDemand* demand = tree_.Find(key);
  FUXI_CHECK(demand != nullptr) << "grant without demand record";
  int64_t remaining_before = demand->total_remaining;
  cluster::ResourceVector amount = demand->def.resources * revoked;
  state.free += amount;
  SyncFreeIndex(machine, state);
  total_granted_ -= amount;
  // The machine's free pool grew without an immediate re-offer; the
  // caller decides when to flush (or runs its own pass, clearing this).
  if (state.online) dirty_machines_.insert(machine);
  quota_.OnRevoke(key.app, amount);

  // Involuntary revocations put the demand back in the waiting queues so
  // the application automatically receives replacement resources.
  // Reconcile corrections are voluntary-equivalent: the totals were
  // already reconciled by the caller.
  if (reason != RevocationReason::kAppRelease &&
      reason != RevocationReason::kReconcile) {
    tree_.AddTotal(demand, revoked);
    quota_.OnWaitingChange(key.app, amount);
  }
  result->revocations.push_back(
      Revocation{key.app, key.slot_id, machine, revoked, reason});
  if (planner_ != nullptr) {
    planner_->OnGrantReleased(PlanKeyOf(key), machine.value(), revoked);
  }
  if (auditing()) {
    obs::DecisionRecord rec;
    rec.kind = obs::DecisionKind::kRevoke;
    rec.app = key.app.value();
    rec.slot = key.slot_id;
    rec.machine = machine.value();
    rec.units = revoked;
    rec.remaining_before = remaining_before;
    rec.remaining_after = demand->total_remaining;
    rec.note = std::string(RevocationReasonName(reason));
    audit_->Commit(std::move(rec));
  }
  return revoked;
}

Status Scheduler::RestoreGrant(AppId app, const ScheduleUnitDef& def,
                               MachineId machine, int64_t count) {
  if (apps_.count(app) == 0) {
    return Status::NotFound("app not registered: " + app.ToString());
  }
  if (count <= 0) return Status::InvalidArgument("count must be positive");
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) {
    return Status::FailedPrecondition("machine offline: " +
                                      machine.ToString());
  }
  cluster::ResourceVector amount = def.resources * count;
  if (!amount.FitsIn(state.free)) {
    return Status::ResourceExhausted(
        "restored grant exceeds free capacity on machine " +
        machine.ToString());
  }
  SlotKey key{app, def.slot_id};
  // Ensure the demand record exists (with zero outstanding count) so
  // grant accounting can resolve the unit definition.
  tree_.GetOrCreate(key, def);
  apps_[app].slots.insert(def.slot_id);
  state.free -= amount;
  SyncFreeIndex(machine, state);
  state.grants[key] += count;
  grant_sites_[key].insert(machine);
  total_granted_ += amount;
  quota_.OnGrant(app, amount);
  // Failover ordering: when the plan arrived before this agent report,
  // the planner is already tracking the key — the restored grant proves
  // its gang started / reservation converted under the old primary.
  if (planner_ != nullptr) planner_->OnGrantRestored(PlanKeyOf(key));
  return Status::Ok();
}

Status Scheduler::Release(AppId app, uint32_t slot_id, MachineId machine,
                          int64_t count, SchedulingResult* result,
                          RevocationReason reason) {
  SlotKey key{app, slot_id};
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(key);
  if (it == state.grants.end()) {
    return Status::NotFound("no grant for app " + app.ToString() +
                            " slot " + std::to_string(slot_id) +
                            " on machine " + machine.ToString());
  }
  if (count > it->second) {
    return Status::InvalidArgument("release exceeds granted count");
  }
  RevokeGrant(key, machine, count, reason, result);
  // The Figure 3 cycle: freed resources are immediately offered to the
  // waiting queues of this machine / its rack / the cluster.
  SchedulePass(machine, result);
  return Status::Ok();
}

void Scheduler::SetMachineOffline(MachineId machine,
                                  SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (!state.online) return;
  std::vector<std::pair<SlotKey, int64_t>> to_revoke(state.grants.begin(),
                                                     state.grants.end());
  for (const auto& [key, count] : to_revoke) {
    RevokeGrant(key, machine, count, RevocationReason::kMachineDown, result);
  }
  state.online = false;
  state.free = cluster::ResourceVector();
  SyncFreeIndex(machine, state);
  dirty_machines_.erase(machine);
  // Reservations booked on this machine must not survive its loss; the
  // planner drops its claims and re-plans the displaced reservations.
  if (planner_ != nullptr) planner_->OnMachineOffline(machine.value());
  // Demands displaced from this machine re-entered the waiting queues;
  // try to place them elsewhere right away.
  std::vector<SlotKey> displaced;
  displaced.reserve(to_revoke.size());
  for (const auto& [key, count] : to_revoke) displaced.push_back(key);
  for (const SlotKey& key : displaced) {
    if (PendingDemand* demand = tree_.Find(key)) {
      if (demand->total_remaining > 0) PlaceDemand(demand, result);
    }
  }
}

void Scheduler::SetMachineOnline(MachineId machine, SchedulingResult* result,
                                 bool run_pass) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  if (state.online) return;
  state.online = true;
  state.free = state.capacity;
  FUXI_CHECK(state.grants.empty());
  SyncFreeIndex(machine, state);
  if (run_pass) SchedulePass(machine, result);
}

/// Runs a deferred scheduling pass (used after failover grant
/// restoration completes on a machine).
void Scheduler::RunSchedulePass(MachineId machine, SchedulingResult* result) {
  SchedulePass(machine, result);
}

void Scheduler::SetMachineCapacity(MachineId machine,
                                   const cluster::ResourceVector& capacity,
                                   SchedulingResult* result) {
  MachineState& state = machines_[static_cast<size_t>(machine.value())];
  cluster::ResourceVector granted = state.capacity - state.free;
  state.capacity = capacity;
  cluster::ResourceVector new_free = capacity - granted;
  // Shrink below current usage: kill grants (deterministically by key
  // order; the paper lets FuxiAgent pick) until usage fits again.
  while (new_free.AnyNegative() && !state.grants.empty()) {
    SlotKey key = state.grants.begin()->first;
    RevokeGrant(key, machine, 1, RevocationReason::kCapacityShrink, result);
    granted = cluster::ResourceVector();
    for (const auto& [grant_key, count] : state.grants) {
      const PendingDemand* demand = tree_.Find(grant_key);
      FUXI_CHECK(demand != nullptr);
      granted += demand->def.resources * count;
    }
    new_free = capacity - granted;
    // RevokeGrant already adjusted state.free; recompute cleanly below.
  }
  state.free = new_free.ClampNonNegative();
  SyncFreeIndex(machine, state);
  // A shrink can strand future bookings above the new ceiling; the
  // planner reconciles eagerly so the overcommit invariant holds at
  // every instant, not just at the next tick.
  if (planner_ != nullptr) {
    planner_->SetMachineCapacity(machine.value(), capacity);
  }
  if (state.online) SchedulePass(machine, result);
}

void Scheduler::TryPreempt(PendingDemand* demand, SchedulingResult* result) {
  if (demand->total_remaining <= 0) return;
  if (PlannerHolds(*demand)) return;
  const QuotaManager::Group* my_group = quota_.GroupOf(demand->key.app);
  // Without a quota group the demand can neither priority-preempt
  // (same-group only) nor quota-preempt — no victim can exist, so skip
  // the scan entirely.
  if (my_group == nullptr) return;
  bool my_group_deficit =
      options_.enable_quota && quota_.HasDeficit(*my_group);

  // Collect victim grants: (level, victim priority, machine, key).
  // Level 0 = priority preemption within the same group; level 1 =
  // quota preemption against over-quota groups (paper §3.4 order).
  // The walk goes through the grant-site index app by app so that
  // ineligible apps are skipped wholesale; cost is proportional to
  // eligible grants, not cluster size.
  struct Victim {
    int level;
    Priority priority;
    MachineId machine;
    SlotKey key;
  };
  std::vector<Victim> victims;
  auto it = grant_sites_.begin();
  while (it != grant_sites_.end()) {
    AppId app = it->first.app;
    auto next_app =
        grant_sites_.lower_bound(SlotKey{AppId(app.value() + 1), 0});
    if (app == demand->key.app) {
      it = next_app;
      continue;
    }
    const QuotaManager::Group* victim_group = quota_.GroupOf(app);
    bool same_group = victim_group == my_group;
    bool quota_eligible = my_group_deficit && victim_group != nullptr &&
                          !same_group && quota_.OverQuota(*victim_group);
    if (!same_group && !quota_eligible) {
      it = next_app;
      continue;
    }
    for (; it != next_app; ++it) {
      const PendingDemand* victim_demand = tree_.Find(it->first);
      FUXI_CHECK(victim_demand != nullptr);
      int level;
      if (same_group) {
        if (victim_demand->def.priority >= demand->def.priority) continue;
        level = 0;
      } else {
        level = 1;
      }
      for (MachineId machine : it->second) {
        if (demand->Avoids(machine)) continue;
        // Machines carrying reservation claims are off-limits to
        // preemption: the revoke-then-grant shuffle is not covered by
        // the backfill clamp's commit-consistency argument, so keeping
        // the book safe means leaving those machines alone.
        if (planner_ != nullptr &&
            planner_->HasReservationWindow(machine.value())) {
          continue;
        }
        victims.push_back(
            {level, victim_demand->def.priority, machine, it->first});
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.machine != b.machine) return a.machine < b.machine;
              return a.key < b.key;
            });

  obs::DecisionRecord rec;
  const bool record = auditing();
  if (record) {
    rec.kind = obs::DecisionKind::kPreempt;
    rec.app = demand->key.app.value();
    rec.slot = demand->key.slot_id;
    rec.remaining_before = demand->total_remaining;
  }
  for (const Victim& victim : victims) {
    if (demand->total_remaining <= 0) break;
    MachineState& state =
        machines_[static_cast<size_t>(victim.machine.value())];
    // Revoke victim units one at a time until one of ours fits (or the
    // victim runs out on this machine).
    while (demand->total_remaining > 0) {
      auto grant = state.grants.find(victim.key);
      if (grant == state.grants.end()) break;
      RevocationReason reason = victim.level == 0
                                    ? RevocationReason::kPreemptPriority
                                    : RevocationReason::kPreemptQuota;
      if (RevokeGrant(victim.key, victim.machine, 1, reason, result) == 0) {
        break;
      }
      int64_t count = FitCount(*demand, state, demand->total_remaining);
      if (count > 0) {
        CommitGrant(demand, victim.machine, count, result);
        tree_.ConsumeGrant(demand, victim.machine, count);
        if (preempt_units_counter_ != nullptr) {
          preempt_units_counter_->Add(static_cast<uint64_t>(count));
        }
        if (record) {
          rec.AddCandidate({rec.app, rec.slot, victim.machine.value(), 2,
                            obs::RejectReason::kNone, count,
                            demand->total_remaining});
        }
      }
    }
  }
  // Preemption leftovers are not re-offered to other demands; drop the
  // dirty marks the revokes above made.
  for (const Victim& victim : victims) {
    dirty_machines_.erase(victim.machine);
  }
  // Only sweeps that actually moved resources take a ring slot — the
  // victim takebacks already produced their own kRevoke records.
  if (record && !rec.candidates.empty()) {
    rec.remaining_after = demand->total_remaining;
    audit_->Commit(std::move(rec));
  }
}

size_t Scheduler::AgeWaitingDemands(double now) {
  now_hint_ = now;
  if (options_.starvation_age_after <= 0) return 0;
  size_t boosted = 0;
  // Collect first: re-keying mutates the queues the demands sit in.
  std::vector<SlotKey> to_boost;
  for (const PendingDemand* demand : tree_.AllDemands()) {
    if (demand->total_remaining <= 0) continue;
    if (now - demand->waiting_since < options_.starvation_age_after) {
      continue;
    }
    if (demand->effective_priority - demand->def.priority >=
        options_.starvation_max_boost) {
      continue;
    }
    to_boost.push_back(demand->key);
  }
  for (const SlotKey& key : to_boost) {
    PendingDemand* demand = tree_.Find(key);
    if (demand == nullptr) continue;
    NoteMutation();
    tree_.SetEffectivePriority(demand, demand->effective_priority + 1);
    demand->waiting_since = now;  // one boost per aging period
    ++boosted;
    // The boosted demand may now beat previous winners; try to place it.
    SchedulingResult result;
    PlaceDemand(demand, &result);
    aged_results_.push_back(std::move(result));
  }
  return boosted;
}

/// Drains scheduling results produced by the last aging sweep (grants
/// made when boosted demands found space).
std::vector<SchedulingResult> Scheduler::TakeAgedResults() {
  return std::move(aged_results_);
}

const MachineState& Scheduler::machine_state(MachineId machine) const {
  FUXI_CHECK(machine.valid());
  return machines_[static_cast<size_t>(machine.value())];
}

MachineState& Scheduler::mutable_machine_state(MachineId machine) {
  FUXI_CHECK(machine.valid());
  return machines_[static_cast<size_t>(machine.value())];
}

cluster::ResourceVector Scheduler::TotalCapacity() const {
  cluster::ResourceVector total;
  for (const MachineState& state : machines_) {
    if (state.online) total += state.capacity;
  }
  return total;
}

cluster::ResourceVector Scheduler::GrantedTo(AppId app) const {
  cluster::ResourceVector total;
  for (auto it = grant_sites_.lower_bound(SlotKey{app, 0});
       it != grant_sites_.end() && it->first.app == app; ++it) {
    const PendingDemand* demand = tree_.Find(it->first);
    FUXI_CHECK(demand != nullptr);
    int64_t units = 0;
    for (MachineId machine : it->second) {
      const MachineState& state =
          machines_[static_cast<size_t>(machine.value())];
      auto grant = state.grants.find(it->first);
      FUXI_CHECK(grant != state.grants.end());
      units += grant->second;
    }
    total += demand->def.resources * units;
  }
  return total;
}

std::vector<Scheduler::GrantEntry> Scheduler::GrantsOf(AppId app) const {
  // The site index is (slot, machine)-ordered already.
  std::vector<GrantEntry> out;
  for (auto it = grant_sites_.lower_bound(SlotKey{app, 0});
       it != grant_sites_.end() && it->first.app == app; ++it) {
    for (MachineId machine : it->second) {
      const MachineState& state =
          machines_[static_cast<size_t>(machine.value())];
      auto grant = state.grants.find(it->first);
      FUXI_CHECK(grant != state.grants.end());
      out.push_back({it->first.slot_id, machine, grant->second});
    }
  }
  return out;
}

int64_t Scheduler::GrantCount(AppId app, uint32_t slot_id,
                              MachineId machine) const {
  const MachineState& state =
      machines_[static_cast<size_t>(machine.value())];
  auto it = state.grants.find(SlotKey{app, slot_id});
  return it == state.grants.end() ? 0 : it->second;
}

bool Scheduler::CheckInvariants() const {
  if (!tree_.CheckInvariants()) return false;
  cluster::ResourceVector granted_total;
  std::map<SlotKey, std::set<MachineId>> sites;
  for (size_t m = 0; m < machines_.size(); ++m) {
    const MachineState& state = machines_[m];
    MachineId id(static_cast<int64_t>(m));
    cluster::ResourceVector granted;
    for (const auto& [key, count] : state.grants) {
      if (count <= 0) return false;
      const PendingDemand* demand = tree_.Find(key);
      if (demand == nullptr) return false;
      granted += demand->def.resources * count;
      sites[key].insert(id);
    }
    bool has_free = state.online && !state.free.IsZero();
    if ((free_machines_.count(id) > 0) != has_free) return false;
    size_t rack = static_cast<size_t>(topology_->machine(id).rack.value());
    if ((rack_free_[rack].count(id) > 0) != has_free) return false;
    if (state.online) {
      if (!(granted + state.free == state.capacity)) return false;
      if (state.free.AnyNegative()) return false;
    } else {
      if (!state.grants.empty()) return false;
    }
    granted_total += granted;
  }
  // The incremental indexes must agree with the from-scratch recompute.
  if (sites != grant_sites_) return false;
  if (!(granted_total == total_granted_)) return false;
  size_t rack_free_total = 0;
  for (const std::set<MachineId>& rack_set : rack_free_) {
    rack_free_total += rack_set.size();
  }
  if (rack_free_total != free_machines_.size()) return false;
  return true;
}

void Scheduler::SyncFreeIndex(MachineId machine, MachineState& state) {
  NoteMutation();
  ++state.free_epoch;
  bool has_free = state.online && !state.free.IsZero();
  size_t rack = static_cast<size_t>(topology_->machine(machine).rack.value());
  if (has_free) {
    free_machines_.insert(machine);
    rack_free_[rack].insert(machine);
  } else {
    free_machines_.erase(machine);
    rack_free_[rack].erase(machine);
  }
}

void Scheduler::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_registry_ = metrics;
  if (planner_ != nullptr) planner_->set_metrics(metrics);
  if (metrics == nullptr) {
    tier_machine_counter_ = tier_rack_counter_ = tier_cluster_counter_ =
        preempt_units_counter_ = passes_counter_ = passes_skipped_counter_ =
            negfit_hit_counter_ = negfit_miss_counter_ = nullptr;
    dirty_drain_hist_ = nullptr;
    grant_sites_gauge_ = nullptr;
    return;
  }
  tier_machine_counter_ = metrics->GetCounter("sched.grant_units.machine");
  tier_rack_counter_ = metrics->GetCounter("sched.grant_units.rack");
  tier_cluster_counter_ = metrics->GetCounter("sched.grant_units.cluster");
  preempt_units_counter_ = metrics->GetCounter("sched.preempt_units");
  passes_counter_ = metrics->GetCounter("sched.schedule_passes");
  passes_skipped_counter_ = metrics->GetCounter("sched.passes_skipped");
  // PR 3's incremental-index internals, surfaced for snapshots: the
  // negative-fit cache's hit rate, how much freed capacity each batch
  // teardown re-offers, and the live size of the grant-site index.
  negfit_hit_counter_ = metrics->GetCounter("sched.negfit_cache_hits");
  negfit_miss_counter_ = metrics->GetCounter("sched.negfit_cache_misses");
  dirty_drain_hist_ = metrics->GetHistogram("sched.dirty_drain_size");
  grant_sites_gauge_ = metrics->GetGauge("sched.grant_sites");
  grant_sites_gauge_->Set(static_cast<double>(grant_sites_.size()));
}

// ---------------------------------------------------------------------
// fuxi::planner integration (DESIGN.md §12). Everything below is dead
// code under FUXI_PLANNER=0: EnsurePlanner never constructs, so the
// planner_ != nullptr guards sprinkled through the hot paths fold away.
// ---------------------------------------------------------------------

void Scheduler::EnsurePlanner() {
  if (!planner::ClusterPlanner::enabled() || planner_ != nullptr) return;
  const std::vector<cluster::Machine>& machines = topology_->machines();
  std::vector<cluster::ResourceVector> capacities;
  std::vector<int64_t> rack_of;
  capacities.reserve(machines.size());
  rack_of.reserve(machines.size());
  for (const cluster::Machine& m : machines) {
    capacities.push_back(m.capacity);
    rack_of.push_back(m.rack.value());
  }
  planner::HostHooks hooks;
  hooks.machine = [this](int64_t machine) {
    const MachineState& state = machines_[static_cast<size_t>(machine)];
    return planner::MachineView{state.online, state.free};
  };
  hooks.commit = [this](const planner::PlanKey& key, int64_t machine,
                        int64_t count) {
    return PlannerCommit(key, machine, count);
  };
  hooks.expire = [this](const planner::PlanKey& key) { PlannerExpire(key); };
  hooks.demand = [this](const planner::PlanKey& key) {
    return PlannerDemandInfo(SlotKey{AppId(key.app), key.slot});
  };
  hooks.all_demands = [this]() {
    std::vector<std::pair<planner::PlanKey, planner::DemandInfo>> out;
    for (const PendingDemand* demand : tree_.AllDemands()) {
      if (!demand->plan.Any()) continue;
      out.emplace_back(PlanKeyOf(demand->key),
                       PlannerDemandInfo(demand->key));
    }
    // AllDemands is already key-ordered; PlanKey order matches SlotKey
    // order, so no re-sort is needed for determinism.
    return out;
  };
  planner_ = std::make_unique<planner::ClusterPlanner>(
      std::move(capacities), std::move(rack_of),
      static_cast<int64_t>(topology_->rack_count()), std::move(hooks));
  planner_->set_audit(audit_);
  if (metrics_registry_ != nullptr) planner_->set_metrics(metrics_registry_);
}

int64_t Scheduler::PlannerCommit(const planner::PlanKey& pkey,
                                 int64_t machine_raw, int64_t count) {
  SlotKey key{AppId(pkey.app), pkey.slot};
  PendingDemand* demand = tree_.Find(key);
  if (demand == nullptr || count <= 0) return 0;
  MachineState& state = machines_[static_cast<size_t>(machine_raw)];
  if (!state.online) return 0;
  int64_t n = std::min(count, demand->total_remaining);
  n = std::min(n, state.free.DivideBy(demand->def.resources));
  if (n <= 0) return 0;
  // A planner commit deliberately bypasses the quota headroom clamp:
  // the reservation was promised when it was booked, and capping here
  // would strand the booked window. Quota *accounting* still flows
  // through CommitGrant (OnGrant / OnWaitingChange), so usage totals
  // stay truthful and later quota preemption can claw back excess.
  MachineId machine(machine_raw);
  FUXI_CHECK(planner_result_ != nullptr)
      << "planner commit outside PlannerTick";
  CommitGrant(demand, machine, n, planner_result_);
  tree_.ConsumeGrant(demand, machine, n);
  NoteGrantTier(LocalityLevel::kCluster, n);
  return n;
}

void Scheduler::PlannerExpire(const planner::PlanKey& pkey) {
  SlotKey key{AppId(pkey.app), pkey.slot};
  PendingDemand* demand = tree_.Find(key);
  if (demand == nullptr || demand->total_remaining <= 0) return;
  NoteMutation();
  int64_t remaining = demand->total_remaining;
  quota_.OnWaitingChange(key.app, demand->def.resources * (-remaining));
  tree_.AddTotal(demand, -remaining);
}

planner::DemandInfo Scheduler::PlannerDemandInfo(const SlotKey& key) const {
  planner::DemandInfo info;
  const PendingDemand* demand = tree_.Find(key);
  if (demand == nullptr) return info;
  info.exists = true;
  info.unit = demand->def.resources;
  info.remaining = demand->total_remaining;
  info.priority = static_cast<int32_t>(demand->effective_priority);
  info.seq = demand->enqueue_seq;
  info.estimate = demand->plan.estimated_seconds;
  info.reserve_start = demand->plan.reserve_start;
  info.deadline = demand->plan.deadline;
  info.gang_id = demand->plan.gang_id;
  info.gang_size = demand->plan.gang_size;
  info.reservation = demand->plan.reservation;
  return info;
}

void Scheduler::PlannerTick(double now, SchedulingResult* result) {
  if (planner_ == nullptr) return;
  now_hint_ = std::max(now_hint_, now);
  planner_result_ = result;
  planner_->Tick(now_hint_);
  planner_result_ = nullptr;
}

bool Scheduler::PlannerOvercommitOk() const {
  return planner_ == nullptr || planner_->CheckNoOvercommit();
}

bool Scheduler::PlannerGangAtomicityOk() const {
  if (planner_ == nullptr) return true;
  return planner_->CheckGangAtomicity([this](const planner::PlanKey& pkey) {
    SlotKey key{AppId(pkey.app), pkey.slot};
    auto site = grant_sites_.find(key);
    if (site == grant_sites_.end()) return int64_t{0};
    int64_t total = 0;
    for (MachineId machine : site->second) {
      const MachineState& state =
          machines_[static_cast<size_t>(machine.value())];
      auto it = state.grants.find(key);
      if (it != state.grants.end()) total += it->second;
    }
    return total;
  });
}

}  // namespace fuxi::resource
