#include "resource/request.h"

namespace fuxi::resource {

std::string_view LocalityLevelName(LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kMachine:
      return "LT_MACHINE";
    case LocalityLevel::kRack:
      return "LT_RACK";
    case LocalityLevel::kCluster:
      return "LT_CLUSTER";
  }
  return "?";
}

std::string_view RevocationReasonName(RevocationReason reason) {
  switch (reason) {
    case RevocationReason::kAppRelease:
      return "AppRelease";
    case RevocationReason::kMachineDown:
      return "MachineDown";
    case RevocationReason::kPreemptQuota:
      return "PreemptQuota";
    case RevocationReason::kPreemptPriority:
      return "PreemptPriority";
    case RevocationReason::kCapacityShrink:
      return "CapacityShrink";
    case RevocationReason::kReconcile:
      return "Reconcile";
  }
  return "?";
}

Json ScheduleUnitDef::ToJson() const {
  // Mirrors the paper's Figure 4 request layout.
  Json unit = Json::MakeObject();
  unit["slot_id"] = Json(static_cast<int64_t>(slot_id));
  unit["priority"] = Json(static_cast<int64_t>(priority));
  Json resources = Json::MakeArray();
  const auto& registry = cluster::DimensionRegistry::Global();
  for (size_t dim = 0; dim < cluster::kMaxDimensions; ++dim) {
    int64_t amount = this->resources.Get(static_cast<uint32_t>(dim));
    if (amount == 0) continue;
    Json entry = Json::MakeObject();
    entry["resource_type"] =
        Json(registry.Name(static_cast<uint32_t>(dim)));
    entry["amount"] = Json(amount);
    resources.Append(std::move(entry));
  }
  unit["resource"] = std::move(resources);
  return unit;
}

Result<ScheduleUnitDef> ScheduleUnitDef::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("schedule unit must be an object");
  }
  ScheduleUnitDef def;
  def.slot_id = static_cast<uint32_t>(json.GetInt("slot_id", 0));
  def.priority = static_cast<Priority>(json.GetInt("priority", 0));
  const Json* resources = json.Find("resource");
  if (resources != nullptr && resources->is_array()) {
    auto& registry = cluster::DimensionRegistry::Global();
    for (const Json& entry : resources->as_array()) {
      std::string type = entry.GetString("resource_type");
      int64_t amount = entry.GetInt("amount", 0);
      FUXI_ASSIGN_OR_RETURN(cluster::DimensionId dim,
                            registry.Register(type));
      def.resources.Set(dim, amount);
    }
  }
  return def;
}

}  // namespace fuxi::resource
