#ifndef FUXI_RESOURCE_DELTA_CHANNEL_H_
#define FUXI_RESOURCE_DELTA_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>

namespace fuxi::resource {

/// A delta message stamped for exactly-once, in-order application.
/// The incremental protocol (paper §3.1) requires that "the changed
/// portions be delivered and processed in the same order at the
/// receiver side as they are generated on sender side" and that
/// duplicated deltas be idempotent. Stamping every delta with
/// (epoch, seq) provides both: duplicates repeat a (epoch, seq) pair and
/// are dropped; reordering is fixed by buffering until contiguous.
/// A full-state message opens a new epoch and resets the baseline — the
/// periodic "safety measurement" sync that repairs any divergence.
template <typename Delta>
struct Stamped {
  uint64_t epoch = 0;
  uint64_t seq = 0;     ///< 1-based within the epoch
  bool is_full = false; ///< true: payload is absolute state, not a delta
  Delta payload{};
};
// Wire codecs for the concrete stamped protocol messages (StampedRequest,
// StampedGrant) live with those aliases in protocol.h; the stamp fields
// encode as [epoch u64][seq u64][is_full bool] ahead of the payload.

/// Sender half: stamps outgoing deltas. Not thread-safe (one channel
/// per directed peer pair).
template <typename Delta>
class DeltaSender {
 public:
  /// Stamps an incremental delta in the current epoch.
  Stamped<Delta> Stamp(Delta delta) {
    return Stamped<Delta>{epoch_, next_seq_++, false, std::move(delta)};
  }

  /// Stamps a full-state snapshot, opening a new epoch. Subsequent
  /// deltas build on this snapshot.
  Stamped<Delta> StampFull(Delta full_state) {
    ++epoch_;
    next_seq_ = 1;
    return Stamped<Delta>{epoch_, next_seq_++, true, std::move(full_state)};
  }

  uint64_t epoch() const { return epoch_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  uint64_t epoch_ = 1;
  uint64_t next_seq_ = 1;
};

/// Receiver half: filters duplicates, restores order, and detects
/// unrecoverable gaps (requesting a full-state resync).
template <typename Delta>
class DeltaReceiver {
 public:
  enum class Outcome {
    kApplied,    ///< handed to apply (possibly draining buffered successors)
    kDuplicate,  ///< already seen; dropped
    kBuffered,   ///< out of order; held until the gap fills
    kNeedResync, ///< cannot recover ordering; sender must send full state
  };

  explicit DeltaReceiver(size_t max_buffered = 64)
      : max_buffered_(max_buffered) {}

  /// Processes one stamped message. `apply(payload, is_full)` is invoked
  /// for the message and for any buffered successors that become
  /// contiguous. Returns what happened to the *incoming* message.
  Outcome Receive(const Stamped<Delta>& msg,
                  const std::function<void(const Delta&, bool)>& apply) {
    if (msg.epoch < epoch_) return Outcome::kDuplicate;  // stale epoch
    if (msg.epoch > epoch_) {
      bool fresh_channel = epoch_ == 0 && msg.epoch == 1;
      if (!fresh_channel && (!msg.is_full || msg.seq != 1)) {
        // Deltas from an epoch whose base snapshot we never saw are
        // unusable; ask for the snapshot.
        return Outcome::kNeedResync;
      }
      epoch_ = msg.epoch;
      last_applied_ = 0;
      buffer_.clear();
    }
    if (msg.seq <= last_applied_) return Outcome::kDuplicate;
    if (msg.seq == last_applied_ + 1) {
      apply(msg.payload, msg.is_full);
      last_applied_ = msg.seq;
      DrainBuffer(apply);
      return Outcome::kApplied;
    }
    // Out of order: hold it. Duplicate buffered entries collapse.
    if (buffer_.size() >= max_buffered_ && buffer_.count(msg.seq) == 0) {
      return Outcome::kNeedResync;
    }
    buffer_.emplace(msg.seq, msg);
    return Outcome::kBuffered;
  }

  uint64_t epoch() const { return epoch_; }
  uint64_t last_applied() const { return last_applied_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  void DrainBuffer(const std::function<void(const Delta&, bool)>& apply) {
    auto it = buffer_.begin();
    while (it != buffer_.end() && it->first <= last_applied_ + 1) {
      if (it->first == last_applied_ + 1) {
        apply(it->second.payload, it->second.is_full);
        last_applied_ = it->first;
      }
      it = buffer_.erase(it);
    }
  }

  size_t max_buffered_;
  uint64_t epoch_ = 0;  ///< 0 = nothing received yet; any epoch accepted
  uint64_t last_applied_ = 0;
  std::map<uint64_t, Stamped<Delta>> buffer_;
};

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_DELTA_CHANNEL_H_
