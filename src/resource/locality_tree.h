#ifndef FUXI_RESOURCE_LOCALITY_TREE_H_
#define FUXI_RESOURCE_LOCALITY_TREE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/topology.h"
#include "common/ids.h"
#include "resource/request.h"

namespace fuxi::resource {

/// Identifies one application's demand stream for one ScheduleUnit.
struct SlotKey {
  AppId app;
  uint32_t slot_id = 0;

  friend bool operator==(const SlotKey& a, const SlotKey& b) {
    return a.app == b.app && a.slot_id == b.slot_id;
  }
  friend bool operator<(const SlotKey& a, const SlotKey& b) {
    if (a.app != b.app) return a.app < b.app;
    return a.slot_id < b.slot_id;
  }
};

struct SlotKeyHash {
  size_t operator()(const SlotKey& k) const {
    return std::hash<int64_t>()(k.app.value()) * 1000003u ^ k.slot_id;
  }
};

/// Ordering functor for the persistent hint indexes. It counts every
/// invocation so tests can prove the fast path no longer re-sorts
/// unchanged hints on each placement: a std::map keeps its keys sorted
/// permanently, so iterating preferences costs zero comparisons, versus
/// the old rebuild-and-std::sort which paid O(k log k) per call.
template <typename Id>
struct InstrumentedIdLess {
  inline static thread_local uint64_t comparisons = 0;
  bool operator()(const Id& a, const Id& b) const {
    ++comparisons;
    return a < b;
  }
};

/// One unsatisfied ScheduleUnit demand queued in the locality tree
/// (Figure 5's "App1: P1, 4" entries). `total_remaining` is the
/// cluster-level outstanding count; per-machine/rack counts cap how many
/// units the application wants from that subtree. A grant from machine M
/// decrements M's count, M's rack count and the total together.
///
/// The per-machine/rack preference indexes are *sorted* maps: placement
/// walks them in id order directly instead of snapshotting the keys and
/// re-sorting on every PlaceDemand call.
struct PendingDemand {
  SlotKey key;
  ScheduleUnitDef def;
  uint64_t enqueue_seq = 0;  ///< FIFO tiebreak among equal priorities
  /// Effective priority used for queue ordering; normally equals
  /// def.priority, but starvation aging may raise it (§7 future work:
  /// "guard against starvation in corner cases").
  Priority effective_priority = 0;
  /// When the demand last became non-empty (for starvation aging).
  double waiting_since = 0;

  int64_t total_remaining = 0;
  std::map<MachineId, int64_t, InstrumentedIdLess<MachineId>>
      machine_remaining;
  std::map<RackId, int64_t, InstrumentedIdLess<RackId>> rack_remaining;
  /// Machines this application refuses (its bad-node list).
  std::unordered_set<MachineId> avoid;

  /// Planner metadata (fuxi::planner): lifetime estimate, reservation /
  /// gang flags. Defaulted (Any() == false) for legacy demands.
  PlanningHints plan;

  bool Avoids(MachineId machine) const { return avoid.count(machine) > 0; }
};

/// The scheduler's waiting-queue structure (paper §3.3): one queue per
/// machine, per rack, and for the whole cluster. An application waits in
/// every queue it has a positive count for. When resource frees on a
/// machine, only that machine's queue, its rack's queue and the cluster
/// queue are consulted — this locality-scoped incremental re-scheduling
/// is what makes decisions micro/millisecond-fast regardless of cluster
/// size.
class LocalityTree {
 public:
  explicit LocalityTree(const cluster::ClusterTopology* topology);

  /// Returns the demand for `key`, creating it (with `def`) if absent.
  PendingDemand* GetOrCreate(const SlotKey& key, const ScheduleUnitDef& def);

  /// Returns the demand for `key` or nullptr.
  PendingDemand* Find(const SlotKey& key);
  const PendingDemand* Find(const SlotKey& key) const;

  /// Applies a delta to the cluster-level outstanding count (clamped at
  /// zero) and repositions the demand in the queues.
  void AddTotal(PendingDemand* demand, int64_t delta);

  /// Applies a delta to a machine-level preferred count.
  void AddMachine(PendingDemand* demand, MachineId machine, int64_t delta);

  /// Applies a delta to a rack-level preferred count.
  void AddRack(PendingDemand* demand, RackId rack, int64_t delta);

  /// Consumes `count` granted units out of machine `machine`:
  /// decrements the machine / rack / total counters together and
  /// dequeues emptied entries.
  void ConsumeGrant(PendingDemand* demand, MachineId machine, int64_t count);

  /// Changes a demand's effective priority (starvation aging): the
  /// entry is re-keyed in every queue it waits in.
  void SetEffectivePriority(PendingDemand* demand, Priority priority);

  /// Drops the demand from all queues and destroys it.
  void Remove(const SlotKey& key);

  /// Removes every demand of `app`; returns how many were dropped.
  size_t RemoveApp(AppId app);

  /// The level at which `demand` waits for machine `machine` — machine
  /// queue beats rack queue beats cluster queue for tie-breaking.
  /// Returns kCluster when only the total is positive.
  LocalityLevel WaitLevelFor(const PendingDemand& demand,
                             MachineId machine) const;

  /// Candidate visitor for a scheduling pass on `machine`.
  /// Candidates are presented in scheduling order: priority descending,
  /// then machine-level waiters before rack-level before cluster-level,
  /// then enqueue order. `fn` returns how many units it granted
  /// (0 = cannot place now, skip this demand; -1 = stop the pass).
  /// Granted units are consumed from the tree before the next candidate
  /// is chosen. `on_avoided`, when set, observes each queued demand the
  /// walk passes over because `machine` is on its avoid list (at most
  /// once per queue per pass) — decision-provenance only, it cannot
  /// influence the walk.
  void ForEachCandidate(
      MachineId machine,
      const std::function<int64_t(PendingDemand*, LocalityLevel)>& fn,
      const std::function<void(const PendingDemand&, LocalityLevel)>&
          on_avoided = {});

  /// True when any demand has outstanding units — the cluster queue
  /// holds every live demand, so this is O(1). Scheduling passes use it
  /// to skip queue walks entirely on an idle tree.
  bool HasLiveDemands() const { return !cluster_queue_.empty(); }

  /// Sum over demands of total_remaining (unit counts, not resources).
  int64_t TotalWaitingUnits() const;

  /// Demands with any outstanding count, in key order (deterministic).
  std::vector<const PendingDemand*> AllDemands() const;

  size_t demand_count() const { return demands_.size(); }

  /// Validates internal queue/index consistency; used by property tests.
  bool CheckInvariants() const;

 private:
  /// Queue entries sort by priority (desc) then enqueue_seq (asc).
  struct QueueEntry {
    Priority priority;
    uint64_t seq;
    SlotKey key;

    friend bool operator<(const QueueEntry& a, const QueueEntry& b) {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.seq != b.seq) return a.seq < b.seq;
      return a.key < b.key;
    }
  };
  using Queue = std::set<QueueEntry>;

  QueueEntry EntryFor(const PendingDemand& demand) const {
    return QueueEntry{demand.effective_priority, demand.enqueue_seq,
                      demand.key};
  }

  void SyncQueues(PendingDemand* demand);
  void EraseFromAllQueues(const PendingDemand& demand);

  const cluster::ClusterTopology* topology_;
  uint64_t next_seq_ = 0;

  std::unordered_map<SlotKey, std::unique_ptr<PendingDemand>, SlotKeyHash>
      demands_;
  std::unordered_map<MachineId, Queue> machine_queues_;
  std::unordered_map<RackId, Queue> rack_queues_;
  Queue cluster_queue_;
};

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_LOCALITY_TREE_H_
