// Wire codecs for the incremental resource protocol (request.h +
// protocol.h structs). Field order is the struct declaration order; every
// collection goes through Writer::Vec / Reader::Vec so sizes are exact and
// decode is bounds-checked. Bump the version in the WireTypeInfo overloads
// (protocol.h) when changing any layout here.

#include "resource/protocol.h"

namespace fuxi::resource {

void WireEncode(wire::Writer& w, const LocalityHint& m) {
  w.U64(static_cast<uint64_t>(m.level));
  w.Str(m.value);
  w.I64(m.count);
}

Status WireDecode(wire::Reader& r, LocalityHint& m) {
  FUXI_RETURN_IF_ERROR(r.Enum(&m.level, LocalityLevel::kCluster));
  FUXI_RETURN_IF_ERROR(r.Str(&m.value));
  return r.I64(&m.count);
}

void WireEncode(wire::Writer& w, const ScheduleUnitDef& m) {
  w.U32(m.slot_id);
  w.I32(m.priority);
  WireEncode(w, m.resources);
}

Status WireDecode(wire::Reader& r, ScheduleUnitDef& m) {
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.I32(&m.priority));
  return WireDecode(r, m.resources);
}

void WireEncode(wire::Writer& w, const PlanningHints& m) {
  w.F64(m.estimated_seconds);
  w.Bool(m.reservation);
  w.F64(m.reserve_start);
  w.F64(m.deadline);
  w.U64(m.gang_id);
  w.U32(m.gang_size);
}

Status WireDecode(wire::Reader& r, PlanningHints& m) {
  FUXI_RETURN_IF_ERROR(r.F64(&m.estimated_seconds));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.reservation));
  FUXI_RETURN_IF_ERROR(r.F64(&m.reserve_start));
  FUXI_RETURN_IF_ERROR(r.F64(&m.deadline));
  FUXI_RETURN_IF_ERROR(r.U64(&m.gang_id));
  return r.U32(&m.gang_size);
}

void WireEncode(wire::Writer& w, const UnitRequestDelta& m) {
  w.U32(m.slot_id);
  w.Bool(m.has_def);
  if (m.has_def) WireEncode(w, m.def);
  w.I64(m.total_count_delta);
  w.Vec(m.hints);
  w.Vec(m.avoid_add);
  w.Vec(m.avoid_remove);
  w.Bool(m.has_plan);
  if (m.has_plan) WireEncode(w, m.plan);
}

Status WireDecode(wire::Reader& r, UnitRequestDelta& m) {
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.has_def));
  if (m.has_def) FUXI_RETURN_IF_ERROR(WireDecode(r, m.def));
  FUXI_RETURN_IF_ERROR(r.I64(&m.total_count_delta));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.hints));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.avoid_add));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.avoid_remove));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.has_plan));
  if (m.has_plan) return WireDecode(r, m.plan);
  m.plan = PlanningHints{};
  return Status::Ok();
}

void WireEncode(wire::Writer& w, const ResourceRequest& m) {
  w.Id(m.app);
  w.Vec(m.units);
}

Status WireDecode(wire::Reader& r, ResourceRequest& m) {
  FUXI_RETURN_IF_ERROR(r.Id(&m.app));
  return r.Vec(&m.units);
}

void WireEncode(wire::Writer& w, const SlotAbsoluteState& m) {
  WireEncode(w, m.def);
  w.I64(m.total_count);
  w.Vec(m.hints);
  w.Vec(m.avoid);
  WireEncode(w, m.plan);
}

Status WireDecode(wire::Reader& r, SlotAbsoluteState& m) {
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.def));
  FUXI_RETURN_IF_ERROR(r.I64(&m.total_count));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.hints));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.avoid));
  return WireDecode(r, m.plan);
}

void WireEncode(wire::Writer& w, const ReleaseDelta& m) {
  w.U32(m.slot_id);
  w.Id(m.machine);
  w.I64(m.count);
}

Status WireDecode(wire::Reader& r, ReleaseDelta& m) {
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.I64(&m.count);
}

void WireEncode(wire::Writer& w, const GrantAbsolute& m) {
  w.U32(m.slot_id);
  w.Id(m.machine);
  w.I64(m.count);
}

Status WireDecode(wire::Reader& r, GrantAbsolute& m) {
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  return r.I64(&m.count);
}

void WireEncode(wire::Writer& w, const RequestMessage& m) {
  WireEncode(w, m.delta);
  w.Vec(m.releases);
  w.Vec(m.full_slots);
  w.Vec(m.held_grants);
}

Status WireDecode(wire::Reader& r, RequestMessage& m) {
  FUXI_RETURN_IF_ERROR(WireDecode(r, m.delta));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.releases));
  FUXI_RETURN_IF_ERROR(r.Vec(&m.full_slots));
  return r.Vec(&m.held_grants);
}

void WireEncode(wire::Writer& w, const GrantDelta& m) {
  w.U32(m.slot_id);
  w.Id(m.machine);
  w.I64(m.delta);
  w.U64(static_cast<uint64_t>(m.reason));
}

Status WireDecode(wire::Reader& r, GrantDelta& m) {
  FUXI_RETURN_IF_ERROR(r.U32(&m.slot_id));
  FUXI_RETURN_IF_ERROR(r.Id(&m.machine));
  FUXI_RETURN_IF_ERROR(r.I64(&m.delta));
  return r.Enum(&m.reason, RevocationReason::kReconcile);
}

void WireEncode(wire::Writer& w, const GrantMessage& m) {
  w.Vec(m.deltas);
  w.Vec(m.full_grants);
}

Status WireDecode(wire::Reader& r, GrantMessage& m) {
  FUXI_RETURN_IF_ERROR(r.Vec(&m.deltas));
  return r.Vec(&m.full_grants);
}

namespace {

template <typename Delta>
void EncodeStamped(wire::Writer& w, const Stamped<Delta>& m) {
  w.U64(m.epoch);
  w.U64(m.seq);
  w.Bool(m.is_full);
  WireEncode(w, m.payload);
}

template <typename Delta>
Status DecodeStamped(wire::Reader& r, Stamped<Delta>& m) {
  FUXI_RETURN_IF_ERROR(r.U64(&m.epoch));
  FUXI_RETURN_IF_ERROR(r.U64(&m.seq));
  FUXI_RETURN_IF_ERROR(r.Bool(&m.is_full));
  return WireDecode(r, m.payload);
}

}  // namespace

void WireEncode(wire::Writer& w, const StampedRequest& m) {
  EncodeStamped(w, m);
}
Status WireDecode(wire::Reader& r, StampedRequest& m) {
  return DecodeStamped(r, m);
}

void WireEncode(wire::Writer& w, const StampedGrant& m) {
  EncodeStamped(w, m);
}
Status WireDecode(wire::Reader& r, StampedGrant& m) {
  return DecodeStamped(r, m);
}

void WireEncode(wire::Writer& w, const ResyncRequest& m) { w.Id(m.app); }
Status WireDecode(wire::Reader& r, ResyncRequest& m) { return r.Id(&m.app); }

}  // namespace fuxi::resource
