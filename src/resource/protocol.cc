#include "resource/protocol.h"

namespace fuxi::resource {

namespace {
constexpr size_t kHeaderBytes = 24;     // epoch + seq + routing
constexpr size_t kUnitDefBytes = 40;    // slot, priority, resources
constexpr size_t kHintBytes = 24;       // level + name ref + count
constexpr size_t kGrantEntryBytes = 20; // slot + machine + count
}  // namespace

size_t ApproxWireSize(const RequestMessage& msg) {
  size_t size = kHeaderBytes;
  for (const UnitRequestDelta& unit : msg.delta.units) {
    size += 12;  // slot id + total delta
    if (unit.has_def) size += kUnitDefBytes;
    size += unit.hints.size() * kHintBytes;
    size += (unit.avoid_add.size() + unit.avoid_remove.size()) * 16;
  }
  size += msg.releases.size() * kGrantEntryBytes;
  for (const SlotAbsoluteState& slot : msg.full_slots) {
    size += kUnitDefBytes + 8;
    size += slot.hints.size() * kHintBytes;
    size += slot.avoid.size() * 16;
  }
  size += msg.held_grants.size() * kGrantEntryBytes;
  return size;
}

size_t ApproxWireSize(const GrantMessage& msg) {
  return kHeaderBytes + msg.deltas.size() * kGrantEntryBytes +
         msg.full_grants.size() * kGrantEntryBytes;
}

}  // namespace fuxi::resource
