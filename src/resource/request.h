#ifndef FUXI_RESOURCE_REQUEST_H_
#define FUXI_RESOURCE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/json.h"
#include "wire/wire.h"

namespace fuxi::resource {

/// Priority of a ScheduleUnit. Larger values are more urgent (the paper
/// prints priorities like 1000; only the ordering matters).
using Priority = int32_t;

/// The three levels of the locality tree (paper §3.2.2).
enum class LocalityLevel { kMachine, kRack, kCluster };

std::string_view LocalityLevelName(LocalityLevel level);

/// One locality preference inside a resource request: "count units on
/// this machine/rack" (Figure 4's Locality_hints). Counts are deltas in
/// incremental updates and absolutes in full-state syncs.
struct LocalityHint {
  LocalityLevel level = LocalityLevel::kCluster;
  /// Hostname or rack name; empty for cluster level.
  std::string value;
  int64_t count = 0;
};

/// Unit-size description of a resource ask (paper §3.2.2): everything
/// an application requests is an integer number of these units. An
/// application may define several units (different stages have
/// different shapes) under distinct slot ids.
struct ScheduleUnitDef {
  uint32_t slot_id = 0;
  Priority priority = 0;
  cluster::ResourceVector resources;  ///< size of ONE unit

  Json ToJson() const;
  static Result<ScheduleUnitDef> FromJson(const Json& json);
};

/// Time-aware placement metadata for a slot (fuxi::planner, DESIGN.md
/// §12). All fields optional; a demand with none set is scheduled by
/// the instantaneous pass exactly as before. Travels on the wire in
/// every build — FUXI_PLANNER=OFF ignores it rather than forking the
/// format.
struct PlanningHints {
  /// Expected lifetime of one granted unit in virtual seconds; 0 =
  /// unknown (the planner then treats grants as never releasing).
  double estimated_seconds = 0;
  /// Ask for an advance reservation: hold the demand until a window of
  /// `estimated_seconds` starting at or after `reserve_start` is
  /// booked, then start all units at once.
  bool reservation = false;
  double reserve_start = 0;
  /// Latest acceptable finish (0 = none). A reservation whose earliest
  /// window would end past the deadline is expired, not queued forever.
  double deadline = 0;
  /// Nonzero: this slot is one member of an all-or-nothing gang; the
  /// planner starts all `gang_size` member slots atomically or none.
  uint64_t gang_id = 0;
  uint32_t gang_size = 0;

  bool Any() const {
    return estimated_seconds != 0 || reservation || reserve_start != 0 ||
           deadline != 0 || gang_id != 0 || gang_size != 0;
  }
  friend bool operator==(const PlanningHints& a, const PlanningHints& b) {
    return a.estimated_seconds == b.estimated_seconds &&
           a.reservation == b.reservation &&
           a.reserve_start == b.reserve_start && a.deadline == b.deadline &&
           a.gang_id == b.gang_id && a.gang_size == b.gang_size;
  }
};

/// An incremental change to one ScheduleUnit's demand. All counts are
/// signed deltas; negative values shrink the outstanding ask. The first
/// update for a slot must carry `def`.
struct UnitRequestDelta {
  uint32_t slot_id = 0;
  /// Unit definition; only needed on first submission for the slot.
  bool has_def = false;
  ScheduleUnitDef def;

  /// Change to the total number of desired units (the cluster-level
  /// budget; Figure 4's max_slot_count).
  int64_t total_count_delta = 0;

  /// Per-machine/rack preferred counts (deltas).
  std::vector<LocalityHint> hints;

  /// Machines to add to / remove from the avoid list (bad nodes the
  /// application has blacklisted).
  std::vector<std::string> avoid_add;
  std::vector<std::string> avoid_remove;

  /// Planner metadata (absolute, not a delta); carried when has_plan.
  bool has_plan = false;
  PlanningHints plan;
};

/// A full resource-request message from an application master. In
/// incremental mode it carries only changed slots; in full-state mode it
/// carries every slot with absolute counts (the periodic safety sync of
/// §3.1).
struct ResourceRequest {
  AppId app;
  std::vector<UnitRequestDelta> units;
};

/// Why a grant was taken away.
enum class RevocationReason {
  kAppRelease,     ///< the application returned it voluntarily
  kMachineDown,    ///< node died or was blacklisted
  kPreemptQuota,   ///< quota rebalancing preemption
  kPreemptPriority,///< higher-priority application preemption
  kCapacityShrink, ///< machine capacity was reduced
  kReconcile,      ///< master-side full-state reconciliation correction
};

std::string_view RevocationReasonName(RevocationReason reason);

/// One positive scheduling decision: `count` units of (app, slot) now
/// run on `machine`. Deltas from FuxiMaster to both the application
/// master and the FuxiAgent are streams of these.
struct Assignment {
  AppId app;
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
};

/// One negative scheduling decision (grant revoked).
struct Revocation {
  AppId app;
  uint32_t slot_id = 0;
  MachineId machine;
  int64_t count = 0;
  RevocationReason reason = RevocationReason::kAppRelease;
};

/// Output of one scheduling pass: what was assigned and what was
/// revoked. Delivered incrementally to the interested parties.
struct SchedulingResult {
  std::vector<Assignment> assignments;
  std::vector<Revocation> revocations;

  bool empty() const { return assignments.empty() && revocations.empty(); }
  void Clear() {
    assignments.clear();
    revocations.clear();
  }
};

// Wire codecs (fuxi::wire, DESIGN.md §10). These are nested-struct codecs
// — the framed top-level messages embedding them live in protocol.h and
// master/messages.h. Definitions in protocol.cc.
void WireEncode(wire::Writer& w, const LocalityHint& m);
Status WireDecode(wire::Reader& r, LocalityHint& m);
void WireEncode(wire::Writer& w, const ScheduleUnitDef& m);
Status WireDecode(wire::Reader& r, ScheduleUnitDef& m);
void WireEncode(wire::Writer& w, const PlanningHints& m);
Status WireDecode(wire::Reader& r, PlanningHints& m);
void WireEncode(wire::Writer& w, const UnitRequestDelta& m);
Status WireDecode(wire::Reader& r, UnitRequestDelta& m);
void WireEncode(wire::Writer& w, const ResourceRequest& m);
Status WireDecode(wire::Reader& r, ResourceRequest& m);

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_REQUEST_H_
