#ifndef FUXI_RESOURCE_QUOTA_H_
#define FUXI_RESOURCE_QUOTA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/status.h"

namespace fuxi::resource {

/// Multi-tenancy quota accounting (paper §3.4). Each application
/// belongs to exactly one quota group. A group's quota is its *minimum
/// guarantee* when the cluster is contended: idle groups' resources can
/// be borrowed, but a group with unmet demand below its quota may
/// reclaim them via preemption.
class QuotaManager {
 public:
  struct Group {
    std::string name;
    cluster::ResourceVector quota;    ///< minimum guarantee
    cluster::ResourceVector usage;    ///< currently granted
    cluster::ResourceVector waiting;  ///< queued unmet demand
  };

  /// Creates a group with the given minimum guarantee.
  Status CreateGroup(const std::string& name,
                     const cluster::ResourceVector& quota);

  /// Binds `app` to `group`. Every app must be bound before requesting.
  Status AssignApp(AppId app, const std::string& group);

  Status RemoveApp(AppId app);

  bool HasApp(AppId app) const { return app_group_.count(app) > 0; }

  /// Group of `app`; nullptr when unbound.
  const Group* GroupOf(AppId app) const;

  /// Accounting hooks called by the scheduler.
  void OnGrant(AppId app, const cluster::ResourceVector& amount);
  void OnRevoke(AppId app, const cluster::ResourceVector& amount);
  void OnWaitingChange(AppId app, const cluster::ResourceVector& delta);

  /// True when the group's current usage exceeds its guarantee on some
  /// dimension (it is borrowing).
  bool OverQuota(const Group& group) const;

  /// True when the group has queued demand and is still below its
  /// guarantee — it is entitled to reclaim resources.
  bool HasDeficit(const Group& group) const;

  /// True when any *other* group currently has a deficit; used at grant
  /// time to stop over-quota groups from borrowing further.
  bool AnyOtherGroupHasDeficit(AppId app) const;

  /// Whether granting `amount` to `app` is admissible under quota rules:
  /// always if it keeps the group within quota, and otherwise only when
  /// no other group has a deficit.
  bool AdmitGrant(AppId app, const cluster::ResourceVector& amount) const;

  const Group* FindGroup(const std::string& name) const;
  std::vector<const Group*> groups() const;

 private:
  Group* MutableGroupOf(AppId app);

  std::unordered_map<std::string, Group> groups_;
  std::unordered_map<AppId, std::string> app_group_;
};

}  // namespace fuxi::resource

#endif  // FUXI_RESOURCE_QUOTA_H_
