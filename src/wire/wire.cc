#include "wire/wire.h"

namespace fuxi::wire {

std::string_view MsgTagName(MsgTag tag) {
  switch (tag) {
    case MsgTag::kInvalid:
      return "unencoded";
    case MsgTag::kStampedRequest:
      return "resource.StampedRequest";
    case MsgTag::kStampedGrant:
      return "resource.StampedGrant";
    case MsgTag::kResyncRequest:
      return "resource.ResyncRequest";
    case MsgTag::kRequestRpc:
      return "master.RequestRpc";
    case MsgTag::kGrantRpc:
      return "master.GrantRpc";
    case MsgTag::kResyncRpc:
      return "master.ResyncRpc";
    case MsgTag::kBadMachineReportRpc:
      return "master.BadMachineReportRpc";
    case MsgTag::kAgentHeartbeatRpc:
      return "master.AgentHeartbeatRpc";
    case MsgTag::kAgentCapacityRpc:
      return "master.AgentCapacityRpc";
    case MsgTag::kAgentHeartbeatAckRpc:
      return "master.AgentHeartbeatAckRpc";
    case MsgTag::kMasterRecoveryAnnounceRpc:
      return "master.MasterRecoveryAnnounceRpc";
    case MsgTag::kSubmitAppRpc:
      return "master.SubmitAppRpc";
    case MsgTag::kSubmitAppReplyRpc:
      return "master.SubmitAppReplyRpc";
    case MsgTag::kStartAppMasterRpc:
      return "master.StartAppMasterRpc";
    case MsgTag::kStopAppRpc:
      return "master.StopAppRpc";
    case MsgTag::kStartWorkerRpc:
      return "master.StartWorkerRpc";
    case MsgTag::kWorkerStartedRpc:
      return "master.WorkerStartedRpc";
    case MsgTag::kStopWorkerRpc:
      return "master.StopWorkerRpc";
    case MsgTag::kWorkerCrashedRpc:
      return "master.WorkerCrashedRpc";
    case MsgTag::kAdoptQueryRpc:
      return "master.AdoptQueryRpc";
    case MsgTag::kAdoptReplyRpc:
      return "master.AdoptReplyRpc";
    case MsgTag::kWorkerReadyRpc:
      return "job.WorkerReadyRpc";
    case MsgTag::kExecuteInstanceRpc:
      return "job.ExecuteInstanceRpc";
    case MsgTag::kCancelInstanceRpc:
      return "job.CancelInstanceRpc";
    case MsgTag::kInstanceDoneRpc:
      return "job.InstanceDoneRpc";
    case MsgTag::kWorkerStatusReportRpc:
      return "job.WorkerStatusReportRpc";
    case MsgTag::kLeaseAcquireRpc:
      return "coord.LeaseAcquireRpc";
    case MsgTag::kLeaseRenewRpc:
      return "coord.LeaseRenewRpc";
    case MsgTag::kLeaseReleaseRpc:
      return "coord.LeaseReleaseRpc";
    case MsgTag::kLeaseReplyRpc:
      return "coord.LeaseReplyRpc";
    case MsgTag::kShardStatusRpc:
      return "shard.ShardStatusRpc";
    case MsgTag::kShardLookupRpc:
      return "shard.ShardLookupRpc";
    case MsgTag::kShardDirectoryReplyRpc:
      return "shard.ShardDirectoryReplyRpc";
    case MsgTag::kRouteSubmitRpc:
      return "shard.RouteSubmitRpc";
    case MsgTag::kRouteReplyRpc:
      return "shard.RouteReplyRpc";
    case MsgTag::kTestPing:
      return "test.Ping";
    case MsgTag::kTestPong:
      return "test.Pong";
  }
  return "wire.unknown";
}

namespace {

constexpr int kMaxJsonDepth = 64;

Status DecodeJson(Reader& r, Json& json, int depth) {
  if (depth > kMaxJsonDepth) {
    return Status::Corruption("wire: json nesting too deep");
  }
  uint8_t type;
  FUXI_RETURN_IF_ERROR(r.Byte(&type));
  switch (static_cast<Json::Type>(type)) {
    case Json::Type::kNull:
      json = Json();
      return Status::Ok();
    case Json::Type::kBool: {
      bool b;
      FUXI_RETURN_IF_ERROR(r.Bool(&b));
      json = Json(b);
      return Status::Ok();
    }
    case Json::Type::kNumber: {
      double d;
      FUXI_RETURN_IF_ERROR(r.F64(&d));
      json = Json(d);
      return Status::Ok();
    }
    case Json::Type::kString: {
      std::string s;
      FUXI_RETURN_IF_ERROR(r.Str(&s));
      json = Json(std::move(s));
      return Status::Ok();
    }
    case Json::Type::kArray: {
      uint64_t count;
      FUXI_RETURN_IF_ERROR(r.U64(&count));
      if (count > r.remaining()) {
        return Status::Corruption("wire: json array count exceeds bytes");
      }
      Json::Array array;
      array.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Json elem;
        FUXI_RETURN_IF_ERROR(DecodeJson(r, elem, depth + 1));
        array.push_back(std::move(elem));
      }
      json = Json(std::move(array));
      return Status::Ok();
    }
    case Json::Type::kObject: {
      uint64_t count;
      FUXI_RETURN_IF_ERROR(r.U64(&count));
      if (count > r.remaining()) {
        return Status::Corruption("wire: json object count exceeds bytes");
      }
      Json::Object object;
      for (uint64_t i = 0; i < count; ++i) {
        std::string key;
        FUXI_RETURN_IF_ERROR(r.Str(&key));
        Json value;
        FUXI_RETURN_IF_ERROR(DecodeJson(r, value, depth + 1));
        object[std::move(key)] = std::move(value);
      }
      json = Json(std::move(object));
      return Status::Ok();
    }
  }
  return Status::Corruption("wire: unknown json type byte");
}

}  // namespace

void WireEncode(Writer& w, const Json& json) {
  w.Byte(static_cast<uint8_t>(json.type()));
  switch (json.type()) {
    case Json::Type::kNull:
      break;
    case Json::Type::kBool:
      w.Bool(json.as_bool());
      break;
    case Json::Type::kNumber:
      w.F64(json.as_number());
      break;
    case Json::Type::kString:
      w.Str(json.as_string());
      break;
    case Json::Type::kArray:
      w.U64(json.as_array().size());
      for (const Json& elem : json.as_array()) WireEncode(w, elem);
      break;
    case Json::Type::kObject:
      // std::map iteration order = sorted keys = canonical bytes.
      w.U64(json.as_object().size());
      for (const auto& [key, value] : json.as_object()) {
        w.Str(key);
        WireEncode(w, value);
      }
      break;
  }
}

Status WireDecode(Reader& r, Json& json) { return DecodeJson(r, json, 0); }

}  // namespace fuxi::wire
