#ifndef FUXI_WIRE_WIRE_H_
#define FUXI_WIRE_WIRE_H_

#include <concepts>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/json.h"
#include "common/status.h"

/// fuxi::wire — the canonical binary wire format under every control-plane
/// RPC (DESIGN.md §10).
///
/// Every message type that crosses node boundaries gets a codec — a pair of
/// free functions discovered by argument-dependent lookup, declared in the
/// same header that defines the type:
///
///   void WireEncode(wire::Writer& w, const T& msg);
///   Status WireDecode(wire::Reader& r, T& msg);
///
/// Top-level messages (things handed to net::Network::Send) additionally
/// declare their identity in the central tag registry below:
///
///   constexpr wire::TypeInfo WireTypeInfo(const T*);
///
/// and are framed as  [varint tag][version byte][body][fixed32 checksum].
/// The checksum covers tag+version+body, so any single corrupted byte is a
/// guaranteed decode failure — corruption surfaces as a counted drop at the
/// transport, never as a crash or a silently wrong message.
///
/// The encoding is canonical: a given value has exactly one byte string
/// (varints are minimal, doubles are raw IEEE-754 bits, object keys are
/// sorted), so encode→decode→encode is byte-identical and measured sizes
/// are exact, not estimates.
namespace fuxi::wire {

// ---------------------------------------------------------------------
// Message tag registry
// ---------------------------------------------------------------------

/// One tag per top-level message type, allocated centrally so two modules
/// can never collide. Tags are forever: never reuse a retired value.
enum class MsgTag : uint16_t {
  kInvalid = 0,

  // resource protocol (src/resource)
  kStampedRequest = 1,
  kStampedGrant = 2,
  kResyncRequest = 3,

  // master control plane (src/master)
  kRequestRpc = 16,
  kGrantRpc = 17,
  kResyncRpc = 18,
  kBadMachineReportRpc = 19,
  kAgentHeartbeatRpc = 20,
  kAgentCapacityRpc = 21,
  kAgentHeartbeatAckRpc = 22,
  kMasterRecoveryAnnounceRpc = 23,
  kSubmitAppRpc = 24,
  kSubmitAppReplyRpc = 25,
  kStartAppMasterRpc = 26,
  kStopAppRpc = 27,
  kStartWorkerRpc = 28,
  kWorkerStartedRpc = 29,
  kStopWorkerRpc = 30,
  kWorkerCrashedRpc = 31,
  kAdoptQueryRpc = 32,
  kAdoptReplyRpc = 33,

  // job control plane (src/job)
  kWorkerReadyRpc = 48,
  kExecuteInstanceRpc = 49,
  kCancelInstanceRpc = 50,
  kInstanceDoneRpc = 51,
  kWorkerStatusReportRpc = 52,

  // coord lease protocol (src/coord)
  kLeaseAcquireRpc = 64,
  kLeaseRenewRpc = 65,
  kLeaseReleaseRpc = 66,
  kLeaseReplyRpc = 67,

  // shard federation (src/shard; ShardStatusRpc is sent by src/master)
  kShardStatusRpc = 80,
  kShardLookupRpc = 81,
  kShardDirectoryReplyRpc = 82,
  kRouteSubmitRpc = 83,
  kRouteReplyRpc = 84,

  // reserved for tests (tests/net_test.cc etc.)
  kTestPing = 240,
  kTestPong = 241,
};

/// Stable short name ("master.RequestRpc") used for per-type byte metrics
/// and tooling output. Returns "wire.unknown" for unregistered values.
std::string_view MsgTagName(MsgTag tag);

/// Identity of a top-level message: its registry tag plus a format version
/// byte. Bump the version when a message's field layout changes; decode
/// rejects mismatched versions as corruption (no cross-version decoding in
/// the simulator — both ends are always the same build).
struct TypeInfo {
  MsgTag tag = MsgTag::kInvalid;
  uint8_t version = 1;
};

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Canonical encoder. With a sink it appends bytes; without one it only
/// counts them, so measuring an exact wire size costs no allocation.
class Writer {
 public:
  /// Counting-only writer: bytes_written() gives the exact encoded size.
  Writer() = default;
  /// Serializing writer: appends to `*out` (not cleared first).
  explicit Writer(std::string* out) : out_(out) {}

  void Byte(uint8_t b) {
    ++size_;
    if (out_ != nullptr) out_->push_back(static_cast<char>(b));
  }

  /// Unsigned LEB128 varint (1..10 bytes, minimal form).
  void U64(uint64_t v) {
    while (v >= 0x80) {
      Byte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    Byte(static_cast<uint8_t>(v));
  }
  void U32(uint32_t v) { U64(v); }

  /// Zigzag-mapped varint: small magnitudes of either sign stay short.
  void I64(int64_t v) {
    U64((static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63));
  }
  void I32(int32_t v) { I64(v); }

  void Bool(bool b) { Byte(b ? 1 : 0); }

  /// Fixed 8-byte little-endian IEEE-754 bits: round trips are bit-exact
  /// (including -0.0 and NaN payloads), unlike any text path.
  void F64(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(bits >> (8 * i)));
  }

  /// Varint length + raw bytes.
  void Str(std::string_view s) {
    U64(s.size());
    size_ += s.size();
    if (out_ != nullptr) out_->append(s.data(), s.size());
  }

  template <typename Tag>
  void Id(TypedId<Tag> id) {
    I64(id.value());
  }

  /// Varint count + elements, each through its own codec.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    for (const T& elem : v) WireEncode(*this, elem);
  }

  size_t bytes_written() const { return size_; }

 private:
  std::string* out_ = nullptr;
  size_t size_ = 0;
};

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked decoder over a byte view. Every read returns Status;
/// malformed input — truncation, non-minimal varints, impossible lengths —
/// is kCorruption, never undefined behaviour or an allocation bomb.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status Byte(uint8_t* out) {
    if (AtEnd()) return Truncated("byte");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status U64(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b;
      FUXI_RETURN_IF_ERROR(Byte(&b));
      uint64_t chunk = b & 0x7f;
      if (shift == 63 && chunk > 1) {
        return Status::Corruption("wire: varint overflows 64 bits");
      }
      value |= chunk << shift;
      if ((b & 0x80) == 0) {
        if (b == 0 && shift != 0) {
          return Status::Corruption("wire: non-minimal varint");
        }
        *out = value;
        return Status::Ok();
      }
    }
    return Status::Corruption("wire: varint longer than 10 bytes");
  }

  Status U32(uint32_t* out) {
    uint64_t v;
    FUXI_RETURN_IF_ERROR(U64(&v));
    if (v > UINT32_MAX) return Status::Corruption("wire: u32 out of range");
    *out = static_cast<uint32_t>(v);
    return Status::Ok();
  }

  Status I64(int64_t* out) {
    uint64_t z;
    FUXI_RETURN_IF_ERROR(U64(&z));
    *out = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
    return Status::Ok();
  }

  Status I32(int32_t* out) {
    int64_t v;
    FUXI_RETURN_IF_ERROR(I64(&v));
    if (v < INT32_MIN || v > INT32_MAX) {
      return Status::Corruption("wire: i32 out of range");
    }
    *out = static_cast<int32_t>(v);
    return Status::Ok();
  }

  Status Bool(bool* out) {
    uint8_t b;
    FUXI_RETURN_IF_ERROR(Byte(&b));
    if (b > 1) return Status::Corruption("wire: bool byte not 0/1");
    *out = (b == 1);
    return Status::Ok();
  }

  Status F64(double* out) {
    if (remaining() < 8) return Truncated("f64");
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }

  Status Str(std::string* out) {
    uint64_t len;
    FUXI_RETURN_IF_ERROR(U64(&len));
    if (len > remaining()) return Truncated("string body");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  template <typename Tag>
  Status Id(TypedId<Tag>* out) {
    int64_t v;
    FUXI_RETURN_IF_ERROR(I64(&v));
    *out = TypedId<Tag>(v);
    return Status::Ok();
  }

  /// Validating enum read: the raw varint must not exceed the largest
  /// declared enumerator.
  template <typename E>
  Status Enum(E* out, E max_inclusive) {
    uint64_t raw;
    FUXI_RETURN_IF_ERROR(U64(&raw));
    if (raw > static_cast<uint64_t>(max_inclusive)) {
      return Status::Corruption("wire: enum value out of range");
    }
    *out = static_cast<E>(raw);
    return Status::Ok();
  }

  /// The claimed element count is checked against the bytes actually left
  /// (every element costs >= 1 byte), so a corrupted count can never drive
  /// a giant allocation.
  template <typename T>
  Status Vec(std::vector<T>* out) {
    uint64_t count;
    FUXI_RETURN_IF_ERROR(U64(&count));
    if (count > remaining()) {
      return Status::Corruption("wire: vector count exceeds remaining bytes");
    }
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      T elem{};
      FUXI_RETURN_IF_ERROR(WireDecode(*this, elem));
      out->push_back(std::move(elem));
    }
    return Status::Ok();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("wire: truncated reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Primitive element codecs (so Vec<primitive> works)
// ---------------------------------------------------------------------

inline void WireEncode(Writer& w, const std::string& s) { w.Str(s); }
inline Status WireDecode(Reader& r, std::string& s) { return r.Str(&s); }
inline void WireEncode(Writer& w, int64_t v) { w.I64(v); }
inline Status WireDecode(Reader& r, int64_t& v) { return r.I64(&v); }
inline void WireEncode(Writer& w, uint64_t v) { w.U64(v); }
inline Status WireDecode(Reader& r, uint64_t& v) { return r.U64(&v); }
inline void WireEncode(Writer& w, double v) { w.F64(v); }
inline Status WireDecode(Reader& r, double& v) { return r.F64(&v); }
template <typename Tag>
void WireEncode(Writer& w, TypedId<Tag> id) {
  w.Id(id);
}
template <typename Tag>
Status WireDecode(Reader& r, TypedId<Tag>& id) {
  return r.Id(&id);
}

/// Structural Json codec: type byte + payload, recursing through arrays
/// and objects (sorted keys come free from Json::Object being a std::map;
/// numbers are raw double bits, so round trips are exact where the text
/// path would re-parse). Decode caps nesting depth at 64.
void WireEncode(Writer& w, const Json& json);
Status WireDecode(Reader& r, Json& json);

// ---------------------------------------------------------------------
// Concepts
// ---------------------------------------------------------------------

/// T has an encode/decode pair (possibly a nested struct with no tag).
template <typename T>
concept WireCodec = requires(Writer& w, Reader& r, const T& c, T& m) {
  WireEncode(w, c);
  { WireDecode(r, m) } -> std::same_as<Status>;
};

/// T is a framed top-level message: codec + registry identity. This is
/// what net::Network::Send detects to measure and round-trip payloads.
template <typename T>
concept WireMessage = WireCodec<T> && requires(const T* p) {
  { WireTypeInfo(p) } -> std::convertible_to<TypeInfo>;
};

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// FNV-1a over the frame prefix. 32 bits: any single-byte flip is a
/// guaranteed mismatch; random multi-byte garbage passes with p ~ 2^-32.
inline uint32_t FrameChecksum(std::string_view bytes) {
  uint32_t h = 2166136261u;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

inline constexpr size_t kChecksumBytes = 4;

template <typename T>
  requires WireMessage<T>
constexpr TypeInfo TypeInfoOf() {
  return WireTypeInfo(static_cast<const T*>(nullptr));
}

/// Appends the full frame for `msg` to `*out`.
template <typename T>
  requires WireMessage<T>
void EncodeFramed(const T& msg, std::string* out) {
  const size_t start = out->size();
  Writer w(out);
  constexpr TypeInfo info = TypeInfoOf<T>();
  w.U64(static_cast<uint64_t>(info.tag));
  w.Byte(info.version);
  WireEncode(w, msg);
  uint32_t sum = FrameChecksum(
      std::string_view(out->data() + start, out->size() - start));
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(sum >> (8 * i)));
  }
}

/// Exact frame size of `msg` without serializing (counting writer).
template <typename T>
  requires WireMessage<T>
size_t FramedSize(const T& msg) {
  Writer w;
  constexpr TypeInfo info = TypeInfoOf<T>();
  w.U64(static_cast<uint64_t>(info.tag));
  w.Byte(info.version);
  WireEncode(w, msg);
  return w.bytes_written() + kChecksumBytes;
}

/// Decodes one full frame into `*msg` (reset to default first). Fails with
/// kCorruption on checksum mismatch, wrong tag or version, any malformed
/// field, or trailing bytes. On failure `*msg` is default-initialized or
/// partially decoded — never UB.
template <typename T>
  requires WireMessage<T>
Status DecodeFramed(std::string_view bytes, T* msg) {
  if (bytes.size() < 1 + 1 + kChecksumBytes) {
    return Status::Corruption("wire: frame shorter than minimum");
  }
  const std::string_view prefix = bytes.substr(0, bytes.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes[bytes.size() - 4 + i]))
              << (8 * i);
  }
  if (FrameChecksum(prefix) != stored) {
    return Status::Corruption("wire: frame checksum mismatch");
  }
  Reader r(prefix);
  uint64_t tag;
  FUXI_RETURN_IF_ERROR(r.U64(&tag));
  constexpr TypeInfo info = TypeInfoOf<T>();
  if (tag != static_cast<uint64_t>(info.tag)) {
    return Status::Corruption("wire: frame tag mismatch");
  }
  uint8_t version;
  FUXI_RETURN_IF_ERROR(r.Byte(&version));
  if (version != info.version) {
    return Status::Corruption("wire: unsupported message version");
  }
  *msg = T{};
  FUXI_RETURN_IF_ERROR(WireDecode(r, *msg));
  if (!r.AtEnd()) {
    return Status::Corruption("wire: trailing bytes after message body");
  }
  return Status::Ok();
}

/// Convenience: frame to a fresh string.
template <typename T>
  requires WireMessage<T>
std::string EncodeToString(const T& msg) {
  std::string out;
  EncodeFramed(msg, &out);
  return out;
}

// ---------------------------------------------------------------------
// Bare-body helpers (nested structs without a frame, e.g. in tests)
// ---------------------------------------------------------------------

template <typename T>
  requires WireCodec<T>
std::string EncodeBody(const T& msg) {
  std::string out;
  Writer w(&out);
  WireEncode(w, msg);
  return out;
}

template <typename T>
  requires WireCodec<T>
Status DecodeBody(std::string_view bytes, T* msg) {
  Reader r(bytes);
  *msg = T{};
  FUXI_RETURN_IF_ERROR(WireDecode(r, *msg));
  if (!r.AtEnd()) {
    return Status::Corruption("wire: trailing bytes after body");
  }
  return Status::Ok();
}

}  // namespace fuxi::wire

#endif  // FUXI_WIRE_WIRE_H_
