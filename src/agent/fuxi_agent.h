#ifndef FUXI_AGENT_FUXI_AGENT_H_
#define FUXI_AGENT_FUXI_AGENT_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "agent/process_host.h"
#include "cluster/topology.h"
#include "common/ids.h"
#include "coord/lock_service.h"
#include "master/messages.h"
#include "net/network.h"
#include "obs/audit.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"

namespace fuxi::agent {

struct FuxiAgentOptions {
  double heartbeat_interval = 1.0;
  /// How many times a crashed worker is restarted in place before the
  /// failure is only reported to the application master.
  int worker_restart_limit = 2;
  /// Time to bring a worker process up (package download + exec). The
  /// paper measures 11.84 s with 400 MB worker binaries (Table 2); the
  /// default models a warm package cache. This cost is exactly why
  /// container reuse (§3.2.3) matters.
  double worker_start_seconds = 2.0;
  /// Time to start an application master process (Table 2: 1.91 s).
  double app_master_start_seconds = 1.0;
  /// Every Nth heartbeat carries the agent's full allocation table even
  /// when the master did not ask, so the master can detect and repair
  /// agent/master capacity divergence (a lost capacity delta or stop
  /// request would otherwise leak processes forever). 0 disables the
  /// periodic report.
  int allocation_report_every = 10;
  /// Election lease whose holder this agent reports to; empty = the
  /// default FuxiMaster::kMasterLock. Sharded clusters point each agent
  /// at its shard's lease.
  std::string master_lock;
};

/// The per-machine daemon (paper §2.2): reports machine status to
/// FuxiMaster, starts/stops application workers on behalf of
/// application masters, and enforces resource capacity — if the granted
/// capacity shrinks below what is running, it kills processes
/// compulsorily ("resource capacity ensurance"); if the machine
/// overloads, the Cgroup policy kills the process exceeding its limit
/// the most.
///
/// Supports transparent failover: on restart it adopts the processes
/// still running in the machine's ProcessHost, re-learns its capacity
/// table from FuxiMaster, and asks each application master which
/// adopted workers to keep (§4.3.1).
class FuxiAgent : public sim::Actor {
 public:
  /// Asked to start an application master for a submitted app; wired by
  /// the job runtime (or test harness).
  using AppMasterLauncher =
      std::function<void(const master::StartAppMasterRpc&, MachineId)>;

  FuxiAgent(sim::Simulator* simulator, net::Network* network,
            coord::LockService* locks, ProcessHost* host,
            const cluster::ClusterTopology* topology, NodeId self,
            FuxiAgentOptions options = {});

  void Start();

  /// Simulated daemon crash: heartbeats stop, capacity table is lost.
  /// Running processes keep running (they live in the ProcessHost).
  void Crash();

  /// Restart after a crash: adopts running processes and rebuilds state
  /// from FuxiMaster and the application masters.
  void Restart();

  /// Machine halt (NodeDown fault): every process dies with the host.
  void HaltMachine();

  bool is_alive() const { return alive_; }
  NodeId node() const { return self_; }
  MachineId machine() const { return host_->machine(); }

  /// Fault injection: the health score reported in heartbeats
  /// (SlowMachine scenarios lower it).
  void set_health_score(double score) { health_score_ = score; }
  double health_score() const { return health_score_; }

  void set_app_master_launcher(AppMasterLauncher launcher) {
    am_launcher_ = std::move(launcher);
  }

  /// Capacity granted to (app, slot) according to the agent's table.
  int64_t CapacityOf(AppId app, uint32_t slot_id) const;

  /// Total resources the agent's capacity table promises (sum over
  /// entries of count x unit). The chaos InvariantMonitor compares this
  /// against the machine's physical capacity: a sustained excess means
  /// FuxiMaster double-granted the machine (e.g. a failover that did
  /// not restore existing grants before rescheduling).
  cluster::ResourceVector TotalGrantedCapacity() const;

  /// Simulates a worker process crash (PartialWorkerFailure injection):
  /// the agent notices and applies its restart-in-place policy.
  void InjectWorkerCrash(WorkerId worker);

  uint64_t workers_started() const { return workers_started_; }
  uint64_t workers_killed_for_capacity() const {
    return workers_killed_for_capacity_;
  }
  uint64_t workers_killed_for_overload() const {
    return workers_killed_for_overload_;
  }

  /// Wires the cluster metrics registry in (null detaches). All agents
  /// of a cluster share the same instruments, so the counters aggregate
  /// cluster-wide starts/kills.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Wires the cluster decision-audit log in (null detaches). Each
  /// compulsory worker kill (capacity ensurance / overload eviction)
  /// commits a kAgentKill record so `fuxi_explain` can attribute lost
  /// workers to the agent-side enforcement that killed them.
  void set_audit(obs::AuditLog* audit) { audit_ = audit; }

 private:
  /// Commits one kAgentKill decision record (no-op when detached or
  /// compiled out).
  void AuditKill(AppId app, uint32_t slot_id, const char* cause);

  struct CapacityEntry {
    resource::ScheduleUnitDef def;
    int64_t count = 0;
  };
  using CapacityKey = std::pair<AppId, uint32_t>;

  void OnCapacity(const master::AgentCapacityRpc& rpc);
  void OnStartWorker(const net::Envelope& env,
                     const master::StartWorkerRpc& rpc);
  void OnStopWorker(const master::StopWorkerRpc& rpc);
  void OnAdoptReply(const master::AdoptReplyRpc& rpc);
  void OnHeartbeatAck(const master::AgentHeartbeatAckRpc& rpc);
  void OnStartAppMaster(const master::StartAppMasterRpc& rpc);

  void HeartbeatTick();
  void SendHeartbeat(bool with_allocations);
  /// Cgroup soft/hard-limit policy (§2.2 isolation rule 2): when the
  /// machine's actual usage exceeds its capacity, kill the process
  /// whose real usage exceeds its own limit the most, until the load is
  /// acceptable again.
  void EnforceOverload();
  /// Kills processes of (app, slot) until the running count fits the
  /// granted capacity (resource capacity ensurance).
  void EnforceCapacity(AppId app, uint32_t slot_id);
  NodeId MasterNode() const;

  net::Network* network_;
  coord::LockService* locks_;
  ProcessHost* host_;
  const cluster::ClusterTopology* topology_;
  NodeId self_;
  FuxiAgentOptions options_;

  bool alive_ = false;
  uint64_t life_ = 0;
  double health_score_ = 1.0;
  uint64_t heartbeat_seq_ = 0;
  bool send_allocations_next_ = true;  ///< first contact reports state
  bool need_capacity_ = false;

  /// Capacity-channel replay guard (see AgentCapacityRpc::seq). Deltas
  /// commute, so only duplicates and deltas older than the last full
  /// snapshot are dropped. Deliberately kept across agent restarts: the
  /// master's counter is monotonic per generation, so the guard stays
  /// valid for the machine even when the daemon's table is lost.
  uint64_t capacity_generation_ = 0;
  uint64_t last_full_capacity_seq_ = 0;
  std::set<uint64_t> applied_capacity_seqs_;

  net::Endpoint endpoint_;
  std::map<CapacityKey, CapacityEntry> capacity_;
  /// Launches in progress (accepted, still "downloading the package").
  std::map<CapacityKey, int64_t> pending_launches_;
  /// Restart-in-place counters per worker lineage.
  std::map<WorkerId, int> restart_counts_;
  AppMasterLauncher am_launcher_;

  uint64_t workers_started_ = 0;
  uint64_t workers_killed_for_capacity_ = 0;
  uint64_t workers_killed_for_overload_ = 0;

  obs::Counter* started_counter_ = nullptr;
  obs::Counter* killed_capacity_counter_ = nullptr;
  obs::Counter* killed_overload_counter_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
};

}  // namespace fuxi::agent

#endif  // FUXI_AGENT_FUXI_AGENT_H_
