#ifndef FUXI_AGENT_PROCESS_HOST_H_
#define FUXI_AGENT_PROCESS_HOST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/resource_vector.h"
#include "common/ids.h"
#include "common/json.h"
#include "obs/metrics_registry.h"

namespace fuxi::agent {

/// One OS process the machine is running (an application worker or an
/// application master).
struct Process {
  WorkerId id;
  AppId app;
  uint32_t slot_id = 0;
  NodeId owner_am;  ///< the application master controlling it
  cluster::ResourceVector limit;  ///< Cgroup limit (the grant's unit size)
  /// Actual consumption (soft-limit model); defaults to the limit. The
  /// harness raises it to simulate memory-leaking / bursting processes.
  cluster::ResourceVector usage;
  Json plan;
  double started_at = 0;
  bool alive = true;
};

/// The machine's process table. Deliberately owned by the *machine*
/// (the harness), not by the FuxiAgent: when the agent crashes and
/// restarts, "existing running tasks will be adopted rather than being
/// killed" (§1) — so the processes must survive the agent. Launch/kill
/// callbacks let the job runtime attach real worker behaviour.
class ProcessHost {
 public:
  /// Invoked when a process starts; the job runtime spawns the worker
  /// actor here.
  using LaunchHook = std::function<void(const Process&)>;
  /// Invoked when a process is killed or dies.
  using KillHook = std::function<void(const Process&)>;

  /// Worker ids are namespaced by machine so they are unique across the
  /// cluster (id = machine * 1e6 + local counter).
  explicit ProcessHost(MachineId machine)
      : machine_(machine), next_id_(machine.value() * 1000000 + 1) {}

  void set_launch_hook(LaunchHook hook) { launch_hook_ = std::move(hook); }
  void set_kill_hook(KillHook hook) { kill_hook_ = std::move(hook); }

  /// Level gauge tracking live processes. Shared across the cluster's
  /// hosts (one gauge, every machine adds/subtracts), giving the
  /// cluster-wide running-process count without per-machine series.
  void set_running_gauge(obs::Gauge* gauge) { running_gauge_ = gauge; }

  MachineId machine() const { return machine_; }

  /// Starts a process and returns its id.
  WorkerId Launch(AppId app, uint32_t slot_id, NodeId owner_am,
                  const cluster::ResourceVector& limit, Json plan,
                  double now) {
    WorkerId id = next_id_;
    next_id_ = WorkerId(next_id_.value() + 1);
    Process process{id,    app, slot_id, owner_am, limit, limit,
                    std::move(plan), now, true};
    auto [it, inserted] = processes_.emplace(id, std::move(process));
    if (running_gauge_ != nullptr) running_gauge_->Add(1);
    if (launch_hook_) launch_hook_(it->second);
    return id;
  }

  /// Kills a process. Returns false when unknown or already dead.
  bool Kill(WorkerId id) {
    auto it = processes_.find(id);
    if (it == processes_.end() || !it->second.alive) return false;
    it->second.alive = false;
    if (running_gauge_ != nullptr) running_gauge_->Add(-1);
    if (kill_hook_) kill_hook_(it->second);
    processes_.erase(it);
    return true;
  }

  const Process* Find(WorkerId id) const {
    auto it = processes_.find(id);
    return it == processes_.end() ? nullptr : &it->second;
  }

  /// All live processes, in id order.
  std::vector<const Process*> Alive() const {
    std::vector<const Process*> out;
    for (const auto& [id, process] : processes_) {
      if (process.alive) out.push_back(&process);
    }
    return out;
  }

  /// Live processes of one application (newest last).
  std::vector<const Process*> AliveOf(AppId app, uint32_t slot_id) const {
    std::vector<const Process*> out;
    for (const auto& [id, process] : processes_) {
      if (process.alive && process.app == app &&
          process.slot_id == slot_id) {
        out.push_back(&process);
      }
    }
    return out;
  }

  /// Sum of the resource limits of live processes (the machine "load"
  /// the Cgroup controller compares against capacity).
  cluster::ResourceVector TotalUsage() const {
    cluster::ResourceVector total;
    for (const auto& [id, process] : processes_) {
      if (process.alive) total += process.limit;
    }
    return total;
  }

  /// Sum of the ACTUAL usage of live processes (soft-limit model).
  cluster::ResourceVector TotalActualUsage() const {
    cluster::ResourceVector total;
    for (const auto& [id, process] : processes_) {
      if (process.alive) total += process.usage;
    }
    return total;
  }

  /// Overrides a process's actual usage (fault injection: runaway
  /// worker). Returns false for unknown/dead processes.
  bool SetProcessUsage(WorkerId id, const cluster::ResourceVector& usage) {
    auto it = processes_.find(id);
    if (it == processes_.end() || !it->second.alive) return false;
    it->second.usage = usage;
    return true;
  }

  size_t alive_count() const {
    size_t n = 0;
    for (const auto& [id, process] : processes_) {
      if (process.alive) ++n;
    }
    return n;
  }

 private:
  MachineId machine_;
  WorkerId next_id_;
  std::map<WorkerId, Process> processes_;
  LaunchHook launch_hook_;
  KillHook kill_hook_;
  obs::Gauge* running_gauge_ = nullptr;
};

}  // namespace fuxi::agent

#endif  // FUXI_AGENT_PROCESS_HOST_H_
