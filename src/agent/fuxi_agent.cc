#include "agent/fuxi_agent.h"

#include <algorithm>

#include "common/logging.h"
#include "master/fuxi_master.h"

namespace fuxi::agent {

FuxiAgent::FuxiAgent(sim::Simulator* simulator, net::Network* network,
                     coord::LockService* locks, ProcessHost* host,
                     const cluster::ClusterTopology* topology, NodeId self,
                     FuxiAgentOptions options)
    : Actor(simulator),
      network_(network),
      locks_(locks),
      host_(host),
      topology_(topology),
      self_(self),
      options_(options) {
  endpoint_.Handle<master::AgentCapacityRpc>(
      [this](const net::Envelope&, const master::AgentCapacityRpc& rpc) {
        if (alive_) OnCapacity(rpc);
      });
  endpoint_.Handle<master::StartWorkerRpc>(
      [this](const net::Envelope& env, const master::StartWorkerRpc& rpc) {
        if (alive_) OnStartWorker(env, rpc);
      });
  endpoint_.Handle<master::StopWorkerRpc>(
      [this](const net::Envelope&, const master::StopWorkerRpc& rpc) {
        if (alive_) OnStopWorker(rpc);
      });
  endpoint_.Handle<master::AdoptReplyRpc>(
      [this](const net::Envelope&, const master::AdoptReplyRpc& rpc) {
        if (alive_) OnAdoptReply(rpc);
      });
  endpoint_.Handle<master::AgentHeartbeatAckRpc>(
      [this](const net::Envelope&, const master::AgentHeartbeatAckRpc& rpc) {
        if (alive_) OnHeartbeatAck(rpc);
      });
  endpoint_.Handle<master::StartAppMasterRpc>(
      [this](const net::Envelope&, const master::StartAppMasterRpc& rpc) {
        if (alive_) OnStartAppMaster(rpc);
      });
}

void FuxiAgent::Start() {
  FUXI_CHECK(!alive_);
  alive_ = true;
  ++life_;
  network_->Register(self_, &endpoint_);
  send_allocations_next_ = true;
  HeartbeatTick();
}

void FuxiAgent::Crash() {
  if (!alive_) return;
  alive_ = false;
  ++life_;
  network_->Unregister(self_);
  // Soft state lost with the daemon; processes keep running in the
  // ProcessHost (user-transparent agent failover, §4.3.1).
  capacity_.clear();
  pending_launches_.clear();
  restart_counts_.clear();
}

void FuxiAgent::Restart() {
  if (alive_) return;
  alive_ = true;
  ++life_;
  network_->Register(self_, &endpoint_);
  // 1. Adopt running processes.
  std::map<std::pair<AppId, NodeId>, std::vector<WorkerId>> by_owner;
  for (const Process* process : host_->Alive()) {
    by_owner[{process->app, process->owner_am}].push_back(process->id);
  }
  // 2. Ask each application master for its authoritative worker list.
  for (const auto& [owner, workers] : by_owner) {
    master::AdoptQueryRpc query;
    query.app = owner.first;
    query.machine = machine();
    query.agent_node = self_;
    query.workers = workers;
    network_->Send(self_, owner.second, query);
  }
  // 3. Re-learn the capacity table from FuxiMaster and resume
  // heartbeating (allocations included so a failed-over master can
  // restore soft state too).
  need_capacity_ = true;
  send_allocations_next_ = true;
  HeartbeatTick();
}

void FuxiAgent::HaltMachine() {
  // NodeDown: the whole machine dies — daemon and every process.
  std::vector<WorkerId> to_kill;
  for (const Process* process : host_->Alive()) {
    to_kill.push_back(process->id);
  }
  for (WorkerId id : to_kill) host_->Kill(id);
  Crash();
}

NodeId FuxiAgent::MasterNode() const {
  return locks_->Holder(options_.master_lock.empty()
                            ? master::FuxiMaster::kMasterLock
                            : options_.master_lock);
}

void FuxiAgent::HeartbeatTick() {
  if (!alive_) return;
  EnforceOverload();
  bool with_allocations = send_allocations_next_;
  // Periodic divergence repair: report the allocation table so the
  // master can compare it against the scheduler's grants and push a
  // corrective full snapshot when the two drifted apart.
  if (options_.allocation_report_every > 0 &&
      (heartbeat_seq_ + 1) % options_.allocation_report_every == 0) {
    with_allocations = true;
  }
  SendHeartbeat(with_allocations);
  send_allocations_next_ = false;
  uint64_t life = life_;
  After(options_.heartbeat_interval, [this, life] {
    if (alive_ && life == life_) HeartbeatTick();
  });
}

void FuxiAgent::SendHeartbeat(bool with_allocations) {
  NodeId primary = MasterNode();
  if (!primary.valid()) return;  // election in progress; try next tick
  master::AgentHeartbeatRpc hb;
  hb.machine = machine();
  hb.agent_node = self_;
  hb.seq = ++heartbeat_seq_;
  hb.health_score = health_score_;
  hb.capacity = topology_->machine(machine()).capacity;
  hb.need_capacity = need_capacity_;
  if (with_allocations) {
    hb.carries_allocations = true;
    // Report from the capacity table when we have one (authoritative),
    // otherwise from adopted processes (post-restart).
    if (!capacity_.empty()) {
      for (const auto& [key, entry] : capacity_) {
        if (entry.count <= 0) continue;
        hb.allocations.push_back(
            {key.first, key.second, entry.def, entry.count});
      }
    } else {
      std::map<CapacityKey, master::AgentAllocation> merged;
      for (const Process* process : host_->Alive()) {
        CapacityKey key{process->app, process->slot_id};
        auto [it, inserted] = merged.emplace(
            key, master::AgentAllocation{process->app, process->slot_id,
                                         resource::ScheduleUnitDef{}, 0});
        if (inserted) {
          it->second.def.slot_id = process->slot_id;
          it->second.def.resources = process->limit;
        }
        it->second.count += 1;
      }
      for (const auto& [key, alloc] : merged) {
        hb.allocations.push_back(alloc);
      }
    }
  }
  network_->Send(self_, primary, hb);
}

void FuxiAgent::OnHeartbeatAck(const master::AgentHeartbeatAckRpc& rpc) {
  (void)rpc;
  if (rpc.need_allocations) send_allocations_next_ = true;
}

void FuxiAgent::OnCapacity(const master::AgentCapacityRpc& rpc) {
  // Replay guard: a new master generation resets the counter space; a
  // seq at or below the last full snapshot is already covered by it;
  // an already-applied seq is a network duplicate (deltas must apply
  // exactly once or the table drifts from the scheduler's view).
  if (rpc.master_generation != capacity_generation_) {
    capacity_generation_ = rpc.master_generation;
    last_full_capacity_seq_ = 0;
    applied_capacity_seqs_.clear();
  }
  if (rpc.seq <= last_full_capacity_seq_) return;
  if (!applied_capacity_seqs_.insert(rpc.seq).second) return;
  if (rpc.full) {
    last_full_capacity_seq_ = rpc.seq;
    applied_capacity_seqs_.clear();
    capacity_.clear();
    need_capacity_ = false;
  }
  for (const master::AgentCapacityRpc::Entry& entry : rpc.entries) {
    CapacityKey key{entry.app, entry.slot_id};
    CapacityEntry& cap = capacity_[key];
    cap.def = entry.def;
    if (rpc.full) {
      cap.count = entry.delta;
    } else {
      cap.count += entry.delta;
    }
    if (cap.count < 0) cap.count = 0;
    EnforceCapacity(entry.app, entry.slot_id);
    if (cap.count == 0 &&
        host_->AliveOf(entry.app, entry.slot_id).empty()) {
      capacity_.erase(key);
    }
  }
  if (rpc.full) {
    // A full snapshot is authoritative for the whole machine: any live
    // process whose (app, slot) the snapshot does not cover lost its
    // grant (e.g. a revocation delta or the AM's stop request was lost)
    // and must be reaped, or it would leak forever.
    std::set<CapacityKey> live_keys;
    for (const Process* process : host_->Alive()) {
      live_keys.insert({process->app, process->slot_id});
    }
    for (const CapacityKey& key : live_keys) {
      EnforceCapacity(key.first, key.second);
    }
  }
}

void FuxiAgent::EnforceCapacity(AppId app, uint32_t slot_id) {
  CapacityKey key{app, slot_id};
  int64_t allowed = 0;
  if (auto it = capacity_.find(key); it != capacity_.end()) {
    allowed = it->second.count;
  }
  std::vector<const Process*> running = host_->AliveOf(app, slot_id);
  // Resource capacity ensurance (§2.2): when capacity decreases and the
  // application master did not stop a process itself, the agent kills
  // compulsorily — newest first, so long-running work survives.
  while (static_cast<int64_t>(running.size()) > allowed) {
    const Process* victim = running.back();
    running.pop_back();
    NodeId owner = victim->owner_am;
    master::WorkerCrashedRpc note;
    note.app = app;
    note.slot_id = slot_id;
    note.worker = victim->id;
    note.machine = machine();
    note.restarted = false;
    host_->Kill(victim->id);
    ++workers_killed_for_capacity_;
    if (killed_capacity_counter_ != nullptr) killed_capacity_counter_->Add();
    AuditKill(app, slot_id, "capacity");
    network_->Send(self_, owner, note);
  }
}

void FuxiAgent::EnforceOverload() {
  const cluster::ResourceVector& capacity =
      topology_->machine(machine()).capacity;
  while (true) {
    cluster::ResourceVector actual = host_->TotalActualUsage();
    if (actual.FitsIn(capacity)) return;
    // Pick the process whose real usage exceeds its own limit the most
    // (paper §2.2: "select the process whose real resource usage
    // exceeds its own resource usage most").
    const Process* victim = nullptr;
    double worst_excess = 0;
    for (const Process* process : host_->Alive()) {
      cluster::ResourceVector over = process->usage - process->limit;
      double excess = over.ClampNonNegative().DominantShare(capacity);
      if (victim == nullptr || excess > worst_excess) {
        victim = process;
        worst_excess = excess;
      }
    }
    if (victim == nullptr) return;
    master::WorkerCrashedRpc note;
    note.app = victim->app;
    note.slot_id = victim->slot_id;
    note.worker = victim->id;
    note.machine = machine();
    note.restarted = false;
    NodeId owner = victim->owner_am;
    host_->Kill(victim->id);
    ++workers_killed_for_overload_;
    if (killed_overload_counter_ != nullptr) killed_overload_counter_->Add();
    AuditKill(note.app, note.slot_id, "overload");
    network_->Send(self_, owner, note);
  }
}

void FuxiAgent::OnStartWorker(const net::Envelope& env,
                              const master::StartWorkerRpc& rpc) {
  (void)env;
  master::WorkerStartedRpc reply;
  reply.plan_id = rpc.plan_id;
  reply.machine = machine();
  CapacityKey key{rpc.app, rpc.slot_id};
  auto it = capacity_.find(key);
  int64_t allowed = it == capacity_.end() ? 0 : it->second.count;
  int64_t running =
      static_cast<int64_t>(host_->AliveOf(rpc.app, rpc.slot_id).size());
  int64_t launching = pending_launches_[key];
  if (running + launching >= allowed) {
    // The agent only starts processes backed by granted capacity
    // (process isolation rule 1, §2.2).
    reply.ok = false;
    reply.error = "no capacity granted for this app/slot on the machine";
    for (const Process* p : host_->AliveOf(rpc.app, rpc.slot_id)) {
      reply.running.push_back(p->id);
    }
    network_->Send(self_, rpc.am_node, reply);
    return;
  }
  // Worker start is not free: the package must be fetched and the
  // process brought up (Table 2's worker start overhead).
  pending_launches_[key] += 1;
  uint64_t life = life_;
  cluster::ResourceVector limit = it->second.def.resources;
  master::StartWorkerRpc plan = rpc;
  After(options_.worker_start_seconds, [this, life, key, limit, plan] {
    if (!alive_ || life != life_) return;
    pending_launches_[key] -= 1;
    if (pending_launches_[key] <= 0) pending_launches_.erase(key);
    master::WorkerStartedRpc late_reply;
    late_reply.plan_id = plan.plan_id;
    late_reply.machine = machine();
    // Re-check capacity: it may have been revoked during the download.
    auto cap_it = capacity_.find(key);
    int64_t now_allowed = cap_it == capacity_.end() ? 0 : cap_it->second.count;
    int64_t now_running = static_cast<int64_t>(
        host_->AliveOf(plan.app, plan.slot_id).size());
    if (now_running >= now_allowed) {
      late_reply.ok = false;
      late_reply.error = "capacity revoked during worker start";
      network_->Send(self_, plan.am_node, late_reply);
      return;
    }
    WorkerId worker = host_->Launch(plan.app, plan.slot_id, plan.am_node,
                                    limit, plan.plan, Now());
    ++workers_started_;
    if (started_counter_ != nullptr) started_counter_->Add();
    late_reply.ok = true;
    late_reply.worker = worker;
    network_->Send(self_, plan.am_node, late_reply);
  });
}

void FuxiAgent::OnStopWorker(const master::StopWorkerRpc& rpc) {
  host_->Kill(rpc.worker);
  restart_counts_.erase(rpc.worker);
}

void FuxiAgent::OnAdoptReply(const master::AdoptReplyRpc& rpc) {
  // Kill adopted workers of this app that its master no longer wants.
  std::set<WorkerId> keep(rpc.keep.begin(), rpc.keep.end());
  std::vector<WorkerId> to_kill;
  for (const Process* process : host_->Alive()) {
    if (process->app == rpc.app && keep.count(process->id) == 0) {
      to_kill.push_back(process->id);
    }
  }
  for (WorkerId id : to_kill) host_->Kill(id);
}

void FuxiAgent::InjectWorkerCrash(WorkerId worker) {
  const Process* process = host_->Find(worker);
  if (process == nullptr || !alive_) return;
  Process copy = *process;
  host_->Kill(worker);

  master::WorkerCrashedRpc note;
  note.app = copy.app;
  note.slot_id = copy.slot_id;
  note.worker = worker;
  note.machine = machine();

  int& restarts = restart_counts_[worker];
  if (restarts < options_.worker_restart_limit) {
    ++restarts;
    // Restart in place under the same grant (paper: the agent watches
    // the worker's status and restarts it if it crashes).
    WorkerId replacement = host_->Launch(copy.app, copy.slot_id,
                                         copy.owner_am, copy.limit,
                                         copy.plan, Now());
    ++workers_started_;
    if (started_counter_ != nullptr) started_counter_->Add();
    note.restarted = true;
    note.replacement = replacement;
  }
  network_->Send(self_, copy.owner_am, note);
}

int64_t FuxiAgent::CapacityOf(AppId app, uint32_t slot_id) const {
  auto it = capacity_.find({app, slot_id});
  return it == capacity_.end() ? 0 : it->second.count;
}

cluster::ResourceVector FuxiAgent::TotalGrantedCapacity() const {
  cluster::ResourceVector total;
  for (const auto& [key, entry] : capacity_) {
    total += entry.def.resources * entry.count;
  }
  return total;
}

void FuxiAgent::AuditKill(AppId app, uint32_t slot_id, const char* cause) {
  if (!obs::AuditLog::enabled() || audit_ == nullptr) return;
  obs::DecisionRecord rec;
  rec.kind = obs::DecisionKind::kAgentKill;
  rec.app = app.value();
  rec.slot = slot_id;
  rec.machine = machine().value();
  rec.units = 1;
  rec.note = cause;
  audit_->Commit(std::move(rec));
}

void FuxiAgent::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    started_counter_ = killed_capacity_counter_ = killed_overload_counter_ =
        nullptr;
    return;
  }
  started_counter_ = metrics->GetCounter("agent.workers_started");
  killed_capacity_counter_ =
      metrics->GetCounter("agent.workers_killed_for_capacity");
  killed_overload_counter_ =
      metrics->GetCounter("agent.workers_killed_for_overload");
}

void FuxiAgent::OnStartAppMaster(const master::StartAppMasterRpc& rpc) {
  // Starting the JobMaster process also takes time (Table 2: ~1.9 s).
  uint64_t life = life_;
  After(options_.app_master_start_seconds, [this, life, rpc] {
    if (!alive_ || life != life_) return;
    if (am_launcher_) am_launcher_(rpc, machine());
  });
}

}  // namespace fuxi::agent
