#include "obs/timeline.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace fuxi::obs {

namespace {

/// Folds events into one step-function per `key(event)`.
template <typename KeyFn>
std::vector<Series> BuildSeries(const std::vector<GrantEvent>& events,
                                KeyFn key) {
  std::map<int64_t, Series> by_key;
  for (const GrantEvent& e : events) {
    int64_t k = key(e);
    if (k < 0) continue;
    Series& s = by_key[k];
    s.key = k;
    int64_t held = (s.points.empty() ? 0 : s.points.back().second) + e.delta;
    if (held < 0) held = 0;  // tolerate truncated dumps (ring overwrote the grant)
    if (!s.points.empty() && s.points.back().first == e.time) {
      s.points.back().second = held;
    } else {
      s.points.emplace_back(e.time, held);
    }
    s.peak = std::max(s.peak, held);
    s.final_held = held;
  }
  std::vector<Series> out;
  out.reserve(by_key.size());
  for (auto& [k, s] : by_key) out.push_back(std::move(s));
  return out;
}

/// Held units of `s` at time `t` (step function, left-continuous start).
int64_t HeldAt(const Series& s, double t) {
  int64_t held = 0;
  for (const auto& [time, units] : s.points) {
    if (time > t) break;
    held = units;
  }
  return held;
}

}  // namespace

std::vector<GrantEvent> ExtractGrantEvents(
    const std::vector<DecisionRecord>& records) {
  std::vector<GrantEvent> out;
  for (const DecisionRecord& r : records) {
    switch (r.kind) {
      case DecisionKind::kPlace:
      case DecisionKind::kPreempt:
      // Planner conversions carry their committed bookings as
      // candidates, one per (machine, count) — same shape as a place.
      case DecisionKind::kReserve:
        for (const CandidateOutcome& c : r.candidates) {
          if (c.granted > 0) {
            out.push_back({r.time, r.app, r.slot, c.machine, c.granted});
          }
        }
        break;
      case DecisionKind::kPass:
        for (const CandidateOutcome& c : r.candidates) {
          if (c.granted > 0) {
            out.push_back({r.time, c.app, c.slot, r.machine, c.granted});
          }
        }
        break;
      case DecisionKind::kRevoke:
        if (r.units > 0) {
          out.push_back({r.time, r.app, r.slot, r.machine, -r.units});
        }
        break;
      case DecisionKind::kMachineEvent:
      case DecisionKind::kAgentKill:
      case DecisionKind::kRoute:
      case DecisionKind::kHealth:
        break;
    }
  }
  return out;
}

std::vector<Series> AppUtilization(const std::vector<GrantEvent>& events) {
  return BuildSeries(events, [](const GrantEvent& e) { return e.app; });
}

std::vector<Series> MachineOccupancy(const std::vector<GrantEvent>& events) {
  return BuildSeries(events, [](const GrantEvent& e) { return e.machine; });
}

std::string RenderTimeline(const std::vector<Series>& series,
                           std::string_view label, size_t width) {
  if (width == 0) width = 1;
  std::string out =
      StrFormat("%.*s (%zu rows)\n", static_cast<int>(label.size()),
                label.data(), series.size());
  if (series.empty()) return out;

  double t0 = series.front().points.front().first;
  double t1 = t0;
  int64_t peak = 1;
  for (const Series& s : series) {
    t0 = std::min(t0, s.points.front().first);
    t1 = std::max(t1, s.points.back().first);
    peak = std::max(peak, s.peak);
  }
  if (t1 <= t0) t1 = t0 + 1;  // degenerate range: single column of state

  static const char kGlyphs[] = " .:-=+*#%@";  // 10 intensity levels
  double step = (t1 - t0) / static_cast<double>(width);
  for (const Series& s : series) {
    std::string row;
    row.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      // Sample at the bucket midpoint; a step function's mean over a
      // narrow bucket is its midpoint value except at edges, and the
      // midpoint keeps rendering O(width · points) and deterministic.
      int64_t held = HeldAt(s, t0 + (static_cast<double>(i) + 0.5) * step);
      size_t level =
          held <= 0 ? 0
                    : 1 + static_cast<size_t>((held * 8) / peak);
      row.push_back(kGlyphs[std::min<size_t>(level, 9)]);
    }
    out += StrFormat("%6lld |%s| peak=%lld end=%lld\n",
                     static_cast<long long>(s.key), row.c_str(),
                     static_cast<long long>(s.peak),
                     static_cast<long long>(s.final_held));
  }
  out += StrFormat("       t=[%.3f, %.3f] virtual seconds, peak=%lld units\n",
                   t0, t1, static_cast<long long>(peak));
  return out;
}

}  // namespace fuxi::obs
