#include "obs/exporters.h"

#include "common/strings.h"

namespace fuxi::obs {
namespace {

constexpr double kMicrosPerVirtualSecond = 1e6;

Json SpanToEvent(const SpanRecord& span) {
  Json event = Json::MakeObject();
  event["ph"] = "X";
  event["cat"] = span.category;
  event["name"] = span.name;
  event["ts"] = span.begin * kMicrosPerVirtualSecond;
  event["dur"] = (span.end - span.begin) * kMicrosPerVirtualSecond;
  event["pid"] = 0;
  // Lane the viewer groups by: the receiving node for messages, a
  // shared lane for local spans.
  event["tid"] = span.to >= 0 ? span.to : int64_t{0};
  Json args = Json::MakeObject();
  args["span"] = span.id;
  if (span.parent != 0) args["parent"] = span.parent;
  if (span.from >= 0) args["from"] = span.from;
  if (span.to >= 0) args["to"] = span.to;
  if (span.bytes > 0) args["bytes"] = span.bytes;
  if (span.dropped) args["dropped"] = true;
  if (span.wall_us >= 0) args["wall_us"] = span.wall_us;
  event["args"] = std::move(args);
  return event;
}

/// RFC 4180 field quoting: names containing commas, quotes, or
/// newlines are wrapped in double quotes with embedded quotes doubled.
/// Metric names are caller-chosen strings, so the CSV export must not
/// let one odd name shear every subsequent column.
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Json ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  Json events = Json::MakeArray();
  for (const SpanRecord& span : spans) events.Append(SpanToEvent(span));
  Json doc = Json::MakeObject();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  return ChromeTraceJson(spans).Dump();
}

Json MetricsToJson(const MetricsRegistry& registry) {
  Json doc = Json::MakeObject();
  Json counters = Json::MakeObject();
  for (const auto& [name, counter] : registry.counters()) {
    counters[name] = counter->value();
  }
  doc["counters"] = std::move(counters);
  Json gauges = Json::MakeObject();
  for (const auto& [name, gauge] : registry.gauges()) {
    gauges[name] = gauge->value();
  }
  doc["gauges"] = std::move(gauges);
  Json histograms = Json::MakeObject();
  for (const auto& [name, histogram] : registry.histograms()) {
    Json h = Json::MakeObject();
    h["count"] = histogram->count();
    h["mean"] = histogram->mean();
    h["min"] = histogram->min();
    h["max"] = histogram->max();
    h["p50"] = histogram->Percentile(50);
    h["p95"] = histogram->Percentile(95);
    h["p99"] = histogram->Percentile(99);
    histograms[name] = std::move(h);
  }
  doc["histograms"] = std::move(histograms);
  if (!registry.all_series().empty()) {
    Json series = Json::MakeObject();
    for (const auto& [name, ts] : registry.all_series()) {
      Json points = Json::MakeArray();
      for (const TimeSeries::Point& p : ts.points()) {
        Json pt = Json::MakeArray();
        pt.Append(p.time);
        pt.Append(p.value);
        points.Append(std::move(pt));
      }
      series[name] = std::move(points);
    }
    doc["series"] = std::move(series);
  }
  return doc;
}

std::string MetricsToCsv(const MetricsRegistry& registry) {
  std::string out = "kind,name,count,value,mean,p50,p95,p99,min,max,realtime\n";
  for (const auto& [name, counter] : registry.counters()) {
    out += StrFormat("counter,%s,,%llu,,,,,,,%d\n", CsvField(name).c_str(),
                     static_cast<unsigned long long>(counter->value()),
                     registry.is_realtime(name) ? 1 : 0);
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    out += StrFormat("gauge,%s,,%.6g,,,,,,,%d\n", CsvField(name).c_str(),
                     gauge->value(), registry.is_realtime(name) ? 1 : 0);
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    out += StrFormat(
        "histogram,%s,%llu,,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%d\n",
        CsvField(name).c_str(),
        static_cast<unsigned long long>(histogram->count()),
        histogram->mean(), histogram->Percentile(50),
        histogram->Percentile(95), histogram->Percentile(99),
        histogram->min(), histogram->max(),
        registry.is_realtime(name) ? 1 : 0);
  }
  return out;
}

std::string StripRealtimeRows(const std::string& csv) {
  std::string out;
  out.reserve(csv.size());
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string::npos) end = csv.size();
    // The realtime flag is the last comma-separated field; quoted
    // metric names never contain a bare ",1"/",0" suffix ambiguity
    // because the flag is always the final two characters of the row.
    bool realtime = end >= pos + 2 && csv.compare(end - 2, 2, ",1") == 0;
    if (!realtime) out.append(csv, pos, end - pos + 1);
    pos = end + 1;
  }
  return out;
}

}  // namespace fuxi::obs
