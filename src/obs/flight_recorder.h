#ifndef FUXI_OBS_FLIGHT_RECORDER_H_
#define FUXI_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace fuxi::obs {

/// One completed causal span. Message spans cover a simulated RPC from
/// Send() to the end of the receiving handler; local spans cover a
/// named region of work (e.g. one scheduler request application).
/// `parent` links to the span that was ambient when this one began, so
/// a dump reconstructs the causal chain master → agent → job → worker.
struct SpanRecord {
  uint64_t id = 0;      ///< deterministic, from the recorder's counter
  uint64_t parent = 0;  ///< 0 = root (no causal predecessor)
  double begin = 0;     ///< virtual seconds
  double end = 0;       ///< virtual seconds
  double wall_us = -1;  ///< real wall-clock cost when timed, else -1
  int64_t from = -1;    ///< sender NodeId for message spans, else -1
  int64_t to = -1;      ///< receiver NodeId for message spans, else -1
  uint64_t bytes = 0;   ///< approximate wire bytes (message spans)
  bool dropped = false; ///< the message vanished in the network
  const char* category = "";  ///< interned; stable for recorder lifetime
  const char* name = "";      ///< interned; stable for recorder lifetime
};

/// Bounded ring buffer of records — the "black box" the chaos
/// InvariantMonitor dumps when an invariant fires. Bounded so recording
/// can stay on for arbitrarily long campaigns: when full, the oldest
/// record is overwritten, keeping the most recent history leading up to
/// the violation.
///
/// `head_` is the explicit overwrite position: once the ring has
/// lapped, it always indexes the oldest retained record, so Snapshot()
/// emits oldest-first by construction in every state — partially
/// filled, exactly full, lapped many times over, or refilled after
/// Clear(). (The previous implementation derived the start slot from
/// `total_ % capacity_`; correct, but only by arithmetic coincidence —
/// any future change to the overwrite rule would have silently
/// scrambled dump order. The regression tests in obs_test.cc pin the
/// oldest-first contract across all of these states.)
template <typename Record>
class BoundedRing {
 public:
  explicit BoundedRing(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void Push(Record record) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[head_] = std::move(record);
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Retained records, oldest first.
  std::vector<Record> Snapshot() const {
    std::vector<Record> out;
    out.reserve(ring_.size());
    // head_ stays 0 until the first overwrite, so this single loop
    // covers both the unwrapped and the lapped ring.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const { return total_; }
  /// Records lost to the ring bound (overwritten).
  uint64_t overwritten() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  void Clear() {
    ring_.clear();
    head_ = 0;
    total_ = 0;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< oldest retained record once the ring lapped
  uint64_t total_ = 0;
  std::vector<Record> ring_;
};

/// The span black box kept by TraceRecorderImpl.
using FlightRecorder = BoundedRing<SpanRecord>;

}  // namespace fuxi::obs

#endif  // FUXI_OBS_FLIGHT_RECORDER_H_
