#ifndef FUXI_OBS_FLIGHT_RECORDER_H_
#define FUXI_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <vector>

namespace fuxi::obs {

/// One completed causal span. Message spans cover a simulated RPC from
/// Send() to the end of the receiving handler; local spans cover a
/// named region of work (e.g. one scheduler request application).
/// `parent` links to the span that was ambient when this one began, so
/// a dump reconstructs the causal chain master → agent → job → worker.
struct SpanRecord {
  uint64_t id = 0;      ///< deterministic, from the recorder's counter
  uint64_t parent = 0;  ///< 0 = root (no causal predecessor)
  double begin = 0;     ///< virtual seconds
  double end = 0;       ///< virtual seconds
  double wall_us = -1;  ///< real wall-clock cost when timed, else -1
  int64_t from = -1;    ///< sender NodeId for message spans, else -1
  int64_t to = -1;      ///< receiver NodeId for message spans, else -1
  uint64_t bytes = 0;   ///< approximate wire bytes (message spans)
  bool dropped = false; ///< the message vanished in the network
  const char* category = "";  ///< interned; stable for recorder lifetime
  const char* name = "";      ///< interned; stable for recorder lifetime
};

/// Bounded ring buffer of completed spans — the "black box" the chaos
/// InvariantMonitor dumps when an invariant fires. Bounded so tracing
/// can stay on for arbitrarily long campaigns: when full, the oldest
/// span is overwritten, keeping the most recent history leading up to
/// the violation.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void Push(const SpanRecord& span) {
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[static_cast<size_t>(total_ % capacity_)] = span;
    }
    ++total_;
  }

  /// Retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const {
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    if (total_ <= capacity_) {
      out = ring_;
      return out;
    }
    size_t start = static_cast<size_t>(total_ % capacity_);
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
    return out;
  }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const { return total_; }
  /// Spans lost to the ring bound (overwritten).
  uint64_t overwritten() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  void Clear() {
    ring_.clear();
    total_ = 0;
  }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<SpanRecord> ring_;
};

}  // namespace fuxi::obs

#endif  // FUXI_OBS_FLIGHT_RECORDER_H_
