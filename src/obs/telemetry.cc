#include "obs/telemetry.h"

#include <cmath>

#include "common/strings.h"

namespace fuxi::obs {

namespace {

constexpr std::string_view kSeriesKindNames[] = {
    "counter", "gauge", "derived", "percentile"};

constexpr std::string_view kRuleKindNames[] = {
    "threshold", "rate", "sustained"};

/// Largest magnitude a scaled sample may take. Chosen so scaled values
/// survive a JSON round trip exactly (Json numbers are doubles; every
/// integer up to 2^52 is representable): instruments up to ~4.5e9 keep
/// full 1e-6 resolution, larger ones saturate instead of corrupting.
constexpr double kScaledLimit = 4.5e15;

}  // namespace

std::string_view TelemetrySeriesKindName(TelemetrySeries::Kind kind) {
  return kSeriesKindNames[static_cast<size_t>(kind)];
}

std::string_view SloRuleKindName(SloRuleKind kind) {
  return kRuleKindNames[static_cast<size_t>(kind)];
}

int64_t TelemetrySeries::ToScaled(double value) {
  double scaled = value * kScale;
  if (std::isnan(scaled)) return 0;
  if (scaled >= kScaledLimit) return static_cast<int64_t>(kScaledLimit);
  if (scaled <= -kScaledLimit) return -static_cast<int64_t>(kScaledLimit);
  return static_cast<int64_t>(std::llround(scaled));
}

void TelemetrySeries::Append(int64_t tick, double value) {
  int64_t scaled = ToScaled(value);
  int64_t delta = scaled - last_scaled_;
  last_scaled_ = scaled;
  if (count_ == 0) first_tick_ = tick;
  if (count_ < deltas_.size()) {
    deltas_[(head_ + count_) % deltas_.size()] = delta;
    ++count_;
  } else {
    // Ring full: fold the oldest delta into the base and reuse its
    // slot for the newest — the retained window slides forward by one.
    base_ += deltas_[head_];
    deltas_[head_] = delta;
    head_ = (head_ + 1) % deltas_.size();
    ++first_tick_;
  }
  ++total_;
}

std::vector<double> TelemetrySeries::Values() const {
  std::vector<double> out;
  out.reserve(count_);
  int64_t acc = base_;
  for (size_t i = 0; i < count_; ++i) {
    acc += deltas_[(head_ + i) % deltas_.size()];
    out.push_back(static_cast<double>(acc) / kScale);
  }
  return out;
}

bool TelemetrySeries::ValueAt(int64_t tick, double* out) const {
  if (count_ == 0 || tick < first_tick_ || tick > last_tick()) return false;
  size_t steps = static_cast<size_t>(tick - first_tick_);
  int64_t acc = base_;
  for (size_t i = 0; i <= steps; ++i) {
    acc += deltas_[(head_ + i) % deltas_.size()];
  }
  *out = static_cast<double>(acc) / kScale;
  return true;
}

std::vector<int64_t> TelemetrySeries::DeltasInOrder() const {
  std::vector<int64_t> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(deltas_[(head_ + i) % deltas_.size()]);
  }
  return out;
}

TelemetrySeries& TelemetrySamplerImpl::Slot(const std::string& name,
                                            TelemetrySeries::Kind kind,
                                            bool realtime) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(name, TelemetrySeries(kind, options_.ring_capacity,
                                            realtime))
             .first;
  }
  return it->second;
}

void TelemetrySamplerImpl::SampleTick(int64_t tick) {
  for (const auto& [name, counter] : metrics_->counters()) {
    Slot(name, TelemetrySeries::Kind::kCounter, metrics_->is_realtime(name))
        .Append(tick, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : metrics_->gauges()) {
    Slot(name, TelemetrySeries::Kind::kGauge, metrics_->is_realtime(name))
        .Append(tick, gauge->value());
  }
  if (options_.sample_histograms) {
    for (const auto& [name, histogram] : metrics_->histograms()) {
      HistCache& cache = hist_cache_[name];
      if (histogram->count() != cache.count) {
        // PercentilesSnapshot copies the reservoir before sorting, so
        // mid-run queries cannot perturb end-of-run percentiles (the
        // sampler-on/off identity contract).
        std::vector<double> ps =
            histogram->PercentilesSnapshot({50.0, 99.0});
        cache.count = histogram->count();
        cache.p50 = ps[0];
        cache.p99 = ps[1];
      }
      bool realtime = metrics_->is_realtime(name);
      Slot(name + ".p50", TelemetrySeries::Kind::kPercentile, realtime)
          .Append(tick, cache.p50);
      Slot(name + ".p99", TelemetrySeries::Kind::kPercentile, realtime)
          .Append(tick, cache.p99);
    }
  }
  for (const auto& [name, probe] : probes_) {
    Slot(name, TelemetrySeries::Kind::kDerived, false)
        .Append(tick, probe());
  }
  for (auto& [name, last] : rates_) {
    auto it = metrics_->counters().find(name);
    uint64_t current = it == metrics_->counters().end()
                           ? 0
                           : it->second->value();
    // First sample has no baseline: report zero rather than the whole
    // warmup accumulation as one spike.
    double rate = total_rate_samples_ == 0
                      ? 0.0
                      : (static_cast<double>(current) -
                         static_cast<double>(last)) /
                            options_.interval;
    last = current;
    Slot(name + ".rate", TelemetrySeries::Kind::kDerived,
         metrics_->is_realtime(name))
        .Append(tick, rate);
  }
  ++total_rate_samples_;
  if (on_sample_) on_sample_(TickTime(tick));
}

void SloWatchdogImpl::Evaluate(const TelemetrySamplerImpl& sampler,
                               double now) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    const TelemetrySeries* series = sampler.series(rule.series);
    if (series == nullptr || series->empty()) {
      state.breach_since = -1;
      continue;
    }
    double latest = series->Latest();
    switch (rule.kind) {
      case SloRuleKind::kThreshold: {
        bool breach = rule.above ? latest >= rule.threshold
                                 : latest <= rule.threshold;
        if (breach && now - state.last_fire >= rule.cooldown) {
          state.last_fire = now;
          Fire(rule, now, latest);
        }
        break;
      }
      case SloRuleKind::kRate: {
        double interval = sampler.interval();
        if (interval <= 0) break;
        int64_t lookback = rule.window > 0
                               ? std::max<int64_t>(
                                     1, std::llround(rule.window / interval))
                               : 1;
        double previous = 0;
        if (!series->ValueAt(series->last_tick() - lookback, &previous)) {
          break;  // not enough history yet
        }
        double rate = (latest - previous) /
                      (static_cast<double>(lookback) * interval);
        bool breach = rule.above ? rate >= rule.threshold
                                 : rate <= rule.threshold;
        if (breach && now - state.last_fire >= rule.cooldown) {
          state.last_fire = now;
          Fire(rule, now, rate);
        }
        break;
      }
      case SloRuleKind::kSustained: {
        bool breach = rule.above ? latest >= rule.threshold
                                 : latest <= rule.threshold;
        if (!breach) {
          state.breach_since = -1;
          break;
        }
        if (state.breach_since < 0) state.breach_since = now;
        if (now - state.breach_since >= rule.window &&
            now - state.last_fire >= rule.cooldown) {
          state.last_fire = now;
          Fire(rule, now, latest);
        }
        break;
      }
    }
  }
}

void SloWatchdogImpl::Fire(const SloRule& rule, double now, double value) {
  if (events_.size() < max_events_) {
    events_.push_back(HealthEvent{now, rule.name, rule.series, value,
                                  rule.threshold, rule.detail});
  } else {
    ++events_dropped_;
  }
  if (trace_ != nullptr) {
    // rules_ is a deque, so rule.name's c_str() stays stable for the
    // flight recorder's interned pointer.
    uint64_t span = trace_->BeginSpan("health", rule.name.c_str());
    trace_->EndSpan(span);
  }
  if (audit_ != nullptr) {
    DecisionRecord record;
    record.kind = DecisionKind::kHealth;
    record.note = StrFormat("%s: %s=%.6g threshold=%.6g",
                            rule.name.c_str(), rule.series.c_str(), value,
                            rule.threshold);
    audit_->Commit(std::move(record));
  }
}

// --- export / import ---------------------------------------------------

Json TelemetryJson(const TelemetrySamplerImpl& sampler,
                   const SloWatchdogImpl& watchdog, bool include_realtime) {
  Json doc = Json::MakeObject();
  doc["fuxi_telemetry"] = 1;
  doc["interval"] = sampler.interval();
  doc["scale"] = TelemetrySeries::kScale;
  doc["samples"] = sampler.samples_taken();
  Json series = Json::MakeArray();
  for (const auto& [name, s] : sampler.all_series()) {
    if (!include_realtime && s.realtime()) continue;
    Json entry = Json::MakeObject();
    entry["name"] = name;
    entry["kind"] = std::string(TelemetrySeriesKindName(s.kind()));
    if (s.realtime()) entry["realtime"] = true;
    entry["first_tick"] = s.first_tick();
    entry["base"] = s.base_scaled();
    entry["total"] = s.total_appended();
    Json deltas = Json::MakeArray();
    for (int64_t d : s.DeltasInOrder()) deltas.Append(d);
    entry["deltas"] = std::move(deltas);
    series.Append(std::move(entry));
  }
  doc["series"] = std::move(series);
  Json events = Json::MakeArray();
  for (const HealthEvent& ev : watchdog.events()) {
    Json entry = Json::MakeObject();
    entry["t"] = ev.time;
    entry["rule"] = ev.rule;
    entry["series"] = ev.series;
    entry["value"] = ev.value;
    entry["threshold"] = ev.threshold;
    if (!ev.detail.empty()) entry["detail"] = ev.detail;
    events.Append(std::move(entry));
  }
  doc["events"] = std::move(events);
  doc["events_dropped"] = watchdog.events_dropped();
  return doc;
}

std::string ExportTelemetryJson(const TelemetrySamplerImpl& sampler,
                                const SloWatchdogImpl& watchdog,
                                bool include_realtime) {
  return TelemetryJson(sampler, watchdog, include_realtime).Dump();
}

const TelemetryDump::Series* TelemetryDump::Find(
    const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TelemetryDump TelemetryDumpFromJson(const Json& doc) {
  TelemetryDump dump;
  if (doc.Find("fuxi_telemetry") == nullptr) return dump;
  dump.interval = doc.GetNumber("interval", 1.0);
  dump.samples = doc.GetInt("samples", 0);
  dump.events_dropped = static_cast<uint64_t>(doc.GetInt("events_dropped", 0));
  double scale = doc.GetNumber("scale", TelemetrySeries::kScale);
  if (scale <= 0) scale = TelemetrySeries::kScale;
  if (const Json* series = doc.Find("series");
      series != nullptr && series->is_array()) {
    for (const Json& entry : series->as_array()) {
      TelemetryDump::Series s;
      s.name = entry.GetString("name", "");
      s.kind = entry.GetString("kind", "gauge");
      s.realtime = entry.GetBool("realtime", false);
      s.first_tick = entry.GetInt("first_tick", 0);
      s.total = static_cast<uint64_t>(entry.GetInt("total", 0));
      double acc = static_cast<double>(entry.GetInt("base", 0));
      if (const Json* deltas = entry.Find("deltas");
          deltas != nullptr && deltas->is_array()) {
        s.values.reserve(deltas->as_array().size());
        for (const Json& d : deltas->as_array()) {
          acc += d.is_number() ? d.as_number() : 0;
          s.values.push_back(acc / scale);
        }
      }
      dump.series.push_back(std::move(s));
    }
  }
  if (const Json* events = doc.Find("events");
      events != nullptr && events->is_array()) {
    for (const Json& entry : events->as_array()) {
      HealthEvent ev;
      ev.time = entry.GetNumber("t", 0);
      ev.rule = entry.GetString("rule", "");
      ev.series = entry.GetString("series", "");
      ev.value = entry.GetNumber("value", 0);
      ev.threshold = entry.GetNumber("threshold", 0);
      ev.detail = entry.GetString("detail", "");
      dump.events.push_back(std::move(ev));
    }
  }
  return dump;
}

}  // namespace fuxi::obs
