#ifndef FUXI_OBS_TRACE_H_
#define FUXI_OBS_TRACE_H_

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.h"
#include "sim/simulator.h"

// Compile-time tracing switch. The build defines FUXI_OBS_TRACING=0/1
// (CMake option FUXI_OBS_TRACING, default ON); when OFF, TraceRecorder
// aliases NoopTraceRecorder and every call site inlines to nothing, so
// the traced build and the stripped build share one set of sources.
#ifndef FUXI_OBS_TRACING
#define FUXI_OBS_TRACING 1
#endif

namespace fuxi::obs {

inline constexpr bool kTracingEnabled = FUXI_OBS_TRACING != 0;

/// Records causal spans for simulated RPCs and named local work.
///
/// Determinism rules (required by the chaos replay gate):
///  * span IDs come from a per-recorder monotonic counter, never from
///    wall clock or addresses — same seed, same IDs;
///  * begin/end stamps are virtual time from the Simulator;
///  * real wall-clock durations may be *attached* to a span (scheduler
///    hot paths) but never participate in IDs, ordering, or hashes.
///
/// Causality: each recorder keeps one ambient "current span". A message
/// span begun in Network::Send records the sender's ambient span as its
/// parent; while the receiving handler runs, Network::Deliver makes the
/// message span ambient (RAII Scope), so any message the handler sends
/// in turn is parented to it. That chains master→agent→job→worker
/// through arbitrarily many deterministic hops.
class TraceRecorderImpl {
 public:
  explicit TraceRecorderImpl(sim::Simulator* sim,
                             size_t ring_capacity = kDefaultRingCapacity);

  /// Begins a local (non-message) span parented to the ambient span.
  uint64_t BeginSpan(const char* category, const char* name);

  /// Begins a span for one in-flight message copy; the name is the
  /// demangled payload type, interned so the span stores no allocation.
  uint64_t BeginMessageSpan(const std::type_info& payload_type,
                            int64_t from, int64_t to, uint64_t bytes);

  /// Completes a span. `wall_us` >= 0 attaches a measured real
  /// wall-clock cost (scheduler hot paths); it is annotation only.
  void EndSpan(uint64_t id, double wall_us = -1);

  /// Completes a message span whose envelope vanished in the network
  /// (drop, partition, dead endpoint) — kept in the trace, flagged.
  void DropSpan(uint64_t id);

  /// Makes `span` the ambient parent for the duration of a handler.
  class Scope {
   public:
    Scope(TraceRecorderImpl* recorder, uint64_t span)
        : recorder_(recorder), saved_(recorder->current_) {
      recorder_->current_ = span;
    }
    ~Scope() { recorder_->current_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceRecorderImpl* recorder_;
    uint64_t saved_;
  };

  uint64_t current() const { return current_; }
  static constexpr bool enabled() { return true; }

  /// Completed spans retained by the flight recorder, oldest first.
  std::vector<SpanRecord> Snapshot() const { return flight_.Snapshot(); }
  const FlightRecorder& flight() const { return flight_; }

  uint64_t spans_begun() const { return next_id_ - 1; }
  size_t open_spans() const { return open_.size(); }

  /// Demangles and interns a payload type name; the returned pointer
  /// stays valid for the recorder's lifetime.
  const char* InternTypeName(const std::type_info& type);

  void Clear();

  static constexpr size_t kDefaultRingCapacity = 1 << 16;

 private:
  void Finish(uint64_t id, double wall_us, bool dropped);

  sim::Simulator* sim_;
  uint64_t next_id_ = 1;  // 0 is "no span"
  uint64_t current_ = 0;
  std::unordered_map<uint64_t, SpanRecord> open_;
  // unique_ptr<string> so interned c_str() pointers survive rehashing.
  std::unordered_map<std::type_index, std::unique_ptr<std::string>> names_;
  FlightRecorder flight_;
};

/// The compiled-out stand-in: identical surface, every member an empty
/// inline. With FUXI_OBS_TRACING=0 all instrumentation collapses to
/// comparisons against null/0 the optimizer deletes.
class NoopTraceRecorder {
 public:
  explicit NoopTraceRecorder(sim::Simulator* /*sim*/, size_t /*cap*/ = 0) {}

  uint64_t BeginSpan(const char*, const char*) { return 0; }
  uint64_t BeginMessageSpan(const std::type_info&, int64_t, int64_t,
                            uint64_t) {
    return 0;
  }
  void EndSpan(uint64_t, double = -1) {}
  void DropSpan(uint64_t) {}

  class Scope {
   public:
    Scope(NoopTraceRecorder*, uint64_t) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  uint64_t current() const { return 0; }
  static constexpr bool enabled() { return false; }
  std::vector<SpanRecord> Snapshot() const { return {}; }
  uint64_t spans_begun() const { return 0; }
  size_t open_spans() const { return 0; }
  const char* InternTypeName(const std::type_info&) { return ""; }
  void Clear() {}
};

/// Compile-time interface contract: both recorders must stay drop-in
/// interchangeable, so flipping FUXI_OBS_TRACING can never break a
/// call site only exercised in the other configuration.
template <typename R>
concept TraceSink = requires(R r, const std::type_info& t) {
  { r.BeginSpan("cat", "name") } -> std::convertible_to<uint64_t>;
  { r.BeginMessageSpan(t, int64_t{}, int64_t{}, uint64_t{}) }
      -> std::convertible_to<uint64_t>;
  r.EndSpan(uint64_t{}, 0.0);
  r.DropSpan(uint64_t{});
  { r.current() } -> std::convertible_to<uint64_t>;
  { R::enabled() } -> std::convertible_to<bool>;
  { r.Snapshot() } -> std::convertible_to<std::vector<SpanRecord>>;
  { r.InternTypeName(t) } -> std::convertible_to<const char*>;
  typename R::Scope;
};
static_assert(TraceSink<TraceRecorderImpl>,
              "TraceRecorderImpl must satisfy TraceSink");
static_assert(TraceSink<NoopTraceRecorder>,
              "NoopTraceRecorder must satisfy TraceSink");

#if FUXI_OBS_TRACING
using TraceRecorder = TraceRecorderImpl;
#else
using TraceRecorder = NoopTraceRecorder;
#endif

}  // namespace fuxi::obs

#endif  // FUXI_OBS_TRACE_H_
