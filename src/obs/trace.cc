#include "obs/trace.h"

#include <utility>

#include "common/strings.h"

namespace fuxi::obs {

TraceRecorderImpl::TraceRecorderImpl(sim::Simulator* sim,
                                     size_t ring_capacity)
    : sim_(sim), flight_(ring_capacity) {}

uint64_t TraceRecorderImpl::BeginSpan(const char* category,
                                      const char* name) {
  SpanRecord span;
  span.id = next_id_++;
  span.parent = current_;
  span.begin = sim_->Now();
  span.category = category;
  span.name = name;
  open_.emplace(span.id, span);
  return span.id;
}

uint64_t TraceRecorderImpl::BeginMessageSpan(
    const std::type_info& payload_type, int64_t from, int64_t to,
    uint64_t bytes) {
  SpanRecord span;
  span.id = next_id_++;
  span.parent = current_;
  span.begin = sim_->Now();
  span.category = "rpc";
  span.name = InternTypeName(payload_type);
  span.from = from;
  span.to = to;
  span.bytes = bytes;
  open_.emplace(span.id, span);
  return span.id;
}

void TraceRecorderImpl::EndSpan(uint64_t id, double wall_us) {
  Finish(id, wall_us, /*dropped=*/false);
}

void TraceRecorderImpl::DropSpan(uint64_t id) {
  Finish(id, /*wall_us=*/-1, /*dropped=*/true);
}

void TraceRecorderImpl::Finish(uint64_t id, double wall_us, bool dropped) {
  if (id == 0) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;  // double-end is a no-op
  SpanRecord span = it->second;
  open_.erase(it);
  span.end = sim_->Now();
  span.wall_us = wall_us;
  span.dropped = dropped;
  flight_.Push(span);
}

const char* TraceRecorderImpl::InternTypeName(const std::type_info& type) {
  auto it = names_.find(std::type_index(type));
  if (it == names_.end()) {
    it = names_
             .emplace(std::type_index(type),
                      std::make_unique<std::string>(Demangle(type.name())))
             .first;
  }
  return it->second->c_str();
}

void TraceRecorderImpl::Clear() {
  open_.clear();
  flight_.Clear();
  next_id_ = 1;
  current_ = 0;
}

}  // namespace fuxi::obs
